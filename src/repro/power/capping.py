"""Server and rack power capping (section 5.3's smoothing claim, live).

The paper credits part of the ~40% budget reduction to fine-grained
power allocation across 24 small accelerators smoothing load spikes: a
chip that spikes borrows headroom from the 23 that did not, where a
coarse server-level cap must clamp everyone to survive the worst chip.

This module makes that claim testable.  Two controllers share one
demand tape (per-chip diurnal utilization plus random spikes from
:func:`repro.power.activity.utilization_profile`):

* :class:`PerChipCapController` — water-filling: each tick the server
  budget is divided so no chip gets more than it asks for and the
  leftovers of frugal chips flow to spiking ones; each chip then runs
  at the highest ladder frequency its allocation affords.
* :class:`ServerCapController` — one uniform ladder index for all
  chips, stepped down a notch whenever the previous tick's total draw
  exceeded the budget (the one-tick measurement lag a real server-level
  loop has) and back up when there is headroom.

The figure of merit is throughput *deficit* — how much of the demanded
work each policy fails to deliver — and its P99 across ticks.  The
pinned golden: at equal budget, the per-chip P99 deficit is strictly
below the server-level one.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.arch.server import ServerSpec, mtia2i_server
from repro.arch.specs import ChipSpec
from repro.obs.metrics import MetricsRegistry, active
from repro.power.activity import chip_power_w, utilization_profile
from repro.power.dvfs import DEFAULT_LADDER_HZ


def water_fill(demands_w: np.ndarray, budget_w: float) -> np.ndarray:
    """Divide a budget so nobody gets more than they asked for.

    Iteratively grants every unsatisfied chip an equal share of the
    remaining budget, capped at its demand; freed headroom recirculates
    until the budget is spent or everyone is satisfied.  Conserves the
    budget: ``sum(alloc) == min(budget, sum(demands))``.
    """
    demands = np.asarray(demands_w, dtype=float)
    if np.any(demands < 0):
        raise ValueError("demands must be non-negative")
    if budget_w < 0:
        raise ValueError("budget must be non-negative")
    alloc = np.zeros_like(demands)
    remaining = float(budget_w)
    unsatisfied = demands > 0
    while remaining > 1e-9 and np.any(unsatisfied):
        share = remaining / int(np.sum(unsatisfied))
        grant = np.minimum(demands[unsatisfied] - alloc[unsatisfied], share)
        alloc[unsatisfied] += grant
        remaining -= float(np.sum(grant))
        unsatisfied = alloc < demands - 1e-12
    return alloc


def _frequency_for_budget(
    chip: ChipSpec,
    ladder_hz: Sequence[float],
    utilization: float,
    budget_w: float,
) -> float:
    """Highest ladder frequency whose draw fits the budget (the ladder
    floor if none does — a chip cannot clock below its minimum state)."""
    for frequency in reversed(ladder_hz):
        if chip_power_w(chip, frequency, utilization) <= budget_w:
            return frequency
    return ladder_hz[0]


@dataclasses.dataclass(frozen=True)
class CapOutcome:
    """One controller's run against the shared demand tape."""

    policy: str
    budget_w: float
    delivered_fraction: float
    deficits: Tuple[float, ...]  # per-tick fraction of demanded work lost
    power_w: Tuple[float, ...]  # per-tick total server draw
    cap_violation_fraction: float

    @property
    def p99_deficit(self) -> float:
        return float(np.percentile(self.deficits, 99))

    @property
    def mean_power_w(self) -> float:
        return float(np.mean(self.power_w))

    def scalars(self) -> Dict[str, float]:
        return {
            f"{self.policy}_p99_deficit": self.p99_deficit,
            f"{self.policy}_delivered_fraction": self.delivered_fraction,
            f"{self.policy}_cap_violation_fraction": self.cap_violation_fraction,
        }


class PerChipCapController:
    """Fine-grained allocation: water-fill the budget every tick."""

    policy = "per_chip"

    def __init__(
        self,
        chip: ChipSpec,
        num_chips: int,
        budget_w: float,
        ladder_hz: Sequence[float] = DEFAULT_LADDER_HZ,
    ) -> None:
        self.chip = chip
        self.num_chips = num_chips
        self.budget_w = budget_w
        self.ladder_hz = tuple(ladder_hz)

    def tick(self, utilizations: np.ndarray) -> Tuple[np.ndarray, float]:
        """Returns (per-chip frequency, total draw) for one tick."""
        demands = np.array([
            chip_power_w(self.chip, self.ladder_hz[-1], float(u))
            for u in utilizations
        ])
        alloc = water_fill(demands, self.budget_w)
        freqs = np.array([
            _frequency_for_budget(self.chip, self.ladder_hz, float(u), float(a))
            for u, a in zip(utilizations, alloc)
        ])
        power = float(sum(
            chip_power_w(self.chip, float(f), float(u))
            for f, u in zip(freqs, utilizations)
        ))
        return freqs, power


class ServerCapController:
    """Coarse control: one ladder index for every chip, adjusted on the
    *previous* tick's total draw (the measurement lag of a server-level
    loop polling a shared power meter)."""

    policy = "server_level"

    def __init__(
        self,
        chip: ChipSpec,
        num_chips: int,
        budget_w: float,
        ladder_hz: Sequence[float] = DEFAULT_LADDER_HZ,
    ) -> None:
        self.chip = chip
        self.num_chips = num_chips
        self.budget_w = budget_w
        self.ladder_hz = tuple(ladder_hz)
        self.index = len(self.ladder_hz) - 1
        self._last_power: Optional[float] = None

    def tick(self, utilizations: np.ndarray) -> Tuple[np.ndarray, float]:
        if self._last_power is not None:
            if self._last_power > self.budget_w and self.index > 0:
                self.index -= 1
            elif self.index < len(self.ladder_hz) - 1:
                # Step back up only if the next state would have fit the
                # previous tick's load.
                probe = self._last_power * (
                    self.ladder_hz[self.index + 1] / self.ladder_hz[self.index]
                )
                if probe <= self.budget_w:
                    self.index += 1
        frequency = self.ladder_hz[self.index]
        power = float(sum(
            chip_power_w(self.chip, frequency, float(u)) for u in utilizations
        ))
        self._last_power = power
        freqs = np.full(len(utilizations), frequency)
        return freqs, power


def _spiky_utilization(
    num_chips: int,
    duration_s: float,
    dt_s: float,
    mean: float,
    spike_probability: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-chip diurnal load with uncorrelated spikes — the load shape
    whose smoothing fine-grained allocation exploits."""
    steps = int(np.ceil(duration_s / dt_s))
    tape = np.empty((num_chips, steps))
    for i in range(num_chips):
        tape[i] = utilization_profile(duration_s, dt_s, mean=mean, rng=rng)
    spikes = rng.random((num_chips, steps)) < spike_probability
    tape[spikes] = 1.0
    return tape


def run_capping(
    controller,
    utilization_tape: np.ndarray,
    ladder_hz: Sequence[float] = DEFAULT_LADDER_HZ,
    registry: Optional[MetricsRegistry] = None,
) -> CapOutcome:
    """Drive one controller down a demand tape and score it.

    Demanded work per tick is utilization at the top ladder frequency;
    delivered work scales by the granted frequency ratio.
    """
    obs = active(registry)
    num_chips, steps = utilization_tape.shape
    fmax = ladder_hz[-1]
    deficits, powers = [], []
    demanded_total = delivered_total = 0.0
    violations = 0
    for step in range(steps):
        utilizations = utilization_tape[:, step]
        freqs, power = controller.tick(utilizations)
        demanded = float(np.sum(utilizations))
        delivered = float(np.sum(utilizations * freqs / fmax))
        demanded_total += demanded
        delivered_total += delivered
        deficits.append(1.0 - delivered / demanded if demanded else 0.0)
        powers.append(power)
        if power > controller.budget_w * (1.0 + 1e-9):
            violations += 1
        if obs.enabled:
            obs.series(f"power.cap.{controller.policy}.draw_w").append(
                float(step), power
            )
    outcome = CapOutcome(
        policy=controller.policy,
        budget_w=controller.budget_w,
        delivered_fraction=delivered_total / demanded_total if demanded_total else 1.0,
        deficits=tuple(deficits),
        power_w=tuple(powers),
        cap_violation_fraction=violations / steps if steps else 0.0,
    )
    if obs.enabled:
        obs.gauge(f"power.cap.{controller.policy}.p99_deficit").set(
            outcome.p99_deficit
        )
    return outcome


@dataclasses.dataclass(frozen=True)
class CappingComparison:
    """Per-chip versus server-level capping at equal budget."""

    per_chip: CapOutcome
    server_level: CapOutcome
    budget_w: float

    @property
    def p99_deficit_improvement(self) -> float:
        """How much P99 deficit fine-grained allocation removes."""
        return self.server_level.p99_deficit - self.per_chip.p99_deficit

    def scalars(self) -> Dict[str, float]:
        out = {"budget_w": self.budget_w}
        out.update(self.per_chip.scalars())
        out.update(self.server_level.scalars())
        out["p99_deficit_improvement"] = self.p99_deficit_improvement
        return out


def capping_study(
    server: Optional[ServerSpec] = None,
    budget_fraction: float = 0.82,
    duration_s: float = 600.0,
    dt_s: float = 1.0,
    mean_utilization: float = 0.6,
    spike_probability: float = 0.03,
    ladder_hz: Sequence[float] = DEFAULT_LADDER_HZ,
    seed: int = 0,
    registry: Optional[MetricsRegistry] = None,
) -> CappingComparison:
    """Head-to-head: both controllers, one demand tape, one budget.

    The budget is a fraction of the servers' worst-case accelerator draw
    (all 24 chips flat-out at the top ladder frequency) — tight enough
    that spikes force a choice, loose enough that the steady diurnal
    load fits.
    """
    server = server or mtia2i_server()
    chip = server.chip
    num_chips = server.accelerators_per_server
    worst_case = num_chips * chip_power_w(chip, ladder_hz[-1], 1.0)
    budget = budget_fraction * worst_case
    rng = np.random.default_rng(seed)
    tape = _spiky_utilization(
        num_chips, duration_s, dt_s, mean_utilization, spike_probability, rng
    )
    per_chip = run_capping(
        PerChipCapController(chip, num_chips, budget, ladder_hz),
        tape, ladder_hz, registry=registry,
    )
    server_level = run_capping(
        ServerCapController(chip, num_chips, budget, ladder_hz),
        tape, ladder_hz, registry=registry,
    )
    return CappingComparison(
        per_chip=per_chip, server_level=server_level, budget_w=budget
    )


__all__ = [
    "CapOutcome",
    "CappingComparison",
    "PerChipCapController",
    "ServerCapController",
    "capping_study",
    "run_capping",
    "water_fill",
]
