"""DVFS governor with thermal and power-cap feedback (section 5.2, live).

``repro.reliability.overclock`` models the *static* study: 3,000 chips x
10 tests showed ample margin, so the fleet shipped at 1.35 GHz.  This
module makes that decision dynamic.  Each chip's maximum stable
frequency is drawn from the same :class:`MarginModel` distribution the
study discovered; a per-chip governor walks a frequency/voltage ladder,
stepping down when the junction crosses the throttle limit or the draw
crosses a power cap, stepping back up when there is headroom.  Coupled
to the lumped RC network in :mod:`repro.power.thermal` and the
leakage-aware power model in :mod:`repro.power.activity`, the governed
fleet reproduces the paper's 5-20% end-to-end overclocking gain — now
*with* the thermal feedback a static frequency comparison cannot see.

Throughput versus frequency is not assumed linear: it is calibrated by
running the real graph executor at each ladder frequency
(:func:`calibrate_throughput`), so memory-bound models keep their
flatter frequency response.
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.arch.mtia import mtia2i_spec
from repro.arch.specs import ChipSpec
from repro.obs.metrics import MetricsRegistry, active
from repro.power.activity import chip_power_w, utilization_profile
from repro.power.thermal import (
    THROTTLE_LIMIT_C,
    THROTTLE_TARGET_C,
    ThermalNetwork,
    mtia2i_thermal,
)
from repro.reliability.overclock import DESIGN_FREQUENCY_HZ, MarginModel
from repro.units import GHZ

# The frequency/voltage ladder the governor walks.  The deployed
# operating point (1.35 GHz) tops the production ladder; the design
# point (1.1 GHz) is the baseline every gain is measured against.
DEFAULT_LADDER_HZ: Tuple[float, ...] = (
    0.8 * GHZ, 0.9 * GHZ, 1.0 * GHZ, 1.1 * GHZ,
    1.2 * GHZ, 1.25 * GHZ, 1.3 * GHZ, 1.35 * GHZ,
)


@dataclasses.dataclass(frozen=True)
class DvfsConfig:
    """Governor parameters."""

    ladder_hz: Tuple[float, ...] = DEFAULT_LADDER_HZ
    design_frequency_hz: float = DESIGN_FREQUENCY_HZ
    thermal_limit_c: float = THROTTLE_LIMIT_C
    thermal_target_c: float = THROTTLE_TARGET_C
    # A ladder state is usable only if the chip's measured fmax clears it
    # by this factor — the qualification guard band the study kept.
    qualification_margin: float = 1.05
    power_cap_w: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.ladder_hz or any(f <= 0 for f in self.ladder_hz):
            raise ValueError("ladder must contain positive frequencies")
        if list(self.ladder_hz) != sorted(self.ladder_hz):
            raise ValueError("ladder must be ascending")
        if self.thermal_target_c >= self.thermal_limit_c:
            raise ValueError("thermal target must sit below the limit")
        if self.qualification_margin < 1.0:
            raise ValueError("qualification margin must be at least 1")


@dataclasses.dataclass(frozen=True)
class ThroughputCurve:
    """Relative end-to-end throughput versus frequency, from the executor.

    Normalized so the design frequency maps to 1.0.  Piecewise-linear
    between calibrated points, clamped at the ends.
    """

    frequencies_hz: Tuple[float, ...]
    relative_throughput: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.frequencies_hz) != len(self.relative_throughput):
            raise ValueError("curve points must pair up")
        if len(self.frequencies_hz) < 2:
            raise ValueError("need at least two calibration points")
        if list(self.frequencies_hz) != sorted(self.frequencies_hz):
            raise ValueError("frequencies must be ascending")

    def relative(self, frequency_hz: float) -> float:
        """Relative throughput at a frequency (interpolated)."""
        freqs, values = self.frequencies_hz, self.relative_throughput
        if frequency_hz <= freqs[0]:
            return values[0]
        if frequency_hz >= freqs[-1]:
            return values[-1]
        i = bisect.bisect_right(freqs, frequency_hz)
        span = freqs[i] - freqs[i - 1]
        frac = (frequency_hz - freqs[i - 1]) / span
        return values[i - 1] + frac * (values[i] - values[i - 1])


def calibrate_throughput(
    model,
    frequencies_hz: Sequence[float] = DEFAULT_LADDER_HZ,
    design_frequency_hz: float = DESIGN_FREQUENCY_HZ,
) -> ThroughputCurve:
    """Run the executor at each ladder frequency and normalize.

    ``model`` is a zoo model (anything with ``.graph()`` and
    ``.batch``).  This is where memory-bound models get their flat
    frequency response: LPDDR bandwidth does not scale with core clock,
    so the executor's bottleneck model caps the gain.
    """
    from repro.perf.executor import Executor

    throughputs: Dict[float, float] = {}
    for frequency in sorted(set(frequencies_hz) | {design_frequency_hz}):
        chip = mtia2i_spec(frequency_hz=frequency)
        report = Executor(chip).run(model.graph(), model.batch, warmup_runs=1)
        throughputs[frequency] = report.throughput_samples_per_s
    base = throughputs[design_frequency_hz]
    freqs = tuple(sorted(throughputs))
    return ThroughputCurve(
        frequencies_hz=freqs,
        relative_throughput=tuple(throughputs[f] / base for f in freqs),
    )


class DvfsGovernor:
    """One chip's frequency governor."""

    def __init__(
        self,
        chip: ChipSpec,
        config: DvfsConfig,
        fmax_hz: float,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.chip = chip
        self.config = config
        self.fmax_hz = fmax_hz
        self._obs = active(registry)
        ladder = config.ladder_hz
        # Highest ladder state the chip's measured margin qualifies; the
        # ladder floor is always permitted (a chip that cannot hold even
        # that is scrapped upstream, in the screening models).
        usable = [
            i for i, f in enumerate(ladder)
            if f * config.qualification_margin <= fmax_hz
        ]
        self.max_index = usable[-1] if usable else 0
        # Start at the design point, as the fleet did pre-study.
        self.index = min(
            range(len(ladder)),
            key=lambda i: abs(ladder[i] - config.design_frequency_hz),
        )
        self.index = min(self.index, self.max_index)
        self.thermal_throttles = 0
        self.cap_throttles = 0

    @property
    def frequency_hz(self) -> float:
        return self.config.ladder_hz[self.index]

    def power_w(self, utilization: float, junction_c: float) -> float:
        """Draw at the current state under a load and temperature."""
        return chip_power_w(
            self.chip, self.frequency_hz, utilization, junction_c
        )

    def step(self, junction_c: float, utilization: float) -> float:
        """One governor tick: adjust at most one ladder state.

        Returns the frequency to run until the next tick.
        """
        config = self.config
        power = self.power_w(utilization, junction_c)
        over_cap = (
            config.power_cap_w is not None and power > config.power_cap_w
        )
        if junction_c > config.thermal_limit_c or over_cap:
            if self.index > 0:
                self.index -= 1
            if junction_c > config.thermal_limit_c:
                self.thermal_throttles += 1
                self._obs.counter("power.throttle.thermal").inc()
            else:
                self.cap_throttles += 1
                self._obs.counter("power.throttle.cap").inc()
        elif junction_c < config.thermal_target_c and self.index < self.max_index:
            next_freq = config.ladder_hz[self.index + 1]
            next_power = chip_power_w(
                self.chip, next_freq, utilization, junction_c
            )
            if config.power_cap_w is None or next_power <= config.power_cap_w:
                self.index += 1
        self._obs.gauge("power.frequency_hz").set(self.frequency_hz)
        return self.frequency_hz


def _warm_start(
    network: ThermalNetwork,
    chip: ChipSpec,
    frequency_hz: float,
    utilization: float,
    iterations: int = 40,
) -> np.ndarray:
    """Closed-loop steady state at an operating point: iterate the
    leakage/temperature fixed point (power depends on junction, junction
    on power) to convergence."""
    junction = network.ambient_c
    for _ in range(iterations):
        power = chip_power_w(chip, frequency_hz, utilization, junction)
        junction = network.steady_junction_c(power)
    return network.steady_state(
        chip_power_w(chip, frequency_hz, utilization, junction)
    )


@dataclasses.dataclass(frozen=True)
class GovernedChipRun:
    """Time series of one governed chip (for traces and plots)."""

    times_s: Tuple[float, ...]
    frequencies_hz: Tuple[float, ...]
    junction_c: Tuple[float, ...]
    power_w: Tuple[float, ...]


@dataclasses.dataclass(frozen=True)
class ThermalFeedbackResult:
    """Outcome of the governed-overclock fleet study."""

    chip_gains: Tuple[float, ...]
    mean_frequency_hz: float
    peak_junction_c: float
    thermal_throttles: int
    cap_throttles: int
    example_run: GovernedChipRun

    @property
    def mean_gain(self) -> float:
        """Fleet-average end-to-end gain over the design frequency."""
        return float(np.mean(self.chip_gains))

    @property
    def min_gain(self) -> float:
        return float(np.min(self.chip_gains))

    @property
    def max_gain(self) -> float:
        return float(np.max(self.chip_gains))

    def scalars(self) -> Dict[str, float]:
        """Flat scalars for the benchmark harness."""
        return {
            "mean_gain": self.mean_gain,
            "min_gain": self.min_gain,
            "max_gain": self.max_gain,
            "mean_frequency_ghz": self.mean_frequency_hz / GHZ,
            "peak_junction_c": self.peak_junction_c,
            "thermal_throttles": float(self.thermal_throttles),
        }


def overclock_with_thermal_feedback(
    curve: ThroughputCurve,
    num_chips: int = 24,
    duration_s: float = 600.0,
    dt_s: float = 1.0,
    config: Optional[DvfsConfig] = None,
    margin: Optional[MarginModel] = None,
    network: Optional[ThermalNetwork] = None,
    chip: Optional[ChipSpec] = None,
    utilization_mean: float = 0.85,
    ambient_spread_c: float = 7.0,
    seed: int = 0,
    registry: Optional[MetricsRegistry] = None,
) -> ThermalFeedbackResult:
    """The section 5.2 gain, re-measured with the loop closed.

    For each chip: draw its fmax from the manufacturing-margin
    distribution, then run the governed time-domain loop (governor →
    power model → RC network → leakage feedback → governor) against the
    shared utilization profile, accumulating work as the calibrated
    relative throughput at the governed frequency.  The baseline is the
    same chip pinned at the design frequency on identical load.

    Chips share the chassis airflow in series: chip ``i`` sees ambient
    raised by ``ambient_spread_c * i / (n-1)`` — the downstream end of
    the 24-module Grand Teton sled breathes air pre-heated by the
    upstream end.  That heterogeneity is what makes the closed loop
    differ from the static study: upstream chips hold the full ladder,
    downstream ones throttle, and the fleet-mean gain lands *inside* the
    paper's 5-20% band instead of pinning at the frequency ratio.
    """
    if num_chips <= 0:
        raise ValueError("need at least one chip")
    config = config or DvfsConfig()
    margin = margin or MarginModel()
    chip = chip or mtia2i_spec()
    obs = active(registry)
    rng = np.random.default_rng(seed)
    fmax = margin.sample_fmax(num_chips, rng)
    steps = int(np.ceil(duration_s / dt_s))
    gains = []
    total_freq = 0.0
    peak_junction = -np.inf
    thermal_throttles = cap_throttles = 0
    example: Optional[GovernedChipRun] = None
    template = network or mtia2i_thermal()
    for chip_index in range(num_chips):
        offset = (
            ambient_spread_c * chip_index / (num_chips - 1)
            if num_chips > 1 else 0.0
        )
        base_network = ThermalNetwork(
            template.stages, ambient_c=template.ambient_c + offset
        )
        util = utilization_profile(
            duration_s, dt_s, mean=utilization_mean, rng=rng
        )
        governor = DvfsGovernor(chip, config, float(fmax[chip_index]),
                                registry=registry)
        # Warm start: the chip was already serving at the design point
        # before the governor engaged, so begin from that closed-loop
        # steady state rather than a cold package — with slow heatsink
        # time constants a cold start would under-report throttling.
        temps = _warm_start(
            base_network, chip, config.design_frequency_hz, utilization_mean
        )
        governed_work = 0.0
        times, freqs, junctions, powers = [], [], [], []
        for step in range(steps):
            junction = float(temps[0])
            frequency = governor.step(junction, float(util[step]))
            power = governor.power_w(float(util[step]), junction)
            temps = base_network.step(temps, power, dt_s)
            governed_work += curve.relative(frequency) * util[step] * dt_s
            total_freq += frequency
            peak_junction = max(peak_junction, junction)
            if chip_index == num_chips - 1:
                times.append(step * dt_s)
                freqs.append(frequency)
                junctions.append(junction)
                powers.append(power)
        # Baseline: the same load pinned at the design point (relative
        # throughput there is 1.0 by the curve's normalization).
        baseline_work = float(
            np.sum(util) * dt_s * curve.relative(config.design_frequency_hz)
        )
        gains.append(governed_work / baseline_work - 1.0)
        thermal_throttles += governor.thermal_throttles
        cap_throttles += governor.cap_throttles
        if chip_index == num_chips - 1:
            # Trace the hottest (most downstream) chip — the one whose
            # governor actually works for a living.
            example = GovernedChipRun(
                times_s=tuple(times),
                frequencies_hz=tuple(freqs),
                junction_c=tuple(junctions),
                power_w=tuple(powers),
            )
    result = ThermalFeedbackResult(
        chip_gains=tuple(gains),
        mean_frequency_hz=total_freq / (num_chips * steps),
        peak_junction_c=float(peak_junction),
        thermal_throttles=thermal_throttles,
        cap_throttles=cap_throttles,
        example_run=example,
    )
    if obs.enabled:
        obs.gauge("power.dvfs.mean_gain").set(result.mean_gain)
        obs.gauge("power.dvfs.peak_junction_c").set(result.peak_junction_c)
        for t, f in zip(result.example_run.times_s,
                        result.example_run.frequencies_hz):
            obs.series("power.dvfs.frequency_hz").append(t, f)
    return result


__all__ = [
    "DEFAULT_LADDER_HZ",
    "DvfsConfig",
    "DvfsGovernor",
    "GovernedChipRun",
    "ThermalFeedbackResult",
    "ThroughputCurve",
    "calibrate_throughput",
    "overclock_with_thermal_feedback",
]
