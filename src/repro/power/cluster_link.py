"""Coupling power management into the serving tier.

Two directions of coupling:

* :class:`ThrottleSchedule` pushes frequency throttling *down* into the
  cluster DES: a piecewise-constant service-time multiplier derived from
  a governed frequency trace, handed to
  :class:`~repro.cluster.simulator.ClusterSimulator` via its
  ``throttle`` parameter.  A replica running at 80% clock takes 1/0.8x
  as long per request; the multiplier is applied after the rng draw so
  an unthrottled run stays byte-identical to one with no schedule.

* :func:`power_limited_capacity_sweep` pushes a rack budget *up* into
  capacity planning: for each budget, the highest ladder frequency
  whose per-chip draw fits determines the replica service rate, and the
  sweep finds the maximum QPS the fixed replica set sustains at the P99
  SLO.  QPS-per-rack versus budget is monotone and has a knee at the
  budget that first admits the full ladder — past it, watts buy nothing.
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.arch.mtia import mtia2i_spec
from repro.arch.specs import ChipSpec
from repro.cluster.capacity import _step_fractions, max_qps_at_slo
from repro.cluster.service import ServiceModel
from repro.cluster.simulator import ClusterConfig, run_cluster
from repro.obs.metrics import MetricsRegistry, active
from repro.power.activity import chip_power_w
from repro.power.dvfs import DEFAULT_LADDER_HZ
from repro.serving.simulator import DEFAULT_P99_SLO_S
from repro.serving.workload import poisson_stream
from repro.units import GHZ


@dataclasses.dataclass(frozen=True)
class ThrottleSchedule:
    """A piecewise-constant service-time multiplier over time.

    ``multiplier(t)`` is the factor service times stretch by at time
    ``t`` — 1.0 when unthrottled, ``f_nominal / f_throttled`` when the
    clock is down.  Constant before the first breakpoint at the first
    segment's value, and after the last breakpoint at the last one.
    """

    times_s: Tuple[float, ...]
    multipliers: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.times_s or len(self.times_s) != len(self.multipliers):
            raise ValueError("need matching, non-empty breakpoints")
        if list(self.times_s) != sorted(self.times_s):
            raise ValueError("breakpoints must be ascending")
        if any(m <= 0 for m in self.multipliers):
            raise ValueError("multipliers must be positive")

    def multiplier(self, time_s: float) -> float:
        """The service-time stretch factor in effect at ``time_s``."""
        index = bisect.bisect_right(self.times_s, time_s) - 1
        return self.multipliers[max(0, index)]

    @classmethod
    def constant(cls, multiplier: float) -> "ThrottleSchedule":
        return cls(times_s=(0.0,), multipliers=(multiplier,))

    @classmethod
    def from_frequency_trace(
        cls,
        times_s: Sequence[float],
        frequencies_hz: Sequence[float],
        nominal_hz: float,
    ) -> "ThrottleSchedule":
        """Build from a governed frequency trace (e.g. the example run of
        :func:`repro.power.dvfs.overclock_with_thermal_feedback`)."""
        if nominal_hz <= 0:
            raise ValueError("nominal frequency must be positive")
        return cls(
            times_s=tuple(times_s),
            multipliers=tuple(nominal_hz / f for f in frequencies_hz),
        )


def frequency_for_chip_budget(
    chip: ChipSpec,
    per_chip_budget_w: float,
    ladder_hz: Sequence[float] = DEFAULT_LADDER_HZ,
    utilization: float = 1.0,
) -> float:
    """Highest ladder frequency whose worst-case draw fits the budget
    (ladder floor if none does)."""
    for frequency in reversed(ladder_hz):
        if chip_power_w(chip, frequency, utilization) <= per_chip_budget_w:
            return frequency
    return ladder_hz[0]


def service_model_at_budget(
    service: ServiceModel,
    per_chip_budget_w: float,
    chip: Optional[ChipSpec] = None,
    ladder_hz: Sequence[float] = DEFAULT_LADDER_HZ,
    reference_hz: Optional[float] = None,
) -> Tuple[ServiceModel, float]:
    """Slow a calibrated service model down to fit a power budget.

    Returns ``(scaled_model, frequency_hz)``.  The service model was
    calibrated at the deployed frequency (``reference_hz``, default the
    chip's rated clock); a budget that only admits a lower ladder state
    stretches the mean service time by the frequency ratio.  Jitter and
    cross-host penalty are shape parameters and carry over unchanged.
    """
    chip = chip or mtia2i_spec()
    reference = reference_hz or chip.frequency_hz
    frequency = frequency_for_chip_budget(chip, per_chip_budget_w, ladder_hz)
    scaled = dataclasses.replace(
        service, mean_service_s=service.mean_service_s * reference / frequency
    )
    return scaled, frequency


@dataclasses.dataclass(frozen=True)
class PowerLimitedPoint:
    """One budget's outcome in the capacity sweep."""

    server_budget_w: float
    per_chip_budget_w: float
    frequency_hz: float
    max_qps: float
    p99_latency_s: float  # at the max sustainable QPS

    @property
    def frequency_ghz(self) -> float:
        return self.frequency_hz / GHZ


@dataclasses.dataclass(frozen=True)
class PowerLimitedSweep:
    """QPS-per-server versus rack power budget at a P99 SLO."""

    points: Tuple[PowerLimitedPoint, ...]
    p99_slo_s: float
    replicas: int

    @property
    def knee_budget_w(self) -> float:
        """Smallest budget admitting the full frequency ladder — watts
        past this buy no throughput."""
        top = max(p.frequency_hz for p in self.points)
        for point in self.points:
            if point.frequency_hz >= top:
                return point.server_budget_w
        return self.points[-1].server_budget_w

    def table(self) -> str:
        lines = [
            f"{'budget W':>9}  {'chip W':>7}  {'GHz':>5}  {'max QPS':>8}  {'p99 ms':>7}"
        ]
        for p in self.points:
            lines.append(
                f"{p.server_budget_w:9.0f}  {p.per_chip_budget_w:7.1f}  "
                f"{p.frequency_ghz:5.2f}  {p.max_qps:8.1f}  "
                f"{p.p99_latency_s * 1e3:7.1f}"
            )
        return "\n".join(lines)

    def scalars(self) -> Dict[str, float]:
        return {
            "knee_budget_w": self.knee_budget_w,
            "min_budget_qps": self.points[0].max_qps,
            "max_budget_qps": self.points[-1].max_qps,
        }


# ``max_qps_at_slo``/``_step_fractions`` moved to
# ``repro.cluster.capacity`` (the codesign DSE scores candidates with
# the same scan); imported above and re-exported via ``__all__``.
_max_qps_at_slo = max_qps_at_slo  # pre-rename alias


def _guided_max_qps_at_slo(
    service: ServiceModel,
    replicas: int,
    p99_slo_s: float,
    duration_s: float,
    seed: int,
    predicted_fraction: float,
    qps_step_fraction: float = 0.05,
) -> Tuple[float, float, int, int]:
    """Surrogate-guided :func:`max_qps_at_slo` over the same probe
    ladder.

    The surrogate's prediction (a fraction of the fluid ceiling) picks
    the starting rung;
    :func:`repro.surrogate.verify.verified_min_feasible` walks the
    ladder with exact seeded runs until the feasibility boundary holds
    a two-sided certificate.  When SLO feasibility is monotone in
    offered load — the assumption the step-down scan already encodes —
    the answer matches :func:`max_qps_at_slo` bit for bit; only the
    probe count changes.  (Each rung draws its own arrival stream, so
    a seeded boundary blip *can* make feasibility locally non-monotone;
    there the scan takes the highest feasible rung and this search
    returns a certified boundary, which may be one blip lower.  Both
    answers are exact-evaluated either way.)  Returns
    ``(max_qps, p99, exact_runs, scan_runs)`` where ``scan_runs`` is
    what the step-down scan would have spent.
    """
    from repro.surrogate.verify import verified_min_feasible

    fractions = _step_fractions(qps_step_fraction)
    ceiling = replicas * service.capacity_per_replica()
    config = ClusterConfig(replicas=replicas, num_hosts=replicas, seed=seed)
    probed: Dict[int, Tuple[float, float, bool]] = {}

    def _feasible(index: int) -> bool:
        qps = ceiling * fractions[index]
        requests = poisson_stream(qps, duration_s, seed=seed)
        report = run_cluster(config, service, requests)
        ok = report.meets_slo(p99_slo_s)
        probed[index] = (qps, report.p99_latency_s, ok)
        return ok

    # Index 0 is the highest rung; feasibility is monotone non-
    # decreasing in index (less load → easier SLO).
    guess = int(
        np.argmin(np.abs(np.asarray(fractions) - predicted_fraction))
    )
    answer, exact_runs = verified_min_feasible(
        guess, 0, len(fractions) - 1, _feasible
    )
    if answer is None:
        return 0.0, float("inf"), exact_runs, len(fractions)
    qps, p99, _ = probed[answer]
    return qps, p99, exact_runs, answer + 1


def power_limited_capacity_sweep(
    service: ServiceModel,
    server_budgets_w: Sequence[float],
    replicas: int = 24,
    platform_power_w: float = 800.0,
    chip: Optional[ChipSpec] = None,
    ladder_hz: Sequence[float] = DEFAULT_LADDER_HZ,
    p99_slo_s: float = DEFAULT_P99_SLO_S,
    duration_s: float = 20.0,
    seed: int = 0,
    registry: Optional[MetricsRegistry] = None,
    use_surrogate: bool = False,
    surrogate=None,
) -> PowerLimitedSweep:
    """Sweep rack budget → sustainable QPS at the P99 SLO.

    Each budget funds the platform first; the remainder splits evenly
    across the ``replicas`` chips (one replica per accelerator, as the
    MTIA server runs ranking models), picking the ladder frequency that
    fits and scaling the service model accordingly.  Budgets are
    evaluated under one seed so the sweep is deterministic and monotone:
    more watts → same-or-higher frequency → stochastically faster
    service on the identical arrival stream.

    ``use_surrogate=True`` (with a fitted power
    :class:`~repro.surrogate.model.SurrogateModel`, see
    :func:`repro.surrogate.dataset.train_power_surrogate`) replaces the
    per-budget step-down scan with the verified guided search
    (:func:`_guided_max_qps_at_slo`): identical sweep points whenever
    feasibility is monotone in load (see that function's caveat), with
    fewer cluster simulations, tallied under ``surrogate.power.*``.
    """
    if replicas <= 0:
        raise ValueError("need at least one replica")
    if use_surrogate and surrogate is None:
        raise ValueError("use_surrogate=True needs a fitted surrogate")
    chip = chip or mtia2i_spec()
    obs = active(registry)
    if use_surrogate:
        from repro.surrogate.features import power_feature_row
    points = []
    for budget in sorted(server_budgets_w):
        per_chip = max(0.0, (budget - platform_power_w) / replicas)
        scaled, frequency = service_model_at_budget(
            service, per_chip, chip=chip, ladder_hz=ladder_hz
        )
        if use_surrogate:
            row = power_feature_row(
                scaled.mean_service_s, replicas, p99_slo_s, duration_s,
                scaled.jitter_sigma,
            )
            predicted = float(surrogate.predict(row[None, :])[0])
            max_qps, p99, exact_runs, scan_runs = _guided_max_qps_at_slo(
                scaled, replicas, p99_slo_s, duration_s, seed, predicted
            )
            if obs.enabled:
                obs.counter("surrogate.power.predictions").inc()
                obs.counter("surrogate.power.exact_runs").inc(exact_runs)
                obs.counter("surrogate.power.linear_scan_runs").inc(
                    scan_runs
                )
        else:
            max_qps, p99 = max_qps_at_slo(
                scaled, replicas, p99_slo_s, duration_s, seed
            )
        points.append(
            PowerLimitedPoint(
                server_budget_w=float(budget),
                per_chip_budget_w=per_chip,
                frequency_hz=frequency,
                max_qps=max_qps,
                p99_latency_s=p99,
            )
        )
        if obs.enabled:
            obs.series("power.sweep.max_qps").append(float(budget), max_qps)
    sweep = PowerLimitedSweep(
        points=tuple(points), p99_slo_s=p99_slo_s, replicas=replicas
    )
    if obs.enabled:
        obs.gauge("power.sweep.knee_budget_w").set(sweep.knee_budget_w)
    return sweep


__all__ = [
    "PowerLimitedPoint",
    "PowerLimitedSweep",
    "ThrottleSchedule",
    "frequency_for_chip_budget",
    "max_qps_at_slo",
    "power_limited_capacity_sweep",
    "service_model_at_budget",
]
