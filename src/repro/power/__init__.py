"""Time-domain power, thermal, and DVFS management (paper sections 5.2-5.3).

The reliability tier models the paper's power stories statically: the
overclocking study compares fixed frequencies, the provisioning study
draws telemetry from closed-form distributions.  This package closes the
loop in the time domain —

* :mod:`repro.power.activity` — per-op power traces from executed
  graphs, and the leakage + dynamic operating-point model every study
  steps;
* :mod:`repro.power.thermal` — the lumped RC network (die → spreader →
  heatsink → ambient) whose junction temperature feeds leakage and the
  governor;
* :mod:`repro.power.dvfs` — the ladder governor; re-derives the 5-20%
  overclocking gain *with* thermal feedback;
* :mod:`repro.power.capping` — per-chip water-filling versus
  server-level capping (the load-spike-smoothing claim);
* :mod:`repro.power.provisioning` — the ~40% rack-budget reduction,
  replayed from simulated watt-level telemetry;
* :mod:`repro.power.cluster_link` — throttling pushed down into the
  cluster DES and rack budgets pushed up into capacity planning.
"""

from repro.power.activity import (
    PowerSegment,
    PowerTrace,
    activity_trace,
    chip_power_w,
    dynamic_power_w,
    utilization_profile,
)
from repro.power.capping import (
    CappingComparison,
    PerChipCapController,
    ServerCapController,
    capping_study,
    water_fill,
)
from repro.power.cluster_link import (
    PowerLimitedSweep,
    ThrottleSchedule,
    max_qps_at_slo,
    power_limited_capacity_sweep,
    service_model_at_budget,
)
from repro.power.dvfs import (
    DEFAULT_LADDER_HZ,
    DvfsConfig,
    DvfsGovernor,
    ThroughputCurve,
    calibrate_throughput,
    overclock_with_thermal_feedback,
)
from repro.power.provisioning import (
    TimeDomainProvisioning,
    time_domain_provisioning,
)
from repro.power.thermal import (
    THROTTLE_LIMIT_C,
    THROTTLE_TARGET_C,
    RcStage,
    ThermalNetwork,
    gpu_thermal,
    mtia2i_thermal,
)

__all__ = [
    "DEFAULT_LADDER_HZ",
    "THROTTLE_LIMIT_C",
    "THROTTLE_TARGET_C",
    "CappingComparison",
    "DvfsConfig",
    "DvfsGovernor",
    "PerChipCapController",
    "PowerLimitedSweep",
    "PowerSegment",
    "PowerTrace",
    "RcStage",
    "ServerCapController",
    "ThermalNetwork",
    "ThrottleSchedule",
    "ThroughputCurve",
    "TimeDomainProvisioning",
    "activity_trace",
    "calibrate_throughput",
    "capping_study",
    "chip_power_w",
    "dynamic_power_w",
    "gpu_thermal",
    "max_qps_at_slo",
    "mtia2i_thermal",
    "overclock_with_thermal_feedback",
    "power_limited_capacity_sweep",
    "service_model_at_budget",
    "time_domain_provisioning",
    "utilization_profile",
    "water_fill",
]
