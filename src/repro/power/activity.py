"""Per-op power traces and the chip-level power model.

Two jobs, both derived from numbers the rest of the stack already
produces rather than invented:

1. :func:`activity_trace` turns an :class:`~repro.perf.executor.ExecutionReport`
   into a time-domain power trace: one segment per op, splitting the
   op's dynamic power across compute, SRAM, and LPDDR activity by the
   executor's own component-time breakdown, plus the chip's
   (temperature-dependent) leakage floor.  The trace integrates back to
   exactly ``report.energy_j`` when evaluated at the same junction
   temperature the executor used — the invariant the property tests pin.

2. :func:`chip_power_w` is the closed-form operating-point model the
   time-domain studies (DVFS, capping, provisioning) step: dynamic power
   scales as utilization x f x V(f)^2 around the spec's calibrated
   operating point, leakage follows :meth:`ChipSpec.leakage_power_w`.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from repro.arch.specs import ChipSpec
from repro.perf.executor import ExecutionReport, OpProfile

# Supply voltage scales sub-linearly with frequency around the operating
# point: dV/V ~ VOLTAGE_SLOPE * df/f (the shallow end of the shmoo the
# overclocking study exploited — ample margin means little extra voltage
# is needed to reach 1.35 GHz).
VOLTAGE_SLOPE = 0.6


@dataclasses.dataclass(frozen=True)
class PowerSegment:
    """Power draw over one op's execution window."""

    op_name: str
    start_s: float
    duration_s: float
    compute_w: float
    sram_w: float
    lpddr_w: float
    leakage_w: float

    @property
    def total_w(self) -> float:
        """Total draw over the segment."""
        return self.compute_w + self.sram_w + self.lpddr_w + self.leakage_w

    @property
    def energy_j(self) -> float:
        """Energy of the segment."""
        return self.total_w * self.duration_s


@dataclasses.dataclass(frozen=True)
class PowerTrace:
    """A chip's power draw over one batch, segment by segment."""

    chip_name: str
    segments: Tuple[PowerSegment, ...]

    @property
    def duration_s(self) -> float:
        return sum(s.duration_s for s in self.segments)

    @property
    def energy_j(self) -> float:
        """Integral of the trace."""
        return sum(s.energy_j for s in self.segments)

    @property
    def avg_power_w(self) -> float:
        duration = self.duration_s
        return self.energy_j / duration if duration else 0.0

    @property
    def peak_power_w(self) -> float:
        return max((s.total_w for s in self.segments), default=0.0)

    def component_energy_j(self) -> dict:
        """Energy split by activity component."""
        return {
            "compute": sum(s.compute_w * s.duration_s for s in self.segments),
            "sram": sum(s.sram_w * s.duration_s for s in self.segments),
            "lpddr": sum(s.lpddr_w * s.duration_s for s in self.segments),
            "leakage": sum(s.leakage_w * s.duration_s for s in self.segments),
        }

    def resample(self, dt_s: float) -> Tuple[np.ndarray, np.ndarray]:
        """The trace on a uniform grid (for thermal stepping).

        Returns ``(times, powers)`` where ``powers[i]`` is the
        energy-preserving mean power over ``[times[i], times[i] + dt_s)``.
        """
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        duration = self.duration_s
        if duration == 0:
            return np.zeros(0), np.zeros(0)
        num_bins = int(np.ceil(duration / dt_s))
        energy = np.zeros(num_bins)
        t = 0.0
        for segment in self.segments:
            start, end = t, t + segment.duration_s
            t = end
            first, last = int(start // dt_s), int(np.ceil(end / dt_s))
            for b in range(first, min(last, num_bins)):
                lo, hi = b * dt_s, (b + 1) * dt_s
                overlap = max(0.0, min(end, hi) - max(start, lo))
                energy[b] += segment.total_w * overlap
        times = np.arange(num_bins) * dt_s
        return times, energy / dt_s


def activity_trace(
    report: ExecutionReport,
    chip: ChipSpec,
    temperature_c: Optional[float] = None,
) -> PowerTrace:
    """Per-op power trace of one executed batch.

    The executor's energy model charges each op ``leakage + dynamic *
    busy`` where ``busy`` is the op's compute occupancy; the trace keeps
    that total per op (so the integral reproduces ``report.energy_j``)
    and attributes the dynamic part to compute/SRAM/LPDDR in proportion
    to the executor's component times — the activity split the thermal
    and capping models consume.
    """
    leakage = chip.leakage_power_w(temperature_c)
    dynamic_full = chip.typical_watts * (1.0 - chip.idle_power_fraction)
    segments = []
    t = 0.0
    for profile in report.op_profiles:
        busy = profile.compute_s / profile.time_s if profile.time_s else 0.0
        dynamic = dynamic_full * min(1.0, busy)
        compute_w, sram_w, lpddr_w = _split_dynamic(profile, dynamic)
        segments.append(
            PowerSegment(
                op_name=profile.op_name,
                start_s=t,
                duration_s=profile.time_s,
                compute_w=compute_w,
                sram_w=sram_w,
                lpddr_w=lpddr_w,
                leakage_w=leakage,
            )
        )
        t += profile.time_s
    return PowerTrace(chip_name=chip.name, segments=tuple(segments))


def _split_dynamic(profile: OpProfile, dynamic_w: float) -> Tuple[float, float, float]:
    """Attribute an op's dynamic power across activity components in
    proportion to the executor's component times."""
    weights = (profile.compute_s, profile.sram_s, profile.dram_s)
    total = sum(weights)
    if total <= 0:
        return dynamic_w, 0.0, 0.0
    return tuple(dynamic_w * w / total for w in weights)  # type: ignore[return-value]


def dynamic_power_w(
    chip: ChipSpec, frequency_hz: float, utilization: float
) -> float:
    """Dynamic power at an operating point.

    Anchored so that full utilization at the spec's rated frequency
    draws the full ``typical_watts`` dynamic share; frequency moves it
    as ``f * V(f)^2`` with the sub-linear voltage slope above.
    """
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive")
    ratio = frequency_hz / chip.frequency_hz
    voltage = 1.0 + VOLTAGE_SLOPE * (ratio - 1.0)
    full = chip.typical_watts * (1.0 - chip.idle_power_fraction)
    return max(0.0, utilization) * full * ratio * voltage * voltage


def chip_power_w(
    chip: ChipSpec,
    frequency_hz: float,
    utilization: float,
    temperature_c: Optional[float] = None,
) -> float:
    """Total chip draw: temperature-dependent leakage plus dynamic."""
    return chip.leakage_power_w(temperature_c) + dynamic_power_w(
        chip, frequency_hz, utilization
    )


def utilization_profile(
    duration_s: float,
    dt_s: float,
    mean: float = 0.75,
    swing: float = 0.2,
    noise: float = 0.06,
    rng: Optional[np.random.Generator] = None,
    seed: int = 0,
) -> np.ndarray:
    """A diurnal-plus-noise utilization trace on a uniform grid.

    One sinusoidal 'day' is compressed into ``duration_s``; every
    time-domain power study (DVFS, capping, provisioning) draws its load
    shape from here so their inputs agree.
    """
    if duration_s <= 0 or dt_s <= 0:
        raise ValueError("duration and dt must be positive")
    if rng is None:
        rng = np.random.default_rng(seed)
    steps = int(np.ceil(duration_s / dt_s))
    t = np.arange(steps) * dt_s
    base = mean * (1.0 + swing * np.sin(2.0 * np.pi * t / duration_s))
    jitter = rng.lognormal(0.0, noise, size=steps)
    return np.clip(base * jitter, 0.02, 1.0)


def trace_scalars(trace: PowerTrace) -> dict:
    """Flat scalars for the benchmark harness."""
    return {
        "avg_power_w": trace.avg_power_w,
        "peak_power_w": trace.peak_power_w,
        "energy_j": trace.energy_j,
    }


__all__ = [
    "PowerSegment",
    "PowerTrace",
    "VOLTAGE_SLOPE",
    "activity_trace",
    "chip_power_w",
    "dynamic_power_w",
    "trace_scalars",
    "utilization_profile",
]
