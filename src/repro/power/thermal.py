"""Lumped RC thermal network: die → spreader → heatsink → ambient.

The standard compact model for package thermals: a chain of thermal
capacitances (die + package, heat spreader, heatsink) joined by thermal
resistances, with the last stage tied to ambient.  Power is injected at
the die node; the junction temperature that feeds back into leakage and
the DVFS governor is the die node's temperature.

Explicit-Euler stepping with automatic sub-stepping at the stability
limit; the closed-form steady state (every resistance carries the full
injected power, so ``T_i = ambient + P * sum(R_j, j >= i)``) doubles as
the validation oracle the hypothesis property tests converge against.

Constants for the MTIA 2i package reflect a dense 24-chip Grand Teton
chassis: shared airflow pre-heated by upstream modules (hot ambient),
modest per-chip sink mass.  They are shape-calibrated, not measured —
what matters downstream is the coupled dynamics (heating timescales of
seconds-to-minutes, leakage feedback, throttle crossings), not absolute
degrees, per the AutoDNNchip-style substitution argument in DESIGN.md.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple

import numpy as np

# Junction limits for the governor (TSMC 5 nm class silicon).
THROTTLE_LIMIT_C = 105.0
THROTTLE_TARGET_C = 98.0


@dataclasses.dataclass(frozen=True)
class RcStage:
    """One node of the chain: its mass and the resistance downstream."""

    name: str
    heat_capacity_j_per_c: float
    # Resistance from this node to the next (or to ambient for the last).
    resistance_c_per_w: float

    def __post_init__(self) -> None:
        if self.heat_capacity_j_per_c <= 0:
            raise ValueError(f"{self.name}: heat capacity must be positive")
        if self.resistance_c_per_w <= 0:
            raise ValueError(f"{self.name}: resistance must be positive")

    @property
    def time_constant_s(self) -> float:
        """The stage's own RC time constant."""
        return self.heat_capacity_j_per_c * self.resistance_c_per_w


class ThermalNetwork:
    """A power-in, junction-temperature-out RC chain."""

    def __init__(self, stages: Sequence[RcStage], ambient_c: float = 40.0) -> None:
        if not stages:
            raise ValueError("need at least one stage")
        self.stages = tuple(stages)
        self.ambient_c = float(ambient_c)
        self._capacities = np.array(
            [s.heat_capacity_j_per_c for s in self.stages]
        )
        self._resistances = np.array(
            [s.resistance_c_per_w for s in self.stages]
        )

    @property
    def total_resistance_c_per_w(self) -> float:
        """Junction-to-ambient thermal resistance."""
        return float(self._resistances.sum())

    def steady_state(self, power_w: float) -> np.ndarray:
        """Closed-form settled temperatures under constant power.

        In steady state every resistance in the chain carries the full
        injected power, so each node sits at ambient plus power times
        the resistance downstream of it.
        """
        if power_w < 0:
            raise ValueError("power must be non-negative")
        downstream = np.cumsum(self._resistances[::-1])[::-1]
        return self.ambient_c + power_w * downstream

    def steady_junction_c(self, power_w: float) -> float:
        """Closed-form junction (die) temperature under constant power."""
        return float(self.steady_state(power_w)[0])

    def initial_state(self) -> np.ndarray:
        """All nodes at ambient (a cold start)."""
        return np.full(len(self.stages), self.ambient_c)

    def max_stable_dt(self) -> float:
        """Explicit-Euler stability bound with a 2x safety factor."""
        conductance = 1.0 / self._resistances
        node_g = conductance.copy()
        node_g[1:] += conductance[:-1]
        return float(0.5 * np.min(self._capacities / node_g))

    def step(
        self, temps_c: np.ndarray, power_w: float, dt_s: float
    ) -> np.ndarray:
        """Advance the network ``dt_s`` under constant injected power.

        Sub-steps internally at the stability limit, so any caller dt is
        safe; returns the new temperature vector (input untouched).
        """
        if dt_s < 0:
            raise ValueError("dt must be non-negative")
        temps = np.asarray(temps_c, dtype=float).copy()
        if temps.shape != self._capacities.shape:
            raise ValueError("temperature vector does not match the network")
        if dt_s == 0:
            return temps
        stable = self.max_stable_dt()
        substeps = max(1, int(np.ceil(dt_s / stable)))
        h = dt_s / substeps
        for _ in range(substeps):
            downstream = np.append(temps[1:], self.ambient_c)
            outflow = (temps - downstream) / self._resistances
            inflow = np.concatenate(([power_w], outflow[:-1]))
            temps = temps + h * (inflow - outflow) / self._capacities
        return temps

    def settle(
        self,
        power_w: float,
        temps_c: Optional[np.ndarray] = None,
        tolerance_c: float = 0.01,
        max_time_s: Optional[float] = None,
    ) -> Tuple[np.ndarray, float]:
        """Step until within ``tolerance_c`` of steady state.

        Returns ``(temps, simulated_seconds)``.  Bounded by
        ``max_time_s`` (default: 40x the slowest stage time constant) so
        a pathological network cannot spin forever.
        """
        temps = self.initial_state() if temps_c is None else np.asarray(
            temps_c, dtype=float
        ).copy()
        target = self.steady_state(power_w)
        slowest = max(s.time_constant_s for s in self.stages)
        horizon = max_time_s if max_time_s is not None else 40.0 * slowest
        dt = max(self.max_stable_dt(), slowest / 50.0)
        t = 0.0
        while t < horizon and float(np.max(np.abs(temps - target))) > tolerance_c:
            temps = self.step(temps, power_w, dt)
            t += dt
        return temps, t


def mtia2i_thermal(ambient_c: float = 45.0) -> ThermalNetwork:
    """The per-chip MTIA 2i package stack in the dense 24-chip server.

    ~0.75 °C/W junction-to-ambient with a pre-heated chassis ambient
    (24 modules share the airflow): the 65 W typical draw settles in the
    low 90s °C, and the overclocked worst case brushes the throttle
    ceiling — exactly the regime the DVFS study needs to exercise.
    """
    return ThermalNetwork(
        stages=(
            RcStage("die", heat_capacity_j_per_c=18.0, resistance_c_per_w=0.12),
            RcStage("spreader", heat_capacity_j_per_c=120.0, resistance_c_per_w=0.18),
            RcStage("heatsink", heat_capacity_j_per_c=420.0, resistance_c_per_w=0.45),
        ),
        ambient_c=ambient_c,
    )


def gpu_thermal(ambient_c: float = 35.0) -> ThermalNetwork:
    """The GPU baseline: far more sink mass, far lower resistance."""
    return ThermalNetwork(
        stages=(
            RcStage("die", heat_capacity_j_per_c=60.0, resistance_c_per_w=0.030),
            RcStage("spreader", heat_capacity_j_per_c=400.0, resistance_c_per_w=0.025),
            RcStage("heatsink", heat_capacity_j_per_c=2500.0, resistance_c_per_w=0.045),
        ),
        ambient_c=ambient_c,
    )


__all__ = [
    "RcStage",
    "THROTTLE_LIMIT_C",
    "THROTTLE_TARGET_C",
    "ThermalNetwork",
    "gpu_thermal",
    "mtia2i_thermal",
]
