"""Time-domain replay of the rack-budget re-derivation (section 5.3).

``repro.reliability.power`` models the provisioning lifecycle with
static draws from closed-form distributions.  This module replays it in
the time domain: a fleet of 24-chip servers runs the shared diurnal
utilization tape through the leakage-aware power model for a simulated
production window, and the two P90 prongs the paper describes are
measured off that telemetry stream —

1. an experiment budget: every accelerator held at the fleet-wide P90 of
   per-chip draw during its own high-load windows;
2. a fleet budget: the P90 over servers of each server's power while it
   is effectively fully utilized.

The revised budget is the higher of the two, exactly the rule the paper
states, and against the stress-test initial budget it lands the ~40%
reduction — now derived from the same watt-level model the DVFS and
capping studies step, not from an assumed telemetry distribution.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.arch.server import ServerSpec, mtia2i_server
from repro.obs.metrics import MetricsRegistry, active
from repro.power.activity import chip_power_w, utilization_profile
from repro.reliability.power import PAPER_REDUCTION_FRACTION, stress_test_budget


@dataclasses.dataclass(frozen=True)
class TimeDomainProvisioning:
    """Before/after rack budget, measured from simulated telemetry."""

    initial_budget_w: float
    experiment_budget_w: float
    fleet_budget_w: float
    mean_server_power_w: float
    peak_server_power_w: float

    @property
    def revised_budget_w(self) -> float:
        """The paper's rule: the higher of the two P90 prongs."""
        return max(self.experiment_budget_w, self.fleet_budget_w)

    @property
    def reduction_fraction(self) -> float:
        """Provisioned power the revision frees (paper: ~0.40)."""
        if self.initial_budget_w <= 0:
            return 0.0
        return 1.0 - self.revised_budget_w / self.initial_budget_w

    @property
    def matches_paper(self) -> bool:
        return abs(self.reduction_fraction - PAPER_REDUCTION_FRACTION) < 0.10

    def scalars(self) -> Dict[str, float]:
        return {
            "initial_budget_w": self.initial_budget_w,
            "revised_budget_w": self.revised_budget_w,
            "reduction_fraction": self.reduction_fraction,
            "mean_server_power_w": self.mean_server_power_w,
            "peak_server_power_w": self.peak_server_power_w,
        }


def time_domain_provisioning(
    server: Optional[ServerSpec] = None,
    num_servers: int = 40,
    duration_s: float = 600.0,
    dt_s: float = 2.0,
    mean_utilization: float = 0.55,
    optimized_power_factor: float = 0.88,
    high_load_quantile: float = 0.75,
    seed: int = 0,
    registry: Optional[MetricsRegistry] = None,
) -> TimeDomainProvisioning:
    """Run the fleet and re-derive the budget from its telemetry.

    Each chip runs the diurnal utilization profile (independent noise,
    shared shape) through :func:`chip_power_w` at the deployed
    frequency; ``optimized_power_factor`` captures that optimized
    production models draw less than the out-of-the-box stress-test
    models at equal load.  High-load windows are the ticks above
    ``high_load_quantile`` of each chip's own utilization — the paper's
    "peak throughput the largest models see in production".
    """
    if num_servers <= 0:
        raise ValueError("need at least one server")
    server = server or mtia2i_server()
    chip = server.chip
    obs = active(registry)
    rng = np.random.default_rng(seed)
    num_chips = server.accelerators_per_server
    steps = int(np.ceil(duration_s / dt_s))

    initial = stress_test_budget(server)

    # The stress budget anchors at TDP; production telemetry must sit on
    # the same activity scale for the before/after to be meaningful.
    # ``chip_power_w`` anchors full activity at the *typical* dynamic
    # share, so map utilization up such that utilization 1.0 reaches TDP.
    leak = chip.leakage_power_w(None)
    dyn_typical = chip.typical_watts * (1.0 - chip.idle_power_fraction)
    peak_factor = (chip.tdp_watts - leak) / dyn_typical

    high_load_chip_draws = []
    server_high_load_power = []
    mean_power_sum = 0.0
    peak_power = 0.0
    for server_index in range(num_servers):
        tape = np.empty((num_chips, steps))
        for i in range(num_chips):
            tape[i] = utilization_profile(
                duration_s, dt_s, mean=mean_utilization, rng=rng
            )
        draw = np.empty_like(tape)
        for i in range(num_chips):
            for t in range(steps):
                draw[i, t] = chip_power_w(
                    chip, chip.frequency_hz, float(tape[i, t]) * peak_factor
                )
        draw *= optimized_power_factor
        # Prong 1 telemetry: each chip's draw during its own high-load
        # windows.
        for i in range(num_chips):
            threshold = np.quantile(tape[i], high_load_quantile)
            high_load_chip_draws.append(draw[i, tape[i] >= threshold])
        # Prong 2 telemetry: server power while the server as a whole is
        # running hot (total utilization above its own high quantile).
        server_util = tape.mean(axis=0)
        server_power = draw.sum(axis=0) + server.platform_power_watts
        hot = server_util >= np.quantile(server_util, high_load_quantile)
        server_high_load_power.append(float(np.percentile(server_power[hot], 90)))
        mean_power_sum += float(server_power.mean())
        peak_power = max(peak_power, float(server_power.max()))
        if obs.enabled and server_index == 0:
            for t in range(steps):
                obs.series("power.provisioning.server_w").append(
                    t * dt_s, float(server_power[t])
                )

    per_chip_p90 = float(np.percentile(np.concatenate(high_load_chip_draws), 90))
    experiment = server.platform_power_watts + num_chips * per_chip_p90
    fleet = float(np.percentile(server_high_load_power, 90))

    outcome = TimeDomainProvisioning(
        initial_budget_w=initial,
        experiment_budget_w=experiment,
        fleet_budget_w=fleet,
        mean_server_power_w=mean_power_sum / num_servers,
        peak_server_power_w=peak_power,
    )
    if obs.enabled:
        obs.gauge("power.provisioning.reduction_fraction").set(
            outcome.reduction_fraction
        )
        obs.gauge("power.provisioning.revised_budget_w").set(
            outcome.revised_budget_w
        )
    return outcome


__all__ = [
    "TimeDomainProvisioning",
    "time_domain_provisioning",
]
