"""Server-level effects: host-DRAM contention and production utilization.

Two fleet-scale phenomena the paper reports are modelled here:

* **Host DRAM contention** (section 3.4): packing 24 accelerators per
  server makes host DRAM bandwidth the bottleneck for low-complexity
  models running on all accelerators at once.  Every batch's input
  tensors touch host DRAM multiple times (NIC receive, preprocessing,
  DMA read); Meta's optimizations (eliminating copies, offloading the
  FP32->FP16 cast) cut the amplification roughly in half.

* **Production utilization** (section 5.4): serving must reserve buffer
  capacity for peak demand, and capacity is allocated in whole-device
  quanta.  Smaller devices allocate finer, so they idle less — the
  mechanism behind the extra 5-90% Perf/TCO MTIA gained in production
  versus offline replay.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

import numpy as np

from repro.arch.server import ServerSpec

# Host-DRAM touches per payload byte after Meta's copy-elimination work
# (receive + single staging pass + DMA read).
HOST_DRAM_AMPLIFICATION_OPTIMIZED = 2.0
# Before optimization: extra memcpys and an FP32 input representation.
HOST_DRAM_AMPLIFICATION_NAIVE = 5.0


@dataclasses.dataclass(frozen=True)
class HostContentionResult:
    """Outcome of the host-DRAM contention check for one socket."""

    demand_bytes_per_s: float
    capacity_bytes_per_s: float
    throughput_scale: float  # <= 1; multiply per-chip throughput by this

    @property
    def host_bound(self) -> bool:
        """Whether host DRAM limits the accelerators."""
        return self.throughput_scale < 1.0


def host_dram_contention(
    host_bytes_per_batch: float,
    batches_per_s_per_chip: float,
    server: ServerSpec,
    amplification: float = HOST_DRAM_AMPLIFICATION_OPTIMIZED,
    host_baseline_fraction: float = 0.2,
) -> HostContentionResult:
    """Scale factor when every accelerator on a socket runs this model.

    ``host_baseline_fraction`` reserves bandwidth for the OS, the serving
    tier, and feature preprocessing.
    """
    if host_bytes_per_batch < 0 or batches_per_s_per_chip < 0:
        raise ValueError("inputs must be non-negative")
    chips = server.accelerators_per_socket
    capacity = server.sockets[0].dram_bandwidth_bytes_per_s * (1 - host_baseline_fraction)
    demand = chips * batches_per_s_per_chip * host_bytes_per_batch * amplification
    scale = 1.0 if demand <= capacity else capacity / demand
    return HostContentionResult(
        demand_bytes_per_s=demand,
        capacity_bytes_per_s=capacity,
        throughput_scale=scale,
    )


@dataclasses.dataclass(frozen=True)
class UtilizationResult:
    """Production utilization derived from peak-provisioned allocation."""

    mean_utilization: float
    devices_provisioned: int
    peak_load_fraction: float


def production_utilization(
    device_throughput: float,
    mean_load: float,
    peak_to_mean: float = 2.2,
    rng: Optional[np.random.Generator] = None,
    num_intervals: int = 2000,
    seed: int = 42,
) -> UtilizationResult:
    """Average device utilization when capacity is provisioned for peak.

    A service with diurnal load (mean ``mean_load`` samples/s, peak
    ``peak_to_mean`` times that) must provision
    ``ceil(peak / device_throughput)`` devices.  Average utilization is
    mean load over provisioned capacity — so the *larger* the device
    quantum relative to the load, the worse the rounding and buffering
    waste.  This is section 5.4's 'smaller chips' argument made
    quantitative.

    Randomness is reproducible: pass either a ``seed`` or an explicit
    ``rng`` (which wins when both are given); the default matches the
    historical behaviour (``default_rng(42)``).
    """
    if device_throughput <= 0 or mean_load <= 0 or peak_to_mean < 1:
        raise ValueError("invalid utilization inputs")
    if rng is None:
        rng = np.random.default_rng(seed)
    # Diurnal load curve with noise.
    t = np.linspace(0, 2 * np.pi, num_intervals)
    swing = (peak_to_mean - 1.0) / (peak_to_mean + 1.0)
    load = mean_load * (1 + swing * np.sin(t)) / (1 - swing * 0)
    load = load * rng.lognormal(0, 0.08, size=num_intervals)
    peak = np.quantile(load, 0.999)
    devices = max(1, math.ceil(peak / device_throughput))
    utilization = float(np.mean(load) / (devices * device_throughput))
    return UtilizationResult(
        mean_utilization=min(1.0, utilization),
        devices_provisioned=devices,
        peak_load_fraction=float(peak / (devices * device_throughput)),
    )


def production_gain(
    mtia_chip_throughput: float,
    gpu_chip_throughput: float,
    mean_load: float,
    peak_to_mean: float = 2.2,
    seed: int = 42,
) -> float:
    """Extra MTIA-vs-GPU efficiency in production versus replay.

    Both platforms serve the same load; the one with the smaller device
    quantum wastes less provisioned capacity.  Returns the ratio of mean
    utilizations (MTIA / GPU) — the paper observed 1.05x to 1.9x.  Both
    platforms see the same ``seed``-derived load curve.
    """
    mtia = production_utilization(mtia_chip_throughput, mean_load, peak_to_mean, seed=seed)
    gpu = production_utilization(gpu_chip_throughput, mean_load, peak_to_mean, seed=seed)
    if gpu.mean_utilization == 0:
        return 1.0
    return mtia.mean_utilization / gpu.mean_utilization
