"""Fleet-level models: server contention, allocation, A/B testing."""

from repro.fleet.abtest import (
    AbTestResult,
    SyntheticCtrModel,
    normalized_entropy,
    run_ab_test,
)
from repro.fleet.allocator import (
    Allocation,
    AllocationError,
    FragmentationStats,
    NumaAllocator,
)
from repro.fleet.colocation import (
    ColocationRequest,
    ColocationResult,
    PlacedModel,
    colocate,
)
from repro.fleet.server_sim import (
    HOST_DRAM_AMPLIFICATION_NAIVE,
    HOST_DRAM_AMPLIFICATION_OPTIMIZED,
    HostContentionResult,
    UtilizationResult,
    host_dram_contention,
    production_gain,
    production_utilization,
)

__all__ = [
    "AbTestResult",
    "Allocation",
    "AllocationError",
    "ColocationRequest",
    "ColocationResult",
    "FragmentationStats",
    "PlacedModel",
    "colocate",
    "HOST_DRAM_AMPLIFICATION_NAIVE",
    "HOST_DRAM_AMPLIFICATION_OPTIMIZED",
    "HostContentionResult",
    "NumaAllocator",
    "SyntheticCtrModel",
    "UtilizationResult",
    "host_dram_contention",
    "normalized_entropy",
    "production_gain",
    "production_utilization",
    "run_ab_test",
]
