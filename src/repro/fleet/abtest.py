"""Large-scale A/B testing harness (paper section 5.6).

The paper validates MTIA 2i against GPUs by serving the *same* trained
model on both backends, splitting live traffic, and comparing business
metrics, system metrics (normalized entropy, the standard CTR-prediction
accuracy metric from He et al. 2014), and low-level metrics (numerical
accuracy, prediction-value distributions).

This harness reproduces that methodology on a synthetic CTR model: a
ground-truth logistic model generates labels; each backend computes
predictions through its own numerics (e.g. exact FP32 versus FP16
rounding versus dynamic-INT8 FC layers); traffic is split by request
hash; and the same holistic metric set is compared.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Tuple

import numpy as np

Backend = Callable[[np.ndarray], np.ndarray]  # features -> predicted CTR


def normalized_entropy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Normalized entropy: average log loss over the entropy of the base
    CTR.  Lower is better; 1.0 means no better than predicting the
    average rate."""
    predictions = np.clip(np.asarray(predictions, dtype=np.float64), 1e-12, 1 - 1e-12)
    labels = np.asarray(labels, dtype=np.float64)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must align")
    if len(labels) == 0:
        raise ValueError("need at least one sample")
    logloss = -np.mean(labels * np.log(predictions) + (1 - labels) * np.log(1 - predictions))
    base = float(np.mean(labels))
    base = min(max(base, 1e-12), 1 - 1e-12)
    base_entropy = -(base * np.log(base) + (1 - base) * np.log(1 - base))
    return float(logloss / base_entropy)


@dataclasses.dataclass
class SyntheticCtrModel:
    """Ground truth for the A/B harness: a logistic model over dense
    features, with labels drawn from the true probabilities."""

    num_features: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        rng = np.random.default_rng(self.seed)
        self.true_weights = rng.normal(0, 0.3, size=self.num_features)
        self.bias = -2.0  # base CTR around 10%

    def sample(
        self,
        num_requests: int,
        seed: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw (features, labels) for a traffic slice.

        An explicit ``rng`` wins over ``seed`` (the
        :mod:`repro.fleet.server_sim` convention).
        """
        if rng is None:
            rng = np.random.default_rng(seed)
        features = rng.normal(0, 1, size=(num_requests, self.num_features))
        logits = features @ self.true_weights + self.bias
        probs = 1.0 / (1.0 + np.exp(-logits))
        labels = (rng.uniform(size=num_requests) < probs).astype(np.float64)
        return features, labels

    def exact_backend(self) -> Backend:
        """The reference serving path (FP32 end to end)."""

        def predict(features: np.ndarray) -> np.ndarray:
            logits = features @ self.true_weights + self.bias
            return 1.0 / (1.0 + np.exp(-logits))

        return predict

    def backend_with(self, transform: Callable[[np.ndarray], np.ndarray]) -> Backend:
        """A backend whose *logit computation* runs through ``transform``
        (e.g. FP16 rounding, quantized matmul)."""

        def predict(features: np.ndarray) -> np.ndarray:
            logits = transform(features @ self.true_weights + self.bias)
            return 1.0 / (1.0 + np.exp(-np.asarray(logits, dtype=np.float64)))

        return predict


@dataclasses.dataclass(frozen=True)
class AbTestResult:
    """Holistic comparison of two serving backends on split traffic."""

    control_ne: float
    treatment_ne: float
    ne_delta: float  # treatment - control; positive is worse
    prediction_ks: float  # Kolmogorov-Smirnov distance of prediction dists
    mean_prediction_delta: float
    revenue_proxy_ratio: float  # treatment / control expected value

    def quality_parity(self, ne_tolerance: float = 0.01, ks_tolerance: float = 0.02) -> bool:
        """The launch gate: NE within tolerance and matching distributions.

        The NE tolerance must sit above the arm-sampling noise floor for
        the test's traffic volume (~0.007 at 10^5 requests; production
        tests run many millions of requests and use tighter gates).
        """
        return abs(self.ne_delta) <= ne_tolerance and self.prediction_ks <= ks_tolerance


def _ks_distance(a: np.ndarray, b: np.ndarray) -> float:
    grid = np.sort(np.concatenate([a, b]))
    cdf_a = np.searchsorted(np.sort(a), grid, side="right") / len(a)
    cdf_b = np.searchsorted(np.sort(b), grid, side="right") / len(b)
    return float(np.max(np.abs(cdf_a - cdf_b)))


def run_ab_test(
    model: SyntheticCtrModel,
    control: Backend,
    treatment: Backend,
    num_requests: int = 100_000,
    treatment_fraction: float = 0.5,
    seed: int = 11,
    rng: Optional[np.random.Generator] = None,
) -> AbTestResult:
    """Split traffic between backends by request hash and compare.

    Mirrors the paper's setup: both backends are deployed in the same
    'region' and receive statistically identical traffic slices.
    Randomness is reproducible: pass either a ``seed`` or an explicit
    ``rng`` (which wins when both are given).
    """
    if not (0 < treatment_fraction < 1):
        raise ValueError("treatment fraction must be in (0, 1)")
    features, labels = model.sample(num_requests, seed=seed, rng=rng)
    # Deterministic hash split, as production traffic routers do.
    assignment = (np.arange(num_requests) * 2654435761 % 1000) < treatment_fraction * 1000
    control_features, control_labels = features[~assignment], labels[~assignment]
    treat_features, treat_labels = features[assignment], labels[assignment]
    control_preds = control(control_features)
    treat_preds = treatment(treat_features)
    control_ne = normalized_entropy(control_preds, control_labels)
    treat_ne = normalized_entropy(treat_preds, treat_labels)
    # Revenue proxy: expected value of served predictions (ads are priced
    # by predicted CTR, so systematic prediction shifts move revenue).
    revenue_control = float(np.mean(control_preds))
    revenue_treatment = float(np.mean(treat_preds))
    return AbTestResult(
        control_ne=control_ne,
        treatment_ne=treat_ne,
        ne_delta=treat_ne - control_ne,
        prediction_ks=_ks_distance(np.asarray(control_preds), np.asarray(treat_preds)),
        mean_prediction_delta=revenue_treatment - revenue_control,
        revenue_proxy_ratio=revenue_treatment / revenue_control if revenue_control else 1.0,
    )
