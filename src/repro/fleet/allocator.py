"""NUMA-aware accelerator allocation (paper section 3.4).

The container management system allocates accelerators to models at the
granularity of one or more accelerators, along with proportional CPU
cores, host DRAM, and NIC bandwidth.  Scheduling is NUMA-aware: sharded
models land on modules behind the same PCIe switch so peer-to-peer
traffic never crosses sockets.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.arch.server import ServerSpec


class AllocationError(RuntimeError):
    """Raised when a request cannot be placed."""


@dataclasses.dataclass(frozen=True)
class FragmentationStats:
    """How usable the free accelerators are for NUMA-constrained grants.

    Because sharded grants must land on one socket, free capacity that is
    spread thinly across sockets can be unusable for a large request even
    when the total free count looks sufficient.  ``fragmentation`` is
    ``1 - largest_socket_free / free_total`` (0 when one socket holds all
    the free capacity, approaching 1 as it scatters);
    ``unplaceable_free`` counts free accelerators stranded on sockets
    whose free block is smaller than the probe ``request_size``.
    """

    free_total: int
    largest_socket_free: int
    fragmentation: float
    request_size: int
    unplaceable_free: int

    @property
    def placeable(self) -> bool:
        """Whether a ``request_size`` grant can currently be placed."""
        return self.largest_socket_free >= self.request_size


@dataclasses.dataclass(frozen=True)
class Allocation:
    """A model instance's accelerator grant."""

    model_name: str
    socket: int
    accelerator_ids: Tuple[int, ...]
    cores: float
    host_dram_bytes: float
    nic_bytes_per_s: float


class NumaAllocator:
    """Tracks accelerator assignment across a server's sockets."""

    def __init__(self, server: ServerSpec) -> None:
        self.server = server
        per_socket = server.accelerators_per_socket
        self._free: List[List[int]] = [
            list(range(s * per_socket, (s + 1) * per_socket))
            for s in range(len(server.sockets))
        ]
        self.allocations: List[Allocation] = []

    def free_accelerators(self, socket: Optional[int] = None) -> int:
        """Count of unallocated accelerators (optionally per socket)."""
        if socket is None:
            return sum(len(f) for f in self._free)
        return len(self._free[socket])

    def allocate(self, model_name: str, num_accelerators: int) -> Allocation:
        """Grant ``num_accelerators`` on a single socket (NUMA-aware).

        Sharded models must be co-located behind one PCIe switch; a
        request larger than one socket's capacity is rejected, matching
        the production constraint.
        """
        if num_accelerators <= 0:
            raise ValueError("must request at least one accelerator")
        per_socket = self.server.accelerators_per_socket
        if num_accelerators > per_socket:
            raise AllocationError(
                f"{model_name}: {num_accelerators} accelerators exceed one "
                f"socket's {per_socket}; cross-socket sharding is not allowed"
            )
        # Best-fit: pick the socket with the least free capacity that fits,
        # keeping large contiguous capacity available.
        candidates = [
            (len(free), s) for s, free in enumerate(self._free) if len(free) >= num_accelerators
        ]
        if not candidates:
            raise AllocationError(f"{model_name}: no socket has {num_accelerators} free")
        _, socket = min(candidates)
        ids = tuple(self._free[socket][:num_accelerators])
        del self._free[socket][:num_accelerators]
        spec = self.server.sockets[socket]
        share = num_accelerators / per_socket
        allocation = Allocation(
            model_name=model_name,
            socket=socket,
            accelerator_ids=ids,
            cores=spec.cores * share,
            host_dram_bytes=spec.dram_capacity_bytes * share,
            nic_bytes_per_s=spec.nic_bandwidth_bytes_per_s * share,
        )
        self.allocations.append(allocation)
        return allocation

    def release(self, allocation: Allocation) -> None:
        """Return an allocation's accelerators to the free pool."""
        if allocation not in self.allocations:
            raise AllocationError(f"unknown allocation for {allocation.model_name}")
        self.allocations.remove(allocation)
        self._free[allocation.socket].extend(allocation.accelerator_ids)
        self._free[allocation.socket].sort()

    def utilization(self) -> float:
        """Fraction of the server's accelerators currently allocated."""
        total = self.server.accelerators_per_server
        return (total - self.free_accelerators()) / total

    def free_by_socket(self) -> List[int]:
        """Free accelerator count per socket."""
        return [len(free) for free in self._free]

    def fragmentation_stats(self, request_size: int = 1) -> FragmentationStats:
        """Fragmentation accounting for the current free pool.

        ``request_size`` probes placeability for a grant of that many
        accelerators (which must co-locate on one socket).
        """
        if request_size <= 0:
            raise ValueError("probe request size must be positive")
        per_socket = self.free_by_socket()
        free_total = sum(per_socket)
        largest = max(per_socket, default=0)
        fragmentation = 1.0 - largest / free_total if free_total else 0.0
        unplaceable = sum(f for f in per_socket if f < request_size)
        return FragmentationStats(
            free_total=free_total,
            largest_socket_free=largest,
            fragmentation=fragmentation,
            request_size=request_size,
            unplaceable_free=unplaceable,
        )
