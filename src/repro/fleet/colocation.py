"""Multi-model server co-location (paper section 3.4).

A Grand Teton MTIA server runs many model instances at once: the cluster
manager grants each one or more accelerators plus proportional host
resources.  Dense packing amortizes platform cost but makes *host DRAM
bandwidth* the shared bottleneck when low-complexity models occupy all
24 accelerators — the contention this module resolves.

Given per-model execution reports and instance counts, the simulator
allocates accelerators NUMA-aware, sums each socket's host-DRAM demand,
and derates every instance on an oversubscribed socket proportionally
(host DRAM is consumed by NIC receive, staging copies, and DMA reads of
every batch's inputs/outputs).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

from repro.arch.server import ServerSpec
from repro.arch.specs import ChipSpec
from repro.fleet.allocator import NumaAllocator
from repro.fleet.server_sim import HOST_DRAM_AMPLIFICATION_OPTIMIZED
from repro.perf.executor import ExecutionReport


@dataclasses.dataclass(frozen=True)
class ColocationRequest:
    """One model to place on the server."""

    name: str
    report: ExecutionReport  # per-chip execution report
    instances: int  # model instances to run
    accelerators_per_instance: int = 1

    def __post_init__(self) -> None:
        if self.instances <= 0 or self.accelerators_per_instance <= 0:
            raise ValueError("instances and accelerators must be positive")


@dataclasses.dataclass(frozen=True)
class PlacedModel:
    """One placed instance after contention resolution."""

    name: str
    socket: int
    accelerator_ids: Tuple[int, ...]
    standalone_throughput: float  # samples/s without contention
    effective_throughput: float  # after host-DRAM derating

    @property
    def derate(self) -> float:
        """Throughput retained under contention (<= 1)."""
        if self.standalone_throughput == 0:
            return 1.0
        return self.effective_throughput / self.standalone_throughput


@dataclasses.dataclass
class ColocationResult:
    """The server's resolved allocation."""

    placements: List[PlacedModel]
    socket_demand_bytes_per_s: Dict[int, float]
    socket_capacity_bytes_per_s: float

    def socket_derate(self, socket: int) -> float:
        """Throughput scale applied to a socket's instances."""
        demand = self.socket_demand_bytes_per_s.get(socket, 0.0)
        if demand <= self.socket_capacity_bytes_per_s:
            return 1.0
        return self.socket_capacity_bytes_per_s / demand

    def total_effective_throughput(self, name: str) -> float:
        """Aggregate samples/s for one model across its instances."""
        return sum(
            p.effective_throughput for p in self.placements if p.name == name
        )

    @property
    def host_bound_sockets(self) -> List[int]:
        """Sockets where host DRAM limits the accelerators."""
        return [
            socket
            for socket, demand in self.socket_demand_bytes_per_s.items()
            if demand > self.socket_capacity_bytes_per_s
        ]


def _host_bytes_per_batch(report: ExecutionReport, chip: ChipSpec) -> float:
    return sum(p.host_s for p in report.op_profiles) * chip.host_link.bandwidth_bytes_per_s


def colocate(
    server: ServerSpec,
    requests: Sequence[ColocationRequest],
    amplification: float = HOST_DRAM_AMPLIFICATION_OPTIMIZED,
    host_baseline_fraction: float = 0.2,
) -> ColocationResult:
    """Place model instances on the server and resolve host contention.

    Placement is NUMA-aware (each instance's accelerators co-locate on a
    socket); instances on an oversubscribed socket are derated by the
    socket's demand/capacity ratio — the fair outcome of a saturated
    memory controller.
    """
    allocator = NumaAllocator(server)
    placements: List[PlacedModel] = []
    demand: Dict[int, float] = {}
    for request in requests:
        per_batch_bytes = _host_bytes_per_batch(request.report, server.chip)
        batches_per_s = (
            request.report.throughput_samples_per_s / request.report.batch
            if request.report.batch
            else 0.0
        )
        for _ in range(request.instances):
            grant = allocator.allocate(request.name, request.accelerators_per_instance)
            demand[grant.socket] = demand.get(grant.socket, 0.0) + (
                batches_per_s * per_batch_bytes * amplification
            )
            placements.append(
                PlacedModel(
                    name=request.name,
                    socket=grant.socket,
                    accelerator_ids=grant.accelerator_ids,
                    standalone_throughput=request.report.throughput_samples_per_s,
                    effective_throughput=request.report.throughput_samples_per_s,
                )
            )
    capacity = server.sockets[0].dram_bandwidth_bytes_per_s * (1 - host_baseline_fraction)
    result = ColocationResult(
        placements=placements,
        socket_demand_bytes_per_s=demand,
        socket_capacity_bytes_per_s=capacity,
    )
    # Apply per-socket derating.
    resolved = [
        dataclasses.replace(
            placement,
            effective_throughput=placement.standalone_throughput
            * result.socket_derate(placement.socket),
        )
        for placement in placements
    ]
    result.placements = resolved
    return result
