"""A working rANS (range Asymmetric Numeral System) codec.

MTIA 2i supports lossless ANS compression for weights, "achieving up to
a 50% compression ratio" on INT8 data while "FP16 data does not compress
efficiently" (paper section 3.3).  This is a real, byte-oriented static
rANS implementation — encode/decode round-trips exactly — so the paper's
compressibility claims are *measured* on representative weight
distributions rather than assumed.

The implementation is the textbook single-state rANS with 12-bit
quantized frequencies and byte-wise renormalization.
"""

from __future__ import annotations

import dataclasses

import numpy as np

PROB_BITS = 12
PROB_SCALE = 1 << PROB_BITS
STATE_LOWER = 1 << 23
MASK_32 = 0xFFFFFFFF


class AnsError(ValueError):
    """Raised on malformed codec inputs."""


def _quantize_frequencies(counts: np.ndarray) -> np.ndarray:
    """Scale symbol counts to sum exactly to PROB_SCALE, keeping every
    present symbol's frequency >= 1."""
    total = counts.sum()
    if total == 0:
        raise AnsError("cannot build a frequency table from empty input")
    freqs = np.maximum((counts.astype(np.float64) * PROB_SCALE / total).round(), 0)
    freqs = freqs.astype(np.int64)
    freqs[(counts > 0) & (freqs == 0)] = 1
    # Adjust to the exact scale by nudging the largest symbols.
    diff = int(PROB_SCALE - freqs.sum())
    order = np.argsort(-freqs)
    i = 0
    while diff != 0:
        symbol = order[i % len(order)]
        if freqs[symbol] > 0:
            step = 1 if diff > 0 else -1
            if freqs[symbol] + step >= 1 or counts[symbol] == 0:
                freqs[symbol] += step
                diff -= step
        i += 1
        if i > 20 * len(order):  # pragma: no cover - defensive
            raise AnsError("failed to normalize frequency table")
    return freqs


@dataclasses.dataclass
class AnsEncoded:
    """A compressed byte stream plus the model needed to decode it."""

    payload: bytes
    frequencies: np.ndarray  # shape (256,), sums to PROB_SCALE
    num_symbols: int

    @property
    def compressed_bytes(self) -> int:
        """Payload plus the serialized frequency table."""
        return len(self.payload) + 256 * 2  # 16-bit freqs

    def compression_ratio(self) -> float:
        """Saved fraction: 1 - compressed/original."""
        if self.num_symbols == 0:
            return 0.0
        return 1.0 - self.compressed_bytes / self.num_symbols


def ans_encode(data: bytes) -> AnsEncoded:
    """Compress a byte string with static rANS."""
    symbols = np.frombuffer(data, dtype=np.uint8)
    if symbols.size == 0:
        return AnsEncoded(payload=b"", frequencies=np.zeros(256, dtype=np.int64), num_symbols=0)
    counts = np.bincount(symbols, minlength=256).astype(np.int64)
    freqs = _quantize_frequencies(counts)
    starts = np.concatenate([[0], np.cumsum(freqs)[:-1]])
    state = STATE_LOWER
    out = bytearray()
    # Encode in reverse so decoding is forward.
    for symbol in symbols[::-1]:
        freq = int(freqs[symbol])
        start = int(starts[symbol])
        # Renormalize: shrink state until the encode step keeps it valid.
        max_state = ((STATE_LOWER >> PROB_BITS) << 8) * freq
        while state >= max_state:
            out.append(state & 0xFF)
            state >>= 8
        state = ((state // freq) << PROB_BITS) + (state % freq) + start
    # Flush the final 32-bit state.
    for _ in range(4):
        out.append(state & 0xFF)
        state >>= 8
    return AnsEncoded(
        payload=bytes(out[::-1]), frequencies=freqs, num_symbols=int(symbols.size)
    )


def ans_decode(encoded: AnsEncoded) -> bytes:
    """Decompress an rANS stream; exact inverse of :func:`ans_encode`."""
    if encoded.num_symbols == 0:
        return b""
    freqs = encoded.frequencies
    starts = np.concatenate([[0], np.cumsum(freqs)[:-1]])
    # Symbol lookup by cumulative slot.
    slot_to_symbol = np.zeros(PROB_SCALE, dtype=np.uint8)
    for symbol in range(256):
        if freqs[symbol]:
            slot_to_symbol[starts[symbol] : starts[symbol] + freqs[symbol]] = symbol
    payload = encoded.payload
    pos = 0
    state = 0
    for _ in range(4):
        state = (state << 8) | payload[pos]
        pos += 1
    out = np.empty(encoded.num_symbols, dtype=np.uint8)
    for i in range(encoded.num_symbols):
        slot = state & (PROB_SCALE - 1)
        symbol = slot_to_symbol[slot]
        out[i] = symbol
        freq = int(freqs[symbol])
        start = int(starts[symbol])
        state = freq * (state >> PROB_BITS) + slot - start
        while state < STATE_LOWER and pos < len(payload):
            state = (state << 8) | payload[pos]
            pos += 1
    return out.tobytes()


def compression_ratio(data: bytes) -> float:
    """Measured saved fraction for a byte string (0 = incompressible)."""
    return ans_encode(data).compression_ratio()


def int8_weight_bytes(num_weights: int, std: float = 5.0, seed: int = 0) -> bytes:
    """Synthetic INT8 weights: narrow, centered distributions like trained
    quantized weights — highly compressible (the paper's 'up to 50%')."""
    rng = np.random.default_rng(seed)
    values = np.clip(np.round(rng.normal(0, std, size=num_weights)), -127, 127)
    return values.astype(np.int8).tobytes()


def fp16_weight_bytes(num_weights: int, std: float = 0.05, seed: int = 0) -> bytes:
    """Synthetic FP16 weights: mantissa bytes are near-uniform, which is
    why 'FP16 data does not compress efficiently'."""
    rng = np.random.default_rng(seed)
    return rng.normal(0, std, size=num_weights).astype(np.float16).tobytes()
