"""Host-to-device link compression (paper section 3.3).

MTIA 2i adds a GZIP decompression engine on the PCIe path running at up
to 25 GB/s, raising the *effective* host-link bandwidth for compressible
payloads — a significant win for early-stage retrieval models that move
large volumes of candidate data between host and device.
"""

from __future__ import annotations

import dataclasses
import zlib

from repro.arch.specs import MemoryLevelSpec

# The decompression engine consumes compressed data at up to 25 GB/s
# (the paper's quoted rate); the decompressed output rate is that divided
# by the compressed fraction, which is what makes the feature a win over
# the ~32 GB/s raw link for compressible payloads.
GZIP_ENGINE_BYTES_PER_S = 25e9


@dataclasses.dataclass(frozen=True)
class LinkTransferReport:
    """Outcome of moving one payload over the (de)compressing link."""

    payload_bytes: int
    wire_bytes: int
    raw_time_s: float
    compressed_time_s: float

    @property
    def effective_bandwidth(self) -> float:
        """Payload bytes per second achieved with compression."""
        return self.payload_bytes / self.compressed_time_s if self.compressed_time_s else 0.0

    @property
    def speedup(self) -> float:
        """Transfer-time improvement from link compression."""
        return self.raw_time_s / self.compressed_time_s if self.compressed_time_s else 1.0


def gzip_ratio(data: bytes, level: int = 1) -> float:
    """Measured GZIP saved fraction for a payload (real zlib)."""
    if not data:
        return 0.0
    compressed = zlib.compress(data, level)
    return max(0.0, 1.0 - len(compressed) / len(data))


def link_transfer(
    payload_bytes: int,
    link: MemoryLevelSpec,
    compression_saved_fraction: float,
    engine_bytes_per_s: float = GZIP_ENGINE_BYTES_PER_S,
) -> LinkTransferReport:
    """Transfer time over a link with an inline decompression engine.

    The wire carries the compressed bytes; the decompression engine
    consumes them at up to ``engine_bytes_per_s`` (compressed side).  The
    two stages pipeline, so the slower one sets the pace.
    """
    if payload_bytes < 0:
        raise ValueError("payload must be non-negative")
    if not (0.0 <= compression_saved_fraction < 1.0):
        raise ValueError("saved fraction must be in [0, 1)")
    wire_bytes = payload_bytes * (1.0 - compression_saved_fraction)
    raw_time = link.transfer_time(payload_bytes)
    wire_time = link.transfer_time(wire_bytes)
    engine_time = wire_bytes / engine_bytes_per_s if compression_saved_fraction else 0.0
    return LinkTransferReport(
        payload_bytes=payload_bytes,
        wire_bytes=int(wire_bytes),
        raw_time_s=raw_time,
        compressed_time_s=max(wire_time, engine_time),
    )
