"""Lossless compression: rANS weight codec and the GZIP PCIe engine."""

from repro.compression.ans import (
    AnsEncoded,
    AnsError,
    ans_decode,
    ans_encode,
    compression_ratio,
    fp16_weight_bytes,
    int8_weight_bytes,
)
from repro.compression.pcie import (
    GZIP_ENGINE_BYTES_PER_S,
    LinkTransferReport,
    gzip_ratio,
    link_transfer,
)

__all__ = [
    "AnsEncoded",
    "AnsError",
    "GZIP_ENGINE_BYTES_PER_S",
    "LinkTransferReport",
    "ans_decode",
    "ans_encode",
    "compression_ratio",
    "fp16_weight_bytes",
    "gzip_ratio",
    "int8_weight_bytes",
    "link_transfer",
]
