"""Leaky-bucket traffic shaping at NoC sources.

Paper section 3.1: "To handle NoC congestion, flow control is enforced at
the sources.  Leaky-bucket traffic shaping and packet fragmentation are
used to smooth traffic and prevent sudden bursts and congestion."

The shaper is a standard token bucket drained at a fixed rate: a packet
may depart only when the bucket has accumulated enough credit for its
size.  Given arrival times it computes departure times, which the NoC
model uses to bound per-source injection rates.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence


@dataclasses.dataclass(frozen=True)
class Packet:
    """One packet offered to the shaper."""

    arrival_s: float
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("packet size must be positive")
        if self.arrival_s < 0:
            raise ValueError("arrival time must be non-negative")


class LeakyBucketShaper:
    """Token-bucket shaper with a sustained rate and a burst allowance."""

    def __init__(self, rate_bytes_per_s: float, burst_bytes: int) -> None:
        if rate_bytes_per_s <= 0:
            raise ValueError("rate must be positive")
        if burst_bytes <= 0:
            raise ValueError("burst must be positive")
        self.rate = rate_bytes_per_s
        self.burst = burst_bytes
        self._tokens = float(burst_bytes)
        # Time up to which token accrual has been accounted (advances to
        # each packet's departure), and the previous arrival for the
        # in-order check — distinct clocks: a delayed packet pushes the
        # accounting clock past arrivals that may repeat.
        self._token_time = 0.0
        self._last_arrival = 0.0

    def reset(self) -> None:
        """Refill the bucket and rewind the clock."""
        self._tokens = float(self.burst)
        self._token_time = 0.0
        self._last_arrival = 0.0

    def departure_time(self, packet: Packet) -> float:
        """Earliest time this packet may enter the NoC.

        Packets must be offered in non-decreasing arrival order.  Packets
        larger than the burst size must be fragmented first (see
        :func:`repro.noc.fragmentation.fragment`).
        """
        if packet.arrival_s < self._last_arrival:
            raise ValueError("packets must be offered in arrival order")
        self._last_arrival = packet.arrival_s
        if packet.size_bytes > self.burst:
            raise ValueError(
                f"packet of {packet.size_bytes} B exceeds burst {self.burst} B; "
                "fragment it first"
            )
        # Accrue tokens since the accounting clock (departures serialize,
        # so a packet cannot leave before the previous one's departure).
        now = max(packet.arrival_s, self._token_time)
        self._tokens = min(
            float(self.burst), self._tokens + (now - self._token_time) * self.rate
        )
        self._token_time = now
        if self._tokens >= packet.size_bytes:
            self._tokens -= packet.size_bytes
            return now
        deficit = packet.size_bytes - self._tokens
        wait = deficit / self.rate
        self._tokens = 0.0
        self._token_time = now + wait
        return self._token_time

    def shape(self, packets: Sequence[Packet]) -> List[float]:
        """Departure times for an arrival-ordered packet sequence."""
        return [self.departure_time(p) for p in packets]


def smoothness(departures: Sequence[float], window_s: float) -> float:
    """Peak-to-mean ratio of packets departing per window.

    A perfectly smoothed stream has ratio near 1; a bursty one is much
    higher.  Used by tests to verify the shaper actually smooths.
    """
    if not departures:
        return 1.0
    if window_s <= 0:
        raise ValueError("window must be positive")
    start, end = min(departures), max(departures)
    span = max(end - start, window_s)
    num_windows = int(span / window_s) + 1
    counts = [0] * num_windows
    for t in departures:
        counts[min(int((t - start) / window_s), num_windows - 1)] += 1
    mean = len(departures) / num_windows
    return max(counts) / mean if mean else 1.0
