"""Network-on-chip bandwidth and contention model.

The NoC connects the 8x8 PE grid to the shared SRAM and memory
controllers through crossbars on each side of the die.  For the
performance model the relevant behaviours are:

* aggregate bandwidth caps transfer rates (Table 2: 3.3x MTIA 1's);
* concurrent flows share links — modelled with max-min fair allocation;
* hardware *broadcast reads* let one SRAM read feed all PE columns,
  eliminating the N-fold read amplification when every PE needs the same
  weight tile (the optimization behind the 45% latency gain for large
  GEMMs in section 4.2).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence


@dataclasses.dataclass(frozen=True)
class Flow:
    """One logical transfer: a source, a destination, and a byte count."""

    src: str
    dst: str
    num_bytes: float

    def __post_init__(self) -> None:
        if self.num_bytes < 0:
            raise ValueError("flow size must be non-negative")


class NocFabric:
    """A two-sided crossbar fabric with per-endpoint port limits.

    Endpoints are named strings (e.g. ``"pe3"``, ``"sram"``, ``"dram"``,
    ``"host"``).  Each endpoint has a port bandwidth; the fabric itself
    has an aggregate bandwidth.  Transfers are max-min fair across the
    contended resources.
    """

    def __init__(
        self,
        aggregate_bandwidth: float,
        port_bandwidths: Dict[str, float],
        default_port_bandwidth: float,
    ) -> None:
        if aggregate_bandwidth <= 0 or default_port_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        self.aggregate_bandwidth = aggregate_bandwidth
        self.port_bandwidths = dict(port_bandwidths)
        self.default_port_bandwidth = default_port_bandwidth

    def _port_bw(self, endpoint: str) -> float:
        return self.port_bandwidths.get(endpoint, self.default_port_bandwidth)

    def fair_rates(self, flows: Sequence[Flow]) -> List[float]:
        """Max-min fair rate for each concurrent flow.

        Uses progressive filling: rates grow together; a flow freezes when
        any of its resources (source port, destination port, aggregate)
        saturates.
        """
        active = list(range(len(flows)))
        rates = [0.0] * len(flows)
        # Remaining capacity per resource.
        capacity: Dict[str, float] = {"__aggregate__": self.aggregate_bandwidth}
        users: Dict[str, List[int]] = {"__aggregate__": list(active)}
        for i, flow in enumerate(flows):
            for endpoint in (f"src:{flow.src}", f"dst:{flow.dst}"):
                name = endpoint.split(":", 1)[1]
                capacity.setdefault(endpoint, self._port_bw(name))
                users.setdefault(endpoint, []).append(i)
        while active:
            # The bottleneck resource determines the next increment.
            increment = min(
                capacity[res] / len([u for u in users[res] if u in active])
                for res in capacity
                if any(u in active for u in users[res])
            )
            saturated_flows = set()
            for res in list(capacity):
                sharers = [u for u in users[res] if u in active]
                if not sharers:
                    continue
                capacity[res] -= increment * len(sharers)
                if capacity[res] <= 1e-12:
                    saturated_flows.update(sharers)
            for i in active:
                rates[i] += increment
            active = [i for i in active if i not in saturated_flows]
        return rates

    def transfer_time(self, flows: Sequence[Flow]) -> float:
        """Time until every concurrent flow completes at its fair rate.

        This is a single-shot approximation (rates are not re-allocated as
        flows finish), which errs pessimistic — appropriate for a
        contention bound.
        """
        if not flows:
            return 0.0
        rates = self.fair_rates(flows)
        return max(
            (f.num_bytes / r) if f.num_bytes else 0.0
            for f, r in zip(flows, rates)
        )

    def broadcast_read_bytes(
        self, num_bytes: float, num_destinations: int, hardware_broadcast: bool
    ) -> float:
        """Source-side bytes needed to deliver the same data to N PEs.

        With hardware broadcast-read support (MTIA 2i), the SRAM is read
        once and the fabric replicates; without it, each destination
        issues its own read and the source port carries N copies.
        """
        if num_destinations <= 0:
            raise ValueError("need at least one destination")
        return num_bytes if hardware_broadcast else num_bytes * num_destinations


def mtia_fabric(noc_bandwidth: float, num_pes: int, pe_port_bandwidth: float) -> NocFabric:
    """A fabric shaped like MTIA's: PE ports plus sram/dram/host endpoints."""
    ports = {f"pe{i}": pe_port_bandwidth for i in range(num_pes)}
    ports["sram"] = noc_bandwidth  # SRAM banks match fabric bandwidth
    ports["dram"] = noc_bandwidth / 8  # memory controllers are narrower
    ports["host"] = noc_bandwidth / 16
    return NocFabric(
        aggregate_bandwidth=noc_bandwidth,
        port_bandwidths=ports,
        default_port_bandwidth=pe_port_bandwidth,
    )
