"""Packet fragmentation (paper section 3.1).

Large DMA transfers are fragmented into bounded-size packets before
injection so that no single transfer monopolizes a NoC link.  Each
fragment carries a fixed header, so fragmentation trades a small bandwidth
overhead for fairness.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.noc.shaping import Packet

DEFAULT_MAX_FRAGMENT_BYTES = 4096
DEFAULT_HEADER_BYTES = 16


@dataclasses.dataclass(frozen=True)
class FragmentationResult:
    """Fragments of one transfer plus accounting."""

    fragments: List[Packet]
    payload_bytes: int
    header_overhead_bytes: int

    @property
    def wire_bytes(self) -> int:
        """Total bytes on the wire including headers."""
        return self.payload_bytes + self.header_overhead_bytes

    @property
    def overhead_fraction(self) -> float:
        """Header bytes as a fraction of wire bytes."""
        return self.header_overhead_bytes / self.wire_bytes if self.wire_bytes else 0.0


def fragment(
    transfer_bytes: int,
    arrival_s: float = 0.0,
    max_fragment_bytes: int = DEFAULT_MAX_FRAGMENT_BYTES,
    header_bytes: int = DEFAULT_HEADER_BYTES,
) -> FragmentationResult:
    """Split a transfer into header-carrying fragments.

    All fragments share the transfer's arrival time; the shaper spreads
    them out.
    """
    if transfer_bytes < 0:
        raise ValueError("transfer size must be non-negative")
    if max_fragment_bytes <= header_bytes:
        raise ValueError("fragment size must exceed header size")
    payload_per_fragment = max_fragment_bytes - header_bytes
    fragments: List[Packet] = []
    remaining = transfer_bytes
    while remaining > 0:
        payload = min(payload_per_fragment, remaining)
        fragments.append(Packet(arrival_s=arrival_s, size_bytes=payload + header_bytes))
        remaining -= payload
    return FragmentationResult(
        fragments=fragments,
        payload_bytes=transfer_bytes,
        header_overhead_bytes=len(fragments) * header_bytes,
    )
