"""Network-on-chip model: shaping, fragmentation, and fabric contention."""

from repro.noc.fabric import Flow, NocFabric, mtia_fabric
from repro.noc.fragmentation import (
    DEFAULT_HEADER_BYTES,
    DEFAULT_MAX_FRAGMENT_BYTES,
    FragmentationResult,
    fragment,
)
from repro.noc.shaping import LeakyBucketShaper, Packet, smoothness

__all__ = [
    "DEFAULT_HEADER_BYTES",
    "DEFAULT_MAX_FRAGMENT_BYTES",
    "Flow",
    "FragmentationResult",
    "LeakyBucketShaper",
    "NocFabric",
    "Packet",
    "fragment",
    "mtia_fabric",
    "smoothness",
]
