"""The verified-surrogate pattern: predictions propose, exact decides.

A surrogate is allowed to be wrong; the integrations are not.  Every
inner loop that adopts a surrogate in this repository does so through
one of two verified shapes, both of which guarantee the *returned*
answer was produced by the exact model:

* :func:`verified_argmin` — the surrogate ranks a candidate set, the
  exact model re-evaluates the predicted top-k, and the argmin over
  those exact values is returned.  Soundness contract: the winner's
  value is always an exact evaluation (never a prediction); the only
  failure mode is *missing* a better candidate outside the top-k,
  which the quality-gap metric measures.

* :func:`verified_min_feasible` / :func:`verified_max_feasible` — for
  monotone feasibility searches (replicas-needed walks up, the power
  sweep's QPS fraction walks down), the surrogate only chooses the
  probe's *starting point*; exact evaluations then walk to the
  boundary and certify it from both sides.  Under the monotonicity the
  exact searches already assume, the result is *identical* to the
  unguided linear scan — the surrogate can only change how many exact
  runs it takes to get there (property-tested against the linear scan
  in ``tests/test_surrogate_properties.py``).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np


@dataclasses.dataclass(frozen=True)
class VerifiedArgmin:
    """Outcome of a surrogate-ranked, exact-verified argmin."""

    best_index: int  # index into the original candidate list
    best_value: float  # exact model's value for the winner
    evaluated: Tuple[int, ...]  # candidate indices exact-evaluated
    exact_values: Dict[int, float]  # candidate index -> exact value
    surrogate_evaluations: int  # predictions spent ranking
    exact_evaluations: int  # exact-model calls spent verifying


def verified_argmin(
    ranking: Sequence[int],
    exact_fn: Callable[[int], float],
    top_k: int,
) -> VerifiedArgmin:
    """Exact-evaluate the first ``top_k`` of ``ranking``; return the
    exact argmin among them.

    ``ranking`` is the surrogate's predicted-ascending candidate order
    (e.g. from :meth:`~repro.surrogate.model.GemmSurrogate.rank_variants`).
    The returned ``best_value`` is by construction an exact evaluation.
    """
    if top_k <= 0:
        raise ValueError("top_k must be positive")
    if not len(ranking):
        raise ValueError("need at least one ranked candidate")
    shortlist = [int(i) for i in ranking[:top_k]]
    exact_values = {i: float(exact_fn(i)) for i in shortlist}
    best_index = min(shortlist, key=lambda i: (exact_values[i], i))
    return VerifiedArgmin(
        best_index=best_index,
        best_value=exact_values[best_index],
        evaluated=tuple(shortlist),
        exact_values=exact_values,
        surrogate_evaluations=len(ranking),
        exact_evaluations=len(shortlist),
    )


def verified_min_feasible(
    guess: int,
    lo: int,
    hi: int,
    feasible: Callable[[int], bool],
) -> Tuple[Optional[int], int]:
    """Smallest ``i`` in ``[lo, hi]`` with ``feasible(i)``, assuming
    feasibility is monotone non-decreasing in ``i``.

    ``guess`` (clamped into range) is where exact probing starts — the
    surrogate's only influence.  Returns ``(answer, exact_calls)``;
    ``answer`` is ``None`` when even ``hi`` is infeasible.  The answer
    always carries a two-sided exact certificate: ``feasible(answer)``
    was evaluated True and, when ``answer > lo``, ``feasible(answer-1)``
    was evaluated False — exactly the certificate the linear scan from
    ``lo`` produces, so the two agree on every monotone predicate.
    """
    if lo > hi:
        raise ValueError("empty search range")
    probe = min(max(guess, lo), hi)
    calls = 0
    if feasible(probe):
        calls += 1
        # Walk down while the point below is still feasible.
        while probe > lo:
            calls += 1
            if feasible(probe - 1):
                probe -= 1
            else:
                return probe, calls
        return lo, calls
    calls += 1
    # Walk up to the first feasible point.
    while probe < hi:
        probe += 1
        calls += 1
        if feasible(probe):
            return probe, calls
    return None, calls


def verified_max_feasible(
    guess: int,
    lo: int,
    hi: int,
    feasible: Callable[[int], bool],
) -> Tuple[Optional[int], int]:
    """Largest ``i`` in ``[lo, hi]`` with ``feasible(i)``, assuming
    feasibility is monotone non-increasing in ``i`` (the mirror image
    of :func:`verified_min_feasible`)."""
    answer, calls = verified_min_feasible(
        lo + hi - min(max(guess, lo), hi), lo, hi,
        lambda i: feasible(lo + hi - i),
    )
    return (None if answer is None else lo + hi - answer), calls


def argmin_match(result: VerifiedArgmin, exact_best_index: int,
                 exact_best_value: float) -> bool:
    """Did the verified search recover the exhaustive argmin?

    Matches on *value*, not index: candidate sets routinely contain
    distinct variants with identical exact cost (e.g. broadcast/prefetch
    don't move engine time), and any of them is a correct answer.
    """
    del exact_best_index
    return bool(np.isclose(result.best_value, exact_best_value,
                           rtol=1e-12, atol=0.0))


__all__ = [
    "VerifiedArgmin",
    "argmin_match",
    "verified_argmin",
    "verified_max_feasible",
    "verified_min_feasible",
]
