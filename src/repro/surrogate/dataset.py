"""Seeded trace collection: exact-model evaluations -> training tables.

Every training row here is an *exact-model* evaluation — the same
``estimate_gemm`` / ``perf.executor`` / cluster-simulation paths the
rest of the repository treats as ground truth — captured with its
analytic features.  Collection is seeded and deterministic: the same
(chip, seed, sample count) produces the same table byte for byte.

The GEMM collector routes every evaluation through a
:class:`~repro.fastsim.memo.KernelLatencyMemo` with a
:class:`DatasetRecorder` attached, so the memo's dedup *is* the
dataset's dedup — a (shape, dtype, frequency, variant) point is exact-
evaluated once, recorded once, and every later hit is served from
cache.  Any tuning run can therefore double as dataset collection by
passing a recorder-equipped memo (the transparency property — the
recorder never perturbs memo results — is tested in
``tests/test_surrogate_properties.py``).

The capacity/power collectors run the exact seeded cluster searches on
a probe grid; they are orders of magnitude more expensive per row, so
their grids are small and their surrogates are used only to pick probe
*starting points* inside verified searches (see
:mod:`repro.surrogate.verify`).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.specs import ChipSpec
from repro.fastsim.memo import KernelLatencyMemo
from repro.graph.graph import OpGraph
from repro.graph.ops import OpType
from repro.kernels.gemm import GemmVariant, default_variants, estimate_gemm
from repro.power.activity import chip_power_w
from repro.surrogate.features import (
    EXECUTOR_FEATURE_NAMES,
    GEMM_FEATURE_NAMES,
    GemmFeatureSpace,
    GraphSummary,
    capacity_feature_row,
    executor_feature_row,
    power_feature_row,
)
from repro.surrogate.model import GemmSurrogate, SurrogateModel, TrainReport
from repro.tensors.dtypes import DType
from repro.tensors.tensor import GemmShape


@dataclasses.dataclass(frozen=True)
class SurrogateDataset:
    """A (features -> targets) table from exact-model evaluations."""

    X: np.ndarray  # (N, D) float32
    latency_s: np.ndarray  # (N,) float64
    energy_j: Optional[np.ndarray]  # (N,) float64, when collected
    feature_names: Tuple[str, ...]

    def __len__(self) -> int:
        return len(self.latency_s)


class DatasetRecorder:
    """Memo hook turning every exact kernel evaluation into a row.

    Attach via ``KernelLatencyMemo(chip, recorder=recorder)``: the memo
    calls the recorder once per cache *miss* (i.e. once per distinct
    exact evaluation) with the raw descriptors and the measured time.
    The recorder only appends to its own lists — it cannot change what
    the memo returns.
    """

    def __init__(self) -> None:
        self.shapes: List[Tuple[int, int, int]] = []
        self.variants: List[GemmVariant] = []
        self.dtypes: List[DType] = []
        self.times_s: List[float] = []

    def __call__(
        self, shape: GemmShape, variant: GemmVariant, dtype: DType,
        time_s: float,
    ) -> None:
        self.shapes.append((shape.m, shape.k, shape.n))
        self.variants.append(variant)
        self.dtypes.append(dtype)
        self.times_s.append(time_s)

    def __len__(self) -> int:
        return len(self.times_s)

    def to_dataset(
        self,
        space: GemmFeatureSpace,
        include_energy: bool = False,
    ) -> SurrogateDataset:
        """Build the training table for rows matching the space's dtype.

        With ``include_energy`` each row's energy is derived from one
        extra exact evaluation: ``time * chip_power_w(chip, f, util)``
        with utilization the exact model's compute fraction.
        """
        keep = [i for i, d in enumerate(self.dtypes) if d is space.dtype]
        shapes = [self.shapes[i] for i in keep]
        variants = [self.variants[i] for i in keep]
        times = np.array([self.times_s[i] for i in keep], dtype=np.float64)
        X = space.pair_matrix(shapes, variants)
        energy = None
        if include_energy:
            energy = np.empty(len(keep), dtype=np.float64)
            for row, ((m, k, n), variant, t) in enumerate(
                zip(shapes, variants, times)
            ):
                est = estimate_gemm(
                    GemmShape(m, k, n), space.chip, space.dtype, variant
                )
                util = min(1.0, est.compute_s / est.engine_time_s)
                energy[row] = t * chip_power_w(
                    space.chip, space.chip.frequency_hz, util
                )
        return SurrogateDataset(
            X=X, latency_s=times, energy_j=energy,
            feature_names=GEMM_FEATURE_NAMES,
        )


def sample_gemm_points(
    n_samples: int,
    seed: int = 0,
    variants: Optional[Sequence[GemmVariant]] = None,
    log2_dim_range: Tuple[float, float] = (5.0, 13.5),
) -> Tuple[List[Tuple[int, int, int]], List[GemmVariant]]:
    """Seeded log-uniform (shape, variant) sample of the tuning space."""
    if n_samples <= 0:
        raise ValueError("need a positive sample count")
    variants = list(variants) if variants is not None else default_variants()
    rng = np.random.default_rng(seed)
    lo, hi = log2_dim_range
    dims = np.exp2(rng.uniform(lo, hi, size=(n_samples, 3)))
    dims = np.maximum(1, np.round(dims)).astype(np.int64)
    picks = rng.integers(0, len(variants), size=n_samples)
    shapes = [tuple(int(d) for d in row) for row in dims]
    return shapes, [variants[int(i)] for i in picks]


def collect_gemm_dataset(
    chip: ChipSpec,
    n_samples: int = 6000,
    dtype: DType = DType.FP16,
    seed: int = 0,
    variants: Optional[Sequence[GemmVariant]] = None,
    include_energy: bool = True,
) -> Tuple[SurrogateDataset, GemmFeatureSpace]:
    """Exact kernel-model traces over a seeded sample of tuning points.

    Every evaluation goes through a memo+recorder pair, so duplicate
    sampled points collapse to one exact evaluation and one row — the
    memo's dedup is the dataset's dedup.
    """
    space = GemmFeatureSpace(chip, dtype)
    recorder = DatasetRecorder()
    collection_memo = KernelLatencyMemo(chip, recorder=recorder)
    shapes, variant_picks = sample_gemm_points(
        n_samples, seed=seed, variants=variants
    )
    for (m, k, n), variant in zip(shapes, variant_picks):
        collection_memo.measure(GemmShape(m, k, n), variant, dtype)
    return recorder.to_dataset(space, include_energy=include_energy), space


def collect_executor_dataset(
    build_graph: Callable[[int], OpGraph],
    chip: ChipSpec,
    batches: Sequence[int] = (256, 512, 1024),
    dtype: DType = DType.FP16,
    variant: Optional[GemmVariant] = None,
) -> SurrogateDataset:
    """Exact ``perf.executor`` traces: per-FC-op latency rows.

    Runs the full executor (memory hierarchy, NoC, host link) on the
    model graph at each batch size and emits one row per FC op with the
    executor's measured op time as the target.  Op-level times include
    memory-path costs beyond the kernel engine model, so this table is
    a *different regression task* from the kernel dataset — it is the
    executor-path trace source the subsystem contract names, usable for
    op-latency surrogates over a model zoo.
    """
    from repro.perf.executor import Executor

    space = GemmFeatureSpace(chip, dtype)
    used = variant or GemmVariant()
    shapes: List[Tuple[int, int, int]] = []
    rows: List[GemmVariant] = []
    times: List[float] = []
    for batch in batches:
        graph = build_graph(batch)
        report = Executor(chip, gemm_variant=variant).run(graph, batch)
        profiles = {p.op_name: p for p in report.op_profiles}
        for op in graph.ops:
            if op.op_type is not OpType.FC or op.name not in profiles:
                continue
            gemm = op.attrs["gemm"]
            shapes.append((gemm.m, gemm.k, gemm.n))
            rows.append(used)
            times.append(profiles[op.name].time_s)
    return SurrogateDataset(
        X=space.pair_matrix(shapes, rows),
        latency_s=np.asarray(times, dtype=np.float64),
        energy_j=None,
        feature_names=GEMM_FEATURE_NAMES,
    )


def collect_executor_graph_dataset(
    chips: Sequence[ChipSpec],
    models: Sequence[Tuple["GraphSummary", Callable[[int], OpGraph], int]],
    dtype: DType = DType.FP16,
) -> SurrogateDataset:
    """Exact whole-graph executor latencies across a chip sample.

    One row per (chip, model): features from
    :func:`~repro.surrogate.features.executor_feature_row` on the
    cached graph summary, target the full
    :class:`~repro.perf.executor.Executor` run's ``latency_s``.
    ``models`` pairs each summary with its graph builder and batch so
    the graph walk happens once per model, not once per chip.

    This is the whole-graph regression task ROADMAP item 3 left open —
    the per-FC-op table from :func:`collect_executor_dataset` prices
    single ops; this one prices the *latency a zoo model sees on a
    candidate chip*, which is what the codesign DSE ranks candidates
    by before exact-evaluating survivors.
    """
    from repro.perf.executor import Executor

    X: List[np.ndarray] = []
    times: List[float] = []
    for chip in chips:
        executor = Executor(chip)
        for summary, build_graph, batch in models:
            report = executor.run(build_graph(batch), batch)
            X.append(executor_feature_row(chip, summary, dtype))
            times.append(report.latency_s)
    return SurrogateDataset(
        X=np.vstack(X).astype(np.float32),
        latency_s=np.asarray(times, dtype=np.float64),
        energy_j=None,
        feature_names=EXECUTOR_FEATURE_NAMES,
    )


def train_executor_surrogate(
    chips: Sequence[ChipSpec],
    models: Sequence[Tuple["GraphSummary", Callable[[int], OpGraph], int]],
    dtype: DType = DType.FP16,
    seed: int = 0,
    holdout_fraction: float = 0.15,
    n_rounds: int = 16,
) -> Tuple[SurrogateModel, TrainReport]:
    """Collect whole-graph traces over a chip sample and fit the
    executor-latency surrogate (log-space target, seeded, bit-for-bit
    reproducible like every other surrogate here)."""
    dataset = collect_executor_graph_dataset(chips, models, dtype=dtype)
    model = SurrogateModel(n_rounds=n_rounds)
    report = model.fit(
        dataset.X, dataset.latency_s, seed=seed,
        holdout_fraction=holdout_fraction, target="executor_latency",
    )
    return model, report


def train_gemm_surrogate(
    chip: ChipSpec,
    n_samples: int = 6000,
    dtype: DType = DType.FP16,
    seed: int = 0,
    include_energy: bool = True,
    holdout_fraction: float = 0.2,
    n_rounds: int = 24,
) -> Tuple[GemmSurrogate, Dict[str, TrainReport]]:
    """Collect traces and fit the kernel latency (+ energy) surrogate."""
    dataset, space = collect_gemm_dataset(
        chip, n_samples=n_samples, dtype=dtype, seed=seed,
        include_energy=include_energy,
    )
    latency = SurrogateModel(n_rounds=n_rounds)
    reports = {
        "latency": latency.fit(
            dataset.X, dataset.latency_s, seed=seed,
            holdout_fraction=holdout_fraction, target="latency",
        )
    }
    energy = None
    if include_energy and dataset.energy_j is not None:
        energy = SurrogateModel(n_rounds=n_rounds)
        reports["energy"] = energy.fit(
            dataset.X, dataset.energy_j, seed=seed,
            holdout_fraction=holdout_fraction, target="energy",
        )
    return GemmSurrogate(space, latency, energy), reports


def train_capacity_surrogate(
    service,
    qps_points: Sequence[float],
    policies: Sequence[str] = ("round_robin", "po2"),
    p99_slo_s: float = 0.100,
    duration_s: float = 40.0,
    max_replicas: int = 96,
    seed: int = 0,
) -> Tuple[SurrogateModel, TrainReport]:
    """Fit a replicas-needed predictor from exact capacity searches.

    Each row costs a full seeded cluster search, so the grid is small;
    the resulting model seeds :func:`repro.cluster.capacity
    .replicas_needed`'s verified walk with a starting replica count —
    it never decides feasibility itself.
    """
    from repro.cluster.capacity import replicas_needed

    X: List[np.ndarray] = []
    y: List[float] = []
    for policy in policies:
        for qps in qps_points:
            point = replicas_needed(
                policy, qps, service, p99_slo_s=p99_slo_s,
                duration_s=duration_s, max_replicas=max_replicas, seed=seed,
            )
            if not point.feasible:
                continue
            X.append(capacity_feature_row(
                policy, qps, service.mean_service_s, p99_slo_s,
                service.jitter_sigma,
            ))
            y.append(float(point.replicas))
    if len(y) < 2:
        raise ValueError("capacity probe grid produced too few feasible rows")
    model = SurrogateModel(n_rounds=8)
    report = model.fit(
        np.vstack(X), np.asarray(y), seed=seed, holdout_fraction=0.0,
        target="capacity_replicas",
    )
    return model, report


def train_power_surrogate(
    service,
    probe_budgets_w: Sequence[float],
    replicas: int = 24,
    platform_power_w: float = 800.0,
    chip: Optional[ChipSpec] = None,
    p99_slo_s: float = 0.100,
    duration_s: float = 20.0,
    seed: int = 0,
) -> Tuple[SurrogateModel, TrainReport]:
    """Fit a max-QPS-fraction predictor from exact power-sweep probes.

    Targets are the feasible fraction of the fluid capacity ceiling at
    each probe budget (linear-space targets: fractions live in [0, 1]).
    The model seeds the guided descent in
    :func:`repro.power.cluster_link.power_limited_capacity_sweep`.
    """
    from repro.arch.mtia import mtia2i_spec
    from repro.power.cluster_link import max_qps_at_slo, service_model_at_budget

    chip = chip or mtia2i_spec()
    X: List[np.ndarray] = []
    y: List[float] = []
    for budget in probe_budgets_w:
        per_chip = max(0.0, (budget - platform_power_w) / replicas)
        scaled, _ = service_model_at_budget(service, per_chip, chip=chip)
        max_qps, _ = max_qps_at_slo(
            scaled, replicas, p99_slo_s, duration_s, seed
        )
        ceiling = replicas * scaled.capacity_per_replica()
        if max_qps <= 0 or ceiling <= 0:
            continue  # nothing feasible at this probe: no learnable row
        X.append(power_feature_row(
            scaled.mean_service_s, replicas, p99_slo_s, duration_s,
            scaled.jitter_sigma,
        ))
        y.append(max_qps / ceiling)
    if len(y) < 2:
        raise ValueError("power probe grid produced too few rows")
    model = SurrogateModel(log_targets=False, n_rounds=8)
    report = model.fit(
        np.vstack(X), np.asarray(y), seed=seed, holdout_fraction=0.0,
        target="power_fraction",
    )
    return model, report


__all__ = [
    "DatasetRecorder",
    "SurrogateDataset",
    "collect_executor_dataset",
    "collect_executor_graph_dataset",
    "collect_gemm_dataset",
    "sample_gemm_points",
    "train_capacity_surrogate",
    "train_executor_surrogate",
    "train_gemm_surrogate",
    "train_power_surrogate",
]
