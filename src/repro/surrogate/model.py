"""Pure-numpy, seeded, bit-for-bit-reproducible regressor stack.

The stack is a ridge regression plus small gradient-boosted trees over
the analytic features from :mod:`repro.surrogate.features` — the
NeuroScalar-style split: the ridge captures the roofline structure the
features expose, the boosted trees mop up the piecewise corrections the
exact models apply (pipeline efficiency, issue amortization,
double-buffer overlap) that a linear model cannot bend around.

Determinism is a contract, not an accident:

* fitting uses closed-form solves and greedy splits with first-wins
  tie-breaking — no iterative solvers, no data-dependent convergence;
* the train/holdout split is a seeded ``np.random.default_rng``
  permutation;
* two fits from identical inputs produce bit-identical parameter
  arrays and predictions (property-tested in
  ``tests/test_surrogate_properties.py``).

Targets are modelled in log2 space by default (latencies and energies
span decades); error bands are always reported in *linear* space as
relative errors (MAPE, P95) on a held-out split the fit never saw.

:class:`GemmSurrogate` binds the stack to the GEMM feature space and
adds the factorized sweep path: on a shapes x variants grid, shape-only
and variant-only columns are scored once per axis value and only the 9
cross columns are touched per point, so a depth-1 ensemble predicts in
tens of nanoseconds per point — the >=100x-per-evaluation headroom over
the exact kernel model that the sec41 surrogate benchmark pins.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.specs import ChipSpec
from repro.kernels.gemm import GemmVariant
from repro.surrogate.features import (
    GEMM_CROSS_SLICE,
    GEMM_SHAPE_SLICE,
    GEMM_VARIANT_SLICE,
    GemmFeatureSpace,
)
from repro.tensors.dtypes import DType


@dataclasses.dataclass(frozen=True)
class TrainReport:
    """Measured error bands from one seeded fit."""

    target: str
    n_train: int
    n_holdout: int
    mape_train: float
    mape_holdout: float
    p95_rel_error_holdout: float
    max_rel_error_holdout: float

    def scalars(self) -> Dict[str, float]:
        return {
            f"{self.target}.n_train": float(self.n_train),
            f"{self.target}.n_holdout": float(self.n_holdout),
            f"{self.target}.mape_holdout": self.mape_holdout,
            f"{self.target}.p95_rel_error": self.p95_rel_error_holdout,
        }


def _rel_errors(pred: np.ndarray, truth: np.ndarray) -> np.ndarray:
    return np.abs(pred - truth) / np.abs(truth)


class RidgeRegressor:
    """Closed-form ridge with internal standardization.

    Weights are folded back to raw feature space after the solve, so
    prediction is a single mat-vec on unscaled features — the property
    the factorized grid path depends on.
    """

    def __init__(self, l2: float = 1e-3) -> None:
        if l2 <= 0:
            raise ValueError("l2 must be positive")
        self.l2 = l2
        self.weights: Optional[np.ndarray] = None  # (D,) float64
        self.intercept: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RidgeRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        mu = X.mean(axis=0)
        sd = X.std(axis=0)
        sd = np.where(sd > 0, sd, 1.0)
        Xs = (X - mu) / sd
        y_mean = float(y.mean())
        a = Xs.T @ Xs + self.l2 * len(y) * np.eye(X.shape[1])
        w = np.linalg.solve(a, Xs.T @ (y - y_mean))
        self.weights = w / sd
        self.intercept = y_mean - float(mu @ self.weights)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("fit before predict")
        return np.asarray(X, dtype=np.float64) @ self.weights + self.intercept


def _best_split(
    order: np.ndarray,
    col_sorted: np.ndarray,
    thresholds: np.ndarray,
    residual: np.ndarray,
    min_leaf: int,
) -> Tuple[float, float, float, float]:
    """Best (gain, threshold, left mean, right mean) for one feature.

    ``order``/``col_sorted`` are the precomputed sort of the feature
    column; gains follow the standard variance-reduction identity
    ``sum_l^2/n_l + sum_r^2/n_r`` (larger is better).
    """
    n = len(residual)
    if not len(thresholds):
        return -np.inf, 0.0, 0.0, 0.0
    csum = np.cumsum(residual[order])
    total = csum[-1]
    n_left = np.searchsorted(col_sorted, thresholds, side="right")
    valid = (n_left >= min_leaf) & (n_left <= n - min_leaf)
    if not valid.any():
        return -np.inf, 0.0, 0.0, 0.0
    n_left = n_left[valid]
    thresholds = thresholds[valid]
    sum_left = csum[n_left - 1]
    sum_right = total - sum_left
    n_right = n - n_left
    gains = sum_left**2 / n_left + sum_right**2 / n_right
    best = int(np.argmax(gains))  # first max wins: deterministic
    return (
        float(gains[best]),
        float(thresholds[best]),
        float(sum_left[best] / n_left[best]),
        float(sum_right[best] / n_right[best]),
    )


class BoostedStumps:
    """Gradient-boosted depth-1 trees (stumps) on squared error.

    Stumps are the 'small trees' of the stack: each round fits the
    current residual with the single best (feature, threshold) split
    over per-feature quantile candidates.  The whole ensemble evaluates
    as one boolean mask matrix times a leaf-delta vector —
    ``pred = base + (X[:, feats] <= thrs) @ deltas`` — which is why the
    fast sweep path can afford dozens of rounds.
    """

    def __init__(
        self,
        n_rounds: int = 24,
        learning_rate: float = 0.5,
        n_quantiles: int = 24,
        min_leaf: int = 8,
    ) -> None:
        if n_rounds < 0:
            raise ValueError("n_rounds must be non-negative")
        if not (0 < learning_rate <= 1):
            raise ValueError("learning rate must be in (0, 1]")
        self.n_rounds = n_rounds
        self.learning_rate = learning_rate
        self.n_quantiles = n_quantiles
        self.min_leaf = min_leaf
        self.features = np.empty(0, dtype=np.int64)
        self.thresholds = np.empty(0, dtype=np.float64)
        self.deltas = np.empty(0, dtype=np.float64)  # left - right
        self.base = 0.0  # sum of right-leaf values

    def fit(self, X: np.ndarray, residual: np.ndarray) -> "BoostedStumps":
        X = np.asarray(X, dtype=np.float64)
        residual = np.asarray(residual, dtype=np.float64).copy()
        n, d = X.shape
        orders = [np.argsort(X[:, j], kind="stable") for j in range(d)]
        sorted_cols = [X[orders[j], j] for j in range(d)]
        candidates: List[np.ndarray] = []
        qs = np.linspace(0.0, 1.0, self.n_quantiles + 2)[1:-1]
        for j in range(d):
            values = np.unique(np.quantile(sorted_cols[j], qs))
            # Split *between* data values so float32 evaluation of the
            # same comparison cannot straddle a training point.
            uniq = np.unique(sorted_cols[j])
            if len(uniq) < 2:
                candidates.append(np.empty(0))
                continue
            mids = (uniq[:-1] + uniq[1:]) / 2.0
            idx = np.searchsorted(mids, values)
            idx = np.clip(idx, 0, len(mids) - 1)
            candidates.append(np.unique(mids[idx]))
        feats, thrs, deltas, base = [], [], [], 0.0
        for _ in range(self.n_rounds):
            best = (-np.inf, -1, 0.0, 0.0, 0.0)
            for j in range(d):
                gain, thr, left, right = _best_split(
                    orders[j], sorted_cols[j], candidates[j],
                    residual, self.min_leaf,
                )
                if gain > best[0]:
                    best = (gain, j, thr, left, right)
            if best[1] < 0:
                break
            _, j, thr, left, right = best
            left *= self.learning_rate
            right *= self.learning_rate
            mask = X[:, j] <= thr
            residual[mask] -= left
            residual[~mask] -= right
            feats.append(j)
            thrs.append(thr)
            deltas.append(left - right)
            base += right
        self.features = np.asarray(feats, dtype=np.int64)
        self.thresholds = np.asarray(thrs, dtype=np.float64)
        self.deltas = np.asarray(deltas, dtype=np.float64)
        self.base = base
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X)
        if not len(self.features):
            return np.full(len(X), self.base)
        masks = X[:, self.features] <= self.thresholds
        return masks @ self.deltas + self.base


class SurrogateModel:
    """Ridge + boosted stumps, with seeded holdout error bands."""

    def __init__(
        self,
        log_targets: bool = True,
        ridge_l2: float = 1e-3,
        n_rounds: int = 24,
        learning_rate: float = 0.5,
    ) -> None:
        self.log_targets = log_targets
        self.ridge = RidgeRegressor(l2=ridge_l2)
        self.stumps = BoostedStumps(
            n_rounds=n_rounds, learning_rate=learning_rate
        )
        self.report: Optional[TrainReport] = None

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        seed: int = 0,
        holdout_fraction: float = 0.2,
        target: str = "target",
    ) -> TrainReport:
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if len(X) != len(y):
            raise ValueError("X and y must be row-aligned")
        if np.any(y <= 0) and self.log_targets:
            raise ValueError("log-space targets must be positive")
        rng = np.random.default_rng(seed)
        perm = rng.permutation(len(y))
        n_holdout = int(round(len(y) * holdout_fraction))
        hold, train = perm[:n_holdout], perm[n_holdout:]
        if not len(train):
            raise ValueError("holdout fraction leaves no training rows")
        yt = np.log2(y) if self.log_targets else y
        self.ridge.fit(X[train], yt[train])
        residual = yt[train] - self.ridge.predict(X[train])
        self.stumps.fit(X[train], residual)
        train_rel = _rel_errors(self.predict(X[train]), y[train])
        if len(hold):
            hold_rel = _rel_errors(self.predict(X[hold]), y[hold])
        else:
            hold_rel = train_rel
        self.report = TrainReport(
            target=target,
            n_train=len(train),
            n_holdout=len(hold),
            mape_train=float(train_rel.mean()),
            mape_holdout=float(hold_rel.mean()),
            p95_rel_error_holdout=float(
                np.quantile(hold_rel, 0.95)
            ),
            max_rel_error_holdout=float(hold_rel.max()),
        )
        return self.report

    def predict_transformed(self, X: np.ndarray) -> np.ndarray:
        """Prediction in model space (log2 if ``log_targets``)."""
        return self.ridge.predict(X) + self.stumps.predict(
            np.asarray(X, dtype=np.float64)
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        pred = self.predict_transformed(X)
        return np.exp2(pred) if self.log_targets else pred


# -- factorized GEMM binding ------------------------------------------


def _partition_stumps(
    stumps: BoostedStumps, col_slice: slice
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(local feature idx, thresholds, deltas) for stumps whose split
    feature falls inside ``col_slice``."""
    inside = (stumps.features >= col_slice.start) & (
        stumps.features < col_slice.stop
    )
    return (
        stumps.features[inside] - col_slice.start,
        stumps.thresholds[inside].astype(np.float32),
        stumps.deltas[inside].astype(np.float32),
    )


class _FactorizedStack:
    """One SurrogateModel compiled for the grid fast path (float32)."""

    def __init__(self, model: SurrogateModel) -> None:
        if model.ridge.weights is None:
            raise RuntimeError("model must be fitted first")
        w = model.ridge.weights.astype(np.float32)
        self.w_shape = w[GEMM_SHAPE_SLICE]
        self.w_variant = w[GEMM_VARIANT_SLICE]
        self.w_cross = w[GEMM_CROSS_SLICE]
        self.bias = np.float32(model.ridge.intercept + model.stumps.base)
        self.shape_stumps = _partition_stumps(model.stumps, GEMM_SHAPE_SLICE)
        self.variant_stumps = _partition_stumps(
            model.stumps, GEMM_VARIANT_SLICE
        )
        self.cross_stumps = _partition_stumps(model.stumps, GEMM_CROSS_SLICE)
        self.log_targets = model.log_targets

    @staticmethod
    def _axis_score(
        block: np.ndarray,
        weights: np.ndarray,
        stumps: Tuple[np.ndarray, np.ndarray, np.ndarray],
    ) -> np.ndarray:
        score = block @ weights
        feats, thrs, deltas = stumps
        if len(feats):
            score = score + (
                (block[:, feats] <= thrs).astype(np.float32) @ deltas
            )
        return score

    def grid(
        self, shape_block: np.ndarray, variant_block: np.ndarray,
        cross: np.ndarray,
    ) -> np.ndarray:
        """Model-space predictions over the (S, V) grid."""
        s_score = self._axis_score(shape_block, self.w_shape, self.shape_stumps)
        v_score = self._axis_score(
            variant_block, self.w_variant, self.variant_stumps
        )
        flat = cross.reshape(-1, cross.shape[-1])
        c_score = flat @ self.w_cross
        feats, thrs, deltas = self.cross_stumps
        if len(feats):
            c_score = c_score + (
                (flat[:, feats] <= thrs).astype(np.float32) @ deltas
            )
        out = c_score.reshape(cross.shape[:2])
        out = out + s_score[:, None]
        out = out + v_score[None, :]
        return out + self.bias


class GemmSurrogate:
    """The kernel-latency (and optionally energy) surrogate.

    Wraps a :class:`GemmFeatureSpace` and fitted
    :class:`SurrogateModel` stacks; exposes the two prediction paths
    the integrations use:

    * :meth:`predict_time_grid` — factorized shapes x variants sweep,
      the fast inner-loop path;
    * :meth:`rank_variants` — predicted-ascending variant order for one
      shape, feeding the verified top-k re-evaluation in
      :func:`repro.autotune.kernel_tuner.surrogate_tune`.

    Instances are plain numpy state and pickle cleanly (the capacity
    sweep ships its surrogate to ``trial_map`` workers the same way).
    """

    def __init__(
        self,
        space: GemmFeatureSpace,
        latency: SurrogateModel,
        energy: Optional[SurrogateModel] = None,
    ) -> None:
        self.space = space
        self.latency = latency
        self.energy = energy
        self._fast = _FactorizedStack(latency)
        self._fast_energy = (
            _FactorizedStack(energy) if energy is not None else None
        )

    @property
    def chip(self) -> ChipSpec:
        return self.space.chip

    @property
    def dtype(self) -> DType:
        return self.space.dtype

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_fast")
        state.pop("_fast_energy")
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._fast = _FactorizedStack(self.latency)
        self._fast_energy = (
            _FactorizedStack(self.energy) if self.energy is not None
            else None
        )

    def predict_time_grid(
        self,
        shapes: Sequence[Tuple[int, int, int]],
        variants: Sequence[GemmVariant],
    ) -> np.ndarray:
        """Predicted kernel seconds, shape (S, V), float32."""
        sb, vb, cross = self.space.grid_blocks(shapes, variants)
        pred = self._fast.grid(sb, vb, cross)
        return np.exp2(pred) if self._fast.log_targets else pred

    def predict_energy_grid(
        self,
        shapes: Sequence[Tuple[int, int, int]],
        variants: Sequence[GemmVariant],
    ) -> np.ndarray:
        if self._fast_energy is None:
            raise RuntimeError("no energy model attached")
        sb, vb, cross = self.space.grid_blocks(shapes, variants)
        pred = self._fast_energy.grid(sb, vb, cross)
        return np.exp2(pred) if self._fast_energy.log_targets else pred

    def rank_variants(
        self,
        shape: Tuple[int, int, int],
        variants: Sequence[GemmVariant],
    ) -> np.ndarray:
        """Variant indices sorted by predicted time, fastest first.

        Stable sort: prediction ties resolve to the lower index, so the
        ranking is a pure function of (shape, variants, model state).
        """
        times = self.predict_time_grid([shape], variants)[0]
        return np.argsort(times, kind="stable")


__all__ = [
    "BoostedStumps",
    "GemmSurrogate",
    "RidgeRegressor",
    "SurrogateModel",
    "TrainReport",
]
