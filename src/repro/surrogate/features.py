"""Deterministic analytic feature extraction for the surrogates.

A surrogate is only as cheap as its features, and only as accurate as
the physics they encode.  The feature sets here are *roofline sketches*
of the exact models — log-scale shape terms, tile fill fractions, and
unadjusted compute/issue/local-memory time proxies — deliberately
leaving out the variant-dependent corrections the exact models apply
(pipeline efficiency, multi-context amortization, double-buffer
overlap).  Those corrections are what the regressor stack *learns* from
exact-model traces; the features just put it within a short, smooth
hop of the answer.

The GEMM feature space is built to be evaluated two ways with the same
element-wise formulas:

* :meth:`GemmFeatureSpace.pair_matrix` — one row per (shape, variant)
  pair, used for dataset construction and generic prediction;
* :meth:`GemmFeatureSpace.grid_blocks` — a (shapes x variants) sweep
  factorized into a shape block, a variant block, and the (small)
  cross-term grid.  Shape- and variant-only columns are computed once
  per *axis value* instead of once per point, which is what lets the
  linear part of the surrogate run in tens of nanoseconds per sweep
  point (see :class:`repro.surrogate.model.GemmSurrogate`).

Everything is a pure function of (ChipSpec, dtype, shapes, variants):
no randomness, no global state, float32 outputs with float64 shape-axis
precomputation.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.arch.specs import ChipSpec
from repro.kernels.gemm import GemmVariant, Stationarity, _dpe_config_for
from repro.tensors.dtypes import DType

# Column order of the 31-feature GEMM matrix.  Shape-only columns first,
# then variant-only, then cross terms — the factorized grid path depends
# on this layout.
GEMM_FEATURE_NAMES: Tuple[str, ...] = (
    # shape-only
    "log2_m", "log2_k", "log2_n",
    "m_fill", "k_fill", "n_fill",
    "log2_intensity",
    "log2_compute_base", "log2_issue_base", "compute_ge_issue",
    "log2_act_bytes", "log2_weight_bytes",
    # variant-only
    "st_input", "st_weight", "st_output",
    "log2_block_m", "log2_block_n", "log2_block_k",
    "broadcast", "prefetch", "double_buffer", "advanced",
    # cross
    "act_reads", "weight_reads",
    "log2_lm_base", "log2_max_base", "lm_slack",
    "is_lm_bound", "dbuf_x_lm", "dbuf_x_nonlm", "adv_x_issue",
)

GEMM_SHAPE_SLICE = slice(0, 12)
GEMM_VARIANT_SLICE = slice(12, 22)
GEMM_CROSS_SLICE = slice(22, 31)

# Streamed-operand re-read caps by stationarity, mirroring the blocking
# scheme in ``repro.kernels.gemm.estimate_gemm``: (activation cap over
# n-blocks, weight cap over m-blocks).
_READ_CAPS = {
    Stationarity.WEIGHT: (4.0, 1.0),
    Stationarity.INPUT: (1.0, 4.0),
    Stationarity.OUTPUT: (2.0, 2.0),
}

_F32 = np.float32


@dataclasses.dataclass(frozen=True)
class ShapeBlock:
    """Shape-axis features plus the raw arrays the cross terms need."""

    block: np.ndarray  # (S, 12) float32
    act_bytes: np.ndarray
    weight_bytes: np.ndarray
    out_bytes: np.ndarray
    m: np.ndarray
    n: np.ndarray
    log2_max2: np.ndarray  # max(compute, issue) base, log2 seconds
    one_minus_ci: np.ndarray  # 1 - compute_ge_issue


@dataclasses.dataclass(frozen=True)
class VariantBlock:
    """Variant-axis features plus the raw arrays the cross terms need."""

    block: np.ndarray  # (V, 10) float32
    inv_block_m: np.ndarray
    inv_block_n: np.ndarray
    act_cap: np.ndarray
    weight_cap: np.ndarray
    double_buffer: np.ndarray
    advanced: np.ndarray


class GemmFeatureSpace:
    """GEMM (shape, variant) -> feature rows for one (chip, dtype)."""

    def __init__(self, chip: ChipSpec, dtype: DType = DType.FP16) -> None:
        self.chip = chip
        self.dtype = dtype
        config = _dpe_config_for(chip)
        self.grid_side = max(1, int(round(math.sqrt(chip.num_pes))))
        self.tile_rows = config.tile_rows
        self.tile_cols = config.tile_cols
        self.k_elements = max(1, config.tile_k_bytes // dtype.bytes)
        self.peak_pe_flops = config.peak_flops(dtype)
        self.issue_rate = chip.issue.instructions_per_s
        self.in_bytes = dtype.bytes
        self.out_bytes_per_el = DType.FP32.bytes
        # Chip-aggregate local-memory drain rate: the exact model divides
        # bytes by num_pes then by per-PE bandwidth.
        self.lm_rate = chip.num_pes * chip.local_memory.bandwidth_bytes_per_s
        # Variant catalogs are fixed across a sweep; encoding one is a
        # Python loop over ~1000 dataclasses and would dominate the
        # factorized fast path if paid per call.  Keep the last few
        # encoded catalogs, keyed on sequence identity.
        self._variant_cache: List[Tuple[int, Sequence[GemmVariant], VariantBlock]] = []

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_variant_cache"] = []  # caches don't travel
        return state

    # -- axis blocks ---------------------------------------------------

    def shape_block(self, m, k, n) -> ShapeBlock:
        """Features for a vector of (m, k, n) shapes (float64 in)."""
        m = np.asarray(m, dtype=np.float64)
        k = np.asarray(k, dtype=np.float64)
        n = np.asarray(n, dtype=np.float64)
        g = float(self.grid_side)
        pm = np.ceil(m / g)
        pn = np.ceil(n / g)
        tr, tc, ke = self.tile_rows, self.tile_cols, self.k_elements
        m_tiles = np.ceil(pm / tr)
        k_tiles = np.ceil(k / ke)
        n_tiles = np.ceil(pn / tc)
        m_fill = pm / (m_tiles * tr)
        k_fill = k / (k_tiles * ke)
        n_fill = pn / (n_tiles * tc)
        per_pe_flops = 2.0 * pm * k * pn
        compute_base = per_pe_flops / (
            self.peak_pe_flops * m_fill * k_fill * n_fill
        )
        issue_base = (m_tiles * k_tiles * n_tiles) / self.issue_rate
        act_bytes = m * k * self.in_bytes
        weight_bytes = k * n * self.in_bytes
        out_bytes = m * n * self.out_bytes_per_el
        flops = 2.0 * m * k * n
        intensity = flops / (act_bytes + weight_bytes + out_bytes)
        ci = (compute_base >= issue_base).astype(np.float64)
        block = np.stack(
            [
                np.log2(m), np.log2(k), np.log2(n),
                m_fill, k_fill, n_fill,
                np.log2(intensity),
                np.log2(compute_base), np.log2(issue_base), ci,
                np.log2(act_bytes), np.log2(weight_bytes),
            ],
            axis=-1,
        ).astype(_F32)
        return ShapeBlock(
            block=block,
            act_bytes=act_bytes.astype(_F32),
            weight_bytes=weight_bytes.astype(_F32),
            out_bytes=out_bytes.astype(_F32),
            m=m.astype(_F32),
            n=n.astype(_F32),
            log2_max2=np.log2(np.maximum(compute_base, issue_base)).astype(_F32),
            one_minus_ci=(1.0 - ci).astype(_F32),
        )

    def variant_block(self, variants: Sequence[GemmVariant]) -> VariantBlock:
        """Features for a list of kernel variants (catalog-cached).

        The cache is keyed on the *sequence object*: pass the same list
        across calls (as the tuners do) to pay encoding once.  Mutating
        a cached list in place is not supported.
        """
        for key, ref, block in self._variant_cache:
            if key == id(variants) and ref is variants:
                return block
        block = self._encode_variants(variants)
        self._variant_cache.append((id(variants), variants, block))
        if len(self._variant_cache) > 4:
            self._variant_cache.pop(0)
        return block

    def _encode_variants(self, variants: Sequence[GemmVariant]) -> VariantBlock:
        rows = np.empty((len(variants), 10), dtype=np.float64)
        caps = np.empty((len(variants), 2), dtype=np.float64)
        for i, v in enumerate(variants):
            act_cap, weight_cap = _READ_CAPS[v.stationarity]
            rows[i] = (
                1.0 if v.stationarity == Stationarity.INPUT else 0.0,
                1.0 if v.stationarity == Stationarity.WEIGHT else 0.0,
                1.0 if v.stationarity == Stationarity.OUTPUT else 0.0,
                math.log2(v.block_m), math.log2(v.block_n),
                math.log2(v.block_k),
                float(v.broadcast_weights), float(v.prefetch),
                float(v.double_buffer), float(v.use_advanced_instructions),
            )
            caps[i] = (act_cap, weight_cap)
        return VariantBlock(
            block=rows.astype(_F32),
            inv_block_m=np.array(
                [1.0 / v.block_m for v in variants], dtype=_F32
            ),
            inv_block_n=np.array(
                [1.0 / v.block_n for v in variants], dtype=_F32
            ),
            act_cap=caps[:, 0].astype(_F32),
            weight_cap=caps[:, 1].astype(_F32),
            double_buffer=rows[:, 8].astype(_F32),
            advanced=rows[:, 9].astype(_F32),
        )

    # -- cross terms ---------------------------------------------------

    def cross_columns(
        self, shapes: ShapeBlock, variants: VariantBlock, grid: bool
    ) -> List[np.ndarray]:
        """The 9 cross-term columns, as a list of float32 arrays.

        With ``grid=True`` shape arrays broadcast as ``(S, 1)`` against
        variant arrays ``(V,)`` producing ``(S, V)`` columns; otherwise
        the two blocks must be row-aligned and columns are ``(N,)``.
        The element-wise formulas are identical either way.
        """
        ax = (lambda a: a[:, None]) if grid else (lambda a: a)
        m_blocks = np.ceil(ax(shapes.m) * variants.inv_block_m)
        n_blocks = np.ceil(ax(shapes.n) * variants.inv_block_n)
        act_reads = np.minimum(n_blocks, variants.act_cap)
        weight_reads = np.minimum(m_blocks, variants.weight_cap)
        lm_bytes = (
            ax(shapes.act_bytes) * act_reads
            + ax(shapes.weight_bytes) * weight_reads
            + ax(shapes.out_bytes)
        )
        log2_lm = np.log2(lm_bytes) - _F32(math.log2(self.lm_rate))
        lm_slack = log2_lm - ax(shapes.log2_max2)
        is_lm = (lm_slack >= 0.0).astype(_F32)
        nonlm = _F32(1.0) - is_lm
        log2_max = np.maximum(log2_lm, ax(shapes.log2_max2))
        return [
            act_reads,
            weight_reads,
            log2_lm,
            log2_max,
            lm_slack,
            is_lm,
            variants.double_buffer * is_lm,
            variants.double_buffer * nonlm,
            variants.advanced * (nonlm * ax(shapes.one_minus_ci)),
        ]

    # -- assembled matrices --------------------------------------------

    def pair_matrix(
        self,
        shapes: Sequence[Tuple[int, int, int]],
        variants: Sequence[GemmVariant],
    ) -> np.ndarray:
        """One feature row per aligned (shape, variant) pair."""
        if len(shapes) != len(variants):
            raise ValueError("shapes and variants must be row-aligned")
        mkn = np.asarray(shapes, dtype=np.float64).reshape(len(shapes), 3)
        sb = self.shape_block(mkn[:, 0], mkn[:, 1], mkn[:, 2])
        vb = self.variant_block(variants)
        cross = self.cross_columns(sb, vb, grid=False)
        return np.hstack(
            [sb.block, vb.block, np.stack(cross, axis=-1)]
        ).astype(_F32)

    def grid_blocks(
        self,
        shapes: Sequence[Tuple[int, int, int]],
        variants: Sequence[GemmVariant],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Factorized (shape block, variant block, cross grid) for a
        shapes x variants sweep; the cross grid is ``(S, V, 9)``."""
        mkn = np.asarray(shapes, dtype=np.float64).reshape(len(shapes), 3)
        sb = self.shape_block(mkn[:, 0], mkn[:, 1], mkn[:, 2])
        vb = self.variant_block(variants)
        cross = np.stack(
            self.cross_columns(sb, vb, grid=True), axis=-1
        )
        return sb.block, vb.block, cross


# -- cluster / power feature rows -------------------------------------

CAPACITY_POLICY_ORDER: Tuple[str, ...] = ("round_robin", "jsq", "po2", "locality")

CAPACITY_FEATURE_NAMES: Tuple[str, ...] = (
    "log2_qps", "log2_mean_service_s", "log2_slo_s",
    "offered_load", "jitter_sigma",
) + tuple(f"policy_{p}" for p in CAPACITY_POLICY_ORDER)


def capacity_feature_row(
    policy: str, offered_qps: float, mean_service_s: float,
    p99_slo_s: float, jitter_sigma: float,
) -> np.ndarray:
    """Features for a replicas-needed query (one row, float64)."""
    if policy not in CAPACITY_POLICY_ORDER:
        raise ValueError(f"unknown policy {policy!r}")
    onehot = [1.0 if policy == p else 0.0 for p in CAPACITY_POLICY_ORDER]
    return np.array(
        [
            math.log2(offered_qps), math.log2(mean_service_s),
            math.log2(p99_slo_s), offered_qps * mean_service_s,
            jitter_sigma,
        ]
        + onehot,
        dtype=np.float64,
    )


POWER_FEATURE_NAMES: Tuple[str, ...] = (
    "log2_mean_service_s", "log2_ceiling_qps", "log2_replicas",
    "log2_slo_s", "log2_duration_s", "jitter_sigma",
)


def power_feature_row(
    mean_service_s: float, replicas: int, p99_slo_s: float,
    duration_s: float, jitter_sigma: float,
) -> np.ndarray:
    """Features for a max-QPS-fraction query (one row, float64)."""
    ceiling = replicas / mean_service_s
    return np.array(
        [
            math.log2(mean_service_s), math.log2(ceiling),
            math.log2(replicas), math.log2(p99_slo_s),
            math.log2(duration_s), jitter_sigma,
        ],
        dtype=np.float64,
    )


# -- executor (whole-graph) feature rows -------------------------------

EXECUTOR_FEATURE_NAMES: Tuple[str, ...] = (
    # graph-shape terms (chip-independent)
    "log2_num_ops", "log2_num_fc", "log2_batch",
    "log2_fc_flops", "log2_other_flops",
    "log2_dense_bytes", "log2_embedding_bytes", "log2_io_bytes",
    # chip-adjusted roofline bases (log2 seconds)
    "log2_fc_compute_s", "log2_fc_issue_s", "log2_fc_lm_s",
    "log2_max_fc_op_s",
    "log2_dense_dram_s", "log2_io_sram_s", "log2_io_noc_s",
    "log2_other_vector_s",
    # chip axes and capacity pressure
    "log2_num_pes", "log2_gemm_to_simd",
    "log2_dense_over_sram", "weights_fit_sram",
)


@dataclasses.dataclass(frozen=True)
class GraphSummary:
    """Chip-independent footprint of one model graph at one batch.

    The codesign DSE scores each (candidate chip, zoo model) pair; the
    graph walk is the expensive chip-*independent* half, so it is
    summarized once per model and reused across every candidate.
    """

    name: str
    batch: int
    num_ops: int
    num_fc: int
    fc_mkn: Tuple[Tuple[int, int, int], ...]
    fc_flops: float
    other_flops: float
    dense_bytes: float  # non-embedding weight bytes
    embedding_bytes: float
    io_bytes: float  # sum of per-op input+output bytes


def summarize_graph(graph, batch: int) -> GraphSummary:
    """Walk an :class:`~repro.graph.graph.OpGraph` once into the
    chip-independent features the executor surrogate needs."""
    fc_mkn = []
    fc_flops = 0.0
    total_flops = 0.0
    io_bytes = 0.0
    for op in graph.ops:
        total_flops += op.flops()
        io_bytes += op.input_bytes() + op.output_bytes()
        gemm = op.attr("gemm")
        if gemm is not None:
            fc_mkn.append((gemm.m, gemm.k, gemm.n))
            fc_flops += 2.0 * gemm.m * gemm.k * gemm.n
    embedding = float(graph.embedding_bytes())
    return GraphSummary(
        name=graph.name,
        batch=batch,
        num_ops=len(graph.ops),
        num_fc=len(fc_mkn),
        fc_mkn=tuple(fc_mkn),
        fc_flops=fc_flops,
        other_flops=max(0.0, total_flops - fc_flops),
        dense_bytes=float(graph.weight_bytes()) - embedding,
        embedding_bytes=embedding,
        io_bytes=io_bytes,
    )


def _safe_log2(value: float) -> float:
    return math.log2(max(float(value), 1e-30))


def executor_feature_row(
    chip: ChipSpec, summary: GraphSummary, dtype: DType = DType.FP16
) -> np.ndarray:
    """Features for a whole-graph latency query (one row, float64).

    Like the GEMM features, these are unadjusted roofline sketches — the
    sum of per-FC compute/issue/local-memory base times from
    :class:`GemmFeatureSpace`, graph-level DRAM/SRAM/NoC streaming
    bases, and the chip axes the codesign space sweeps.  Pipeline
    overlap, scheduling and TBE behaviour are left for the regressor to
    learn from exact :class:`~repro.perf.executor.Executor` traces.
    """
    space = GemmFeatureSpace(chip, dtype)
    if summary.fc_mkn:
        mkn = np.asarray(summary.fc_mkn, dtype=np.float64)
        sb = space.shape_block(mkn[:, 0], mkn[:, 1], mkn[:, 2])
        compute = np.exp2(sb.block[:, 7].astype(np.float64))
        issue = np.exp2(sb.block[:, 8].astype(np.float64))
        lm_bytes = (
            sb.act_bytes.astype(np.float64)
            + sb.weight_bytes.astype(np.float64)
            + sb.out_bytes.astype(np.float64)
        )
        fc_compute_s = float(compute.sum())
        fc_issue_s = float(issue.sum())
        fc_lm_s = float(lm_bytes.sum()) / space.lm_rate
        max_fc_s = float(np.maximum(compute, issue).max())
    else:
        fc_compute_s = fc_issue_s = fc_lm_s = max_fc_s = 0.0
    dram_bw = chip.dram.bandwidth_bytes_per_s
    sram = chip.sram
    return np.array(
        [
            _safe_log2(summary.num_ops),
            _safe_log2(summary.num_fc),
            _safe_log2(summary.batch),
            _safe_log2(summary.fc_flops),
            _safe_log2(summary.other_flops),
            _safe_log2(summary.dense_bytes),
            _safe_log2(summary.embedding_bytes),
            _safe_log2(summary.io_bytes),
            _safe_log2(fc_compute_s),
            _safe_log2(fc_issue_s),
            _safe_log2(fc_lm_s),
            _safe_log2(max_fc_s),
            _safe_log2(summary.dense_bytes / dram_bw),
            _safe_log2(summary.io_bytes / sram.bandwidth_bytes_per_s),
            _safe_log2(summary.io_bytes / chip.noc_bandwidth_bytes_per_s),
            _safe_log2(summary.other_flops / chip.vector.peak(DType.FP32)),
            _safe_log2(chip.num_pes),
            _safe_log2(chip.gemm_to_simd_ratio()),
            _safe_log2(summary.dense_bytes / sram.capacity_bytes),
            1.0 if summary.dense_bytes <= sram.capacity_bytes else 0.0,
        ],
        dtype=np.float64,
    )


_FEATURE_EXPORTS: Dict[str, Tuple[str, ...]] = {
    "gemm": GEMM_FEATURE_NAMES,
    "capacity": CAPACITY_FEATURE_NAMES,
    "power": POWER_FEATURE_NAMES,
    "executor": EXECUTOR_FEATURE_NAMES,
}


__all__ = [
    "CAPACITY_FEATURE_NAMES",
    "CAPACITY_POLICY_ORDER",
    "EXECUTOR_FEATURE_NAMES",
    "GEMM_CROSS_SLICE",
    "GEMM_FEATURE_NAMES",
    "GEMM_SHAPE_SLICE",
    "GEMM_VARIANT_SLICE",
    "GemmFeatureSpace",
    "GraphSummary",
    "POWER_FEATURE_NAMES",
    "ShapeBlock",
    "VariantBlock",
    "capacity_feature_row",
    "executor_feature_row",
    "power_feature_row",
    "summarize_graph",
]
