"""Learned performance surrogates with exact-model verification
(ROADMAP item 3; NeuroScalar / AutoDNNchip, PAPERS.md).

The co-design loop is throttled by the cost of exact performance
evaluation: the kernel cost model is ~10 us per point, a capacity probe
is a full seeded cluster simulation.  This package implements the
fast/accurate split those papers argue for:

- :mod:`repro.surrogate.features` — deterministic analytic features
  (roofline sketches) from ``ChipSpec`` + shape/variant descriptors;
- :mod:`repro.surrogate.dataset` — seeded trace collection off the
  exact models, with ``fastsim.memo`` recorder hooks so memoized exact
  evaluations double as training rows;
- :mod:`repro.surrogate.model` — a pure-numpy, bit-for-bit-reproducible
  ridge + gradient-boosted-stumps stack with measured holdout error
  bands, plus the factorized GEMM sweep path (>=100x cheaper per
  evaluation than the exact kernel model);
- :mod:`repro.surrogate.verify` — the soundness layer: surrogates rank
  or pick starting points, the exact model re-evaluates and certifies,
  and every returned answer is exact-evaluated.

Integrations (all opt-in via ``use_surrogate=``, byte-identical when
off): ``autotune.kernel_tuner.surrogate_tune`` / ``autotune.tuner``,
``cluster.capacity.replicas_needed``, and
``power.cluster_link.power_limited_capacity_sweep``.  CLI:
``python -m repro surrogate [--smoke|--train|--sweep]``.

This package never imports ``repro.autotune`` at module level — the
tuner imports *us*, and the cluster/power integrations import their
surrogate helpers lazily inside their ``use_surrogate`` branches.
"""

from repro.surrogate.dataset import (
    DatasetRecorder,
    SurrogateDataset,
    collect_executor_dataset,
    collect_executor_graph_dataset,
    collect_gemm_dataset,
    train_capacity_surrogate,
    train_executor_surrogate,
    train_gemm_surrogate,
    train_power_surrogate,
)
from repro.surrogate.features import (
    EXECUTOR_FEATURE_NAMES,
    GEMM_FEATURE_NAMES,
    GemmFeatureSpace,
    GraphSummary,
    capacity_feature_row,
    executor_feature_row,
    power_feature_row,
    summarize_graph,
)
from repro.surrogate.model import (
    BoostedStumps,
    GemmSurrogate,
    RidgeRegressor,
    SurrogateModel,
    TrainReport,
)
from repro.surrogate.verify import (
    VerifiedArgmin,
    argmin_match,
    verified_argmin,
    verified_max_feasible,
    verified_min_feasible,
)

__all__ = [
    "BoostedStumps",
    "DatasetRecorder",
    "EXECUTOR_FEATURE_NAMES",
    "GEMM_FEATURE_NAMES",
    "GemmFeatureSpace",
    "GemmSurrogate",
    "GraphSummary",
    "RidgeRegressor",
    "SurrogateDataset",
    "SurrogateModel",
    "TrainReport",
    "VerifiedArgmin",
    "argmin_match",
    "capacity_feature_row",
    "collect_executor_dataset",
    "collect_executor_graph_dataset",
    "collect_gemm_dataset",
    "executor_feature_row",
    "power_feature_row",
    "summarize_graph",
    "train_capacity_surrogate",
    "train_executor_surrogate",
    "train_gemm_surrogate",
    "train_power_surrogate",
    "verified_argmin",
    "verified_max_feasible",
    "verified_min_feasible",
]
