"""Region-scale disaster drills: outages, brownouts, partitions, rollouts.

The fleet tier's fault vocabulary is one level up from the chaos tier's:
instead of "host 3 dies" it speaks "region eu-west is dark for six
seconds".  Each :class:`RegionEvent` is translated into the cluster-level
:class:`~repro.cluster.simulator.Injection` schedule its region executes
— *reusing the correlated builders of* :mod:`repro.chaos.domains`, so a
region outage is literally every rack of the region failing together and
a region brownout is a subset of its power domains tripping — plus the
ground-truth unreachable intervals the health probes observe:

* ``outage`` — the whole region goes dark (grid loss, fiber cut at the
  region boundary): every rack fails via
  :func:`~repro.chaos.domains.rack_failure`, and probes fail.
* ``brownout`` — partial power loss: ``magnitude`` is the fraction of
  the region's power domains whose breakers trip
  (:func:`~repro.chaos.domains.power_domain_trip` with a genuine budget
  breach).  The region stays probe-healthy — degraded, not dark — so
  failover does *not* engage and the region's own defenses (admission,
  brownout ladder) carry the event.
* ``partition`` — the region is severed from the rest of the planet but
  its own users still reach it (anycast keeps local traffic local).
  Probes fail, so the defended arm stops spilling *into* it; nothing is
  injected into the region's own cluster.

:func:`global_firmware_rollout` rides
:class:`repro.reliability.firmware.RolloutPlan` region by region: each
region restarts in concurrency-capped waves
(:func:`~repro.chaos.domains.firmware_rollout`), regions are serialized
``region_gap_s`` apart — the canary-region structure that contains a
regressed build to the first region when the rollback lands before the
second region starts.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.domains import (
    firmware_rollout,
    merge_schedules,
    power_domain_trip,
    rack_failure,
)
from repro.cluster.simulator import Injection
from repro.fleet_global.regions import FleetConfig, RegionSpec
from repro.reliability.firmware import RolloutPlan, emergency_rollout

EVENT_KINDS = ("outage", "brownout", "partition")


@dataclasses.dataclass(frozen=True)
class RegionEvent:
    """One region-scale incident in a drill."""

    region: str
    kind: str
    at_s: float
    duration_s: float
    magnitude: float = 1.0  # brownout: fraction of power domains tripped

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown region event kind {self.kind!r}; "
                f"choose one of {EVENT_KINDS}"
            )
        if self.at_s < 0:
            raise ValueError("event time must be non-negative")
        if self.duration_s <= 0:
            raise ValueError("event duration must be positive")
        if not (0 < self.magnitude <= 1):
            raise ValueError("magnitude must be in (0, 1]")

    @property
    def clear_s(self) -> float:
        return self.at_s + self.duration_s


@dataclasses.dataclass(frozen=True)
class DrillSchedule:
    """A drill compiled against one fleet: per-region cluster injections
    plus the ground truth the health probes see."""

    events: Tuple[RegionEvent, ...]
    injections: Dict[str, Tuple[Injection, ...]]
    # Outages: the region is gone — home traffic must fail over and
    # spill must avoid it.
    unreachable: Dict[str, Tuple[Tuple[float, float], ...]]
    # Partitions: the region is fine for its own anycast traffic but
    # invisible to the rest of the planet — only spill-in is blocked.
    isolated: Dict[str, Tuple[Tuple[float, float], ...]]

    def injections_for(self, region: str) -> Tuple[Injection, ...]:
        return self.injections.get(region, ())

    def unreachable_for(self, region: str) -> Tuple[Tuple[float, float], ...]:
        return self.unreachable.get(region, ())

    def isolated_for(self, region: str) -> Tuple[Tuple[float, float], ...]:
        return self.isolated.get(region, ())

    @property
    def first_fault_s(self) -> float:
        return min((e.at_s for e in self.events), default=0.0)

    @property
    def all_clear_s(self) -> float:
        return max((e.clear_s for e in self.events), default=0.0)


def _region_outage(spec: RegionSpec, event: RegionEvent) -> List[Injection]:
    topology = spec.topology()
    return merge_schedules(*(
        rack_failure(topology, rack=rack, at_s=event.at_s,
                     duration_s=event.duration_s)
        for rack in range(topology.num_racks)
    ))


def _region_brownout(spec: RegionSpec, event: RegionEvent) -> List[Injection]:
    topology = spec.topology()
    tripped = max(1, round(event.magnitude * topology.num_power_domains))
    # The trip is sourced from the section 5.3 power model: a demand
    # spike 20% over whatever budget the builder derives opens the
    # breaker; the builder refuses to trip within budget.
    schedules = []
    for domain in range(min(tripped, topology.num_power_domains)):
        schedule = power_domain_trip(
            topology, domain=domain, at_s=event.at_s,
            duration_s=event.duration_s,
            demand_w_per_server=1.2 * 10_000.0,
            budget_w_per_server=10_000.0,
        )
        if not schedule:
            raise AssertionError("a 20% overdraw must trip the breaker")
        schedules.append(schedule)
    return merge_schedules(*schedules)


def build_drill(
    fleet: FleetConfig, events: Sequence[RegionEvent]
) -> DrillSchedule:
    """Compile region events into per-region schedules and probe truth."""
    by_region: Dict[str, List[Injection]] = {}
    unreachable: Dict[str, List[Tuple[float, float]]] = {}
    isolated: Dict[str, List[Tuple[float, float]]] = {}
    for event in events:
        spec = fleet.regions[fleet.region_index(event.region)]
        if event.kind == "outage":
            schedule = _region_outage(spec, event)
            unreachable.setdefault(event.region, []).append(
                (event.at_s, event.clear_s)
            )
        elif event.kind == "brownout":
            schedule = _region_brownout(spec, event)
        else:  # partition: spill-in blocked, healthy inside
            schedule = []
            isolated.setdefault(event.region, []).append(
                (event.at_s, event.clear_s)
            )
        if schedule:
            merged = by_region.setdefault(event.region, [])
            by_region[event.region] = merge_schedules(merged, schedule)
    return DrillSchedule(
        events=tuple(events),
        injections={
            name: tuple(schedule) for name, schedule in by_region.items()
        },
        unreachable={
            name: tuple(sorted(spans))
            for name, spans in unreachable.items()
        },
        isolated={
            name: tuple(sorted(spans))
            for name, spans in isolated.items()
        },
    )


def region_outage_drill(
    fleet: FleetConfig,
    region: Optional[str] = None,
    at_s: Optional[float] = None,
    duration_s: Optional[float] = None,
) -> DrillSchedule:
    """The headline drill: one full region dark across its traffic peak.

    Defaults target the *first* region (its diurnal peak sits mid-run
    with ``phase_h=0``: the worst moment to lose it) from 30% to 60% of
    the simulated day.
    """
    name = region or fleet.regions[0].name
    start = 0.3 * fleet.duration_s if at_s is None else at_s
    length = 0.3 * fleet.duration_s if duration_s is None else duration_s
    return build_drill(
        fleet, [RegionEvent(region=name, kind="outage",
                            at_s=start, duration_s=length)]
    )


def global_firmware_rollout(
    fleet: FleetConfig,
    at_s: float,
    region_gap_s: float,
    restart_s: float = 1.0,
    wave_gap_s: float = 2.0,
    plan: Optional[RolloutPlan] = None,
    regression_slow: float = 1.0,
    rollback_at_s: Optional[float] = None,
) -> Dict[str, Tuple[Injection, ...]]:
    """A staged *global* rollout: region-by-region, waves within each.

    Region ``i`` starts its :func:`~repro.chaos.domains.firmware_rollout`
    wave schedule at ``at_s + i * region_gap_s``; every wave honors the
    plan's restart-safety concurrency cap.  With ``regression_slow > 1``
    the build is bad, and a ``rollback_at_s`` that lands before region 1
    starts demonstrates the canary-region payoff: only the first
    region's hosts ever serve degraded, later regions install the fixed
    build from the start.
    """
    if region_gap_s < 0:
        raise ValueError("region gap must be non-negative")
    plan = plan or emergency_rollout()
    schedules: Dict[str, Tuple[Injection, ...]] = {}
    for index, spec in enumerate(fleet.regions):
        schedules[spec.name] = tuple(firmware_rollout(
            spec.topology(),
            at_s=at_s + index * region_gap_s,
            restart_s=restart_s,
            wave_gap_s=wave_gap_s,
            plan=plan,
            regression_slow=regression_slow,
            rollback_at_s=rollback_at_s,
        ))
    return schedules


__all__ = [
    "DrillSchedule",
    "EVENT_KINDS",
    "RegionEvent",
    "build_drill",
    "global_firmware_rollout",
    "region_outage_drill",
]
