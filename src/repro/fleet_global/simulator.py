"""The global fleet simulator: anycast LB over per-region clusters.

The hierarchy the paper's serving fleet actually runs: a global anycast
front door routes each user request to its home region; each region is
one :class:`~repro.cluster.simulator.ClusterSimulator` deployment (with
its own injections, power throttle, and — on the defended arm — the
full chaos defense suite and brownout ladder).  The composition is a
deterministic two-pass design:

1. **LB pass.**  Per-region diurnal streams (timezone-phased via
   ``phase_h``) are merged in global arrival order and routed one
   request at a time through :class:`~repro.fleet_global.failover
   .SpillRouter`: home when the probes say the home region is healthy,
   spilled to the least-loaded healthy region when not (paying the
   inter-region forward leg as a shifted arrival), shed at the LB when
   the whole planet is full or dark.
2. **Region pass.**  Each region's final stream — home traffic plus
   whatever spilled in — runs through its own seeded cluster
   simulation.  Regions are independent given their streams, so the
   passes compose without a global event heap while staying bit-for-bit
   deterministic.

The :class:`FleetReport` then reads each region's event log back and
attributes every terminal outcome to the request's *origin* region,
enforcing global conservation::

    served + shed + timed_out + spilled_served == offered

with ``shed`` including LB sheds and ``spilled_served`` latencies
carrying both inter-region legs.  An undefended run (no monitors, no
spill, no defenses) sends traffic at a dead region for the whole
outage — the baseline the capacity study measures overprovision
against.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.brownout import BrownoutController, default_ladder
from repro.chaos.defense import DefenseConfig, DefenseRuntime
from repro.chaos.domains import merge_schedules
from repro.cluster.admission import AdmissionConfig
from repro.cluster.service import ServiceModel, default_service_model
from repro.cluster.simulator import (
    ClusterConfig,
    ClusterReport,
    Injection,
    run_cluster,
)
from repro.fleet_global.drills import DrillSchedule
from repro.fleet_global.failover import (
    FailoverConfig,
    HealthMonitor,
    SpillRouter,
)
from repro.fleet_global.regions import FleetConfig
from repro.obs.metrics import MetricsRegistry, active
from repro.serving.workload import (
    Request,
    diurnal_poisson_stream,
    with_priorities,
)

# Seed offsets separating the fleet's independent random purposes
# (stream generation, priority assignment, cluster dynamics) so no two
# draw from the same generator state.
_STREAM_SEED = 0
_PRIORITY_SEED = 101
_CLUSTER_SEED = 211

TERMINAL_KINDS = ("serve", "shed", "timeout")


@dataclasses.dataclass(frozen=True)
class RegionOutcome:
    """One region's run, attributed by request *origin*.

    ``offered`` counts the requests that originated here (its users);
    ``served`` the ones its own cluster answered, ``spilled_served`` the
    ones another region answered after failover.  Conservation holds
    per region: ``served + spilled_served + shed + timed_out ==
    offered``.
    """

    name: str
    offered: int
    served: int
    spilled_served: int
    shed: int
    timed_out: int
    lb_shed: int
    spilled_in_served: int  # foreign requests this region answered
    detection_lag_s: float  # inf when the region never went down
    report: ClusterReport

    def __post_init__(self) -> None:
        if (self.served + self.spilled_served + self.shed + self.timed_out
                != self.offered):
            raise ValueError(
                f"region {self.name} conservation violated: "
                f"{self.served} + {self.spilled_served} + {self.shed} "
                f"+ {self.timed_out} != {self.offered}"
            )

    @property
    def loss_fraction(self) -> float:
        return (
            (self.shed + self.timed_out) / self.offered
            if self.offered else 0.0
        )


@dataclasses.dataclass(frozen=True)
class FleetReport:
    """One global fleet run: per-origin outcomes under conservation."""

    defended: bool
    seed: int
    duration_s: float
    offered: int
    served: int
    spilled_served: int
    shed: int
    timed_out: int
    lb_shed: int
    latencies_s: Tuple[float, ...]
    regions: Tuple[RegionOutcome, ...]
    spill_one_way_s: float

    def __post_init__(self) -> None:
        if (self.served + self.shed + self.timed_out + self.spilled_served
                != self.offered):
            raise ValueError(
                "fleet conservation violated: "
                f"{self.served} served + {self.shed} shed + "
                f"{self.timed_out} timed out + "
                f"{self.spilled_served} spilled != {self.offered}"
            )
        if self.lb_shed > self.shed:
            raise ValueError("LB sheds are a subset of sheds")

    @property
    def answered(self) -> int:
        """Requests that got a response, wherever it was served."""
        return self.served + self.spilled_served

    @property
    def loss_fraction(self) -> float:
        return (
            (self.shed + self.timed_out) / self.offered
            if self.offered else 0.0
        )

    @property
    def spill_fraction(self) -> float:
        return self.spilled_served / self.offered if self.offered else 0.0

    def latency_percentile(self, percentile: float) -> float:
        """Exact global-latency percentile over every answered request
        (spilled answers already carry both inter-region legs)."""
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        index = min(
            len(ordered) - 1,
            int(round(percentile / 100 * (len(ordered) - 1))),
        )
        return ordered[index]

    @property
    def p99_latency_s(self) -> float:
        return self.latency_percentile(99)

    @property
    def p50_latency_s(self) -> float:
        return self.latency_percentile(50)

    def meets_slo(
        self, p99_slo_s: float, max_loss_fraction: float = 0.0
    ) -> bool:
        """Global SLO attainment: P99 in budget, losses bounded."""
        return (
            self.p99_latency_s <= p99_slo_s
            and self.loss_fraction <= max_loss_fraction
        )

    def region(self, name: str) -> RegionOutcome:
        for outcome in self.regions:
            if outcome.name == name:
                return outcome
        raise KeyError(f"no region named {name!r}")

    def summary(self) -> str:
        arm = "defended" if self.defended else "undefended"
        lines = [
            f"fleet ({arm}): offered={self.offered} "
            f"served={self.served} spilled={self.spilled_served} "
            f"shed={self.shed} (lb={self.lb_shed}) "
            f"timed_out={self.timed_out} "
            f"loss={self.loss_fraction:.2%}\n"
            f"p50={self.p50_latency_s * 1e3:.1f} ms "
            f"p99={self.p99_latency_s * 1e3:.1f} ms"
        ]
        for outcome in self.regions:
            lag = (f"{outcome.detection_lag_s:.2f}s"
                   if outcome.detection_lag_s != float("inf") else "-")
            lines.append(
                f"  {outcome.name:<10} offered={outcome.offered:>5} "
                f"served={outcome.served:>5} "
                f"spilled_out={outcome.spilled_served:>4} "
                f"spilled_in={outcome.spilled_in_served:>4} "
                f"loss={outcome.loss_fraction:6.2%} detect={lag}"
            )
        return "\n".join(lines)


def _region_streams(
    config: FleetConfig, defended: bool
) -> List[List[Request]]:
    """Per-region diurnal arrivals, seeded independently per region.

    The defended arm additionally tiers each stream by priority (for
    the brownout ladder) — a seeded draw independent of arrival timing,
    so both arms see identical arrival processes.
    """
    streams: List[List[Request]] = []
    for index, spec in enumerate(config.regions):
        stream = diurnal_poisson_stream(
            config.traffic_model(spec),
            duration_s=config.duration_s,
            samples_per_request=config.samples_per_request,
            seed=config.seed + _STREAM_SEED + index,
        )
        if defended:
            stream = with_priorities(
                stream, config.priority_weights,
                seed=config.seed + _PRIORITY_SEED + index,
            )
        streams.append(stream)
    return streams


def _build_monitors(
    config: FleetConfig,
    drill: Optional[DrillSchedule],
    failover: FailoverConfig,
) -> Tuple[List[Optional[HealthMonitor]], List[Optional[HealthMonitor]]]:
    """(home, spill) probe monitors per region.

    Home failover reacts to outages only; spill eligibility also honors
    partitions (a partitioned region serves its own users but cannot be
    reached from other regions' front doors).
    """
    horizon = config.duration_s
    home: List[Optional[HealthMonitor]] = []
    spill: List[Optional[HealthMonitor]] = []
    for spec in config.regions:
        down = drill.unreachable_for(spec.name) if drill else ()
        cut = drill.isolated_for(spec.name) if drill else ()
        home.append(
            HealthMonitor(down, horizon, failover) if down else None
        )
        both = tuple(sorted((*down, *cut)))
        spill.append(
            HealthMonitor(both, horizon, failover) if both else None
        )
    return home, spill


def run_fleet(
    config: FleetConfig,
    drill: Optional[DrillSchedule] = None,
    defended: bool = False,
    failover: Optional[FailoverConfig] = None,
    service: Optional[ServiceModel] = None,
    extra_injections: Optional[Dict[str, Sequence[Injection]]] = None,
    registry: Optional[MetricsRegistry] = None,
    engine: str = "fast",
) -> FleetReport:
    """Run the global fleet once and return the attributed report.

    ``defended=False`` is the pre-fleet world: no probes, no spill, no
    defenses — the LB keeps sending a dead region its traffic and the
    loss lands as cluster sheds/timeouts.  ``defended=True`` arms
    probe-driven failover with capacity spill at the front door and the
    chaos-tier defense suite plus brownout ladder inside every region.
    Power-budget throttles (physics, not policy) apply to both arms.
    ``extra_injections`` layers additional per-region schedules (e.g. a
    staged global firmware rollout) over the drill's.
    """
    failover = failover or FailoverConfig()
    service = service or default_service_model()
    streams = _region_streams(config, defended)
    offered = sum(len(stream) for stream in streams)
    num_regions = len(config.regions)

    if defended:
        home_monitors, spill_monitors = _build_monitors(
            config, drill, failover
        )
    else:
        home_monitors = [None] * num_regions
        spill_monitors = [None] * num_regions
    capacity_requests = [
        spec.replicas * service.capacity_per_replica() * config.duration_s
        for spec in config.regions
    ]
    router = SpillRouter(
        home_monitors,
        [spec.replicas for spec in config.regions],
        capacity_requests,
        failover,
        spill_monitors=spill_monitors,
    )

    # LB pass: one global chronological sweep.  The sort key is total
    # (time, origin region, origin index), so the assignment sequence —
    # and with it every downstream stream — is a pure function of the
    # seed and the drill.
    order = sorted(
        (request.arrival_s, origin, index)
        for origin, stream in enumerate(streams)
        for index, request in enumerate(stream)
    )
    # Per destination region: the final stream plus, aligned by index,
    # each request's (origin region, spilled) attribution tag.
    dest_streams: List[List[Request]] = [[] for _ in range(num_regions)]
    dest_tags: List[List[Tuple[int, bool]]] = [[] for _ in range(num_regions)]
    lb_shed_by_origin = [0] * num_regions
    for arrival_s, origin, index in order:
        assignment = router.assign(origin, arrival_s)
        if assignment.lb_shed:
            lb_shed_by_origin[origin] += 1
            continue
        request = streams[origin][index]
        dest = assignment.region
        arrival = request.arrival_s
        if assignment.spilled:
            arrival += failover.spill_one_way_s
        bucket = dest_streams[dest]
        # Direct construction instead of ``dataclasses.replace`` — this
        # re-stamp runs once per routed request fleet-wide and the
        # field-introspecting replace() dominated the LB pass.
        bucket.append(Request(
            arrival_s=arrival,
            samples=request.samples,
            request_id=len(bucket),
            priority=request.priority,
        ))
        dest_tags[dest].append((origin, assignment.spilled))

    # Region pass: independent seeded cluster runs.
    extra_injections = extra_injections or {}
    reports: List[ClusterReport] = []
    for index, spec in enumerate(config.regions):
        schedule: Sequence[Injection] = (
            drill.injections_for(spec.name) if drill else ()
        )
        extra = extra_injections.get(spec.name, ())
        if extra:
            schedule = merge_schedules(schedule, extra)
        cluster_config = ClusterConfig(
            replicas=spec.replicas,
            num_hosts=spec.num_hosts,
            policy=config.policy,
            p99_slo_s=config.p99_slo_s,
            admission=AdmissionConfig(),
            seed=config.seed + _CLUSTER_SEED + index,
        )
        brownout = BrownoutController(default_ladder()) if defended else None
        reports.append(run_cluster(
            cluster_config, service, dest_streams[index],
            registry=registry,
            throttle=spec.throttle(),
            defense=(
                DefenseRuntime(DefenseConfig.full(deadline_s=0.3))
                if defended else None
            ),
            injections=schedule,
            brownout=brownout,
            engine=engine,
        ))

    # Attribution pass: read each region's event log back and charge
    # every terminal outcome to the request's origin region.
    served_o = [0] * num_regions
    spilled_served_o = [0] * num_regions
    shed_o = list(lb_shed_by_origin)
    timed_out_o = [0] * num_regions
    spilled_in_served = [0] * num_regions
    latencies: List[float] = []
    round_trip = 2.0 * failover.spill_one_way_s
    for dest, report in enumerate(reports):
        tags = dest_tags[dest]
        for time_s, kind, index in report.event_log:
            if kind not in TERMINAL_KINDS:
                continue
            origin, spilled = tags[index]
            if kind == "serve":
                latency = time_s - dest_streams[dest][index].arrival_s
                if spilled:
                    spilled_served_o[origin] += 1
                    spilled_in_served[dest] += 1
                    latencies.append(latency + round_trip)
                else:
                    served_o[origin] += 1
                    latencies.append(latency)
            elif kind == "shed":
                shed_o[origin] += 1
            else:
                timed_out_o[origin] += 1

    outcomes = tuple(
        RegionOutcome(
            name=spec.name,
            offered=len(streams[index]),
            served=served_o[index],
            spilled_served=spilled_served_o[index],
            shed=shed_o[index],
            timed_out=timed_out_o[index],
            lb_shed=lb_shed_by_origin[index],
            spilled_in_served=spilled_in_served[index],
            detection_lag_s=(
                home_monitors[index].detection_lag_s()
                if home_monitors[index] is not None else float("inf")
            ),
            report=reports[index],
        )
        for index, spec in enumerate(config.regions)
    )
    fleet_report = FleetReport(
        defended=defended,
        seed=config.seed,
        duration_s=config.duration_s,
        offered=offered,
        served=sum(served_o),
        spilled_served=sum(spilled_served_o),
        shed=sum(shed_o),
        timed_out=sum(timed_out_o),
        lb_shed=sum(lb_shed_by_origin),
        latencies_s=tuple(latencies),
        regions=outcomes,
        spill_one_way_s=failover.spill_one_way_s,
    )
    obs = active(registry)
    if obs.enabled:
        arm = "defended" if defended else "undefended"
        obs.gauge(f"fleet.{arm}.p99_latency_s").set(
            fleet_report.p99_latency_s
        )
        obs.gauge(f"fleet.{arm}.loss_fraction").set(
            fleet_report.loss_fraction
        )
        obs.gauge(f"fleet.{arm}.spill_fraction").set(
            fleet_report.spill_fraction
        )
        obs.counter(f"fleet.{arm}.lb_shed").inc(fleet_report.lb_shed)
    return fleet_report


__all__ = [
    "FleetReport",
    "RegionOutcome",
    "TERMINAL_KINDS",
    "run_fleet",
]
