"""The region-outage capacity study: hosts per region to survive one.

The ROADMAP question, answered in the fleet's own units: *how many
hosts per region does it take to serve N million users at the P99 SLO
through a full region outage?*  Three arms per candidate size:

* **baseline** — no outage, no defenses: the smallest size that serves
  the diurnal day at SLO is what capacity planning would buy with no
  disaster budget;
* **undefended** — the headline drill (one region dark across its
  traffic peak) with failover off: the LB keeps sending the dead
  region its traffic, and the study shows no affordable size holds the
  SLO — you cannot buy your way out of an outage without failover;
* **defended** — the same drill with probe-driven failover, capacity
  spill, and the chaos defense suite armed: the smallest size whose
  surviving regions absorb the dead region's spilled peak.

The **overprovision fraction** — (defended size − baseline size) /
baseline size — is the price of region-loss tolerance, the number the
paper's productionization story turns on.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple

from repro.fastsim.trials import trial_map
from repro.fleet_global.drills import region_outage_drill
from repro.fleet_global.failover import FailoverConfig
from repro.fleet_global.regions import FleetConfig, standard_fleet
from repro.fleet_global.simulator import FleetReport, run_fleet
from repro.obs.metrics import MetricsRegistry, active
from repro.serving.simulator import DEFAULT_P99_SLO_S

# Loss budget for "holding the SLO through the outage": the defended
# arm inevitably loses the detection window (probes must fail twice
# before failover engages), so a strict zero would declare failover
# itself impossible.  2.5% bounds the loss to roughly that window.
DEFAULT_MAX_LOSS_FRACTION = 0.025


@dataclasses.dataclass(frozen=True)
class CapacityPoint:
    """One candidate size, all three arms."""

    replicas_per_region: int
    hosts_per_region: int
    baseline: FleetReport
    undefended: FleetReport
    defended: FleetReport

    def meets(self, report: FleetReport, config: FleetConfig) -> bool:
        return report.meets_slo(config.p99_slo_s, DEFAULT_MAX_LOSS_FRACTION)


@dataclasses.dataclass(frozen=True)
class CapacityStudy:
    """The sweep and its verdict."""

    users_millions: float
    p99_slo_s: float
    max_loss_fraction: float
    points: Tuple[CapacityPoint, ...]
    baseline_replicas: Optional[int]  # smallest SLO-holding size, no outage
    defended_replicas: Optional[int]  # smallest size holding through outage
    undefended_replicas: Optional[int]  # ditto with failover off (expect None)

    @property
    def baseline_hosts(self) -> Optional[int]:
        return self._hosts_for(self.baseline_replicas)

    @property
    def defended_hosts(self) -> Optional[int]:
        return self._hosts_for(self.defended_replicas)

    def _hosts_for(self, replicas: Optional[int]) -> Optional[int]:
        for point in self.points:
            if point.replicas_per_region == replicas:
                return point.hosts_per_region
        return None

    @property
    def overprovision_fraction(self) -> Optional[float]:
        """Extra capacity bought purely for region-loss tolerance."""
        if self.baseline_replicas is None or self.defended_replicas is None:
            return None
        return (
            (self.defended_replicas - self.baseline_replicas)
            / self.baseline_replicas
        )

    def point(self, replicas: int) -> CapacityPoint:
        for candidate in self.points:
            if candidate.replicas_per_region == replicas:
                return candidate
        raise KeyError(f"no capacity point at {replicas} replicas/region")

    def scalars(self) -> Dict[str, float]:
        """The golden-pinned study outcome."""
        out: Dict[str, float] = {
            "capacity.baseline_replicas": float(self.baseline_replicas or -1),
            "capacity.defended_replicas": float(self.defended_replicas or -1),
            "capacity.undefended_replicas": float(
                self.undefended_replicas or -1
            ),
        }
        over = self.overprovision_fraction
        if over is not None:
            out["capacity.overprovision_fraction"] = over
        if self.defended_replicas is not None:
            point = self.point(self.defended_replicas)
            out["capacity.undefended.loss_fraction"] = (
                point.undefended.loss_fraction
            )
            out["capacity.defended.loss_fraction"] = (
                point.defended.loss_fraction
            )
            out["capacity.defended.spill_fraction"] = (
                point.defended.spill_fraction
            )
            out["capacity.undefended.p99_ms"] = (
                point.undefended.p99_latency_s * 1e3
            )
            out["capacity.defended.p99_ms"] = (
                point.defended.p99_latency_s * 1e3
            )
        return out

    def table(self) -> str:
        """The capacity table the docs embed."""
        header = (
            f"{'repl/region':>11} {'hosts':>5} | "
            f"{'baseline':>19} | {'undef. outage':>19} | "
            f"{'defended outage':>19}"
        )
        rule = "-" * len(header)
        lines = [header, rule]
        for point in self.points:
            def cell(report: FleetReport) -> str:
                ok = report.meets_slo(self.p99_slo_s, self.max_loss_fraction)
                return (
                    f"{report.p99_latency_s * 1e3:6.1f}ms "
                    f"{report.loss_fraction:6.2%} "
                    f"{'OK ' if ok else 'SLO'}"
                )
            lines.append(
                f"{point.replicas_per_region:>11} "
                f"{point.hosts_per_region:>5} | "
                f"{cell(point.baseline):>19} | "
                f"{cell(point.undefended):>19} | "
                f"{cell(point.defended):>19}"
            )
        return "\n".join(lines)

    def summary(self) -> str:
        lines = [
            f"capacity study: {self.users_millions:.1f}M users, "
            f"P99 SLO {self.p99_slo_s * 1e3:.0f} ms, "
            f"loss budget {self.max_loss_fraction:.1%}",
            self.table(),
        ]
        if self.undefended_replicas is None:
            lines.append(
                "undefended: NO size in the sweep holds the SLO through "
                "the outage — capacity cannot substitute for failover"
            )
        if self.baseline_replicas is not None and (
            self.defended_replicas is not None
        ):
            lines.append(
                f"verdict: {self.baseline_replicas} replicas/region "
                f"({self.baseline_hosts} hosts) suffice on a quiet day; "
                f"surviving a region outage takes "
                f"{self.defended_replicas}/region "
                f"({self.defended_hosts} hosts) with failover — "
                f"{self.overprovision_fraction:.0%} overprovision"
            )
        elif self.defended_replicas is None:
            lines.append(
                "verdict: no size in the sweep holds the SLO through the "
                "outage even defended — widen the sweep"
            )
        return "\n".join(lines)


def _study_point(args: Tuple) -> CapacityPoint:
    """All three arms for one candidate size — module-level so the
    sweep's sizes pickle for :func:`~repro.fastsim.trials.trial_map`."""
    size, users_millions, duration_s, seed, failover, registry = args
    fleet = standard_fleet(
        replicas_per_region=size,
        users_millions=users_millions,
        duration_s=duration_s,
        seed=seed,
    )
    drill = region_outage_drill(fleet)
    return CapacityPoint(
        replicas_per_region=size,
        hosts_per_region=fleet.regions[0].num_hosts,
        baseline=run_fleet(fleet, registry=registry),
        undefended=run_fleet(
            fleet, drill, defended=False, failover=failover,
            registry=registry,
        ),
        defended=run_fleet(
            fleet, drill, defended=True, failover=failover,
            registry=registry,
        ),
    )


def run_capacity_study(
    users_millions: float = 4.0,
    sizes: Sequence[int] = (3, 4, 5, 6, 8),
    duration_s: float = 24.0,
    seed: int = 0,
    max_loss_fraction: float = DEFAULT_MAX_LOSS_FRACTION,
    failover: Optional[FailoverConfig] = None,
    registry: Optional[MetricsRegistry] = None,
    processes: Optional[int] = None,
) -> CapacityStudy:
    """Sweep replicas-per-region and find the outage-surviving minimum.

    Each candidate size is an independent seeded trial (three fleet
    runs), so the sweep maps over
    :func:`~repro.fastsim.trials.trial_map`: ``processes=None`` runs
    sequentially (the reference behaviour); ``processes=N`` fans sizes
    across worker processes with identical results in the same order.
    A live metrics ``registry`` cannot cross process boundaries, so the
    parallel path refuses one rather than silently dropping metrics.
    """
    if not sizes or any(size <= 0 for size in sizes):
        raise ValueError("sizes must be positive replica counts")
    if processes is not None and processes != 1 and registry is not None:
        raise ValueError(
            "parallel capacity study cannot carry a metrics registry; "
            "detach the registry or run with processes=None"
        )
    sizes = tuple(sorted(set(sizes)))
    points = trial_map(
        _study_point,
        [
            (size, users_millions, duration_s, seed, failover, registry)
            for size in sizes
        ],
        processes=processes,
    )
    fleet = standard_fleet(
        replicas_per_region=sizes[-1],
        users_millions=users_millions,
        duration_s=duration_s,
        seed=seed,
    )

    def smallest(pick) -> Optional[int]:
        for point in points:
            if pick(point).meets_slo(fleet.p99_slo_s, max_loss_fraction):
                return point.replicas_per_region
        return None

    study = CapacityStudy(
        users_millions=users_millions,
        p99_slo_s=fleet.p99_slo_s,
        max_loss_fraction=max_loss_fraction,
        points=tuple(points),
        baseline_replicas=smallest(lambda p: p.baseline),
        defended_replicas=smallest(lambda p: p.defended),
        undefended_replicas=smallest(lambda p: p.undefended),
    )
    obs = active(registry)
    if obs.enabled:
        for key, value in study.scalars().items():
            obs.gauge(f"fleet.{key}").set(value)
    return study


def smoke_study(
    registry: Optional[MetricsRegistry] = None,
) -> CapacityStudy:
    """The CI-speed study: fewer sizes, same fleet shape and physics.

    The sweep keeps the quiet-day minimum (4) and the outage-surviving
    minimum (5) so the smoke verdict matches the full study's.
    """
    return run_capacity_study(
        users_millions=4.0, sizes=(4, 5, 8), registry=registry,
    )


__all__ = [
    "CapacityPoint",
    "CapacityStudy",
    "DEFAULT_MAX_LOSS_FRACTION",
    "run_capacity_study",
    "smoke_study",
]
