"""Health-probe failover and capacity spill at the global front door.

The anycast load balancer never sees a region's true state — it sees
*probes*: periodic health checks whose answers are already
``probe_lag_s`` stale when they arrive, debounced so one dropped probe
cannot fail a healthy region over (flap damping), with an asymmetric
up/down threshold (hysteresis) so a region recovering from an outage
must prove itself before taking traffic back.  :class:`HealthMonitor`
turns a region's ground-truth outage intervals into the *detected*
outage intervals the router actually acts on; the gap between the two —
detection lag on the way down, probation on the way up — is exactly the
window every real failover story is about.

:class:`SpillRouter` is the deterministic spill policy: a request whose
home region is detected-down is re-homed to the least-loaded region the
LB believes healthy (load measured as assigned requests per replica, so
a big region absorbs proportionally more), paying the inter-region
round trip on its latency and refused entirely — shed at the LB — when
every candidate is beyond the spill admission cap or the whole planet
is dark.
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import List, Optional, Sequence, Tuple


@dataclasses.dataclass(frozen=True)
class FailoverConfig:
    """Probe cadence, damping, and spill pricing."""

    probe_interval_s: float = 0.5
    probe_lag_s: float = 0.25  # a probe's answer reflects this far back
    down_after: int = 2  # consecutive failed probes to declare down
    up_after: int = 2  # consecutive good probes to take traffic back
    spill_one_way_s: float = 0.015  # inter-region forward (and return) leg
    # Spill admission: a region stops accepting spill once its assigned
    # load (home + spilled-in) reaches this fraction of its nominal
    # request capacity over the run.
    max_spill_load: float = 0.95

    def __post_init__(self) -> None:
        if self.probe_interval_s <= 0:
            raise ValueError("probe interval must be positive")
        if self.probe_lag_s < 0:
            raise ValueError("probe lag must be non-negative")
        if self.down_after < 1 or self.up_after < 1:
            raise ValueError("probe thresholds must be at least 1")
        if self.spill_one_way_s < 0:
            raise ValueError("spill latency must be non-negative")
        if not (0 < self.max_spill_load <= 1):
            raise ValueError("spill load cap must be in (0, 1]")


Interval = Tuple[float, float]


def _inside(intervals: Sequence[Interval], t_s: float) -> bool:
    for start, end in intervals:
        if start <= t_s < end:
            return True
    return False


class HealthMonitor:
    """Probe-eye view of one region's health over a run.

    Built from the ground-truth unreachable intervals (outages and
    partitions the drill schedule injects), it replays the probe
    sequence once — probes at ``k * probe_interval_s``, each observing
    the truth ``probe_lag_s`` earlier — applying the down/up streak
    thresholds, and exposes the *detected*-down intervals the router
    queries.  Pure and deterministic: same truth, same config, same
    detection timeline.
    """

    def __init__(
        self,
        truth_down: Sequence[Interval],
        horizon_s: float,
        config: Optional[FailoverConfig] = None,
    ) -> None:
        self.config = config or FailoverConfig()
        self.truth_down = tuple(
            (float(start), float(end)) for start, end in truth_down
        )
        for start, end in self.truth_down:
            if end < start:
                raise ValueError("outage intervals must not end before start")
        self.horizon_s = float(horizon_s)
        self.detected_down = self._replay_probes()
        self._starts = [start for start, _ in self.detected_down]

    def _replay_probes(self) -> Tuple[Interval, ...]:
        config = self.config
        detected: List[Interval] = []
        down_since: Optional[float] = None
        fail_streak = 0
        ok_streak = 0
        t = config.probe_interval_s
        while t <= self.horizon_s + config.probe_lag_s + (
            config.down_after + config.up_after
        ) * config.probe_interval_s:
            observed_at = t - config.probe_lag_s
            failing = observed_at >= 0 and _inside(self.truth_down, observed_at)
            if failing:
                fail_streak += 1
                ok_streak = 0
                if down_since is None and fail_streak >= config.down_after:
                    down_since = t
            else:
                ok_streak += 1
                fail_streak = 0
                if down_since is not None and ok_streak >= config.up_after:
                    detected.append((down_since, t))
                    down_since = None
            t += config.probe_interval_s
        if down_since is not None:
            detected.append((down_since, float("inf")))
        return tuple(detected)

    def down_at(self, t_s: float) -> bool:
        """Whether the LB believes the region is down at ``t_s``."""
        index = bisect.bisect_right(self._starts, t_s) - 1
        if index < 0:
            return False
        start, end = self.detected_down[index]
        return start <= t_s < end

    def detection_lag_s(self) -> float:
        """Time from the first true outage to its detection (0 if the
        outage was never detected, inf if there was no outage)."""
        if not self.truth_down:
            return float("inf")
        first = self.truth_down[0][0]
        for start, _ in self.detected_down:
            if start >= first:
                return start - first
        return 0.0


@dataclasses.dataclass(frozen=True)
class Assignment:
    """Where the LB sent one request."""

    region: int  # destination region index
    spilled: bool
    lb_shed: bool = False


class SpillRouter:
    """The deterministic global spill chooser.

    Tracks assigned load per region (home and spilled-in alike) and, for
    a request whose home is detected-down, picks the healthy region with
    the lowest assigned-requests-per-replica, ties broken by region
    index.  A candidate past ``max_spill_load`` of its nominal capacity
    refuses spill; with no willing candidate the request is shed at the
    LB.  State is advanced one arrival at a time in chronological order,
    so the assignment sequence is a pure function of the arrival
    sequence and the monitors.
    """

    def __init__(
        self,
        monitors: Sequence[Optional[HealthMonitor]],
        replicas: Sequence[int],
        capacity_requests: Sequence[float],
        config: Optional[FailoverConfig] = None,
        spill_monitors: Optional[
            Sequence[Optional[HealthMonitor]]
        ] = None,
    ) -> None:
        if len(monitors) != len(replicas) or len(replicas) != len(
            capacity_requests
        ):
            raise ValueError("monitors, replicas, capacities must align")
        self.config = config or FailoverConfig()
        self.monitors = list(monitors)
        # A partitioned region is unreachable as a spill *destination*
        # while its own anycast traffic still lands on it, so spill
        # eligibility can be stricter than the home check.  Defaults to
        # the home monitors (outages block both).
        self.spill_monitors = (
            list(spill_monitors) if spill_monitors is not None
            else list(monitors)
        )
        if len(self.spill_monitors) != len(replicas):
            raise ValueError("spill monitors must align with regions")
        self.replicas = list(replicas)
        self.capacity_requests = list(capacity_requests)
        self.assigned = [0] * len(replicas)
        self.spilled_out = [0] * len(replicas)
        self.spilled_in = [0] * len(replicas)
        self.lb_shed = 0

    def _down(self, region: int, t_s: float) -> bool:
        monitor = self.monitors[region]
        return monitor is not None and monitor.down_at(t_s)

    def _spill_down(self, region: int, t_s: float) -> bool:
        monitor = self.spill_monitors[region]
        return monitor is not None and monitor.down_at(t_s)

    def assign(self, home: int, arrival_s: float) -> Assignment:
        """Route one arrival: home, spill, or LB shed."""
        if not self._down(home, arrival_s):
            self.assigned[home] += 1
            return Assignment(region=home, spilled=False)
        best: Optional[int] = None
        best_load = float("inf")
        for region in range(len(self.replicas)):
            if region == home or self._spill_down(region, arrival_s):
                continue
            if (self.assigned[region]
                    >= self.config.max_spill_load
                    * self.capacity_requests[region]):
                continue  # spill admission: the region is already full
            load = self.assigned[region] / self.replicas[region]
            if load < best_load:
                best, best_load = region, load
        if best is None:
            self.lb_shed += 1
            return Assignment(region=home, spilled=False, lb_shed=True)
        self.assigned[best] += 1
        self.spilled_out[home] += 1
        self.spilled_in[best] += 1
        return Assignment(region=best, spilled=True)


__all__ = [
    "Assignment",
    "FailoverConfig",
    "HealthMonitor",
    "SpillRouter",
]
