"""The global fleet tier: multi-region serving over the cluster tier.

Section 5's productionization story, one level up from :mod:`repro
.chaos`: regions with timezone-phased diurnal traffic
(:mod:`~repro.fleet_global.regions`), an anycast front door with
probe-driven failover and capacity spill
(:mod:`~repro.fleet_global.failover`), region-scale disaster drills and
staged global firmware rollouts (:mod:`~repro.fleet_global.drills`),
the composed deterministic simulator enforcing global request
conservation (:mod:`~repro.fleet_global.simulator`), and the
region-outage capacity study answering the ROADMAP's hosts-per-region
question (:mod:`~repro.fleet_global.capacity`).

(Named ``fleet_global`` because :mod:`repro.fleet` is the intra-cluster
allocator from the earlier PRs.)
"""

from repro.fleet_global.capacity import (
    CapacityPoint,
    CapacityStudy,
    run_capacity_study,
    smoke_study,
)
from repro.fleet_global.drills import (
    DrillSchedule,
    RegionEvent,
    build_drill,
    global_firmware_rollout,
    region_outage_drill,
)
from repro.fleet_global.failover import (
    Assignment,
    FailoverConfig,
    HealthMonitor,
    SpillRouter,
)
from repro.fleet_global.regions import (
    FleetConfig,
    RegionSpec,
    rate_for_users,
    standard_fleet,
    standard_regions,
)
from repro.fleet_global.simulator import (
    FleetReport,
    RegionOutcome,
    run_fleet,
)

__all__ = [
    "Assignment",
    "CapacityPoint",
    "CapacityStudy",
    "DrillSchedule",
    "FailoverConfig",
    "FleetConfig",
    "FleetReport",
    "HealthMonitor",
    "RegionEvent",
    "RegionOutcome",
    "RegionSpec",
    "SpillRouter",
    "build_drill",
    "global_firmware_rollout",
    "rate_for_users",
    "region_outage_drill",
    "run_capacity_study",
    "run_fleet",
    "smoke_study",
    "standard_fleet",
    "standard_regions",
]
