"""Region specs and the global fleet's shape.

A region is one deployment of the cluster tier — a replica set with its
own fault-domain topology (:class:`~repro.chaos.domains
.FaultDomainTopology`), its own diurnal traffic phase (users live in
timezones: a region 8 hours east peaks 8/24 of a day earlier), its own
share of the global user base, and optionally its own power budget,
which caps the region's clock through
:class:`~repro.power.cluster_link.ThrottleSchedule` exactly as the
section 5.3 rack budgets cap a server.

:class:`FleetConfig` is the global composition: the region list, the
worldwide traffic level (expressed in *millions of users* through
:func:`rate_for_users`, so the capacity study answers the ROADMAP
question in its own units), the simulated day, and the shared SLO.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from repro.arch.mtia import mtia2i_spec
from repro.chaos.domains import FaultDomainTopology
from repro.power.cluster_link import ThrottleSchedule, frequency_for_chip_budget
from repro.serving.simulator import DEFAULT_P99_SLO_S
from repro.serving.workload import DiurnalTrafficModel

# The traffic-scale knob tying "N million users" to simulated offered
# load: at the daily peak, one million active users of the ranking
# service offer this many requests per second *in simulation units*
# (the whole reproduction runs a compressed fleet — O(10) replicas per
# region standing in for O(10k) hosts — so the constant carries the same
# compression; the capacity study's *shape* is what reproduces).
PEAK_RPS_PER_MILLION_USERS = 100.0


def rate_for_users(
    users_millions: float, peak_to_mean: float = 2.2
) -> float:
    """Global *mean* request rate implied by ``users_millions`` users.

    The user count is quoted at the daily peak (how capacity questions
    are asked); the diurnal model wants the mean, so divide the peak
    rate by the curve's peak-to-mean ratio.
    """
    if users_millions <= 0:
        raise ValueError("user count must be positive")
    return users_millions * PEAK_RPS_PER_MILLION_USERS / peak_to_mean


@dataclasses.dataclass(frozen=True)
class RegionSpec:
    """One region of the global fleet."""

    name: str
    timezone_offset_h: float = 0.0  # hours east of the reference region
    replicas: int = 8
    replicas_per_host: int = 2
    hosts_per_rack: int = 2
    # One rack per power domain: a region is several independent power
    # feeds, so a partial brownout (some breakers trip) is expressible.
    racks_per_power_domain: int = 1
    traffic_share: float = 1.0  # relative share of the global user base
    # Per-server power budget; None = unconstrained.  A budget that only
    # admits a lower ladder frequency stretches the region's service
    # times through a ThrottleSchedule, never silently.
    power_budget_w_per_server: Optional[float] = None
    platform_power_w: float = 800.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("region needs a name")
        if self.replicas <= 0:
            raise ValueError("region needs at least one replica")
        if self.traffic_share <= 0:
            raise ValueError("traffic share must be positive")
        if (self.power_budget_w_per_server is not None
                and self.power_budget_w_per_server <= 0):
            raise ValueError("power budget must be positive")

    def topology(self) -> FaultDomainTopology:
        return FaultDomainTopology(
            replicas=self.replicas,
            replicas_per_host=self.replicas_per_host,
            hosts_per_rack=self.hosts_per_rack,
            racks_per_power_domain=self.racks_per_power_domain,
        )

    @property
    def num_hosts(self) -> int:
        return self.topology().num_hosts

    def throttle(self) -> Optional[ThrottleSchedule]:
        """The region's power-budget throttle, if it is budget-capped.

        The budget funds the platform first; the remainder splits across
        the region's accelerators, and the highest ladder frequency that
        fits sets a constant service-time multiplier
        (``f_nominal / f_budget``).  ``None`` when unconstrained, so an
        unbudgeted region's event log stays byte-identical to a plain
        cluster run.
        """
        if self.power_budget_w_per_server is None:
            return None
        chip = mtia2i_spec()
        chips_per_server = max(1, self.replicas_per_host)
        per_chip = max(
            0.0,
            (self.power_budget_w_per_server - self.platform_power_w)
            / chips_per_server,
        )
        frequency = frequency_for_chip_budget(chip, per_chip)
        return ThrottleSchedule.constant(chip.frequency_hz / frequency)


def standard_regions(
    replicas_per_region: int = 8,
    names: Tuple[str, ...] = ("us-east", "eu-west", "ap-south"),
) -> Tuple[RegionSpec, ...]:
    """A three-region planet: peaks spread 8 hours apart, equal shares."""
    return tuple(
        RegionSpec(
            name=name,
            timezone_offset_h=8.0 * index,
            replicas=replicas_per_region,
        )
        for index, name in enumerate(names)
    )


@dataclasses.dataclass(frozen=True)
class FleetConfig:
    """The global fleet: regions, worldwide traffic, timing, SLO."""

    regions: Tuple[RegionSpec, ...]
    users_millions: float = 4.0
    peak_to_mean: float = 2.2
    duration_s: float = 24.0  # one compressed diurnal day
    policy: str = "po2"
    p99_slo_s: float = DEFAULT_P99_SLO_S
    samples_per_request: int = 64
    seed: int = 0
    # Priority mix for the defended arm's brownout ladder
    # (best-effort, normal, critical) — matches the chaos campaign.
    priority_weights: Tuple[float, ...] = (0.3, 0.5, 0.2)

    def __post_init__(self) -> None:
        if not self.regions:
            raise ValueError("a fleet needs at least one region")
        names = [region.name for region in self.regions]
        if len(set(names)) != len(names):
            raise ValueError("region names must be unique")
        if self.users_millions <= 0:
            raise ValueError("user count must be positive")
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.p99_slo_s <= 0:
            raise ValueError("SLO must be positive")

    @property
    def global_mean_rate_s(self) -> float:
        return rate_for_users(self.users_millions, self.peak_to_mean)

    def region_index(self, name: str) -> int:
        for index, region in enumerate(self.regions):
            if region.name == name:
                return index
        raise KeyError(f"no region named {name!r}")

    def traffic_model(self, region: RegionSpec) -> DiurnalTrafficModel:
        """The region's diurnal curve: its share of global traffic, its
        timezone phase, one full day compressed into the run."""
        total_share = sum(r.traffic_share for r in self.regions)
        return DiurnalTrafficModel(
            mean_rate_per_s=(
                self.global_mean_rate_s * region.traffic_share / total_share
            ),
            peak_to_mean=self.peak_to_mean,
            day_length_s=self.duration_s,
            phase_h=region.timezone_offset_h,
        )

    @property
    def total_replicas(self) -> int:
        return sum(region.replicas for region in self.regions)

    @property
    def total_hosts(self) -> int:
        return sum(region.num_hosts for region in self.regions)


def standard_fleet(
    replicas_per_region: int = 8,
    users_millions: float = 4.0,
    duration_s: float = 24.0,
    seed: int = 0,
) -> FleetConfig:
    """The three-region fleet the CLI, example, and benchmark share."""
    return FleetConfig(
        regions=standard_regions(replicas_per_region),
        users_millions=users_millions,
        duration_s=duration_s,
        seed=seed,
    )


__all__ = [
    "FleetConfig",
    "PEAK_RPS_PER_MILLION_USERS",
    "RegionSpec",
    "rate_for_users",
    "standard_fleet",
    "standard_regions",
]
