"""Textual architecture descriptions (paper Figures 1-3).

Figures 1, 2, and 3 of the paper are block diagrams with no measured data.
These functions render the same structure as text so the figure benchmarks
can verify the model's topology matches the paper (8x8 PE grid, the PE's
fixed-function units, and the software-stack layering).
"""

from __future__ import annotations

from repro.arch.specs import ChipSpec
from repro.units import fmt_bandwidth, fmt_bytes, fmt_flops

PE_FIXED_FUNCTION_UNITS = (
    "Memory Layout Unit (MLU)",
    "Dot Product Engine (DPE)",
    "Reduction Engine (RE)",
    "SIMD Engine (SE)",
    "Command Processor (CP)",
    "Fabric Interface (FI)",
)

PE_PROCESSORS = (
    "RISC-V scalar core",
    "RISC-V vector core (64B VLEN)",
)

SOFTWARE_STACK_LAYERS = (
    "PyTorch 2.0 (TorchDynamo + TorchInductor)",
    "Triton kernels / eager-mode ATen ops",
    "MTIA runtime (streams, memory, work queues)",
    "Userspace driver",
    "Firmware bundle (Control Core firmware, boot, power management)",
    "MTIA 2i hardware",
)


def describe_chip(spec: ChipSpec) -> str:
    """Figure-1-style description: grid, NoC, memories, host interface."""
    side = int(round(spec.num_pes ** 0.5))
    grid = f"{side}x{side}" if side * side == spec.num_pes else str(spec.num_pes)
    from repro.tensors.dtypes import DType

    gemm_dtype = DType.FP16 if DType.FP16 in spec.gemm.peak_flops else DType.INT8
    lines = [
        f"{spec.name} ({spec.process_node}, {spec.frequency_hz / 1e9:.2f} GHz)",
        f"  PE grid: {grid} ({spec.num_pes} PEs) on a non-blocking NoC "
        f"({fmt_bandwidth(spec.noc_bandwidth_bytes_per_s)})",
        f"  Control Core: RISC-V quad-core, broadcast work queues: "
        f"{spec.eager.broadcast_work_queues}",
        f"  Host interface: {spec.host_link.name} "
        f"({fmt_bandwidth(spec.host_link.bandwidth_bytes_per_s)}) "
        "+ DMA + secure boot + decompression engine",
        f"  On-chip SRAM: {fmt_bytes(spec.sram.capacity_bytes)} @ "
        f"{fmt_bandwidth(spec.sram.bandwidth_bytes_per_s)}, partitioned LLC/LLS at "
        f"{fmt_bytes(spec.sram_partition_bytes)} granularity",
        f"  Off-chip {spec.dram.name}: {fmt_bytes(spec.dram.capacity_bytes)} @ "
        f"{fmt_bandwidth(spec.dram.bandwidth_bytes_per_s)}",
        f"  GEMM peak: {fmt_flops(spec.peak_gemm_flops(gemm_dtype))} ({gemm_dtype.value})",
    ]
    return "\n".join(lines)


def describe_pe(spec: ChipSpec) -> str:
    """Figure-2-style description of one Processing Element."""
    lines = [
        f"Processing Element ({spec.name}):",
        f"  Local Memory: {fmt_bytes(spec.local_memory.capacity_bytes)} @ "
        f"{fmt_bandwidth(spec.local_memory.bandwidth_bytes_per_s)}",
        "  Processors:",
    ]
    lines.extend(f"    - {p}" for p in PE_PROCESSORS)
    lines.append("  Fixed-function units:")
    lines.extend(f"    - {u}" for u in PE_FIXED_FUNCTION_UNITS)
    lines.append(
        f"  Custom-instruction issue: {spec.issue.instructions_per_s / 1e6:.0f} M/s, "
        f"amortization {spec.issue.multi_context_amortization:.0f}x, "
        f"SIMD accumulate up to {spec.issue.simd_accumulate_rows} rows"
    )
    return "\n".join(lines)


def describe_software_stack() -> str:
    """Figure-3-style description of the MTIA software stack."""
    lines = ["MTIA software stack (top to bottom):"]
    lines.extend(f"  {i + 1}. {layer}" for i, layer in enumerate(SOFTWARE_STACK_LAYERS))
    return "\n".join(lines)
