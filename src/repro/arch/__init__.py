"""Accelerator and server specifications (paper Table 2 and section 3.4)."""

from repro.arch.describe import (
    PE_FIXED_FUNCTION_UNITS,
    PE_PROCESSORS,
    SOFTWARE_STACK_LAYERS,
    describe_chip,
    describe_pe,
    describe_software_stack,
)
from repro.arch.gpu import gpu_spec
from repro.arch.mtia import mtia1_spec, mtia2i_spec
from repro.arch.nextgen import mtia_nextgen_spec
from repro.arch.server import (
    CpuSocketSpec,
    ServerSpec,
    gpu_server,
    grand_teton_socket,
    mtia2i_server,
)
from repro.arch.specs import (
    ChipSpec,
    EagerLaunchSpec,
    GemmEngineSpec,
    IssueSpec,
    MemoryLevelSpec,
    VectorEngineSpec,
    spec_ratio,
)

__all__ = [
    "PE_FIXED_FUNCTION_UNITS",
    "PE_PROCESSORS",
    "SOFTWARE_STACK_LAYERS",
    "ChipSpec",
    "CpuSocketSpec",
    "EagerLaunchSpec",
    "GemmEngineSpec",
    "IssueSpec",
    "MemoryLevelSpec",
    "ServerSpec",
    "VectorEngineSpec",
    "describe_chip",
    "describe_pe",
    "describe_software_stack",
    "gpu_server",
    "gpu_spec",
    "grand_teton_socket",
    "mtia1_spec",
    "mtia2i_server",
    "mtia2i_spec",
    "mtia_nextgen_spec",
    "spec_ratio",
]
