"""MTIA 1 and MTIA 2i chip specifications (paper Table 2).

Every headline number comes straight from Table 2.  Where the paper gives
only a ratio (e.g. "3.3x the NoC bandwidth"), the absolute value is
anchored to the published SRAM bandwidth it feeds.  Where the paper gives
a range (LPDDR capacity "64-128 GB"), we use the configuration deployed in
the Grand Teton servers (128 GB for MTIA 2i, 64 GB for MTIA 1).
"""

from __future__ import annotations

from repro.arch.specs import (
    ChipSpec,
    EagerLaunchSpec,
    GemmEngineSpec,
    IssueSpec,
    MemoryLevelSpec,
    VectorEngineSpec,
)
from repro.tensors.dtypes import DType
from repro.units import GB, GHZ, GiB, KiB, MHZ, MiB, TB, TFLOPS, US

# Section 5.1: memory-controller ECC costs 10-15% of throughput.  We model
# it as a 15% derate of LPDDR bandwidth, which produces a 10-15% end-to-end
# penalty for bandwidth-bound models and less for SRAM-resident ones.
_CONTROLLER_ECC_PENALTY = 0.15


def mtia2i_spec(
    frequency_hz: float = 1.35 * GHZ,
    dram_capacity_bytes: int = 128 * GiB,
    ecc_enabled: bool = True,
) -> ChipSpec:
    """The MTIA 2i chip as deployed (overclocked to 1.35 GHz, ECC on).

    Pass ``frequency_hz=1.1e9`` for the pre-overclock design point and
    ``ecc_enabled=False`` for the no-ECC configuration evaluated in
    section 5.1.  All paper-reported numbers include the ECC penalty.
    """
    design_frequency = 1.1 * GHZ
    # Table 2 rates the chip at its deployed 1.35 GHz operating point;
    # scale engine throughput linearly when a different clock is asked for.
    scale = frequency_hz / (1.35 * GHZ)
    spec = ChipSpec(
        name="MTIA 2i",
        process_node="TSMC 5nm",
        frequency_hz=frequency_hz,
        design_frequency_hz=design_frequency,
        gemm=GemmEngineSpec(
            peak_flops={
                DType.INT8: 354 * TFLOPS * scale,
                DType.FP16: 177 * TFLOPS * scale,
                DType.BF16: 177 * TFLOPS * scale,
            },
            sparsity_speedup=2.0,  # 2:4 structured sparsity
        ),
        vector=VectorEngineSpec(
            # SIMD Engine row of Table 2: 5.5 TOPS at INT8/FP16/BF16/FP32.
            # The RISC-V vector core adds 5.5/2.8/1.4; the executor models
            # it separately via IssueSpec, so the engine spec carries the
            # SIMD Engine numbers.
            peak_flops={
                DType.INT8: 5.5 * TFLOPS * scale,
                DType.FP16: 5.5 * TFLOPS * scale,
                DType.BF16: 5.5 * TFLOPS * scale,
                DType.FP32: 5.5 * TFLOPS * scale,
            }
        ),
        local_memory=MemoryLevelSpec(
            name="local_memory",
            capacity_bytes=384 * KiB,  # per PE
            bandwidth_bytes_per_s=1 * TB * scale,  # per PE
            access_latency_s=20e-9,
        ),
        sram=MemoryLevelSpec(
            name="sram",
            capacity_bytes=256 * MiB,
            bandwidth_bytes_per_s=2.7 * TB * scale,
            access_latency_s=100e-9,
        ),
        dram=MemoryLevelSpec(
            name="lpddr5",
            capacity_bytes=dram_capacity_bytes,
            bandwidth_bytes_per_s=204.8 * GB,
            access_latency_s=150e-9,
        ),
        host_link=MemoryLevelSpec(
            name="pcie_gen5_x8",
            capacity_bytes=1,  # a link has no capacity; placeholder
            bandwidth_bytes_per_s=32 * GB,
            access_latency_s=1e-6,
        ),
        noc_bandwidth_bytes_per_s=2.64 * TB * scale,  # 3.3x MTIA 1
        num_pes=64,
        issue=IssueSpec(
            instructions_per_s=135e6 * scale,  # ~10 scalar cycles / custom instr
            multi_context_amortization=8.0,  # multi-context + auto-increment
            simd_accumulate_rows=128,
            indexed_dma=True,
            unaligned_access=True,
        ),
        eager=EagerLaunchSpec(
            job_launch_s=0.9 * US,
            job_replace_s=0.45 * US,
            broadcast_work_queues=True,
        ),
        tdp_watts=85.0,
        typical_watts=65.0,
        idle_power_fraction=0.35,
        # 5 nm leakage roughly doubles every 50 °C; Table 2's power
        # figures are taken at a 60 °C junction.
        leakage_ref_temp_c=60.0,
        leakage_temp_coeff_per_c=0.014,
        die_area_mm2=25.6 * 16.4,
        overlap_factor=0.93,
        dram_has_native_ecc=False,
        controller_ecc_penalty=_CONTROLLER_ECC_PENALTY,
    )
    return spec.with_ecc_enabled() if ecc_enabled else spec


def mtia1_spec(dram_capacity_bytes: int = 64 * GiB) -> ChipSpec:
    """The first-generation MTIA 1 chip (ISCA '23), per Table 2."""
    return ChipSpec(
        name="MTIA 1",
        process_node="TSMC 7nm",
        frequency_hz=800 * MHZ,
        design_frequency_hz=800 * MHZ,
        gemm=GemmEngineSpec(
            peak_flops={
                DType.INT8: 102.4 * TFLOPS,
                DType.FP16: 51.2 * TFLOPS,
            },
            sparsity_speedup=1.0,  # no sparsity support
        ),
        vector=VectorEngineSpec(
            peak_flops={
                DType.INT8: 3.2 * TFLOPS,
                DType.FP16: 1.6 * TFLOPS,
                DType.FP32: 0.8 * TFLOPS,
            }
        ),
        local_memory=MemoryLevelSpec(
            name="local_memory",
            capacity_bytes=128 * KiB,
            bandwidth_bytes_per_s=0.4 * TB,
            access_latency_s=25e-9,
        ),
        sram=MemoryLevelSpec(
            name="sram",
            capacity_bytes=128 * MiB,
            bandwidth_bytes_per_s=0.8 * TB,
            access_latency_s=120e-9,
        ),
        dram=MemoryLevelSpec(
            name="lpddr5",
            capacity_bytes=dram_capacity_bytes,
            bandwidth_bytes_per_s=176 * GB,
            access_latency_s=150e-9,
        ),
        host_link=MemoryLevelSpec(
            name="pcie_gen4_x8",
            capacity_bytes=1,
            bandwidth_bytes_per_s=16 * GB,
            access_latency_s=1.2e-6,
        ),
        noc_bandwidth_bytes_per_s=0.8 * TB,
        num_pes=64,
        issue=IssueSpec(
            instructions_per_s=80e6,
            multi_context_amortization=1.0,
            simd_accumulate_rows=32,
            indexed_dma=False,
            unaligned_access=False,
        ),
        eager=EagerLaunchSpec(
            # Section 3.3: MTIA 2i reduces launch time by as much as 80%.
            job_launch_s=4.5 * US,
            job_replace_s=2.5 * US,
            broadcast_work_queues=False,
        ),
        tdp_watts=35.0,
        typical_watts=25.0,
        idle_power_fraction=0.35,
        leakage_ref_temp_c=60.0,
        leakage_temp_coeff_per_c=0.013,  # 7 nm leaks a little less steeply
        die_area_mm2=19.3 * 19.1,
        overlap_factor=0.88,
        dram_has_native_ecc=False,
        controller_ecc_penalty=_CONTROLLER_ECC_PENALTY,
    )
