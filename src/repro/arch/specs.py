"""Chip specification dataclasses.

These describe an accelerator at the granularity the performance model
needs: compute throughput per engine and dtype, the memory hierarchy's
capacities and bandwidths, the NoC, host link, and physical/electrical
parameters.  Concrete instances (MTIA 1, MTIA 2i, the GPU baseline) live
in :mod:`repro.arch.mtia` and :mod:`repro.arch.gpu`, with every number
sourced from Table 2 of the paper or public datasheets.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional

from repro.tensors.dtypes import DType


@dataclasses.dataclass(frozen=True)
class MemoryLevelSpec:
    """One level of the memory hierarchy."""

    name: str
    capacity_bytes: int
    bandwidth_bytes_per_s: float
    # Latency to first byte for a demand access, in seconds.
    access_latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"{self.name}: capacity must be positive")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError(f"{self.name}: bandwidth must be positive")
        if self.access_latency_s < 0:
            raise ValueError(f"{self.name}: latency must be non-negative")

    def transfer_time(self, num_bytes: float) -> float:
        """Time to stream ``num_bytes`` at full bandwidth, plus latency."""
        if num_bytes < 0:
            raise ValueError("byte count must be non-negative")
        if num_bytes == 0:
            return 0.0
        return self.access_latency_s + num_bytes / self.bandwidth_bytes_per_s


@dataclasses.dataclass(frozen=True)
class GemmEngineSpec:
    """The matrix engine (MTIA's Dot Product Engine; tensor cores on GPU)."""

    # Peak dense FLOP/s by input dtype, chip-wide.
    peak_flops: Dict[DType, float]
    # Multiplier when 2:4 structured weight sparsity is exploited.
    sparsity_speedup: float = 1.0

    def peak(self, dtype: DType, sparse: bool = False) -> float:
        """Peak FLOP/s for a dtype, optionally with 2:4 sparsity."""
        if dtype not in self.peak_flops:
            raise ValueError(f"GEMM engine does not support {dtype}")
        base = self.peak_flops[dtype]
        return base * self.sparsity_speedup if sparse else base


@dataclasses.dataclass(frozen=True)
class VectorEngineSpec:
    """Vector/SIMD compute (MTIA's SIMD Engine and RISC-V vector core)."""

    peak_flops: Dict[DType, float]

    def peak(self, dtype: DType) -> float:
        """Peak FLOP/s for a dtype."""
        if dtype not in self.peak_flops:
            raise ValueError(f"vector engine does not support {dtype}")
        return self.peak_flops[dtype]


@dataclasses.dataclass(frozen=True)
class IssueSpec:
    """Custom-instruction issue model for the per-PE scalar cores.

    Section 3.3 of the paper describes how the RISC-V scalar cores'
    instruction issue rate bottlenecked small GEMMs until multi-context
    custom instructions and auto-increment offsets were added.
    """

    # Custom instructions issued per second per PE.
    instructions_per_s: float
    # With multi-context + auto-increment, one instruction covers this many
    # basic commands (amortization factor for tight GEMM loops).
    multi_context_amortization: float = 1.0
    # Max embedding rows accumulated per SIMD instruction (32 on MTIA 1,
    # 128 on MTIA 2i per section 3.3).
    simd_accumulate_rows: int = 32
    # Whether DMA_IN supports indexed addressing (TBE gather without
    # per-row address computation on the scalar core).
    indexed_dma: bool = False
    # Whether unaligned addresses are handled in hardware.
    unaligned_access: bool = False

    def __post_init__(self) -> None:
        if self.instructions_per_s <= 0:
            raise ValueError("issue rate must be positive")
        if self.multi_context_amortization < 1.0:
            raise ValueError("amortization factor cannot be below 1")
        if self.simd_accumulate_rows <= 0:
            raise ValueError("accumulate rows must be positive")


@dataclasses.dataclass(frozen=True)
class EagerLaunchSpec:
    """Job-launch path characteristics (section 3.3, fast eager mode)."""

    # Time to launch a job onto the PE grid.
    job_launch_s: float
    # Time to replace a running job with the next one.
    job_replace_s: float
    # Whether the Control Core broadcasts work-queue descriptors and PEs
    # have a Work Queue Engine to DMA them (MTIA 2i) versus host-mediated
    # launches (MTIA 1).
    broadcast_work_queues: bool = False


@dataclasses.dataclass(frozen=True)
class ChipSpec:
    """Everything the performance model knows about one accelerator."""

    name: str
    process_node: str
    frequency_hz: float
    # Design frequency before any overclocking (section 5.2).
    design_frequency_hz: float
    gemm: GemmEngineSpec
    vector: VectorEngineSpec
    local_memory: MemoryLevelSpec  # per-PE
    sram: MemoryLevelSpec  # shared on-chip SRAM
    dram: MemoryLevelSpec  # off-chip (LPDDR on MTIA, HBM on GPU)
    host_link: MemoryLevelSpec  # PCIe
    noc_bandwidth_bytes_per_s: float
    num_pes: int
    issue: IssueSpec
    eager: EagerLaunchSpec
    tdp_watts: float
    typical_watts: float
    # Fraction of TDP drawn when idle.
    idle_power_fraction: float = 0.3
    # Junction temperature at which the idle/leakage calibration above
    # holds (the conditions behind Table 2's power figures), and the
    # exponential slope of leakage with junction temperature.  The
    # default slope of zero keeps leakage temperature-independent, which
    # preserves every energy number computed before repro.power existed;
    # the concrete MTIA/GPU specs override it.
    leakage_ref_temp_c: float = 60.0
    leakage_temp_coeff_per_c: float = 0.0
    # SRAM partition granularity for the LLC/LLS split (section 4.1).
    sram_partition_bytes: int = 32 * 1024 * 1024
    die_area_mm2: float = 0.0
    # Fraction of peak GEMM throughput sustainable in practice after
    # effects the tile-utilization model does not capture (scheduling,
    # wave quantization on GPUs).  MTIA's efficiency emerges from its
    # explicit tile/issue model, so it stays at 1.0; the GPU baseline
    # uses the well-known ~0.7 sustained fraction.
    sustained_gemm_fraction: float = 1.0
    # How well compute overlaps with memory traffic within a kernel:
    # op time = max(components) + (1 - overlap) * (sum - max).  MTIA's
    # fixed-function units form a coarse-grained dataflow pipeline fed by
    # hardware-prefetched DMA (sections 3.2/3.3), so overlap is high; a
    # GPU kernel typically exposes more of its memory time.
    overlap_factor: float = 0.9
    dram_has_native_ecc: bool = True
    # Throughput penalty when ECC must be computed by the memory
    # controller (section 5.1: 10-15% for LPDDR without native ECC).
    controller_ecc_penalty: float = 0.0

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0 or self.design_frequency_hz <= 0:
            raise ValueError("frequencies must be positive")
        if self.num_pes <= 0:
            raise ValueError("num_pes must be positive")
        if not (0 <= self.controller_ecc_penalty < 1):
            raise ValueError("ECC penalty must be a fraction in [0, 1)")
        if self.tdp_watts <= 0 or self.typical_watts <= 0:
            raise ValueError("power figures must be positive")
        # Derivation invariants: ``repro.codesign.space.derive_chip``
        # builds candidate chips through this constructor, so degenerate
        # axis values must fail here rather than produce NaN rooflines.
        if self.noc_bandwidth_bytes_per_s <= 0:
            raise ValueError("NoC bandwidth must be positive")
        if self.die_area_mm2 < 0:
            raise ValueError("die area cannot be negative")
        if self.sram_partition_bytes <= 0:
            raise ValueError("SRAM partition granularity must be positive")
        if not (0 <= self.idle_power_fraction <= 1):
            raise ValueError("idle power fraction must be in [0, 1]")
        if not (0 < self.sustained_gemm_fraction <= 1):
            raise ValueError("sustained GEMM fraction must be in (0, 1]")
        if not (0 <= self.overlap_factor <= 1):
            raise ValueError("overlap factor must be in [0, 1]")

    @property
    def overclock_ratio(self) -> float:
        """Operating frequency relative to the design frequency."""
        return self.frequency_hz / self.design_frequency_hz

    def leakage_power_w(self, temperature_c: Optional[float] = None) -> float:
        """Static (leakage + always-on) power at a junction temperature.

        At the reference temperature — or when no temperature is given —
        this is exactly the historical ``typical_watts *
        idle_power_fraction`` idle draw, so energy models that do not
        track temperature are unchanged.  Away from it, leakage follows
        the usual exponential: a coefficient of 0.014/°C doubles leakage
        every ~50 °C.
        """
        idle = self.typical_watts * self.idle_power_fraction
        if temperature_c is None or self.leakage_temp_coeff_per_c == 0.0:
            return idle
        return idle * math.exp(
            self.leakage_temp_coeff_per_c
            * (temperature_c - self.leakage_ref_temp_c)
        )

    def peak_gemm_flops(self, dtype: DType, sparse: bool = False) -> float:
        """Chip-wide peak GEMM FLOP/s."""
        return self.gemm.peak(dtype, sparse=sparse)

    def peak_vector_flops(self, dtype: DType) -> float:
        """Chip-wide peak vector FLOP/s."""
        return self.vector.peak(dtype)

    def gemm_to_simd_ratio(self, gemm_dtype: DType = DType.FP16) -> float:
        """GEMM-to-SIMD throughput ratio (section 3.2: 32:1 on MTIA 2i)."""
        return self.gemm.peak(gemm_dtype) / self.vector.peak(DType.FP32)

    def at_frequency(self, frequency_hz: float) -> "ChipSpec":
        """This chip re-clocked: compute and on-chip bandwidth scale with
        frequency, off-chip DRAM and PCIe do not.

        Used by the overclocking study (section 5.2).
        """
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        scale = frequency_hz / self.frequency_hz
        scaled_gemm = GemmEngineSpec(
            peak_flops={d: f * scale for d, f in self.gemm.peak_flops.items()},
            sparsity_speedup=self.gemm.sparsity_speedup,
        )
        scaled_vector = VectorEngineSpec(
            peak_flops={d: f * scale for d, f in self.vector.peak_flops.items()}
        )
        scaled_local = dataclasses.replace(
            self.local_memory,
            bandwidth_bytes_per_s=self.local_memory.bandwidth_bytes_per_s * scale,
        )
        scaled_sram = dataclasses.replace(
            self.sram, bandwidth_bytes_per_s=self.sram.bandwidth_bytes_per_s * scale
        )
        scaled_issue = dataclasses.replace(
            self.issue, instructions_per_s=self.issue.instructions_per_s * scale
        )
        return dataclasses.replace(
            self,
            frequency_hz=frequency_hz,
            gemm=scaled_gemm,
            vector=scaled_vector,
            local_memory=scaled_local,
            sram=scaled_sram,
            issue=scaled_issue,
            noc_bandwidth_bytes_per_s=self.noc_bandwidth_bytes_per_s * scale,
        )

    def with_ecc_enabled(self) -> "ChipSpec":
        """This chip with controller-based ECC on: DRAM bandwidth is derated
        by the ECC penalty (section 5.1)."""
        if self.dram_has_native_ecc or self.controller_ecc_penalty == 0:
            return self
        derated = dataclasses.replace(
            self.dram,
            bandwidth_bytes_per_s=self.dram.bandwidth_bytes_per_s
            * (1 - self.controller_ecc_penalty),
        )
        return dataclasses.replace(self, dram=derated)


def spec_ratio(new: ChipSpec, old: ChipSpec, dtype: DType = DType.INT8) -> Dict[str, float]:
    """Generation-over-generation improvement ratios (Table 2 narrative:
    MTIA 2i delivers >3x FLOPS, >3x SRAM bandwidth, >3x NoC bandwidth,
    2x DRAM capacity, ~1.4x DRAM bandwidth over MTIA 1)."""
    return {
        "gemm_flops": new.peak_gemm_flops(dtype) / old.peak_gemm_flops(dtype),
        "sram_bandwidth": new.sram.bandwidth_bytes_per_s / old.sram.bandwidth_bytes_per_s,
        "sram_capacity": new.sram.capacity_bytes / old.sram.capacity_bytes,
        "noc_bandwidth": new.noc_bandwidth_bytes_per_s / old.noc_bandwidth_bytes_per_s,
        "dram_capacity": new.dram.capacity_bytes / old.dram.capacity_bytes,
        "dram_bandwidth": new.dram.bandwidth_bytes_per_s / old.dram.bandwidth_bytes_per_s,
        "local_memory_capacity": new.local_memory.capacity_bytes
        / old.local_memory.capacity_bytes,
        "local_memory_bandwidth": new.local_memory.bandwidth_bytes_per_s
        / old.local_memory.bandwidth_bytes_per_s,
        "frequency": new.frequency_hz / old.frequency_hz,
        "host_link_bandwidth": new.host_link.bandwidth_bytes_per_s
        / old.host_link.bandwidth_bytes_per_s,
    }
