"""The GPU baseline used for Perf/TCO and Perf/Watt comparisons.

The paper compares MTIA 2i servers (24 chips) against Meta's GPU
production servers (8 GPUs) built on the same Grand Teton platform —
the platform Meta announced around H100-class parts.  We model such a
GPU from public datasheet numbers.  The comparison is about
*system-level* efficiency ratios, so the baseline captures peak FLOPS,
HBM bandwidth, L2 capacity, kernel-launch overhead, and power, not SM
microarchitecture.
"""

from __future__ import annotations

from repro.arch.specs import (
    ChipSpec,
    EagerLaunchSpec,
    GemmEngineSpec,
    IssueSpec,
    MemoryLevelSpec,
    VectorEngineSpec,
)
from repro.tensors.dtypes import DType
from repro.units import GB, GHZ, GiB, KiB, MiB, TB, TFLOPS, US


def gpu_spec() -> ChipSpec:
    """An H100-class datacenter GPU (80 GB, dense tensor-core rates) —
    the accelerator the Grand Teton platform was built around."""
    return ChipSpec(
        name="H100-class GPU",
        process_node="TSMC 4N",
        frequency_hz=1.98 * GHZ,
        design_frequency_hz=1.98 * GHZ,
        gemm=GemmEngineSpec(
            peak_flops={
                DType.INT8: 1979 * TFLOPS,
                DType.FP16: 989 * TFLOPS,
                DType.BF16: 989 * TFLOPS,
            },
            sparsity_speedup=2.0,
        ),
        vector=VectorEngineSpec(
            # CUDA-core vector throughput.
            peak_flops={
                DType.FP16: 134 * TFLOPS,
                DType.BF16: 134 * TFLOPS,
                DType.FP32: 67 * TFLOPS,
                DType.INT8: 134 * TFLOPS,
            }
        ),
        local_memory=MemoryLevelSpec(
            # Shared memory / L1 per SM.
            name="smem",
            capacity_bytes=228 * KiB,
            bandwidth_bytes_per_s=256 * GB,  # per SM
            access_latency_s=10e-9,
        ),
        sram=MemoryLevelSpec(
            # The 50 MB L2 plays the role MTIA's 256 MB SRAM plays, but is
            # far too small to hold DLRM activation working sets.
            name="l2",
            capacity_bytes=50 * MiB,
            bandwidth_bytes_per_s=10 * TB,
            access_latency_s=200e-9,
        ),
        dram=MemoryLevelSpec(
            name="hbm3",
            capacity_bytes=80 * GiB,
            bandwidth_bytes_per_s=3.35 * TB,
            access_latency_s=400e-9,
        ),
        host_link=MemoryLevelSpec(
            name="pcie_gen5_x16",
            capacity_bytes=1,
            bandwidth_bytes_per_s=64 * GB,
            access_latency_s=1e-6,
        ),
        noc_bandwidth_bytes_per_s=10 * TB,
        num_pes=132,  # SM count
        issue=IssueSpec(
            # GPUs do not have MTIA's custom-instruction bottleneck; model
            # a high issue rate so compute/memory always dominate.
            instructions_per_s=1e12,
            multi_context_amortization=1.0,
            simd_accumulate_rows=128,
            indexed_dma=True,
            unaligned_access=True,
        ),
        eager=EagerLaunchSpec(
            # CUDA kernel-launch latency, amortized by CUDA-graph replay
            # as production inference stacks do.
            job_launch_s=2.5 * US,
            job_replace_s=2.5 * US,
            broadcast_work_queues=False,
        ),
        tdp_watts=700.0,
        typical_watts=480.0,
        idle_power_fraction=0.3,
        # HBM-class package with liquid-adjacent cooling runs hotter at
        # reference; leakage slope per published Hopper characterization.
        leakage_ref_temp_c=70.0,
        leakage_temp_coeff_per_c=0.012,
        die_area_mm2=814.0,
        sustained_gemm_fraction=0.65,
        overlap_factor=0.55,
        dram_has_native_ecc=True,
        controller_ecc_penalty=0.0,
        sram_partition_bytes=50 * MiB,  # L2 is not software-partitioned
    )
