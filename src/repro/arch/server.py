"""Server-level specifications (paper section 3.4).

Both the MTIA 2i server and the GPU baseline server are built on the
open-source Grand Teton platform.  The MTIA server packs two CPU sockets,
each driving 12 accelerators through a PCIe switch (24 chips total); the
GPU server carries 8 GPUs.  Dense packing amortizes host cost but makes
host DRAM bandwidth the contended resource when low-complexity models run
on all 24 accelerators at once.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.arch.gpu import gpu_spec
from repro.arch.mtia import mtia2i_spec
from repro.arch.specs import ChipSpec
from repro.units import GB, GiB


@dataclasses.dataclass(frozen=True)
class CpuSocketSpec:
    """One host CPU socket and its attached resources."""

    cores: int
    dram_capacity_bytes: int
    dram_bandwidth_bytes_per_s: float
    nic_bandwidth_bytes_per_s: float

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("core count must be positive")


@dataclasses.dataclass(frozen=True)
class ServerSpec:
    """A complete accelerator server."""

    name: str
    chip: ChipSpec
    accelerators_per_server: int
    sockets: List[CpuSocketSpec]
    accelerators_per_module: int = 1
    # Non-accelerator platform power (CPUs, DRAM, fans, NIC, losses).
    platform_power_watts: float = 800.0

    def __post_init__(self) -> None:
        if self.accelerators_per_server <= 0:
            raise ValueError("server must contain at least one accelerator")
        if self.accelerators_per_server % len(self.sockets):
            raise ValueError("accelerators must divide evenly across sockets")

    @property
    def accelerators_per_socket(self) -> int:
        """Accelerators attached to one CPU socket's PCIe switch."""
        return self.accelerators_per_server // len(self.sockets)

    @property
    def host_cores_per_accelerator(self) -> float:
        """CPU cores available to each accelerator's model instance."""
        return self.sockets[0].cores / self.accelerators_per_socket

    @property
    def host_dram_per_accelerator_bytes(self) -> float:
        """Host DRAM capacity share per accelerator."""
        return self.sockets[0].dram_capacity_bytes / self.accelerators_per_socket

    @property
    def host_dram_bandwidth_per_accelerator(self) -> float:
        """Host DRAM bandwidth share per accelerator — the bottleneck the
        paper calls out for low-complexity models on 24 accelerators."""
        return self.sockets[0].dram_bandwidth_bytes_per_s / self.accelerators_per_socket

    @property
    def nic_bandwidth_per_accelerator(self) -> float:
        """Front-end network bandwidth share per accelerator."""
        return self.sockets[0].nic_bandwidth_bytes_per_s / self.accelerators_per_socket

    @property
    def max_power_watts(self) -> float:
        """Nameplate server power: platform plus all accelerators at TDP."""
        return self.platform_power_watts + self.accelerators_per_server * self.chip.tdp_watts

    @property
    def typical_power_watts(self) -> float:
        """Typical server power under production load."""
        return (
            self.platform_power_watts * 0.8
            + self.accelerators_per_server * self.chip.typical_watts
        )


def grand_teton_socket() -> CpuSocketSpec:
    """One Grand Teton CPU socket: 96 cores, 12 x 96 GB DDR5 at 460 GB/s,
    2 x 200 Gbps NICs (section 3.4)."""
    return CpuSocketSpec(
        cores=96,
        dram_capacity_bytes=12 * 96 * GiB,
        dram_bandwidth_bytes_per_s=460 * GB,
        nic_bandwidth_bytes_per_s=2 * 200e9 / 8,  # 2 x 200 Gbps -> bytes/s
    )


def mtia2i_server(ecc_enabled: bool = True) -> ServerSpec:
    """The production MTIA 2i server: 2 sockets x 12 accelerators, two
    chips per module behind each PCIe switch."""
    return ServerSpec(
        name="Grand Teton MTIA 2i server",
        chip=mtia2i_spec(ecc_enabled=ecc_enabled),
        accelerators_per_server=24,
        sockets=[grand_teton_socket(), grand_teton_socket()],
        accelerators_per_module=2,
        platform_power_watts=800.0,
    )


def gpu_server() -> ServerSpec:
    """The GPU baseline server: 8 GPUs on the same Grand Teton platform."""
    return ServerSpec(
        name="Grand Teton GPU server",
        chip=gpu_spec(),
        accelerators_per_server=8,
        sockets=[grand_teton_socket(), grand_teton_socket()],
        accelerators_per_module=1,
        platform_power_watts=1200.0,  # NVSwitch + denser cooling
    )
