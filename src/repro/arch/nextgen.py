"""A projected next-generation MTIA (paper sections 8-9).

The paper closes with the plan: "For future generations of MTIA, we plan
to increase their peak FLOPS to handle more complex models", alongside
the belief that MTIA 2i itself has headroom to at least 2 GFLOPS/sample.
This module projects a next-generation part using the same scaling
discipline the MTIA 1 -> 2i step followed (roughly 3x compute, 2-3x
on-chip memory bandwidth/capacity, modest off-chip gains from the next
LPDDR generation), so extension studies can ask which of the paper's
limits move.

This is an extrapolation for what-if analysis, not a disclosed product.
"""

from __future__ import annotations

import dataclasses

from repro.arch.mtia import mtia2i_spec
from repro.arch.specs import ChipSpec, GemmEngineSpec, MemoryLevelSpec, VectorEngineSpec
from repro.units import GB, GiB, MiB


def mtia_nextgen_spec(
    compute_scale: float = 3.0,
    sram_capacity_bytes: int = 512 * MiB,
    dram_bandwidth_bytes_per_s: float = 360 * GB,  # LPDDR5X/6-class
    dram_capacity_bytes: int = 256 * GiB,
    tdp_watts: float = 130.0,
) -> ChipSpec:
    """Project a next-generation MTIA from the 2i baseline.

    Scaling mirrors the published MTIA 1 -> 2i deltas: compute and
    on-chip bandwidth scale together (``compute_scale``), SRAM capacity
    doubles, and the off-chip link takes the next memory generation's
    bandwidth rather than HBM (the cost thesis is kept).
    """
    base = mtia2i_spec(ecc_enabled=False)
    gemm = GemmEngineSpec(
        peak_flops={d: f * compute_scale for d, f in base.gemm.peak_flops.items()},
        sparsity_speedup=base.gemm.sparsity_speedup,
    )
    vector = VectorEngineSpec(
        peak_flops={d: f * compute_scale for d, f in base.vector.peak_flops.items()}
    )
    sram = MemoryLevelSpec(
        name="sram",
        capacity_bytes=sram_capacity_bytes,
        bandwidth_bytes_per_s=base.sram.bandwidth_bytes_per_s * compute_scale,
        access_latency_s=base.sram.access_latency_s,
    )
    dram = MemoryLevelSpec(
        name="lpddr_next",
        capacity_bytes=dram_capacity_bytes,
        bandwidth_bytes_per_s=dram_bandwidth_bytes_per_s,
        access_latency_s=base.dram.access_latency_s,
    )
    local = dataclasses.replace(
        base.local_memory,
        capacity_bytes=base.local_memory.capacity_bytes * 2,
        bandwidth_bytes_per_s=base.local_memory.bandwidth_bytes_per_s * 2,
    )
    issue = dataclasses.replace(
        base.issue, instructions_per_s=base.issue.instructions_per_s * 2
    )
    spec = dataclasses.replace(
        base,
        name="MTIA next-gen (projected)",
        gemm=gemm,
        vector=vector,
        sram=sram,
        dram=dram,
        local_memory=local,
        issue=issue,
        noc_bandwidth_bytes_per_s=base.noc_bandwidth_bytes_per_s * compute_scale,
        tdp_watts=tdp_watts,
        typical_watts=tdp_watts * 0.75,
    )
    return spec.with_ecc_enabled()
