"""Corruption sites: where an injected bit flip lands in the numeric path.

Five sites spanning the serving stack, each corrupting *real* data that
the pipeline then actually computes with:

* ``MEMORY_WORD`` — a raw 64-bit word of the LPDDR backing store (which
  holds both the INT8 weights and the FP16 embedding table), routed
  through the SEC-DED codec when ECC is enabled: singles correct,
  doubles detect, triples escape silently (miscorrected).
* ``QUANT_WEIGHT`` — one bit of one INT8 weight value, post-read (an
  SRAM/register flip ECC never sees).
* ``QUANT_ACTIVATION`` — a stuck datapath lane: the same bit of the same
  activation column flips on a recurring fraction of requests, the
  signature of a marginal (overclock-tail) chip.
* ``GEMM_ACCUMULATOR`` — a bit of the 32-bit MAC accumulator, again
  recurring on a fraction of requests.
* ``EMBEDDING_ROW`` — one bit of one FP16 embedding-table element in
  on-chip memory (not behind the LPDDR ECC path).

Injection *plans* are pre-sampled from one seeded generator in a fixed
order — the same discipline as the PR-1 resilience fault schedule — so
every protection profile in a campaign faces the identical fault list
and coverage deltas are attributable to the detectors alone.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import Dict, Sequence, Tuple

import numpy as np

WORD_BYTES = 8


class CorruptionSite(enum.Enum):
    """Where a flip lands."""

    MEMORY_WORD = "memory_word"
    QUANT_WEIGHT = "quant_weight"
    QUANT_ACTIVATION = "quant_activation"
    GEMM_ACCUMULATOR = "gemm_accumulator"
    EMBEDDING_ROW = "embedding_row"


# Sites ordered for deterministic sampling.
SITE_ORDER: Tuple[CorruptionSite, ...] = tuple(CorruptionSite)

# Default mix, weighted by the physical surface each site exposes: LPDDR
# words (capacity-dominant, the §5.1 telemetry surface) dominate;
# datapath and SRAM flips are the rare overclock-margin tail.
DEFAULT_SITE_WEIGHTS: Dict[CorruptionSite, float] = {
    CorruptionSite.MEMORY_WORD: 0.62,
    CorruptionSite.QUANT_WEIGHT: 0.12,
    CorruptionSite.QUANT_ACTIVATION: 0.10,
    CorruptionSite.GEMM_ACCUMULATOR: 0.10,
    CorruptionSite.EMBEDDING_ROW: 0.06,
}

# Multi-bit share of memory faults: overwhelmingly single-bit, a small
# double-bit share (the detectable-uncorrectable class the resilience
# simulator already models), and a thin triple-bit tail that SEC-DED
# miscorrects silently.
MEMORY_FLIP_COUNT_WEIGHTS: Tuple[Tuple[int, float], ...] = (
    (1, 0.90),
    (2, 0.08),
    (3, 0.02),
)

# Recurrence band for datapath (marginal-chip) faults: the same lane/bit
# flips on this fraction of requests, log-uniformly drawn.
RECURRENCE_RANGE = (0.005, 0.05)


@dataclasses.dataclass(frozen=True)
class Injection:
    """One pre-sampled fault, shared by every protection profile.

    The detector draws (``screen_draw``, ``latency_draw``) are sampled
    here, with the fault, so profiles that consult them consume the same
    randomness.
    """

    site: CorruptionSite
    # MEMORY_WORD:
    store: str = ""  # "embedding" | "weights"
    word_index: int = 0
    flip_bits: Tuple[int, ...] = ()  # data-space bit positions (0..63)
    # Direct-array sites:
    flat_index: int = 0
    bit: int = 0
    # Datapath sites:
    recurrence: float = 0.0
    fault_rows_seed: int = 0
    # Pre-drawn detector randomness:
    screen_draw: float = 0.0
    latency_draw: float = 0.0


def plan_injections(
    trials: int,
    rng: np.random.Generator,
    weight_values_size: int,
    table_shape: Tuple[int, int],
    num_features: int,
    site_weights: Dict[CorruptionSite, float] = None,
) -> Tuple[Injection, ...]:
    """Pre-sample ``trials`` injections in a fixed order.

    ``weight_values_size`` is the INT8 weight element count,
    ``table_shape`` the FP16 embedding table's (rows, dim), and
    ``num_features`` the activation width (the lane space a stuck
    datapath fault lives in); memory-word targets are drawn
    proportionally to each store's byte footprint.
    """
    if trials <= 0:
        raise ValueError("need at least one trial")
    weights = dict(DEFAULT_SITE_WEIGHTS if site_weights is None else site_weights)
    probs = np.array([weights.get(site, 0.0) for site in SITE_ORDER], dtype=np.float64)
    if probs.sum() <= 0:
        raise ValueError("site weights must have positive mass")
    probs = probs / probs.sum()

    table_rows, table_dim = table_shape
    table_bytes = table_rows * table_dim * 2  # fp16
    weight_bytes = weight_values_size  # int8
    total_words = (table_bytes + weight_bytes) // WORD_BYTES
    table_words = table_bytes // WORD_BYTES
    if table_bytes % WORD_BYTES or weight_bytes % WORD_BYTES:
        raise ValueError("stores must be whole 64-bit words")

    flip_counts = np.array([k for k, _ in MEMORY_FLIP_COUNT_WEIGHTS])
    flip_probs = np.array([p for _, p in MEMORY_FLIP_COUNT_WEIGHTS])
    lo, hi = RECURRENCE_RANGE

    injections = []
    for _ in range(trials):
        site = SITE_ORDER[int(rng.choice(len(SITE_ORDER), p=probs))]
        store, word_index, flip_bits = "", 0, ()
        flat_index, bit, recurrence, fault_rows_seed = 0, 0, 0.0, 0
        if site is CorruptionSite.MEMORY_WORD:
            word = int(rng.integers(total_words))
            store = "embedding" if word < table_words else "weights"
            word_index = word if word < table_words else word - table_words
            k = int(flip_counts[int(rng.choice(len(flip_counts), p=flip_probs))])
            flip_bits = tuple(
                sorted(int(b) for b in rng.choice(64, size=k, replace=False))
            )
        elif site is CorruptionSite.QUANT_WEIGHT:
            flat_index = int(rng.integers(weight_values_size))
            bit = int(rng.integers(8))
        elif site is CorruptionSite.QUANT_ACTIVATION:
            flat_index = int(rng.integers(num_features))  # the stuck lane
            bit = int(rng.integers(8))
            recurrence = math.exp(rng.uniform(math.log(lo), math.log(hi)))
            fault_rows_seed = int(rng.integers(2**31))
        elif site is CorruptionSite.GEMM_ACCUMULATOR:
            bit = int(rng.integers(32))
            recurrence = math.exp(rng.uniform(math.log(lo), math.log(hi)))
            fault_rows_seed = int(rng.integers(2**31))
        elif site is CorruptionSite.EMBEDDING_ROW:
            flat_index = int(rng.integers(table_rows * table_dim))
            bit = int(rng.integers(16))
        injections.append(
            Injection(
                site=site,
                store=store,
                word_index=word_index,
                flip_bits=flip_bits,
                flat_index=flat_index,
                bit=bit,
                recurrence=recurrence,
                fault_rows_seed=fault_rows_seed,
                screen_draw=float(rng.random()),
                latency_draw=float(rng.random()),
            )
        )
    return tuple(injections)


# ---------------------------------------------------------------------------
# Bit-level array surgery
# ---------------------------------------------------------------------------


def read_array_word(array: np.ndarray, word_index: int) -> int:
    """The 64-bit little-endian word at byte offset ``8 * word_index``."""
    raw = np.ascontiguousarray(array).view(np.uint8).reshape(-1)
    chunk = raw[word_index * WORD_BYTES : (word_index + 1) * WORD_BYTES]
    if chunk.size != WORD_BYTES:
        raise IndexError("word index outside the backing store")
    return int.from_bytes(chunk.tobytes(), "little")


def write_array_word(array: np.ndarray, word_index: int, word: int) -> None:
    """Write a 64-bit word back into the array's backing bytes."""
    raw = array.view(np.uint8).reshape(-1)
    raw[word_index * WORD_BYTES : (word_index + 1) * WORD_BYTES] = np.frombuffer(
        word.to_bytes(WORD_BYTES, "little"), dtype=np.uint8
    )


def flip_int8_bit(array: np.ndarray, flat_index: int, bit: int) -> None:
    """XOR one bit of one INT8 element in place."""
    array.reshape(-1).view(np.uint8)[flat_index] ^= np.uint8(1 << bit)


def flip_fp16_bit(array: np.ndarray, flat_index: int, bit: int) -> None:
    """XOR one bit of one FP16 element in place."""
    array.reshape(-1).view(np.uint16)[flat_index] ^= np.uint16(1 << bit)


def recurrent_rows(num_rows: int, recurrence: float, seed: int) -> np.ndarray:
    """The deterministic request subset a recurring datapath fault hits."""
    draws = np.random.default_rng(seed).random(num_rows)
    return draws < recurrence


def sites_in(injections: Sequence[Injection]) -> Dict[CorruptionSite, int]:
    """Trial counts per site (for campaign reporting)."""
    counts: Dict[CorruptionSite, int] = {site: 0 for site in SITE_ORDER}
    for injection in injections:
        counts[injection.site] += 1
    return counts
