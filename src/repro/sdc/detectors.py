"""SDC detectors: the protection menu the campaign toggles.

Five mechanisms, each with a real detection computation (not an assumed
coverage number) and an explicit overhead model:

* **ECC** — the working (72, 64) SEC-DED codec of
  :mod:`repro.reliability.ecc` applied to the memory words that back
  weights and embedding rows: single-bit flips correct, double-bit flips
  detect, triple-bit flips escape silently (usually miscorrected into a
  *different* wrong word — measured by :func:`triple_flip_escape_rate`).
* **ABFT** — algorithm-based fault tolerance for the quantized matmul:
  an input-column checksum taken at quantization time and a weight-row
  checksum taken at publish time are carried through the integer GEMM,
  so the identities ``1ᵀ(XW) = (1ᵀX)W`` and ``(XW)1 = X(W1)`` hold
  *exactly* in int arithmetic.  A corrupted weight word, activation
  lane, or accumulator entry breaks one of them.
* **Range guards** — dequant-time feasibility checks: gathered embedding
  rows must be finite and inside the publish-time magnitude envelope;
  the integer accumulator cannot algebraically exceed ``K * 127 * 127``;
  dequantized logits have a sanity bound.
* **Row hashing** — publish-time CRC32 per embedding row, re-verified by
  a background scrubber (reusing the overhead model the paper's
  prototype measured, :func:`repro.reliability.ecc.hashing_integrity_overhead`).
* **Fleet screening** — the periodic offline screen of
  :mod:`repro.sdc.screening`, which catches marginal (overclock-tail)
  chips whose datapath flips recur, with a latency set by the screening
  cadence.
"""

from __future__ import annotations

import dataclasses
import zlib
from typing import Optional, Tuple

import numpy as np

from repro.reliability.ecc import (
    DATA_BIT_POSITIONS,
    DATA_BITS,
    decode_word,
    encode_word,
)

# Detector names, in the order a corruption would meet them on the way to
# a user: at memory read, inline in the kernel, then the background and
# periodic mechanisms.
DETECTOR_ORDER: Tuple[str, ...] = (
    "ecc",
    "overflow",
    "abft",
    "range_guard",
    "row_hash",
    "fleet_screen",
)


@dataclasses.dataclass(frozen=True)
class ProtectionProfile:
    """Which detectors a campaign arm enables."""

    name: str
    ecc: bool = False
    abft: bool = False
    range_guard: bool = False
    row_hash: bool = False
    fleet_screen: bool = False

    def enabled(self, detector: str) -> bool:
        """Whether ``detector`` participates in this profile.

        The accumulator overflow assertion is hardware behaviour
        (satellite of the same PR), not an optional detector — it is
        loud in every profile.
        """
        if detector == "overflow":
            return True
        return bool(getattr(self, detector))


def standard_profiles() -> Tuple[ProtectionProfile, ...]:
    """The ladder the campaign table reports: nothing → ECC → ECC+ABFT →
    the full menu.  The acceptance criterion compares rung 1 to rung 3."""
    return (
        ProtectionProfile("none"),
        ProtectionProfile("ecc", ecc=True),
        ProtectionProfile("ecc+abft", ecc=True, abft=True),
        ProtectionProfile(
            "full", ecc=True, abft=True, range_guard=True, row_hash=True,
            fleet_screen=True,
        ),
    )


# ---------------------------------------------------------------------------
# ECC word channel
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class WordReadResult:
    """One 64-bit word read back through the (possibly ECC-protected)
    memory path after a fault."""

    data: int
    outcome: str  # "clean" | "corrected" | "detected" | "silent"


def read_word_through_ecc(word: int, data_bit_flips: Tuple[int, ...]) -> WordReadResult:
    """Write ``word`` through the SEC-DED encoder, flip the codeword bits
    that carry the given *data-space* bit positions, and decode.

    Sampling flips in data space keeps the ECC-on and ECC-off arms of a
    campaign corrupting exactly the same logical bits, so coverage
    deltas are attributable to the codec alone.
    """
    code = encode_word(word)
    for bit in data_bit_flips:
        code ^= 1 << DATA_BIT_POSITIONS[bit]
    result = decode_word(code)
    if result.double_error_detected:
        return WordReadResult(data=word, outcome="detected")
    if result.data == word:
        return WordReadResult(data=word, outcome="corrected" if data_bit_flips else "clean")
    # Odd-weight multi-bit flip: the decoder "corrects" the wrong bit and
    # hands back a silently wrong word — the escape the SDC layer models.
    return WordReadResult(data=result.data, outcome="silent")


def read_word_unprotected(word: int, data_bit_flips: Tuple[int, ...]) -> WordReadResult:
    """The same fault landing on a non-ECC memory path: every flip sticks."""
    for bit in data_bit_flips:
        word ^= 1 << bit
    return WordReadResult(data=word, outcome="silent" if data_bit_flips else "clean")


def triple_flip_escape_rate(samples: int = 500, seed: int = 0) -> float:
    """Fraction of 3-bit data-space flips that SEC-DED fails to flag.

    Odd-weight errors look like single-bit errors to the syndrome, so
    nearly all of them are miscorrected rather than detected — the
    silent-escape rate the memory-word injector relies on.
    """
    rng = np.random.default_rng(seed)
    escaped = 0
    for _ in range(samples):
        word = int(rng.integers(0, 1 << 63)) | (int(rng.integers(0, 2)) << 63)
        bits = tuple(int(b) for b in rng.choice(DATA_BITS, size=3, replace=False))
        if read_word_through_ecc(word, bits).outcome == "silent":
            escaped += 1
    return escaped / samples


# ---------------------------------------------------------------------------
# ABFT for the quantized matmul
# ---------------------------------------------------------------------------


def abft_weight_checksum(w_values: np.ndarray) -> np.ndarray:
    """Publish-time row checksum of the INT8 weight matrix: ``W @ 1``.

    Stored alongside the model artifact; serving verifies
    ``X @ (W @ 1) == (X W) @ 1`` in exact integer arithmetic, which a
    corrupted weight word breaks.
    """
    return w_values.astype(np.int64).sum(axis=1)


def abft_activation_checksum(x_values: np.ndarray) -> np.ndarray:
    """Quantization-time column checksum of the INT8 activations:
    ``1ᵀ @ X``, taken before the values enter the datapath."""
    return x_values.astype(np.int64).sum(axis=0)


def abft_col_check(
    acc: np.ndarray, x_checksum: np.ndarray, w_values: np.ndarray
) -> bool:
    """``1ᵀ(XW) == (1ᵀX)W`` — catches activation-lane and accumulator
    corruption (the checksum predates the datapath)."""
    return bool(
        np.array_equal(acc.sum(axis=0), x_checksum @ w_values.astype(np.int64))
    )


def abft_row_check(
    acc: np.ndarray, x_values: np.ndarray, w_checksum: np.ndarray
) -> bool:
    """``(XW)1 == X(W1)`` with the publish-time weight checksum — catches
    weight-memory and accumulator corruption."""
    return bool(
        np.array_equal(acc.sum(axis=1), x_values.astype(np.int64) @ w_checksum)
    )


def abft_overhead_fraction(m: int, k: int, n: int) -> float:
    """Extra MACs/adds of the two checksum identities relative to the
    ``m*k*n`` MACs of the protected GEMM.

    Checksum GEMV against the weights costs ``k*n``, the activation-side
    GEMV ``m*k``, and folding/comparing the accumulator ``2*m*n``.
    """
    if m <= 0 or k <= 0 or n <= 0:
        raise ValueError("GEMM dims must be positive")
    return (k * n + m * k + 2 * m * n) / (m * k * n)


# ---------------------------------------------------------------------------
# Range guards and row hashing
# ---------------------------------------------------------------------------


def accumulator_bound(k: int, int8_max: int = 127) -> int:
    """The algebraic maximum of a K-deep INT8 dot product; any larger
    accumulator value can only be corruption."""
    return k * int8_max * int8_max


def hash_rows(table: np.ndarray) -> Tuple[int, ...]:
    """CRC32 per embedding row over its raw bytes (publish-time)."""
    if table.ndim != 2:
        raise ValueError("expected a 2-D table")
    return tuple(zlib.crc32(np.ascontiguousarray(row).tobytes()) for row in table)


def verify_row_hashes(table: np.ndarray, published: Tuple[int, ...]) -> Optional[int]:
    """Re-hash every row; return the first mismatching row index, or
    ``None`` when the table is intact — the background scrubber's pass."""
    for index, row in enumerate(table):
        if zlib.crc32(np.ascontiguousarray(row).tobytes()) != published[index]:
            return index
    return None
