"""Silent-data-corruption injection, detection, and mitigation across
the numeric stack (paper sections 5.1, 5.2, and 5.6).

The paper's reliability sections treat corruption piecemeal: §5.1
measures memory errors and justifies inline ECC, §5.2 ships an
overclock whose margin tail is the silent-corruption population, and
§5.6 gates model launches on normalized entropy.  This package closes
the loop between them: bit-level faults are injected into the *real*
numeric path (the SEC-DED codec, the INT8 quantized matmul, the FP16
embedding table), real detectors (ECC, ABFT checksums, range guards,
row hashing, periodic fleet screening) attempt to catch them, and the
survivors are scored by the NE damage they do to the §5.6 A/B harness's
synthetic CTR model.  The measured undetected rates and detection
latencies then replace the PR-1 resilience simulator's assumed SDC
constants (:mod:`repro.sdc.resilience_link`).
"""

from repro.sdc.campaign import (
    ABFT_GEMM_SHAPE,
    CampaignConfig,
    CampaignResult,
    ProfileSummary,
    RANGE_GUARD_OVERHEAD,
    TrialOutcome,
    profile_overhead_fraction,
    run_campaign,
)
from repro.sdc.detectors import (
    DETECTOR_ORDER,
    ProtectionProfile,
    WordReadResult,
    abft_activation_checksum,
    abft_col_check,
    abft_overhead_fraction,
    abft_row_check,
    abft_weight_checksum,
    accumulator_bound,
    hash_rows,
    read_word_through_ecc,
    read_word_unprotected,
    standard_profiles,
    triple_flip_escape_rate,
    verify_row_hashes,
)
from repro.sdc.pipeline import (
    CtrServingPipeline,
    PipelineState,
    RequestSlice,
    ServeResult,
)
from repro.sdc.resilience_link import (
    DEFAULT_UNDETECTED_WINDOW_S,
    expected_blast_window_s,
    sdc_fault_rates,
)
from repro.sdc.screening import (
    FleetScreeningModel,
    margin_shortfall_fraction,
)
from repro.sdc.sites import (
    CorruptionSite,
    DEFAULT_SITE_WEIGHTS,
    Injection,
    MEMORY_FLIP_COUNT_WEIGHTS,
    plan_injections,
    sites_in,
)

__all__ = [
    "ABFT_GEMM_SHAPE",
    "CampaignConfig",
    "CampaignResult",
    "CorruptionSite",
    "CtrServingPipeline",
    "DEFAULT_SITE_WEIGHTS",
    "DEFAULT_UNDETECTED_WINDOW_S",
    "DETECTOR_ORDER",
    "FleetScreeningModel",
    "Injection",
    "MEMORY_FLIP_COUNT_WEIGHTS",
    "PipelineState",
    "ProfileSummary",
    "ProtectionProfile",
    "RANGE_GUARD_OVERHEAD",
    "RequestSlice",
    "ServeResult",
    "TrialOutcome",
    "WordReadResult",
    "abft_activation_checksum",
    "abft_col_check",
    "abft_overhead_fraction",
    "abft_row_check",
    "abft_weight_checksum",
    "accumulator_bound",
    "expected_blast_window_s",
    "hash_rows",
    "margin_shortfall_fraction",
    "plan_injections",
    "profile_overhead_fraction",
    "read_word_through_ecc",
    "read_word_unprotected",
    "run_campaign",
    "sdc_fault_rates",
    "sites_in",
    "standard_profiles",
    "triple_flip_escape_rate",
    "verify_row_hashes",
]
