"""Seeded SDC injection campaigns: coverage vs. overhead vs. NE damage.

One campaign pre-samples a fault list (:func:`repro.sdc.sites.plan_injections`),
then evaluates every protection profile against the *identical* list:
each injection is applied to a fresh copy of the serving artifacts, the
corrupted pipeline serves a fixed traffic slice, and the profile's
enabled detectors run their real computations over the corrupted bytes.
A corruption that no enabled detector flags is *silent*; its quality
damage is the normalized-entropy delta of the corrupted predictions
against the clean quantized path on the same requests — the §5.6 metric
applied to the §5.1/§5.2 threat.

Everything is a pure function of the campaign seed: the fault list, the
traffic slice, and each detector's tie-breaking draws are all sampled
up front from one generator, so repeated runs are bit-identical and
profile-to-profile coverage deltas are attributable to the detectors
alone (the PR-1 resilience discipline).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.fleet.abtest import normalized_entropy
from repro.obs.metrics import MetricsRegistry, active
from repro.reliability.ecc import ECC_THROUGHPUT_PENALTY, hashing_integrity_overhead
from repro.sdc.detectors import (
    ProtectionProfile,
    abft_overhead_fraction,
    read_word_through_ecc,
    read_word_unprotected,
    standard_profiles,
)
from repro.sdc.pipeline import CtrServingPipeline, ServeResult
from repro.sdc.screening import FleetScreeningModel
from repro.sdc.sites import CorruptionSite, Injection, plan_injections, sites_in

import numpy as np

# Representative production FC-layer GEMM the ABFT overhead is quoted
# at.  The campaign's own layer is a GEMV (n = 1), where checksum math
# is not amortized; the paper-scale top FC layers are where ABFT's cost
# actually lands.
ABFT_GEMM_SHAPE = (256, 1024, 1024)
# Dequant-time feasibility checks are a handful of compares per output
# element against the GEMM's K MACs per element.
RANGE_GUARD_OVERHEAD = 0.002

# The two datapath sites whose faults recur on a marginal chip — the
# population the periodic fleet screen can catch.
_RECURRING_SITES = (
    CorruptionSite.QUANT_ACTIVATION,
    CorruptionSite.GEMM_ACCUMULATOR,
)


@dataclasses.dataclass(frozen=True)
class CampaignConfig:
    """Knobs for one injection campaign."""

    trials: int = 400
    requests: int = 8000
    seed: int = 0
    # |NE delta| above this counts as quality-impacting (production A/B
    # gates detect shifts of this order at scale).
    ne_threshold: float = 1e-3
    # Latency credited to inline detectors (ECC read, ABFT check, range
    # guard): one serving batch.
    inline_latency_s: float = 0.02
    # Background scrubber cadence for the embedding row hashes.
    hash_scan_interval_s: float = 3600.0
    screening: FleetScreeningModel = FleetScreeningModel()
    site_weights: Optional[Dict[CorruptionSite, float]] = None

    def __post_init__(self) -> None:
        if self.trials <= 0 or self.requests <= 0:
            raise ValueError("trials and requests must be positive")
        if self.ne_threshold <= 0 or self.hash_scan_interval_s <= 0:
            raise ValueError("thresholds and cadences must be positive")


@dataclasses.dataclass(frozen=True)
class TrialOutcome:
    """One injection under one protection profile."""

    injection: Injection
    detected: bool
    detector: str  # first detector to flag it, "" when silent
    latency_s: float  # time-to-detection; 0.0 when undetected
    ne_delta: float  # corrupted NE minus clean NE on the same slice
    ne_impacting: bool


@dataclasses.dataclass(frozen=True)
class ProfileSummary:
    """One protection profile's line in the campaign table."""

    profile: ProtectionProfile
    trials: int
    detected: int
    detector_counts: Dict[str, int]
    undetected: int
    undetected_ne_impacting: int
    mean_detection_latency_s: float
    overhead_fraction: float
    outcomes: Tuple[TrialOutcome, ...]

    @property
    def coverage(self) -> float:
        return self.detected / self.trials

    @property
    def undetected_ne_impacting_fraction(self) -> float:
        return self.undetected_ne_impacting / self.trials


@dataclasses.dataclass(frozen=True)
class CampaignResult:
    """The full campaign: shared fault list, per-profile outcomes."""

    config: CampaignConfig
    clean_ne: float
    site_counts: Dict[CorruptionSite, int]
    profiles: Tuple[ProfileSummary, ...]

    def summary_for(self, name: str) -> ProfileSummary:
        for summary in self.profiles:
            if summary.profile.name == name:
                return summary
        raise KeyError(f"no profile named {name!r}")

    def undetected_impacting_ratio(
        self, baseline: str = "none", protected: str = "ecc+abft"
    ) -> float:
        """How many times fewer undetected NE-impacting corruptions the
        protected profile leaves versus the baseline (the acceptance
        criterion's >= 10x)."""
        base = self.summary_for(baseline).undetected_ne_impacting
        prot = self.summary_for(protected).undetected_ne_impacting
        if prot == 0:
            return float("inf")
        return base / prot

    def table(self) -> str:
        """The coverage / overhead / NE-damage table, one profile per row."""
        header = (
            f"{'profile':<10} {'coverage':>9} {'undetected':>11} "
            f"{'undet. NE-impact':>17} {'mean latency (s)':>17} {'overhead':>9}"
        )
        lines = [header, "-" * len(header)]
        for s in self.profiles:
            lines.append(
                f"{s.profile.name:<10} {s.coverage:>8.1%} {s.undetected:>11d} "
                f"{s.undetected_ne_impacting:>17d} "
                f"{s.mean_detection_latency_s:>17.3f} {s.overhead_fraction:>8.2%}"
            )
        return "\n".join(lines)


def profile_overhead_fraction(
    profile: ProtectionProfile,
    config: CampaignConfig,
    table_bytes: int,
    table_reads_per_s: float = 1.0 / 3600.0,
) -> float:
    """Steady-state throughput cost of a profile's enabled detectors.

    ECC charges the midpoint of the paper's quoted 10-15%% band; ABFT
    its checksum arithmetic at a representative FC shape; row hashing
    the scrubber's hash bandwidth via the paper's prototyped cost model;
    screening its periodic drain window.
    """
    overhead = 0.0
    if profile.ecc:
        overhead += sum(ECC_THROUGHPUT_PENALTY) / 2.0
    if profile.abft:
        overhead += abft_overhead_fraction(*ABFT_GEMM_SHAPE)
    if profile.range_guard:
        overhead += RANGE_GUARD_OVERHEAD
    if profile.row_hash:
        overhead += hashing_integrity_overhead(table_bytes, table_reads_per_s)
    if profile.fleet_screen:
        overhead += config.screening.overhead_fraction()
    return overhead


def run_campaign(
    config: Optional[CampaignConfig] = None,
    profiles: Optional[Tuple[ProtectionProfile, ...]] = None,
    pipeline: Optional[CtrServingPipeline] = None,
    registry: Optional[MetricsRegistry] = None,
) -> CampaignResult:
    """Run one seeded campaign over every profile.

    The serve pass for a given landed corruption is computed once and
    shared across profiles (profiles differ only in which verdicts they
    *consult*), so the none/ecc/ecc+abft/full rows are guaranteed to
    face byte-identical corruptions.

    An attached registry records per-detector catch-latency histograms
    and per-profile detection counters (``sdc.*``); the campaign result
    is identical either way.
    """
    config = config or CampaignConfig()
    obs = active(registry)
    pipeline = pipeline or CtrServingPipeline(seed=config.seed)
    profiles = profiles or standard_profiles()

    rng = np.random.default_rng(config.seed)
    injections = plan_injections(
        config.trials,
        rng,
        weight_values_size=pipeline.qweights.values.size,
        table_shape=pipeline.table.shape,
        num_features=pipeline.model.num_features,
        site_weights=config.site_weights,
    )
    requests = pipeline.sample(config.requests, seed=config.seed + 1)
    clean = pipeline.serve(requests, pipeline.clean_state())
    clean_ne = normalized_entropy(clean.predictions, requests.labels)

    # (trial index, memory-path variant) -> (serve result, NE delta).
    serve_cache: Dict[Tuple[int, str], Tuple[ServeResult, float]] = {}

    def served(index: int, injection: Injection, variant: str,
               landed_word: Optional[int]) -> Tuple[ServeResult, float]:
        key = (index, variant)
        if key not in serve_cache:
            state = pipeline.corrupted_state(injection, landed_word=landed_word)
            result = pipeline.serve(requests, state)
            delta = normalized_entropy(result.predictions, requests.labels) - clean_ne
            serve_cache[key] = (result, delta)
        return serve_cache[key]

    def evaluate(index: int, injection: Injection,
                 profile: ProtectionProfile) -> TrialOutcome:
        if injection.site is CorruptionSite.MEMORY_WORD:
            word = pipeline.stored_word(injection)
            if profile.ecc:
                read = read_word_through_ecc(word, injection.flip_bits)
                if read.outcome == "corrected":
                    # Fixed inline at read time; nothing ever lands.
                    return TrialOutcome(injection, True, "ecc", 0.0, 0.0, False)
                if read.outcome == "detected":
                    # Double-bit: detected-uncorrectable, surfaced loudly
                    # (the resilience simulator's ECC-UE fault family).
                    return TrialOutcome(
                        injection, True, "ecc", config.inline_latency_s, 0.0, False
                    )
                result, ne_delta = served(index, injection, "ecc", read.data)
            else:
                landed = read_word_unprotected(word, injection.flip_bits).data
                result, ne_delta = served(index, injection, "raw", landed)
        else:
            result, ne_delta = served(index, injection, "raw", None)

        ne_impacting = abs(ne_delta) > config.ne_threshold
        # First enabled detector to flag it, in datapath order.
        if result.overflowed:
            return TrialOutcome(
                injection, True, "overflow", config.inline_latency_s,
                ne_delta, ne_impacting,
            )
        if profile.abft and not result.abft_ok:
            return TrialOutcome(
                injection, True, "abft", config.inline_latency_s,
                ne_delta, ne_impacting,
            )
        if profile.range_guard and not result.range_guard_ok:
            return TrialOutcome(
                injection, True, "range_guard", config.inline_latency_s,
                ne_delta, ne_impacting,
            )
        if profile.row_hash and not result.row_hash_ok:
            # Caught by the background scrubber at its next pass.
            return TrialOutcome(
                injection, True, "row_hash",
                injection.latency_draw * config.hash_scan_interval_s,
                ne_delta, ne_impacting,
            )
        if (
            profile.fleet_screen
            and injection.site in _RECURRING_SITES
            and injection.screen_draw < config.screening.sensitivity
        ):
            # A recurring datapath fault marks a marginal chip; the
            # periodic screen catches it at its next pass on this device.
            return TrialOutcome(
                injection, True, "fleet_screen",
                injection.latency_draw * config.screening.interval_s,
                ne_delta, ne_impacting,
            )
        return TrialOutcome(injection, False, "", 0.0, ne_delta, ne_impacting)

    table_bytes = pipeline.table.nbytes
    summaries = []
    for profile in profiles:
        outcomes = tuple(
            evaluate(index, injection, profile)
            for index, injection in enumerate(injections)
        )
        detected = [o for o in outcomes if o.detected]
        detector_counts: Dict[str, int] = {}
        for outcome in detected:
            detector_counts[outcome.detector] = (
                detector_counts.get(outcome.detector, 0) + 1
            )
        if obs.enabled:
            name = profile.name
            obs.counter(f"sdc.{name}.detected").inc(len(detected))
            obs.counter(f"sdc.{name}.undetected").inc(
                len(outcomes) - len(detected)
            )
            for outcome in detected:
                obs.histogram(
                    f"sdc.catch_latency_s.{outcome.detector}"
                ).observe(outcome.latency_s)
        summaries.append(
            ProfileSummary(
                profile=profile,
                trials=len(outcomes),
                detected=len(detected),
                detector_counts=detector_counts,
                undetected=len(outcomes) - len(detected),
                undetected_ne_impacting=sum(
                    1 for o in outcomes if not o.detected and o.ne_impacting
                ),
                mean_detection_latency_s=(
                    sum(o.latency_s for o in detected) / len(detected)
                    if detected
                    else 0.0
                ),
                overhead_fraction=profile_overhead_fraction(
                    profile, config, table_bytes
                ),
                outcomes=outcomes,
            )
        )

    return CampaignResult(
        config=config,
        clean_ne=clean_ne,
        site_counts=sites_in(injections),
        profiles=tuple(summaries),
    )
