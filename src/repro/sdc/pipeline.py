"""The corruptible serving path the SDC campaign injects into.

A quantized replica of the §5.6 A/B harness's serving stack for the
:class:`repro.fleet.abtest.SyntheticCtrModel`: per-request features are
part dense, part gathered from an FP16 embedding table; the logit is
computed with the *actual* INT8 arithmetic of :mod:`repro.quant.int8`
(row-wise dynamic activations, static per-channel weights, explicit
wide accumulation).  Every artifact a corruption can land in exists as
real bytes — the FP16 table, the INT8 weight words, the quantized
activation matrix, the integer accumulator — and every detector runs
its real computation over those bytes.

Ground-truth labels always come from the clean model, so the normalized
entropy of the corrupted path against those labels, minus the NE of the
clean quantized path, isolates exactly the quality damage of the
surviving corruption (the paper's §5.6 metric applied to §5.1's threat).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.fleet.abtest import Backend, SyntheticCtrModel
from repro.quant.int8 import (
    QuantizedTensor,
    accumulate_int8,
    dequantize_accumulator,
    quantize_rowwise,
    quantize_weights_static,
)
from repro.sdc.detectors import (
    abft_activation_checksum,
    abft_col_check,
    abft_weight_checksum,
    accumulator_bound,
    hash_rows,
    verify_row_hashes,
)
from repro.sdc.sites import (
    CorruptionSite,
    Injection,
    flip_fp16_bit,
    flip_int8_bit,
    read_array_word,
    recurrent_rows,
    write_array_word,
)

# Saturation stand-in for non-finite gathered values: real datapaths
# clamp to the FP16 max rather than propagate IEEE infinities into the
# quantizer.  The pre-saturation values still drive the range guard.
FP16_SATURATE = 65504.0
# Sanity bound on dequantized logits; the clean path stays far inside.
LOGIT_GUARD = 30.0
# Publish-time envelope multiplier for gathered embedding magnitudes.
EMBED_GUARD_MARGIN = 4.0


@dataclasses.dataclass(frozen=True)
class RequestSlice:
    """One traffic slice: dense features, embedding indices, labels."""

    dense: np.ndarray  # (n, F - D) float64
    indices: np.ndarray  # (n,) intp into the embedding table
    labels: np.ndarray  # (n,) float64 in {0, 1}

    @property
    def num_requests(self) -> int:
        return len(self.labels)


@dataclasses.dataclass
class PipelineState:
    """The mutable serving-side artifacts a fault corrupts.

    The dirty flags are a fast *negative* hint: a set flag tells
    :meth:`CtrServingPipeline.serve` the artifact diverged without
    comparing bytes.  Cleanliness itself is always verified by byte
    comparison against the pipeline's published copy (the arrays are a
    few KiB), so hand-mutated states with stale flags still serve
    correctly — the flags only skip the comparison, never the recompute.
    """

    table: np.ndarray  # fp16 (rows, dim)
    weight_values: np.ndarray  # int8 (F, 1)
    activation_fault: Optional[Injection] = None
    accumulator_fault: Optional[Injection] = None
    table_dirty: bool = False
    weights_dirty: bool = False


@dataclasses.dataclass(frozen=True)
class ServeResult:
    """One pass of the (possibly corrupted) pipeline plus every
    detector's raw verdict over the same bytes."""

    predictions: np.ndarray
    embed_guard_ok: bool
    abft_col_ok: bool
    abft_row_ok: bool
    acc_range_ok: bool
    logit_guard_ok: bool
    row_hash_ok: bool
    overflowed: bool

    @property
    def abft_ok(self) -> bool:
        return self.abft_col_ok and self.abft_row_ok

    @property
    def range_guard_ok(self) -> bool:
        return self.embed_guard_ok and self.acc_range_ok and self.logit_guard_ok


class CtrServingPipeline:
    """The quantized embedding + FC serving path for a synthetic CTR
    model, with publish-time integrity artifacts (weight checksum, row
    hashes, magnitude envelope)."""

    def __init__(
        self,
        model: Optional[SyntheticCtrModel] = None,
        embed_rows: int = 128,
        embed_dim: int = 16,
        seed: int = 0,
    ) -> None:
        self.model = model or SyntheticCtrModel(num_features=64, seed=seed)
        if embed_dim >= self.model.num_features:
            raise ValueError("embedding slice must leave dense features")
        if (embed_rows * embed_dim * 2) % 8:
            raise ValueError("embedding table must be whole 64-bit words")
        self.embed_rows = embed_rows
        self.embed_dim = embed_dim
        self.dense_width = self.model.num_features - embed_dim
        rng = np.random.default_rng(seed)
        self.table = rng.normal(0, 1, size=(embed_rows, embed_dim)).astype(np.float16)
        self.qweights = quantize_weights_static(
            np.asarray(self.model.true_weights, dtype=np.float32)[:, None]
        )
        # Publish-time integrity artifacts.
        self.weight_checksum = abft_weight_checksum(self.qweights.values)
        self.row_hashes = hash_rows(self.table)
        self.embed_guard_limit = float(
            np.abs(self.table.astype(np.float64)).max() * EMBED_GUARD_MARGIN
        )
        self.acc_bound = accumulator_bound(self.model.num_features)
        # Clean-path intermediates for the most recent traffic slice,
        # keyed by slice identity; ``serve`` reuses them whenever the
        # state's dirty flags prove a fault could not have changed them.
        self._clean_cache: Optional[dict] = None

    # -- traffic ----------------------------------------------------------

    def sample(self, num_requests: int, seed: int = 1) -> RequestSlice:
        """Draw a traffic slice; labels come from the clean ground truth
        (dense features plus *clean* embedding contributions)."""
        rng = np.random.default_rng(seed)
        dense = rng.normal(0, 1, size=(num_requests, self.dense_width))
        indices = rng.integers(0, self.embed_rows, size=num_requests)
        features = np.concatenate(
            [dense, self.table.astype(np.float64)[indices]], axis=1
        )
        logits = features @ self.model.true_weights + self.model.bias
        probs = 1.0 / (1.0 + np.exp(-logits))
        labels = (rng.uniform(size=num_requests) < probs).astype(np.float64)
        return RequestSlice(dense=dense, indices=indices, labels=labels)

    # -- state construction ----------------------------------------------

    def clean_state(self) -> PipelineState:
        """A fresh, uncorrupted copy of the serving artifacts."""
        return PipelineState(
            table=self.table.copy(), weight_values=self.qweights.values.copy()
        )

    def corrupted_state(
        self, injection: Injection, landed_word: Optional[int] = None
    ) -> PipelineState:
        """Apply one injection to a fresh state.

        For ``MEMORY_WORD`` faults the caller resolves the memory path
        first (through ECC or not) and passes the word that actually
        landed; ``None`` means the path corrected/discarded it.
        """
        state = self.clean_state()
        site = injection.site
        if site is CorruptionSite.MEMORY_WORD:
            if landed_word is not None:
                if injection.store == "embedding":
                    write_array_word(state.table, injection.word_index, landed_word)
                    state.table_dirty = True
                else:
                    write_array_word(
                        state.weight_values, injection.word_index, landed_word
                    )
                    state.weights_dirty = True
        elif site is CorruptionSite.QUANT_WEIGHT:
            flip_int8_bit(state.weight_values, injection.flat_index, injection.bit)
            state.weights_dirty = True
        elif site is CorruptionSite.EMBEDDING_ROW:
            flip_fp16_bit(state.table, injection.flat_index, injection.bit)
            state.table_dirty = True
        elif site is CorruptionSite.QUANT_ACTIVATION:
            state.activation_fault = injection
        elif site is CorruptionSite.GEMM_ACCUMULATOR:
            state.accumulator_fault = injection
        else:  # pragma: no cover - exhaustive enum
            raise AssertionError(site)
        return state

    def stored_word(self, injection: Injection) -> int:
        """The clean 64-bit backing word a memory fault targets."""
        source = self.table if injection.store == "embedding" else self.qweights.values
        return read_array_word(source, injection.word_index)

    # -- the serving pass -------------------------------------------------

    def _table_clean(self, state: PipelineState) -> bool:
        """Whether the state's table is byte-equal to the published one.

        The bit-pattern view makes the comparison exact even through
        NaN-producing corruptions; the table is 2 KiB, so this costs
        microseconds against the full gather/quantize pass it gates.
        """
        if state.table_dirty:
            return False
        return bool(
            np.array_equal(
                state.table.view(np.uint16), self.table.view(np.uint16)
            )
        )

    def _weights_clean(self, state: PipelineState) -> bool:
        """Whether the state's weight words match the published ones."""
        if state.weights_dirty:
            return False
        return bool(np.array_equal(state.weight_values, self.qweights.values))

    def _row_hash_ok(self, state: PipelineState, table_clean: bool) -> bool:
        """The background scrubber's verdict on the state's table.

        A byte-clean table trivially matches its publish-time hashes;
        only diverged tables pay for the full row rehash.
        """
        if table_clean:
            return True
        return verify_row_hashes(state.table, self.row_hashes) is None

    def serve(self, requests: RequestSlice, state: PipelineState) -> ServeResult:
        """Run the quantized path over a slice and every detector's raw
        check over the same bytes.

        A state whose table is byte-equal to the published copy reuses
        the gather/quantize/checksum intermediates from the last clean
        pass over the *same* slice — the arrays are identical bytes
        either way.  A state whose table diverged takes the incremental
        path: every stage up to the accumulator is row-local in the
        request dimension (per-row quantization, per-row accumulation)
        or an exact integer column sum, so only the requests gathering a
        diverged table row are recomputed and spliced over copies of the
        clean artifacts.  Either way each ServeResult field is the same
        float/bool the monolithic pass produced; only redundant work is
        skipped.  Mutating faults copy before writing, so cached arrays
        stay clean.
        """
        cache = self._clean_cache
        table_clean = self._table_clean(state)
        weights_clean = self._weights_clean(state)
        cache_hit = cache is not None and cache["requests"] is requests
        reuse = table_clean and cache_hit
        changed: Optional[np.ndarray] = None  # incremental request rows
        if reuse:
            embed_ok = cache["embed_ok"]
            qx = cache["qx"]
            x_checksum = cache["x_checksum"]
        elif cache_hit and cache["gathered_finite"]:
            # Incremental path: find the diverged table rows, rebuild
            # only the requests that gather one of them.
            row_changed = (
                state.table.view(np.uint16) != self.table.view(np.uint16)
            ).any(axis=1)
            changed = np.nonzero(row_changed[requests.indices])[0]
            g = state.table.astype(np.float32)[requests.indices[changed]]
            finite_g = np.isfinite(g)
            # The gathered abs-max decomposes over rows: clean per-row
            # maxima for untouched used rows, fresh maxima for diverged
            # ones.  max() is selection, not arithmetic, so the combined
            # value is the exact float the full pass produces.
            m_unchanged = cache["row_absmax"][
                cache["used_mask"] & ~row_changed
            ].max(initial=np.float32(0.0))
            m_changed = np.abs(g[finite_g]).max(initial=np.float32(0.0))
            embed_ok = bool(
                cache["dense_finite"] and bool(finite_g.all())
            ) and float(np.maximum(m_unchanged, m_changed)) <= self.embed_guard_limit
            if changed.size:
                x_rows = np.nan_to_num(
                    np.concatenate(
                        [requests.dense[changed].astype(np.float32), g], axis=1
                    ),
                    nan=FP16_SATURATE, posinf=FP16_SATURATE,
                    neginf=-FP16_SATURATE,
                )
                q_rows = quantize_rowwise(x_rows)
                values_inc = cache["qx"].values.copy()
                values_inc[changed] = q_rows.values
                scales_inc = cache["qx"].scales.copy()
                scales_inc[changed] = q_rows.scales
                qx = QuantizedTensor(values=values_inc, scales=scales_inc)
                # Column checksums are exact int64 sums, so swapping the
                # diverged rows' contributions is bit-identical to the
                # full column sum.
                x_checksum = (
                    cache["x_checksum"]
                    - cache["qx"].values[changed].astype(np.int64).sum(axis=0)
                    + q_rows.values.astype(np.int64).sum(axis=0)
                )
            else:
                qx = cache["qx"]
                x_checksum = cache["x_checksum"]
        else:
            gathered = state.table.astype(np.float32)[requests.indices]
            raw = np.concatenate(
                [requests.dense.astype(np.float32), gathered], axis=1
            )
            finite = np.isfinite(raw)
            dense_finite = bool(finite[:, : self.dense_width].all())
            gathered_finite = bool(finite[:, self.dense_width :].all())
            embed_ok = (dense_finite and gathered_finite) and float(
                np.abs(gathered[np.isfinite(gathered)]).max(initial=0.0)
            ) <= self.embed_guard_limit
            x = np.nan_to_num(raw, nan=FP16_SATURATE, posinf=FP16_SATURATE,
                              neginf=-FP16_SATURATE)
            qx = quantize_rowwise(x)
            x_checksum = abft_activation_checksum(qx.values)
            if table_clean:
                used_mask = np.zeros(self.embed_rows, dtype=bool)
                used_mask[requests.indices] = True
                cache = {
                    "requests": requests,
                    "embed_ok": embed_ok,
                    "qx": qx,
                    "x_checksum": x_checksum,
                    "dense_finite": dense_finite,
                    "gathered_finite": gathered_finite,
                    "used_mask": used_mask,
                    "row_absmax": np.abs(
                        self.table.astype(np.float32)
                    ).max(axis=1),
                }
                self._clean_cache = cache
                reuse = True
        values = qx.values
        values_clean = True
        fault = state.activation_fault
        if fault is not None:
            rows = recurrent_rows(
                requests.num_requests, fault.recurrence, fault.fault_rows_seed
            )
            if rows.any():
                values = values.copy()
                values_clean = False
                lane = fault.flat_index % values.shape[1]
                values[rows, lane] = (
                    values[rows, lane].view(np.uint8) ^ np.uint8(1 << fault.bit)
                ).view(np.int8)

        acc_cacheable = reuse and values_clean and weights_clean
        acc_incremental = (
            changed is not None
            and values_clean
            and weights_clean
            and "acc" in cache
        )
        try:
            if acc_cacheable and "acc" in cache:
                acc = cache["acc"]
            elif acc_incremental:
                # Row-local accumulation: untouched rows keep their
                # clean accumulator (already range-checked); diverged
                # rows re-accumulate and re-check.
                if changed.size:
                    acc = cache["acc"].copy()
                    acc[changed] = accumulate_int8(
                        values[changed], state.weight_values
                    )
                else:
                    acc = cache["acc"]
            else:
                acc = accumulate_int8(values, state.weight_values)
                if acc_cacheable:
                    cache["acc"] = acc
            overflowed = False
        except OverflowError:
            # The wide-accumulate assertion fired: loud, not silent.
            return ServeResult(
                predictions=np.full(requests.num_requests, 0.5),
                embed_guard_ok=embed_ok, abft_col_ok=False, abft_row_ok=False,
                acc_range_ok=False, logit_guard_ok=False,
                row_hash_ok=self._row_hash_ok(state, table_clean),
                overflowed=True,
            )

        # The row check folds the accumulator the hardware actually holds,
        # so apply any accumulator fault before either identity is tested.
        if reuse and values_clean and "row_lhs" in cache:
            row_lhs = cache["row_lhs"]
        elif changed is not None and values_clean and "row_lhs" in cache:
            if changed.size:
                row_lhs = cache["row_lhs"].copy()
                row_lhs[changed] = (
                    values[changed].astype(np.int64) @ self.weight_checksum
                )
            else:
                row_lhs = cache["row_lhs"]
        else:
            row_lhs = values.astype(np.int64) @ self.weight_checksum
            if reuse and values_clean:
                cache["row_lhs"] = row_lhs
        fault = state.accumulator_fault
        if fault is not None:
            rows = recurrent_rows(
                requests.num_requests, fault.recurrence, fault.fault_rows_seed
            )
            if rows.any():
                acc = acc.copy()
                acc[rows, 0] = np.bitwise_xor(
                    acc[rows, 0], np.int64(1) << np.int64(fault.bit)
                )

        abft_col_ok = abft_col_check(acc, x_checksum, state.weight_values)
        abft_row_ok = bool(np.array_equal(acc.sum(axis=1), row_lhs))
        acc_range_ok = bool(np.abs(acc).max(initial=0) <= self.acc_bound)

        logits = (
            dequantize_accumulator(acc, qx.scales, self.qweights.scales)[:, 0]
            + self.model.bias
        )
        logit_ok = bool(np.abs(logits).max(initial=0.0) <= LOGIT_GUARD)
        predictions = 1.0 / (1.0 + np.exp(-np.clip(logits, -60.0, 60.0)))
        return ServeResult(
            predictions=predictions,
            embed_guard_ok=embed_ok,
            abft_col_ok=abft_col_ok,
            abft_row_ok=abft_row_ok,
            acc_range_ok=acc_range_ok,
            logit_guard_ok=logit_ok,
            row_hash_ok=self._row_hash_ok(state, table_clean),
            overflowed=overflowed,
        )

    # -- §5.6 linkage ------------------------------------------------------

    def ab_model(self):
        """A model-like adapter for :func:`repro.fleet.abtest.run_ab_test`.

        The harness only needs ``model.sample``; this adapter supplies
        the pipeline's own traffic, with the embedding-table index
        carried as a trailing feature column so each backend re-gathers
        the embedding slice from *its own* (possibly corrupted) table.
        Labels come from the clean ground truth, so a corrupted arm's NE
        rises exactly as the campaign measures it.
        """
        pipeline = self

        class _Adapter:
            def sample(self, num_requests, seed=1, rng=None):
                if rng is not None:
                    seed = int(rng.integers(2**31))
                slice_ = pipeline.sample(num_requests, seed=seed)
                features = np.concatenate(
                    [slice_.dense, slice_.indices[:, None].astype(np.float64)],
                    axis=1,
                )
                return features, slice_.labels

        return _Adapter()

    def backend(self, state: Optional[PipelineState] = None) -> Backend:
        """Wrap a (possibly corrupted) pipeline state as an A/B-test
        backend for the :meth:`ab_model` adapter's traffic: the trailing
        feature column is the embedding index, everything before it the
        dense features."""
        state = state or self.clean_state()

        def predict(features: np.ndarray) -> np.ndarray:
            features = np.asarray(features)
            slice_ = RequestSlice(
                dense=features[:, :-1],
                indices=features[:, -1].astype(np.intp),
                labels=np.zeros(len(features)),
            )
            return self.serve(slice_, state).predictions

        return predict


__all__ = [
    "CtrServingPipeline",
    "PipelineState",
    "RequestSlice",
    "ServeResult",
    "FP16_SATURATE",
    "LOGIT_GUARD",
    "EMBED_GUARD_MARGIN",
]
