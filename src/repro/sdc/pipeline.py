"""The corruptible serving path the SDC campaign injects into.

A quantized replica of the §5.6 A/B harness's serving stack for the
:class:`repro.fleet.abtest.SyntheticCtrModel`: per-request features are
part dense, part gathered from an FP16 embedding table; the logit is
computed with the *actual* INT8 arithmetic of :mod:`repro.quant.int8`
(row-wise dynamic activations, static per-channel weights, explicit
wide accumulation).  Every artifact a corruption can land in exists as
real bytes — the FP16 table, the INT8 weight words, the quantized
activation matrix, the integer accumulator — and every detector runs
its real computation over those bytes.

Ground-truth labels always come from the clean model, so the normalized
entropy of the corrupted path against those labels, minus the NE of the
clean quantized path, isolates exactly the quality damage of the
surviving corruption (the paper's §5.6 metric applied to §5.1's threat).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.fleet.abtest import Backend, SyntheticCtrModel
from repro.quant.int8 import (
    accumulate_int8,
    dequantize_accumulator,
    quantize_rowwise,
    quantize_weights_static,
)
from repro.sdc.detectors import (
    abft_activation_checksum,
    abft_col_check,
    abft_weight_checksum,
    accumulator_bound,
    hash_rows,
    verify_row_hashes,
)
from repro.sdc.sites import (
    CorruptionSite,
    Injection,
    flip_fp16_bit,
    flip_int8_bit,
    read_array_word,
    recurrent_rows,
    write_array_word,
)

# Saturation stand-in for non-finite gathered values: real datapaths
# clamp to the FP16 max rather than propagate IEEE infinities into the
# quantizer.  The pre-saturation values still drive the range guard.
FP16_SATURATE = 65504.0
# Sanity bound on dequantized logits; the clean path stays far inside.
LOGIT_GUARD = 30.0
# Publish-time envelope multiplier for gathered embedding magnitudes.
EMBED_GUARD_MARGIN = 4.0


@dataclasses.dataclass(frozen=True)
class RequestSlice:
    """One traffic slice: dense features, embedding indices, labels."""

    dense: np.ndarray  # (n, F - D) float64
    indices: np.ndarray  # (n,) intp into the embedding table
    labels: np.ndarray  # (n,) float64 in {0, 1}

    @property
    def num_requests(self) -> int:
        return len(self.labels)


@dataclasses.dataclass
class PipelineState:
    """The mutable serving-side artifacts a fault corrupts."""

    table: np.ndarray  # fp16 (rows, dim)
    weight_values: np.ndarray  # int8 (F, 1)
    activation_fault: Optional[Injection] = None
    accumulator_fault: Optional[Injection] = None


@dataclasses.dataclass(frozen=True)
class ServeResult:
    """One pass of the (possibly corrupted) pipeline plus every
    detector's raw verdict over the same bytes."""

    predictions: np.ndarray
    embed_guard_ok: bool
    abft_col_ok: bool
    abft_row_ok: bool
    acc_range_ok: bool
    logit_guard_ok: bool
    row_hash_ok: bool
    overflowed: bool

    @property
    def abft_ok(self) -> bool:
        return self.abft_col_ok and self.abft_row_ok

    @property
    def range_guard_ok(self) -> bool:
        return self.embed_guard_ok and self.acc_range_ok and self.logit_guard_ok


class CtrServingPipeline:
    """The quantized embedding + FC serving path for a synthetic CTR
    model, with publish-time integrity artifacts (weight checksum, row
    hashes, magnitude envelope)."""

    def __init__(
        self,
        model: Optional[SyntheticCtrModel] = None,
        embed_rows: int = 128,
        embed_dim: int = 16,
        seed: int = 0,
    ) -> None:
        self.model = model or SyntheticCtrModel(num_features=64, seed=seed)
        if embed_dim >= self.model.num_features:
            raise ValueError("embedding slice must leave dense features")
        if (embed_rows * embed_dim * 2) % 8:
            raise ValueError("embedding table must be whole 64-bit words")
        self.embed_rows = embed_rows
        self.embed_dim = embed_dim
        self.dense_width = self.model.num_features - embed_dim
        rng = np.random.default_rng(seed)
        self.table = rng.normal(0, 1, size=(embed_rows, embed_dim)).astype(np.float16)
        self.qweights = quantize_weights_static(
            np.asarray(self.model.true_weights, dtype=np.float32)[:, None]
        )
        # Publish-time integrity artifacts.
        self.weight_checksum = abft_weight_checksum(self.qweights.values)
        self.row_hashes = hash_rows(self.table)
        self.embed_guard_limit = float(
            np.abs(self.table.astype(np.float64)).max() * EMBED_GUARD_MARGIN
        )
        self.acc_bound = accumulator_bound(self.model.num_features)

    # -- traffic ----------------------------------------------------------

    def sample(self, num_requests: int, seed: int = 1) -> RequestSlice:
        """Draw a traffic slice; labels come from the clean ground truth
        (dense features plus *clean* embedding contributions)."""
        rng = np.random.default_rng(seed)
        dense = rng.normal(0, 1, size=(num_requests, self.dense_width))
        indices = rng.integers(0, self.embed_rows, size=num_requests)
        features = np.concatenate(
            [dense, self.table.astype(np.float64)[indices]], axis=1
        )
        logits = features @ self.model.true_weights + self.model.bias
        probs = 1.0 / (1.0 + np.exp(-logits))
        labels = (rng.uniform(size=num_requests) < probs).astype(np.float64)
        return RequestSlice(dense=dense, indices=indices, labels=labels)

    # -- state construction ----------------------------------------------

    def clean_state(self) -> PipelineState:
        """A fresh, uncorrupted copy of the serving artifacts."""
        return PipelineState(
            table=self.table.copy(), weight_values=self.qweights.values.copy()
        )

    def corrupted_state(
        self, injection: Injection, landed_word: Optional[int] = None
    ) -> PipelineState:
        """Apply one injection to a fresh state.

        For ``MEMORY_WORD`` faults the caller resolves the memory path
        first (through ECC or not) and passes the word that actually
        landed; ``None`` means the path corrected/discarded it.
        """
        state = self.clean_state()
        site = injection.site
        if site is CorruptionSite.MEMORY_WORD:
            if landed_word is not None:
                target = (
                    state.table if injection.store == "embedding" else state.weight_values
                )
                write_array_word(target, injection.word_index, landed_word)
        elif site is CorruptionSite.QUANT_WEIGHT:
            flip_int8_bit(state.weight_values, injection.flat_index, injection.bit)
        elif site is CorruptionSite.EMBEDDING_ROW:
            flip_fp16_bit(state.table, injection.flat_index, injection.bit)
        elif site is CorruptionSite.QUANT_ACTIVATION:
            state.activation_fault = injection
        elif site is CorruptionSite.GEMM_ACCUMULATOR:
            state.accumulator_fault = injection
        else:  # pragma: no cover - exhaustive enum
            raise AssertionError(site)
        return state

    def stored_word(self, injection: Injection) -> int:
        """The clean 64-bit backing word a memory fault targets."""
        source = self.table if injection.store == "embedding" else self.qweights.values
        return read_array_word(source, injection.word_index)

    # -- the serving pass -------------------------------------------------

    def serve(self, requests: RequestSlice, state: PipelineState) -> ServeResult:
        """Run the quantized path over a slice and every detector's raw
        check over the same bytes."""
        gathered = state.table.astype(np.float32)[requests.indices]
        raw = np.concatenate(
            [requests.dense.astype(np.float32), gathered], axis=1
        )
        finite = np.isfinite(raw)
        embed_ok = bool(finite.all()) and float(
            np.abs(gathered[np.isfinite(gathered)]).max(initial=0.0)
        ) <= self.embed_guard_limit
        x = np.nan_to_num(raw, nan=FP16_SATURATE, posinf=FP16_SATURATE,
                          neginf=-FP16_SATURATE)

        qx = quantize_rowwise(x)
        x_checksum = abft_activation_checksum(qx.values)
        values = qx.values
        fault = state.activation_fault
        if fault is not None:
            rows = recurrent_rows(
                requests.num_requests, fault.recurrence, fault.fault_rows_seed
            )
            if rows.any():
                values = values.copy()
                lane = fault.flat_index % values.shape[1]
                values[rows, lane] = (
                    values[rows, lane].view(np.uint8) ^ np.uint8(1 << fault.bit)
                ).view(np.int8)

        try:
            acc = accumulate_int8(values, state.weight_values)
            overflowed = False
        except OverflowError:
            # The wide-accumulate assertion fired: loud, not silent.
            return ServeResult(
                predictions=np.full(requests.num_requests, 0.5),
                embed_guard_ok=embed_ok, abft_col_ok=False, abft_row_ok=False,
                acc_range_ok=False, logit_guard_ok=False,
                row_hash_ok=verify_row_hashes(state.table, self.row_hashes) is None,
                overflowed=True,
            )

        # The row check folds the accumulator the hardware actually holds,
        # so apply any accumulator fault before either identity is tested.
        row_lhs = values.astype(np.int64) @ self.weight_checksum
        fault = state.accumulator_fault
        if fault is not None:
            rows = recurrent_rows(
                requests.num_requests, fault.recurrence, fault.fault_rows_seed
            )
            if rows.any():
                acc = acc.copy()
                acc[rows, 0] = np.bitwise_xor(
                    acc[rows, 0], np.int64(1) << np.int64(fault.bit)
                )

        abft_col_ok = abft_col_check(acc, x_checksum, state.weight_values)
        abft_row_ok = bool(np.array_equal(acc.sum(axis=1), row_lhs))
        acc_range_ok = bool(np.abs(acc).max(initial=0) <= self.acc_bound)

        logits = (
            dequantize_accumulator(acc, qx.scales, self.qweights.scales)[:, 0]
            + self.model.bias
        )
        logit_ok = bool(np.abs(logits).max(initial=0.0) <= LOGIT_GUARD)
        predictions = 1.0 / (1.0 + np.exp(-np.clip(logits, -60.0, 60.0)))
        return ServeResult(
            predictions=predictions,
            embed_guard_ok=embed_ok,
            abft_col_ok=abft_col_ok,
            abft_row_ok=abft_row_ok,
            acc_range_ok=acc_range_ok,
            logit_guard_ok=logit_ok,
            row_hash_ok=verify_row_hashes(state.table, self.row_hashes) is None,
            overflowed=overflowed,
        )

    # -- §5.6 linkage ------------------------------------------------------

    def ab_model(self):
        """A model-like adapter for :func:`repro.fleet.abtest.run_ab_test`.

        The harness only needs ``model.sample``; this adapter supplies
        the pipeline's own traffic, with the embedding-table index
        carried as a trailing feature column so each backend re-gathers
        the embedding slice from *its own* (possibly corrupted) table.
        Labels come from the clean ground truth, so a corrupted arm's NE
        rises exactly as the campaign measures it.
        """
        pipeline = self

        class _Adapter:
            def sample(self, num_requests, seed=1, rng=None):
                if rng is not None:
                    seed = int(rng.integers(2**31))
                slice_ = pipeline.sample(num_requests, seed=seed)
                features = np.concatenate(
                    [slice_.dense, slice_.indices[:, None].astype(np.float64)],
                    axis=1,
                )
                return features, slice_.labels

        return _Adapter()

    def backend(self, state: Optional[PipelineState] = None) -> Backend:
        """Wrap a (possibly corrupted) pipeline state as an A/B-test
        backend for the :meth:`ab_model` adapter's traffic: the trailing
        feature column is the embedding index, everything before it the
        dense features."""
        state = state or self.clean_state()

        def predict(features: np.ndarray) -> np.ndarray:
            features = np.asarray(features)
            slice_ = RequestSlice(
                dense=features[:, :-1],
                indices=features[:, -1].astype(np.intp),
                labels=np.zeros(len(features)),
            )
            return self.serve(slice_, state).predictions

        return predict


__all__ = [
    "CtrServingPipeline",
    "PipelineState",
    "RequestSlice",
    "ServeResult",
    "FP16_SATURATE",
    "LOGIT_GUARD",
    "EMBED_GUARD_MARGIN",
]
