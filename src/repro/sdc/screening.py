"""Periodic fleet screening for silent-data-corruption (paper §5.2 link).

The overclocking study (:mod:`repro.reliability.overclock`) shipped the
fleet at 1.35 GHz because the margin distribution left a negligible tail
of chips whose true f_max sits below the effective stress frequency.
*Negligible* is not *zero*: those marginal chips are the population that
intermittently flips datapath bits — the per-chip SDC rate used by the
PR-1 resilience simulator.  Production fleets therefore run a periodic
offline screen (short targeted test patterns on drained devices); this
module models its coverage, latency, and throughput cost as a function
of the same margin distribution, so tightening the overclock or the
screening cadence trades off inside one model.
"""

from __future__ import annotations

import dataclasses
import math

from repro.reliability.overclock import MarginModel
from repro.resilience.faults import SDC_EVENTS_PER_MARGINAL_CHIP_HOUR
from repro.units import GHZ

HOURS = 3600.0
DAYS = 86_400.0


def margin_shortfall_fraction(
    margin: MarginModel, operating_hz: float, harshest_sensitivity: float = 1.0
) -> float:
    """P(chip f_max < effective stress frequency) under the margin model —
    the tail of chips the overclock shipped with thin margin."""
    effective = operating_hz * harshest_sensitivity
    z = (effective - margin.mean_fmax_hz) / margin.sigma_hz
    return 0.5 * math.erfc(-z / math.sqrt(2.0))


@dataclasses.dataclass(frozen=True)
class FleetScreeningModel:
    """A periodic per-chip screen: every ``interval_s`` a device is
    drained for ``screen_duration_s`` and run through targeted patterns
    that catch a truly marginal chip with probability ``sensitivity``."""

    margin: MarginModel = MarginModel()
    operating_frequency_hz: float = 1.35 * GHZ
    interval_s: float = 7 * DAYS
    screen_duration_s: float = 1800.0
    sensitivity: float = 0.9

    def __post_init__(self) -> None:
        if self.interval_s <= 0 or self.screen_duration_s < 0:
            raise ValueError("screening cadence must be positive")
        if self.screen_duration_s >= self.interval_s:
            raise ValueError("screen must be shorter than its interval")
        if not (0 <= self.sensitivity <= 1):
            raise ValueError("sensitivity must be in [0, 1]")

    def marginal_chip_fraction(self) -> float:
        """Fraction of the fleet in the thin-margin tail at the shipped
        frequency (zero at the 1.1 GHz design point, by construction)."""
        return margin_shortfall_fraction(self.margin, self.operating_frequency_hz)

    def sdc_rate_per_chip_hour(self) -> float:
        """Fleet-average silent-corruption event rate, before detection:
        the §5.2 margin tail times the per-marginal-chip event rate the
        resilience simulator calibrates against."""
        return self.marginal_chip_fraction() * SDC_EVENTS_PER_MARGINAL_CHIP_HOUR

    def overhead_fraction(self) -> float:
        """Serving capacity lost to the screen's drain window."""
        return self.screen_duration_s / self.interval_s

    def mean_detection_latency_s(self) -> float:
        """Expected time from a chip turning marginal to the screen
        catching it: a geometric number of intervals (miss probability
        ``1 - sensitivity``) on top of the uniform phase offset."""
        if self.sensitivity == 0:
            return math.inf
        missed_rounds = (1.0 - self.sensitivity) / self.sensitivity
        return (0.5 + missed_rounds) * self.interval_s
