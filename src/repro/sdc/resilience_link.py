"""Feed campaign results into the PR-1 resilience simulator.

The resilience simulator's SDC fault family is two numbers: a
per-device-hour event rate and a blast window (seconds of served
traffic one event poisons before it is caught).  Both were calibration
constants in PR-1; this module derives them from measurement instead —
the rate from the §5.2 margin-tail screening model, the blast window
from an injection campaign's measured detection latencies, collapsed
expectation-preservingly:

* a *detected* quality-impacting corruption poisons traffic for its
  measured time-to-detection;
* an *undetected* one poisons traffic until some out-of-band event
  (next model publish / host reboot) replaces the corrupted state;
* a corruption whose NE delta is below the impact threshold poisons
  nothing.

The expected poisoned-seconds per SDC event under a protection profile
is then a campaign average, and ``dataclasses.replace`` swaps it into
any base :class:`repro.resilience.faults.FaultRates` so the fleet
simulation runs with measured rather than assumed SDC behaviour.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.resilience.faults import FaultRates, fault_rates_from_reliability
from repro.sdc.campaign import ProfileSummary
from repro.sdc.screening import FleetScreeningModel

# How long a silent corruption keeps serving before out-of-band
# replacement of the corrupted artifact (model republish cadence).
DEFAULT_UNDETECTED_WINDOW_S = 6 * 3600.0


def expected_blast_window_s(
    summary: ProfileSummary,
    undetected_window_s: float = DEFAULT_UNDETECTED_WINDOW_S,
) -> float:
    """Expected seconds of poisoned traffic per SDC event under this
    profile: detected-impacting events contribute their measured
    latency, silent-impacting events the out-of-band window."""
    if undetected_window_s <= 0:
        raise ValueError("undetected window must be positive")
    poisoned = 0.0
    for outcome in summary.outcomes:
        if not outcome.ne_impacting:
            continue
        poisoned += outcome.latency_s if outcome.detected else undetected_window_s
    return poisoned / summary.trials


def sdc_fault_rates(
    summary: ProfileSummary,
    base: Optional[FaultRates] = None,
    screening: Optional[FleetScreeningModel] = None,
    undetected_window_s: float = DEFAULT_UNDETECTED_WINDOW_S,
) -> FaultRates:
    """A :class:`FaultRates` whose SDC family is measured, not assumed.

    The event rate comes from the screening model's margin tail (the
    same §5.2 distribution PR-1 used), the blast window from the
    campaign's detection latencies under ``summary``'s profile.  All
    other fault families keep ``base``'s values.
    """
    base = base or fault_rates_from_reliability()
    screening = screening or FleetScreeningModel()
    return dataclasses.replace(
        base,
        sdc_per_device_hour=screening.sdc_rate_per_chip_hour(),
        sdc_blast_window_s=expected_blast_window_s(summary, undetected_window_s),
    )
