"""The model-chip co-design loop as a single API (paper section 4).

:class:`Mtia2iSystem` is the library's front door: give it a model
builder and it runs the production pipeline — graph optimization passes,
autotuning (sharding, batch, placement, kernels), execution, and the
cross-platform comparison — returning one deployable, measured result.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from repro.arch.gpu import gpu_spec
from repro.arch.mtia import mtia2i_spec
from repro.arch.specs import ChipSpec
from repro.autotune.kernel_tuner import PerformanceDatabase
from repro.autotune.tuner import AutotuneResult, autotune_model
from repro.graph.graph import OpGraph
from repro.graph.passes.broadcast import defer_broadcast
from repro.graph.passes.fusion import (
    batch_layernorms,
    fuse_sibling_transpose_fc,
    fuse_vertical,
)
from repro.graph.passes.scheduling import minimize_liveness
from repro.perf.executor import ExecutionReport, Executor


def optimize_graph(graph: OpGraph) -> OpGraph:
    """The standard co-design pass pipeline (section 4.2/6 order):
    broadcast deferral, sibling transpose-FC fusion, vertical fusion,
    LayerNorm batching, then liveness-minimizing scheduling."""
    graph = defer_broadcast(graph)
    graph = fuse_sibling_transpose_fc(graph)
    graph = fuse_vertical(graph)
    graph = batch_layernorms(graph)
    graph = minimize_liveness(graph)
    return graph


@dataclasses.dataclass
class CodesignResult:
    """Everything the co-design loop produced for one model."""

    model_name: str
    optimized_graph: OpGraph
    autotune: AutotuneResult
    report: ExecutionReport

    @property
    def throughput(self) -> float:
        """Tuned per-chip throughput, samples/s."""
        return self.report.throughput_samples_per_s


class Mtia2iSystem:
    """Facade over the whole performance model for one chip.

    >>> system = Mtia2iSystem()
    >>> result = system.deploy(lambda b: build_dlrm(some_config_at(b)))
    """

    def __init__(self, chip: Optional[ChipSpec] = None) -> None:
        self.chip = chip or mtia2i_spec()
        self.kernel_database = PerformanceDatabase()

    def deploy(
        self,
        build_graph: Callable[[int], OpGraph],
        latency_slo_s: float = 0.100,
        model_name: str = "model",
        apply_passes: bool = True,
    ) -> CodesignResult:
        """Run the full co-design pipeline for one model."""
        builder = (
            (lambda b: optimize_graph(build_graph(b))) if apply_passes else build_graph
        )
        tune = autotune_model(
            builder,
            self.chip,
            latency_slo_s=latency_slo_s,
            kernel_database=self.kernel_database,
            model_name=model_name,
        )
        graph = builder(tune.batch)
        variant_table = {
            name: result.variant for name, result in tune.kernel_variants.items()
        }
        executor = Executor(
            self.chip,
            variant_selector=lambda op: variant_table.get(op.name),
        )
        report = executor.run(graph, tune.batch)
        return CodesignResult(
            model_name=model_name,
            optimized_graph=graph,
            autotune=tune,
            report=report,
        )

    def baseline_gpu_report(
        self, build_graph: Callable[[int], OpGraph], batch: int
    ) -> ExecutionReport:
        """Run the same model on the GPU baseline for comparison."""
        return Executor(gpu_spec()).run(build_graph(batch), batch)
