"""The canonical MTIA-vs-GPU evaluation pipeline (paper sections 5.6/7).

Every cross-platform number in the benchmark suite flows through this
module so the methodology is identical everywhere (the paper's
'apples-to-apples' requirement):

1. run the model graph on each chip's executor at that platform's
   autotuned batch size;
2. expose host-side serving overhead — fully on MTIA (young software
   stack, section 8), mostly overlapped on GPUs (mature stack);
3. apply host-DRAM contention when all of a socket's accelerators run
   the model (section 3.4);
4. compare at the server level (24 MTIA chips versus 8 GPUs) for replay
   mode, then apply the production-utilization effect of device
   granularity (section 5.4).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

from repro.arch.gpu import gpu_spec as default_gpu_spec
from repro.arch.mtia import mtia2i_spec as default_mtia_spec
from repro.arch.server import ServerSpec, gpu_server, mtia2i_server
from repro.arch.specs import ChipSpec
from repro.fleet.server_sim import host_dram_contention, production_gain
from repro.models.zoo import ZooModel
from repro.perf.executor import ExecutionReport, Executor
from repro.tco.model import PlatformComparison, compare_platforms

# Fraction of host-side serving overhead exposed in accelerator latency.
# MTIA's young stack serializes it; mature GPU serving overlaps most.
MTIA_HOST_EXPOSURE = 1.0
GPU_HOST_EXPOSURE = 0.2

# Mean service demand used for the production-utilization model, in
# GPU-device equivalents: most of Meta's models have small-to-medium
# capacity demands (section 8), where device granularity matters.
MEAN_LOAD_GPU_DEVICES = 2.0

# End-to-end serving efficiency of the MTIA stack relative to the kernel
# model's prediction: covers runtime gaps between remote/merge jobs (the
# Figure 5 scheduling effect), P99 latency headroom, and multi-instance
# interference — second-order effects the per-op model does not capture
# and the paper's maturing-software discussion (section 8) attributes to
# the younger stack.  The GPU baseline's equivalent losses are already in
# its sustained-throughput fraction.  Calibrated once against the paper's
# headline 44% average TCO reduction; never tuned per model.
MTIA_SERVING_EFFICIENCY = 0.62

# Measured-power correction: in-house silicon lags GPUs' decades of
# power-management tuning (section 7: "it is easier to outperform GPUs in
# Perf/TCO than in Perf/Watt"), drawing closer to TDP under load than the
# activity-scaled model predicts.
MTIA_POWER_FACTOR = 1.25


@dataclasses.dataclass(frozen=True)
class ModelEvaluation:
    """Everything measured for one model across both platforms."""

    model_name: str
    mtia_report: ExecutionReport
    gpu_report: ExecutionReport
    mtia_chip_throughput: float  # after host effects
    gpu_chip_throughput: float
    mtia_host_bound: bool
    gpu_host_bound: bool
    replay: PlatformComparison
    production_gain: float

    @property
    def production_perf_per_tco(self) -> float:
        """Perf/TCO ratio under production load (section 5.4 effect in)."""
        return self.replay.perf_per_tco_ratio * self.production_gain

    @property
    def production_perf_per_watt(self) -> float:
        """Perf/Watt ratio under production load."""
        return self.replay.perf_per_watt_ratio * self.production_gain

    @property
    def production_tco_reduction(self) -> float:
        """Fractional TCO reduction at iso-performance (the paper's 44%)."""
        ratio = self.production_perf_per_tco
        return 1.0 - 1.0 / ratio if ratio > 0 else 0.0


def _host_bytes_per_batch(report: ExecutionReport, chip: ChipSpec) -> float:
    return sum(p.host_s for p in report.op_profiles) * chip.host_link.bandwidth_bytes_per_s


def _adjusted_throughput(
    report: ExecutionReport,
    chip: ChipSpec,
    server: ServerSpec,
    host_overhead_s_per_batch: float,
    exposure: float,
    batch_scale: float,
) -> tuple:
    """Per-chip throughput after host overhead and DRAM contention."""
    overhead = host_overhead_s_per_batch * batch_scale * exposure
    latency = report.latency_s + overhead
    throughput = report.batch / latency if latency else 0.0
    contention = host_dram_contention(
        host_bytes_per_batch=_host_bytes_per_batch(report, chip),
        batches_per_s_per_chip=throughput / report.batch if report.batch else 0.0,
        server=server,
    )
    return throughput * contention.throughput_scale, contention.host_bound


def gpu_shards_for(model: ZooModel, gpu_chip: ChipSpec) -> int:
    """GPUs needed to hold the model (HBM capacity sharding)."""
    weight_bytes = model.graph().weight_bytes()
    usable = gpu_chip.dram.capacity_bytes * 0.75  # runtime buffers reserve
    return max(1, math.ceil(weight_bytes / usable))


def evaluate_model(
    model: ZooModel,
    mtia_chip: Optional[ChipSpec] = None,
    gpu_chip: Optional[ChipSpec] = None,
    warmup_runs: int = 2,
) -> ModelEvaluation:
    """Run the full cross-platform evaluation for one zoo model."""
    mtia_chip = mtia_chip or default_mtia_spec()
    gpu_chip = gpu_chip or default_gpu_spec()
    mtia_srv, gpu_srv = mtia2i_server(), gpu_server()
    gpu_batch = model.gpu_batch or model.batch

    mtia_rep = Executor(mtia_chip).run(model.graph(), model.batch, warmup_runs=warmup_runs)
    gpu_rep = Executor(gpu_chip).run(model.gpu_graph(), gpu_batch, warmup_runs=warmup_runs)

    mtia_tp, mtia_bound = _adjusted_throughput(
        mtia_rep, mtia_chip, mtia_srv,
        model.host_overhead_s_per_batch, MTIA_HOST_EXPOSURE, batch_scale=1.0,
    )
    gpu_tp, gpu_bound = _adjusted_throughput(
        gpu_rep, gpu_chip, gpu_srv,
        model.host_overhead_s_per_batch, GPU_HOST_EXPOSURE,
        batch_scale=gpu_batch / model.batch,
    )
    mtia_tp *= MTIA_SERVING_EFFICIENCY
    mtia_power = min(mtia_rep.avg_power_w * MTIA_POWER_FACTOR, mtia_chip.tdp_watts)

    replay = compare_platforms(
        model_name=model.name,
        mtia_chip_throughput=mtia_tp,
        gpu_chip_throughput=gpu_tp,
        mtia_chip_power_w=mtia_power,
        gpu_chip_power_w=gpu_rep.avg_power_w,
        mtia_srv=mtia_srv,
        gpu_srv=gpu_srv,
        mtia_accelerators_per_model=model.accelerators,
        gpu_accelerators_per_model=gpu_shards_for(model, gpu_chip),
    )
    gain = production_gain(
        mtia_chip_throughput=mtia_tp,
        gpu_chip_throughput=gpu_tp,
        mean_load=MEAN_LOAD_GPU_DEVICES * gpu_tp,
    )
    return ModelEvaluation(
        model_name=model.name,
        mtia_report=mtia_rep,
        gpu_report=gpu_rep,
        mtia_chip_throughput=mtia_tp,
        gpu_chip_throughput=gpu_tp,
        mtia_host_bound=mtia_bound,
        gpu_host_bound=gpu_bound,
        replay=replay,
        production_gain=gain,
    )
