"""The section 6 case study: porting a top-5 ranking model to MTIA 2i.

Reproduces Figure 4's journey — Perf/TCO starting near 50% of the GPU
baseline and ending around 1.8x — as a sequence of concrete, mechanical
stages, each exercising the optimization it names:

1. initial port: the 140 MFLOPS/sample model, out-of-the-box kernels
   (no broadcast reads, no prefetch, no multi-context instructions), an
   untuned batch, the pre-overclock 1.1 GHz clock;
2. batch/placement autotuning (section 4.1);
3. kernel tuning plus graph fusions (parallel-FC+transpose fusion,
   LayerNorm batching);
4. overclocking to 1.35 GHz (section 5.2);
5. model evolution to 940 MFLOPS/sample with MHA blocks — complexity
   grows 6.7x while optimizations carry over;
6. the *rejected* model change (tripling remote embedding inputs, which
   blows the activation buffer out of SRAM) versus the SRAM-friendly
   alternative (two extra DHEN layers) that was shipped;
7. deferred In-Batch Broadcast (+17% throughput);
8. TBE consolidation (the Figure 5 scheduling gain).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.arch.gpu import gpu_spec
from repro.arch.mtia import mtia2i_spec
from repro.arch.server import gpu_server, mtia2i_server
from repro.core.evaluation import (
    MTIA_POWER_FACTOR,
    MTIA_SERVING_EFFICIENCY,
)
from repro.fleet.server_sim import production_gain
from repro.graph.graph import OpGraph
from repro.graph.ops import broadcast, elementwise, fc, layernorm
from repro.graph.passes.broadcast import defer_broadcast
from repro.graph.passes.fusion import batch_layernorms, fuse_vertical
from repro.kernels.gemm import GemmVariant, naive_variant
from repro.models.dhen import DhenConfig, build_dhen
from repro.models.dlrm import EmbeddingBagConfig
from repro.perf.executor import Executor
from repro.serving.batcher import CoalescingConfig
from repro.serving.scheduler import ModelJobProfile
from repro.serving.simulator import max_throughput_under_slo
from repro.tco.model import compare_platforms
from repro.units import GHZ, GiB


def _case_embeddings(total_gib: float, scale: float = 1.0) -> EmbeddingBagConfig:
    total_bytes = int(total_gib * scale * GiB)
    num_tables = int(96 * scale)
    rows = max(1, total_bytes // (num_tables * 128 * 2))
    return EmbeddingBagConfig(
        num_tables=num_tables, rows_per_table=rows, embed_dim=128, pooling_factor=15.0
    )


@dataclasses.dataclass(frozen=True)
class CaseStudyModelConfig:
    """Knobs of the evolving case-study model."""

    batch: int = 512
    candidates_per_user: int = 8
    hidden: int = 4096
    num_layers: int = 12
    mha_heads: int = 8
    embedding_gib: float = 90.0
    remote_input_scale: float = 1.0  # the rejected change sets 3.0
    early_stage_version: bool = False  # the 140 MF/sample starting point


def build_case_study_model(
    config: CaseStudyModelConfig, deferred_ibb: bool = False
) -> OpGraph:
    """Build the case-study model with an explicit In-Batch Broadcast
    prologue on the user-side inputs.

    With ``deferred_ibb`` the broadcast-deferral pass runs, shrinking the
    user-side FCs to per-user rows (section 6's 17% win).
    """
    if config.early_stage_version:
        dhen = DhenConfig(
            name="case_study_140mf",
            batch=config.batch,
            hidden_dim=2048,
            num_layers=8,
            num_dense_features=1024,
            embeddings=(_case_embeddings(40.0),),
            fm_features=32,
            mha_heads=0,
        )
    else:
        dhen = DhenConfig(
            name="case_study_940mf",
            batch=config.batch,
            hidden_dim=config.hidden,
            num_layers=config.num_layers,
            num_dense_features=1024,
            embeddings=(_case_embeddings(config.embedding_gib, config.remote_input_scale),),
            fm_features=32,
            mha_heads=config.mha_heads,
        )
    graph = build_dhen(dhen)
    # Prepend the user-side network with In-Batch Broadcast: per-user
    # inputs are expanded to user-ad pairs before the merge network.
    from repro.tensors.tensor import model_input, weight

    users = max(1, config.batch // config.candidates_per_user)
    prologue = OpGraph(name=graph.name)
    user_in = model_input(users, 1024, name="user_features")
    bcast = prologue.add(broadcast(user_in, config.candidates_per_user, name="ibb"))
    current = bcast.output
    # The early merge network processes only user-side inputs: a couple
    # of projection FCs plus the user-history sequence encoder, whose
    # jagged-tensor math runs on the vector engines (section 4.3) and
    # scales with the number of *rows* — so broadcasting first repeats
    # identical per-user work for every candidate.  Deferring the
    # broadcast is what bought 17% (section 6).
    for layer, out_dim in enumerate((1024, 1024)):
        w = weight(current.shape[1], out_dim, name=f"user_w{layer}")
        op = fc(current, w, name=f"user_fc{layer}")
        op.attrs["user_side"] = True
        prologue.add(op)
        current = op.output
    for stage_index in range(3):
        op = elementwise(
            [current],
            function="user_history_encode",
            ops_per_element=4200.0,
            name=f"user_seq_encode{stage_index}",
        )
        op.attrs["user_side"] = True
        prologue.add(op)
        current = op.output
    ln = layernorm(current, name="user_norm")
    ln.attrs["user_side"] = True
    prologue.add(ln)
    # Splice: the prologue's output joins the main graph's ops.
    combined = OpGraph(name=graph.name)
    for op in prologue.ops:
        combined.add(op)
    for op in graph.ops:
        combined.add(op)
    if deferred_ibb:
        combined = defer_broadcast(combined)
    return combined


@dataclasses.dataclass(frozen=True)
class CaseStudyStage:
    """One point on the Figure 4 trajectory.

    Figure 4 plots several lines, one per model variant; ``variant``
    names the line a stage belongs to (the model evolved from the
    140 MF/sample variant to the launched 940 MF/sample one).
    """

    label: str
    month: int
    perf_per_tco: float
    perf_per_watt: float
    mtia_throughput: float
    gpu_throughput: float
    variant: str = "940MF"
    notes: str = ""


def _evaluate_stage(
    label: str,
    month: int,
    graph: OpGraph,
    batch: int,
    gpu_graph: OpGraph,
    gpu_batch: int,
    mtia_chip,
    gemm_variant: Optional[GemmVariant],
    serving_gain: float = 1.0,
    variant: str = "940MF",
    notes: str = "",
) -> CaseStudyStage:
    gpu_chip = gpu_spec()
    mtia_rep = Executor(mtia_chip, gemm_variant=gemm_variant).run(graph, batch)
    gpu_rep = Executor(gpu_chip).run(gpu_graph, gpu_batch)
    mtia_tp = (
        mtia_rep.throughput_samples_per_s * MTIA_SERVING_EFFICIENCY * serving_gain
    )
    gpu_tp = gpu_rep.throughput_samples_per_s
    mtia_power = min(mtia_rep.avg_power_w * MTIA_POWER_FACTOR, mtia_chip.tdp_watts)
    comparison = compare_platforms(
        model_name=label,
        mtia_chip_throughput=mtia_tp,
        gpu_chip_throughput=gpu_tp,
        mtia_chip_power_w=mtia_power,
        gpu_chip_power_w=gpu_rep.avg_power_w,
        mtia_srv=mtia2i_server(),
        gpu_srv=gpu_server(),
        mtia_accelerators_per_model=2,
        gpu_accelerators_per_model=2,
    )
    gain = production_gain(mtia_tp, gpu_tp, mean_load=2.0 * gpu_tp)
    return CaseStudyStage(
        label=label,
        month=month,
        perf_per_tco=comparison.perf_per_tco_ratio * gain,
        perf_per_watt=comparison.perf_per_watt_ratio * gain,
        mtia_throughput=mtia_tp,
        gpu_throughput=gpu_tp,
        variant=variant,
        notes=notes,
    )


def consolidation_serving_gain() -> float:
    """Measured SLO-throughput ratio of consolidated versus separate TBE
    jobs (the Figure 5 effect), from the serving simulator."""
    profile = ModelJobProfile(
        remote_time_s=0.005,
        merge_time_s=0.009,
        remote_jobs_per_batch=2,
        dispatch_overhead_s=0.001,
        merge_submission_delay_s=0.0008,
    )
    coalescing = CoalescingConfig(
        window_s=0.025, max_parallel_windows=4, max_batch_samples=1024
    )
    separate = max_throughput_under_slo(profile, coalescing, iterations=6, duration_s=20.0)
    merged = max_throughput_under_slo(
        profile.consolidated(), coalescing, iterations=6, duration_s=20.0
    )
    if separate.served_samples_per_s <= 0:
        return 1.0
    return merged.served_samples_per_s / separate.served_samples_per_s


def run_case_study(include_rejected_change: bool = True) -> List[CaseStudyStage]:
    """The full Figure 4 trajectory."""
    stages: List[CaseStudyStage] = []
    design_clock = mtia2i_spec(frequency_hz=1.1 * GHZ)
    deployed = mtia2i_spec()

    early = CaseStudyModelConfig(batch=256, early_stage_version=True)
    early_graph = build_case_study_model(early)
    gpu_early = build_case_study_model(
        CaseStudyModelConfig(batch=1024, early_stage_version=True)
    )
    stages.append(
        _evaluate_stage(
            "initial port", 0, early_graph, 256, gpu_early, 1024,
            design_clock, naive_variant(), variant="140MF",
            notes="out-of-the-box kernels, untuned batch, 1.1 GHz",
        )
    )

    early_512 = build_case_study_model(CaseStudyModelConfig(batch=512, early_stage_version=True))
    stages.append(
        _evaluate_stage(
            "batch + placement autotuning", 1, early_512, 512, gpu_early, 1024,
            design_clock, naive_variant(), variant="140MF",
            notes="section 4.1 autotuners pick batch 512, LLS-resident activations",
        )
    )

    fused_early = batch_layernorms(fuse_vertical(early_512))
    stages.append(
        _evaluate_stage(
            "kernel tuning + fusions", 2, fused_early, 512, gpu_early, 1024,
            design_clock, GemmVariant(), variant="140MF",
            notes="tuned FC variants, vertical fusion, batched LayerNorms",
        )
    )

    stages.append(
        _evaluate_stage(
            "overclock to 1.35 GHz", 3, fused_early, 512, gpu_early, 1024,
            deployed, GemmVariant(), variant="140MF",
            notes="section 5.2 frequency increase",
        )
    )

    final_config = CaseStudyModelConfig(batch=512)
    final_graph = build_case_study_model(final_config)
    gpu_final = build_case_study_model(CaseStudyModelConfig(batch=1024))
    fused_final = batch_layernorms(fuse_vertical(final_graph))
    stages.append(
        _evaluate_stage(
            "model evolves to 940 MF/sample", 5, fused_final, 512, gpu_final, 1024,
            deployed, GemmVariant(),
            notes="complexity grows 6.7x; MHA blocks added; sharded across 2 devices",
        )
    )

    if include_rejected_change:
        rejected = build_case_study_model(
            CaseStudyModelConfig(batch=512, remote_input_scale=3.0)
        )
        gpu_rejected = build_case_study_model(
            CaseStudyModelConfig(batch=1024, remote_input_scale=3.0)
        )
        stages.append(
            _evaluate_stage(
                "rejected: 3x remote inputs", 6,
                batch_layernorms(fuse_vertical(rejected)), 512,
                gpu_rejected, 1024, deployed, GemmVariant(),
                notes="activation buffer spills SRAM; change rejected, "
                "two extra DHEN layers adopted instead",
            )
        )

    deferred = batch_layernorms(fuse_vertical(build_case_study_model(final_config, deferred_ibb=True)))
    stages.append(
        _evaluate_stage(
            "deferred In-Batch Broadcast", 7, deferred, 512, gpu_final, 1024,
            deployed, GemmVariant(),
            notes="user-side ops run on per-user rows (+17% in the paper)",
        )
    )

    gain = consolidation_serving_gain()
    stages.append(
        _evaluate_stage(
            "TBE consolidation (launch)", 8, deferred, 512, gpu_final, 1024,
            deployed, GemmVariant(), serving_gain=gain,
            notes=f"Figure 5 scheduling gain x{gain:.2f}; production launch",
        )
    )
    return stages
