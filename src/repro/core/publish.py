"""The model-publish pipeline (paper section 5.6).

"During post-training processing, our automation pipeline applies
inference-optimized transformations, some accelerator-specific, to the
same trained model to ensure an apples-to-apples comparison, generating
runtime models suitable for serving on MTIA 2i and GPUs."

:func:`publish_model` is that pipeline as an API: from one model builder
it produces per-platform deployable artifacts — the optimized graph,
autotuned configuration, and execution report for MTIA 2i; the tuned
report for the GPU — plus the publish-time decisions the paper
describes: whether to quantize the large FC layers (section 4.4) and
whether the numerics pass the A/B quality gate before traffic shifts.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

import numpy as np

from repro.arch.gpu import gpu_spec
from repro.arch.specs import ChipSpec
from repro.core.codesign import CodesignResult, Mtia2iSystem
from repro.fleet.abtest import AbTestResult, SyntheticCtrModel, run_ab_test
from repro.graph.graph import OpGraph
from repro.perf.executor import ExecutionReport, Executor
from repro.quant.analysis import ModelQuantizationPlan, plan_model_quantization


@dataclasses.dataclass
class PublishedModel:
    """Everything the serving fleet needs to launch one model."""

    model_name: str
    mtia: CodesignResult
    gpu_report: ExecutionReport
    quantization: ModelQuantizationPlan
    quantization_adopted: bool
    ab_result: AbTestResult
    launch_approved: bool

    @property
    def mtia_throughput(self) -> float:
        """Per-chip MTIA throughput of the published configuration."""
        return self.mtia.report.throughput_samples_per_s


def publish_model(
    build_graph: Callable[[int], OpGraph],
    model_name: str = "model",
    latency_slo_s: float = 0.100,
    quantization_threshold: float = 1.05,
    mtia_system: Optional[Mtia2iSystem] = None,
    gpu_chip: Optional[ChipSpec] = None,
    ab_requests: int = 100_000,
) -> PublishedModel:
    """Run the full publish pipeline for one model.

    Steps, in the paper's order: accelerator-specific co-design for MTIA
    (graph passes + autotuning), a GPU runtime build at the same batch,
    the quantization decision (adopt only if the end-to-end gain clears
    ``quantization_threshold`` — section 4.4's cost/benefit bar), and the
    A/B quality gate comparing the MTIA numerics path against the exact
    reference before any traffic shifts.
    """
    system = mtia_system or Mtia2iSystem()
    mtia = system.deploy(build_graph, latency_slo_s=latency_slo_s, model_name=model_name)
    gpu_report = Executor(gpu_chip or gpu_spec()).run(
        build_graph(mtia.autotune.batch), mtia.autotune.batch
    )

    quant_plan = plan_model_quantization(mtia.optimized_graph, system.chip)
    adopt_quant = quant_plan.end_to_end_speedup >= quantization_threshold

    # The quality gate: the candidate backend runs FP16 numerics, plus
    # the quantization path when adopted.
    ctr = SyntheticCtrModel(num_features=64, seed=7)

    def candidate_numerics(logits: np.ndarray) -> np.ndarray:
        out = logits.astype(np.float16).astype(np.float64)
        if adopt_quant:
            from repro.quant.int8 import quantize_rowwise

            matrix = np.atleast_2d(out)
            out = quantize_rowwise(matrix).dequantize().astype(np.float64).reshape(
                out.shape
            )
        return out

    ab = run_ab_test(
        ctr,
        control=ctr.exact_backend(),
        treatment=ctr.backend_with(candidate_numerics),
        num_requests=ab_requests,
    )
    return PublishedModel(
        model_name=model_name,
        mtia=mtia,
        gpu_report=gpu_report,
        quantization=quant_plan,
        quantization_adopted=adopt_quant,
        ab_result=ab,
        launch_approved=ab.quality_parity(),
    )
