"""The paper's contribution as an API: co-design loop, the canonical
MTIA-vs-GPU evaluation pipeline, and the section 6 case study."""

from repro.core.casestudy import (
    CaseStudyModelConfig,
    CaseStudyStage,
    build_case_study_model,
    consolidation_serving_gain,
    run_case_study,
)
from repro.core.codesign import (
    CodesignResult,
    Mtia2iSystem,
    optimize_graph,
)
from repro.core.publish import PublishedModel, publish_model
from repro.core.evaluation import (
    GPU_HOST_EXPOSURE,
    MEAN_LOAD_GPU_DEVICES,
    MTIA_HOST_EXPOSURE,
    MTIA_POWER_FACTOR,
    MTIA_SERVING_EFFICIENCY,
    ModelEvaluation,
    evaluate_model,
    gpu_shards_for,
)

__all__ = [
    "CaseStudyModelConfig",
    "CaseStudyStage",
    "CodesignResult",
    "GPU_HOST_EXPOSURE",
    "MEAN_LOAD_GPU_DEVICES",
    "MTIA_HOST_EXPOSURE",
    "MTIA_POWER_FACTOR",
    "MTIA_SERVING_EFFICIENCY",
    "ModelEvaluation",
    "Mtia2iSystem",
    "PublishedModel",
    "build_case_study_model",
    "consolidation_serving_gain",
    "evaluate_model",
    "gpu_shards_for",
    "optimize_graph",
    "publish_model",
    "run_case_study",
]
