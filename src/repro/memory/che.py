"""Che's approximation for cache hit rates under Zipf popularity.

Embedding-table gathers hit the LLC with an independent-reference (IRM)
pattern whose popularity follows a Zipf law.  Replaying enough accesses
through the cache simulator to reach steady state for billions of rows
is infeasible, but Che's characteristic-time approximation computes the
stationary hit rate of an LRU/random cache under IRM almost exactly:

    hit = sum_i p_i * (1 - exp(-p_i * T)),  where T solves
    sum_i (1 - exp(-p_i * T)) = C   (C = cache capacity in blocks).

Rows are aggregated into cache blocks; the block popularity is the Zipf
mass of its rows, computed with the standard integral approximation of
generalized harmonic numbers.
"""

from __future__ import annotations

import numpy as np


def _partial_harmonic(k: np.ndarray, a: float) -> np.ndarray:
    """Approximate H_k(a) = sum_{i<=k} i^-a via Euler-Maclaurin."""
    k = np.asarray(k, dtype=np.float64)
    if abs(a - 1.0) < 1e-9:
        return np.log(np.maximum(k, 1.0)) + 0.5772156649
    return (np.power(np.maximum(k, 1.0), 1.0 - a) - 1.0) / (1.0 - a) + 1.1998


def zipf_block_popularities(
    num_rows: int, rows_per_block: int, zipf_exponent: float, max_blocks: int = 2_000_000
) -> np.ndarray:
    """Normalized popularity of each cache block of a Zipf-accessed table.

    Blocks beyond ``max_blocks`` are folded into a uniform tail (their
    individual popularities are negligible and equal to first order).
    """
    if num_rows <= 0 or rows_per_block <= 0:
        raise ValueError("rows and block size must be positive")
    num_blocks = max(1, -(-num_rows // rows_per_block))
    capped = min(num_blocks, max_blocks)
    edges = np.minimum(np.arange(capped + 1, dtype=np.float64) * rows_per_block, num_rows)
    cumulative = _partial_harmonic(np.maximum(edges, 1.0), zipf_exponent)
    cumulative[0] = 0.0
    mass = np.diff(cumulative)
    if num_blocks > capped:
        # Spread the residual tail mass as an equivalent per-block value.
        total = _partial_harmonic(np.array([num_rows]), zipf_exponent)[0]
        tail = max(0.0, total - cumulative[-1])
        mass[-1] += tail  # folded tail: pessimistic for the cache, tiny overall
    total_mass = mass.sum()
    if total_mass <= 0:
        return np.full(capped, 1.0 / capped)
    return mass / total_mass


def che_hit_rate(popularities: np.ndarray, cache_blocks: int) -> float:
    """Stationary hit rate of a ``cache_blocks``-entry cache under IRM.

    Solves for the characteristic time with a bisection on T, then
    evaluates the per-item hit probabilities.
    """
    p = np.asarray(popularities, dtype=np.float64)
    if cache_blocks <= 0:
        return 0.0
    if cache_blocks >= len(p):
        return 1.0

    def occupancy(t: float) -> float:
        return float(np.sum(-np.expm1(-p * t)))

    lo, hi = 1.0, 1.0
    while occupancy(hi) < cache_blocks and hi < 1e18:
        hi *= 4
    for _ in range(60):
        mid = (lo + hi) / 2
        if occupancy(mid) < cache_blocks:
            lo = mid
        else:
            hi = mid
    t = (lo + hi) / 2
    return float(np.sum(p * -np.expm1(-p * t)))


def tbe_llc_hit_rate(
    num_rows_per_table: int,
    num_tables: int,
    row_bytes: int,
    llc_bytes_for_tbe: int,
    block_bytes: int = 64 * 1024,
    zipf_exponent: float = 1.05,
) -> float:
    """Steady-state LLC hit rate for a multi-table TBE gather.

    Tables are statistically identical, so the aggregate system is the
    single-table system with 1/num_tables of the capacity.
    """
    if num_tables <= 0 or llc_bytes_for_tbe < 0:
        raise ValueError("invalid TBE cache parameters")
    rows_per_block = max(1, block_bytes // max(1, row_bytes))
    per_table_blocks = max(0, int(llc_bytes_for_tbe / block_bytes / num_tables))
    popularity = zipf_block_popularities(
        num_rows_per_table, rows_per_block, zipf_exponent
    )
    return che_hit_rate(popularity, per_table_blocks)
