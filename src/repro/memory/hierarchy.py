"""The partitioned on-chip SRAM and tensor-placement machinery.

MTIA 2i's 256 MB shared SRAM is partitioned, at 32 MB granularity, into a
hardware-managed cache (LLC) and software-managed scratch (LLS) — paper
section 4.1.  The executor routes each tensor access through this module,
which decides (given the autotuner's placement) how many bytes move at
SRAM speed versus LPDDR speed, and measures LLC hit rates with a real
cache simulation.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Optional, Set

from repro.arch.specs import ChipSpec
from repro.memory.cache import SetAssociativeCache, tensor_blocks
from repro.tensors.tensor import TensorSpec


class Placement(enum.Enum):
    """Where a tensor's home is during model execution."""

    LOCAL_MEMORY = "local_memory"  # distributed PE-local SRAM
    LLS = "lls"  # software-managed scratch (pinned, never evicted)
    LLC = "llc"  # hardware cache over DRAM
    DRAM = "dram"  # streamed from LPDDR, bypassing SRAM
    HOST = "host"  # host DRAM over PCIe


@dataclasses.dataclass(frozen=True)
class SramPartition:
    """An LLC/LLS split of the shared SRAM."""

    lls_bytes: int
    llc_bytes: int
    granularity_bytes: int

    def __post_init__(self) -> None:
        if self.lls_bytes < 0 or self.llc_bytes < 0:
            raise ValueError("partition sizes must be non-negative")
        if self.lls_bytes % self.granularity_bytes or self.llc_bytes % self.granularity_bytes:
            raise ValueError(
                f"partition sizes must be multiples of {self.granularity_bytes} bytes"
            )

    @property
    def total_bytes(self) -> int:
        """Total SRAM covered by the partition."""
        return self.lls_bytes + self.llc_bytes


def partition_for_activations(
    chip: ChipSpec, activation_buffer_bytes: int
) -> SramPartition:
    """The paper's partitioning policy: size the LLS to hold the entire
    activation buffer (rounded up to partition granularity) and give the
    remaining SRAM to the LLC.

    If the activation buffer cannot fit even with all of SRAM as LLS, the
    LLS is set to zero and everything becomes LLC (activations then
    compete with weights in the cache) — the fallback section 4.1
    describes autotuning comparing against a smaller batch.
    """
    gran = chip.sram_partition_bytes
    total = chip.sram.capacity_bytes
    needed = _round_up(activation_buffer_bytes, gran)
    if needed > total - gran:
        # Leave at least one granule of LLC for weight traffic; if
        # activations cannot fit, fall back to all-LLC.
        if needed > total:
            return SramPartition(lls_bytes=0, llc_bytes=total, granularity_bytes=gran)
        needed = total - gran
    return SramPartition(lls_bytes=needed, llc_bytes=total - needed, granularity_bytes=gran)


def _round_up(value: int, granule: int) -> int:
    return (value + granule - 1) // granule * granule


@dataclasses.dataclass
class Traffic:
    """Bytes moved per memory level for one access (or one op)."""

    local_memory_bytes: float = 0.0
    sram_bytes: float = 0.0
    dram_bytes: float = 0.0
    host_bytes: float = 0.0
    noc_bytes: float = 0.0

    def __iadd__(self, other: "Traffic") -> "Traffic":
        self.local_memory_bytes += other.local_memory_bytes
        self.sram_bytes += other.sram_bytes
        self.dram_bytes += other.dram_bytes
        self.host_bytes += other.host_bytes
        self.noc_bytes += other.noc_bytes
        return self

    def __add__(self, other: "Traffic") -> "Traffic":
        result = Traffic()
        result += self
        result += other
        return result


class MemoryHierarchy:
    """Stateful model of one chip's memory system during a model run."""

    def __init__(
        self,
        chip: ChipSpec,
        partition: Optional[SramPartition] = None,
        block_bytes: int = 64 * 1024,
        llc_associativity: int = 16,
    ) -> None:
        self.chip = chip
        if partition is None:
            half = _round_up(chip.sram.capacity_bytes // 2, chip.sram_partition_bytes)
            partition = SramPartition(
                lls_bytes=half,
                llc_bytes=chip.sram.capacity_bytes - half,
                granularity_bytes=chip.sram_partition_bytes,
            )
        if partition.total_bytes > chip.sram.capacity_bytes:
            raise ValueError("partition exceeds SRAM capacity")
        self.partition = partition
        self.block_bytes = block_bytes
        self.llc: Optional[SetAssociativeCache] = (
            SetAssociativeCache(
                capacity_bytes=partition.llc_bytes,
                block_bytes=block_bytes,
                associativity=llc_associativity,
            )
            if partition.llc_bytes >= block_bytes
            else None
        )
        self._placements: Dict[int, Placement] = {}
        self._no_reuse_hint: Set[int] = set()
        self._lls_used_bytes = 0

    def place(self, tensor: TensorSpec, placement: Placement, reserve: bool = True) -> None:
        """Assign a tensor's home.

        Placing into LLS with ``reserve=True`` charges the tensor against
        LLS capacity.  Pass ``reserve=False`` when the tensor lives inside
        a liveness-managed activation buffer whose peak footprint was
        already validated by the scratch allocator (the buffer is reused
        across non-overlapping lifetimes, so summing tensor sizes would
        double count).
        """
        if placement is Placement.LLS and reserve:
            already = self._placements.get(tensor.uid) is Placement.LLS
            if not already:
                if self._lls_used_bytes + tensor.num_bytes > self.partition.lls_bytes:
                    raise ValueError(
                        f"LLS overflow placing {tensor}: "
                        f"{self._lls_used_bytes + tensor.num_bytes} > {self.partition.lls_bytes}"
                    )
                self._lls_used_bytes += tensor.num_bytes
        self._placements[tensor.uid] = placement

    def placement_of(self, tensor: TensorSpec) -> Placement:
        """Where a tensor lives; unplaced tensors default to LLC-cached DRAM
        (weights) or LLS when kind-based policy says so."""
        return self._placements.get(tensor.uid, Placement.LLC)

    def release_lls(self, tensor: TensorSpec) -> None:
        """Return a tensor's LLS reservation (activation buffer reuse is
        modelled by the scratch allocator; this supports explicit frees)."""
        if self._placements.get(tensor.uid) is Placement.LLS:
            self._lls_used_bytes -= tensor.num_bytes
            del self._placements[tensor.uid]

    def hint_no_reuse(self, tensor: TensorSpec) -> None:
        """Mark a tensor with the paper's memory hint: its data will not be
        reused, so LLC write-backs to DRAM can be skipped (section 4.2)."""
        self._no_reuse_hint.add(tensor.uid)

    @property
    def lls_free_bytes(self) -> int:
        """Remaining LLS capacity."""
        return self.partition.lls_bytes - self._lls_used_bytes

    def read(self, tensor: TensorSpec, num_bytes: Optional[int] = None) -> Traffic:
        """Model reading ``num_bytes`` of a tensor (default: all of it).

        Returns the byte counts that moved at each level.  LLC-resident
        tensors go through the cache simulation: hits cost SRAM bandwidth,
        misses cost DRAM bandwidth *and* SRAM fill bandwidth.
        """
        size = tensor.num_bytes if num_bytes is None else int(num_bytes)
        placement = self.placement_of(tensor)
        return self._move(tensor, size, placement, write=False)

    def write(self, tensor: TensorSpec, num_bytes: Optional[int] = None) -> Traffic:
        """Model writing a tensor (allocating it at its placement)."""
        size = tensor.num_bytes if num_bytes is None else int(num_bytes)
        placement = self.placement_of(tensor)
        return self._move(tensor, size, placement, write=True)

    def _move(
        self, tensor: TensorSpec, size: int, placement: Placement, write: bool
    ) -> Traffic:
        if size < 0:
            raise ValueError("byte count must be non-negative")
        traffic = Traffic(noc_bytes=float(size))
        if placement is Placement.LOCAL_MEMORY:
            traffic.local_memory_bytes += size
            traffic.noc_bytes = 0.0  # stays inside the PE
        elif placement is Placement.LLS:
            traffic.sram_bytes += size
        elif placement is Placement.DRAM:
            traffic.dram_bytes += size
        elif placement is Placement.HOST:
            traffic.host_bytes += size
        elif placement is Placement.LLC:
            if self.llc is None:
                traffic.dram_bytes += size
            else:
                dirty = write and tensor.uid not in self._no_reuse_hint
                for block in tensor_blocks(tensor.uid, size, self.block_bytes):
                    uid, index, block_size = block
                    hit = self.llc.access((uid, index), write=dirty, size_bytes=block_size)
                    if hit:
                        traffic.sram_bytes += block_size
                    elif write:
                        # Write-allocate: the line is installed without a
                        # DRAM fill read.
                        traffic.sram_bytes += block_size
                    else:
                        traffic.dram_bytes += block_size
                        traffic.sram_bytes += block_size  # fill
        else:
            raise AssertionError(f"unhandled placement {placement}")
        return traffic

    def llc_hit_rate(self) -> float:
        """Measured LLC hit rate so far."""
        return self.llc.stats.hit_rate if self.llc else 0.0

    def writeback_traffic(self) -> Traffic:
        """DRAM traffic from dirty LLC evictions accumulated so far."""
        if self.llc is None:
            return Traffic()
        return Traffic(dram_bytes=float(self.llc.stats.bytes_written_back))
