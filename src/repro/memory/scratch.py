"""Liveness-based scratch-memory allocator for the LLS.

The software-managed portion of MTIA 2i's SRAM (LLS) backs the model's
activation buffer.  The paper notes (section 4.1) that the activation
buffer is *reused* throughout model execution: the same memory backs
multiple activation tensors whose lifetimes do not overlap.  This module
implements that reuse: given buffers with liveness intervals over the op
schedule, it packs them into as little memory as possible and reports the
peak footprint — which is what autotuning compares against LLS capacity.

The packing algorithm is the classic greedy offset assignment used by ML
memory planners: process buffers in order of increasing start time and
place each at the lowest offset not overlapping any live, already-placed
buffer.  It is not optimal (optimal is NP-hard) but matches what
production planners do.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence


@dataclasses.dataclass(frozen=True)
class BufferRequest:
    """A buffer to place: size plus liveness over [start, end] inclusive,
    in schedule-step units."""

    name: str
    size_bytes: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"{self.name}: size must be positive")
        if self.end < self.start:
            raise ValueError(f"{self.name}: end {self.end} before start {self.start}")

    def overlaps(self, other: "BufferRequest") -> bool:
        """Whether the two buffers are ever live at the same time."""
        return self.start <= other.end and other.start <= self.end


@dataclasses.dataclass(frozen=True)
class Placement:
    """Where one buffer landed."""

    request: BufferRequest
    offset: int

    @property
    def end_offset(self) -> int:
        """One past the last byte of this buffer."""
        return self.offset + self.request.size_bytes


@dataclasses.dataclass
class AllocationPlan:
    """The result of packing a set of buffers."""

    placements: List[Placement]

    @property
    def peak_bytes(self) -> int:
        """High-water mark of the packed region."""
        return max((p.end_offset for p in self.placements), default=0)

    @property
    def total_requested_bytes(self) -> int:
        """Sum of buffer sizes — the footprint without any reuse."""
        return sum(p.request.size_bytes for p in self.placements)

    @property
    def reuse_factor(self) -> float:
        """How much memory reuse saved: requested / peak (>= 1)."""
        return self.total_requested_bytes / self.peak_bytes if self.peak_bytes else 1.0

    def offset_of(self, name: str) -> int:
        """Offset of a named buffer."""
        for placement in self.placements:
            if placement.request.name == name:
                return placement.offset
        raise KeyError(f"no buffer named {name!r}")

    def validate(self) -> None:
        """Check no two simultaneously-live buffers overlap in memory."""
        for i, a in enumerate(self.placements):
            for b in self.placements[i + 1 :]:
                if not a.request.overlaps(b.request):
                    continue
                if a.offset < b.end_offset and b.offset < a.end_offset:
                    raise AssertionError(
                        f"overlap between {a.request.name} and {b.request.name}"
                    )


def plan_allocation(
    requests: Sequence[BufferRequest], alignment: int = 128
) -> AllocationPlan:
    """Pack buffers with liveness-aware reuse.

    ``alignment`` rounds every offset up, matching DMA alignment
    requirements (MTIA 1 lacked unaligned access entirely).
    """
    if alignment <= 0:
        raise ValueError("alignment must be positive")
    ordered = sorted(requests, key=lambda r: (r.start, -r.size_bytes))
    placements: List[Placement] = []
    for request in ordered:
        live = [p for p in placements if p.request.overlaps(request)]
        live.sort(key=lambda p: p.offset)
        offset = 0
        for placed in live:
            if offset + request.size_bytes <= placed.offset:
                break
            offset = max(offset, _align(placed.end_offset, alignment))
        placements.append(Placement(request=request, offset=offset))
    return AllocationPlan(placements=placements)


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


class ScratchAllocator:
    """A stateful wrapper enforcing an LLS capacity limit."""

    def __init__(self, capacity_bytes: int, alignment: int = 128) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.alignment = alignment
        self._requests: List[BufferRequest] = []
        self._plan: Optional[AllocationPlan] = None

    def request(self, name: str, size_bytes: int, start: int, end: int) -> None:
        """Register a buffer to be placed."""
        self._requests.append(BufferRequest(name, size_bytes, start, end))
        self._plan = None

    @property
    def plan(self) -> AllocationPlan:
        """The (lazily computed) packing of all registered buffers."""
        if self._plan is None:
            self._plan = plan_allocation(self._requests, alignment=self.alignment)
        return self._plan

    @property
    def fits(self) -> bool:
        """Whether the packed buffers fit within LLS capacity."""
        return self.plan.peak_bytes <= self.capacity_bytes

    @property
    def utilization(self) -> float:
        """Peak footprint as a fraction of capacity."""
        return self.plan.peak_bytes / self.capacity_bytes
