"""A set-associative, write-back cache simulator.

This models MTIA 2i's hardware-managed LLC portion of the shared SRAM
(paper section 4.1).  The executor replays tensor accesses through it so
SRAM hit rates — the paper's 40-60% for sparse lookups and >95% for dense
networks — are *measured* from the access stream rather than asserted.

Fidelity note: accesses are simulated at *tensor-block* granularity
(default 64 KiB) rather than 64-byte cache lines.  DLRM working sets are
hundreds of megabytes, so block-granular simulation captures the capacity
and reuse behaviour that determines hit rates, while keeping the simulator
fast enough to run under autotuning sweeps.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Hashable, List, Optional, Tuple

BlockId = Hashable


@dataclasses.dataclass
class CacheStats:
    """Access counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_writebacks: int = 0
    bytes_hit: int = 0
    bytes_missed: int = 0
    bytes_written_back: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit; 0.0 if no accesses yet."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def byte_hit_rate(self) -> float:
        """Fraction of bytes served from the cache."""
        total = self.bytes_hit + self.bytes_missed
        return self.bytes_hit / total if total else 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = self.misses = self.evictions = self.dirty_writebacks = 0
        self.bytes_hit = self.bytes_missed = self.bytes_written_back = 0


@dataclasses.dataclass
class _Line:
    block: BlockId
    dirty: bool
    size_bytes: int


class SetAssociativeCache:
    """Set-associative cache over arbitrary hashable block ids.

    Blocks may have heterogeneous sizes up to ``block_bytes``; a block
    always occupies one way regardless of its actual size (hardware would
    pad to the allocation unit).

    Two replacement policies are supported.  ``"lru"`` is the textbook
    policy; ``"random"`` (the default) is what large last-level caches
    deploy in practice because LRU degenerates to a 0% hit rate on the
    cyclic streaming patterns ML weight traffic produces — with random
    replacement a working set W larger than capacity C settles near a
    C/W hit rate instead of zero.
    """

    def __init__(
        self,
        capacity_bytes: int,
        block_bytes: int = 64 * 1024,
        associativity: int = 16,
        replacement: str = "random",
        seed: int = 0,
    ) -> None:
        if capacity_bytes <= 0 or block_bytes <= 0 or associativity <= 0:
            raise ValueError("capacity, block size, and associativity must be positive")
        if capacity_bytes < block_bytes:
            raise ValueError("cache must hold at least one block")
        if replacement not in ("lru", "random"):
            raise ValueError(f"unknown replacement policy {replacement!r}")
        self.capacity_bytes = capacity_bytes
        self.block_bytes = block_bytes
        self.associativity = associativity
        self.replacement = replacement
        total_blocks = max(1, capacity_bytes // block_bytes)
        self.num_sets = max(1, total_blocks // associativity)
        # Each set is an OrderedDict from block id to line, LRU first.
        self._sets: List["OrderedDict[BlockId, _Line]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        # A deterministic linear-congruential sequence drives random
        # victim selection so runs are reproducible.
        self._rand_state = (seed * 2654435761 + 1) & 0xFFFFFFFF
        self.stats = CacheStats()

    def _set_for(self, block: BlockId) -> "OrderedDict[BlockId, _Line]":
        return self._sets[hash(block) % self.num_sets]

    def _next_rand(self) -> int:
        self._rand_state = (self._rand_state * 1664525 + 1013904223) & 0xFFFFFFFF
        return self._rand_state

    def access(
        self, block: BlockId, write: bool = False, size_bytes: Optional[int] = None
    ) -> bool:
        """Access one block; returns True on hit.

        On a miss the block is installed, evicting a victim chosen by the
        replacement policy if the set is full.  A ``write`` access marks
        the line dirty; evicting a dirty line counts a writeback (the
        slow path the paper avoids by keeping weights — clean lines — in
        LLC).
        """
        size = self.block_bytes if size_bytes is None else min(size_bytes, self.block_bytes)
        cache_set = self._set_for(block)
        line = cache_set.get(block)
        if line is not None:
            if self.replacement == "lru":
                cache_set.move_to_end(block)
            line.dirty = line.dirty or write
            self.stats.hits += 1
            self.stats.bytes_hit += size
            return True
        self.stats.misses += 1
        self.stats.bytes_missed += size
        if len(cache_set) >= self.associativity:
            if self.replacement == "lru":
                _, victim = cache_set.popitem(last=False)
            else:
                keys = list(cache_set.keys())
                victim_key = keys[self._next_rand() % len(keys)]
                victim = cache_set.pop(victim_key)
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.dirty_writebacks += 1
                self.stats.bytes_written_back += victim.size_bytes
        cache_set[block] = _Line(block=block, dirty=write, size_bytes=size)
        return False

    def contains(self, block: BlockId) -> bool:
        """Whether the block is currently resident (no LRU update)."""
        return block in self._set_for(block)

    def invalidate(self, block: BlockId) -> bool:
        """Drop a block without a writeback; returns True if it was present."""
        cache_set = self._set_for(block)
        return cache_set.pop(block, None) is not None

    def flush(self) -> int:
        """Write back and drop everything; returns the dirty line count."""
        dirty = 0
        for cache_set in self._sets:
            for line in cache_set.values():
                if line.dirty:
                    dirty += 1
                    self.stats.dirty_writebacks += 1
                    self.stats.bytes_written_back += line.size_bytes
            cache_set.clear()
        return dirty

    @property
    def resident_blocks(self) -> int:
        """Number of blocks currently cached."""
        return sum(len(s) for s in self._sets)

    @property
    def resident_bytes(self) -> int:
        """Bytes currently cached (actual block sizes)."""
        return sum(line.size_bytes for s in self._sets for line in s.values())


def tensor_blocks(tensor_uid: int, num_bytes: int, block_bytes: int) -> List[Tuple[int, int, int]]:
    """Split a tensor into cache blocks.

    Returns ``(tensor_uid, block_index, block_size)`` triples; the last
    block may be partial.
    """
    if num_bytes < 0:
        raise ValueError("tensor size must be non-negative")
    blocks = []
    index = 0
    remaining = num_bytes
    while remaining > 0:
        size = min(block_bytes, remaining)
        blocks.append((tensor_uid, index, size))
        remaining -= size
        index += 1
    return blocks
