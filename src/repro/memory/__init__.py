"""Memory hierarchy: LLC cache simulation, LLS scratch allocation, and the
partitioned SRAM placement machinery (paper sections 3.6 and 4.1)."""

from repro.memory.cache import CacheStats, SetAssociativeCache, tensor_blocks
from repro.memory.hierarchy import (
    MemoryHierarchy,
    Placement,
    SramPartition,
    Traffic,
    partition_for_activations,
)
from repro.memory.scratch import (
    AllocationPlan,
    BufferRequest,
    Placement as ScratchPlacement,
    ScratchAllocator,
    plan_allocation,
)

__all__ = [
    "AllocationPlan",
    "BufferRequest",
    "CacheStats",
    "MemoryHierarchy",
    "Placement",
    "ScratchAllocator",
    "ScratchPlacement",
    "SetAssociativeCache",
    "SramPartition",
    "Traffic",
    "partition_for_activations",
    "plan_allocation",
    "tensor_blocks",
]
