"""Memoized kernel-latency tables for the autotune inner loops.

``estimate_gemm`` is a pure function of (shape, chip, dtype, variant) —
the tuner's 'run the kernel and time it' primitive — so repeated
evaluations of the same point inside a tuning sweep are pure waste.  A
:class:`KernelLatencyMemo` caches estimates keyed on
``(op, (m, k, n), dtype, frequency_hz, variant.key())``.

The memo is *bound to one chip instance*: two chips can share a name
and frequency while differing elsewhere (peak-FLOPs tables, DPE
geometry), so caching across chips on those fields alone could return
a wrong-but-plausible latency.  Callers create one memo per tuning run
(``compare_tuners``, ``autotune_model``) and the memo refuses lookups
for any other chip.  Transparency — memoized latency == recomputed
latency, always — is property-tested in
``tests/test_fastsim_properties.py``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.arch.specs import ChipSpec
from repro.kernels.gemm import GemmVariant, estimate_gemm
from repro.tensors.dtypes import DType
from repro.tensors.tensor import GemmShape


class KernelLatencyMemo:
    """Per-chip cache of kernel cost-model evaluations.

    ``recorder`` is the dump-to-dataset hook
    (:class:`repro.surrogate.dataset.DatasetRecorder` or any callable
    with its signature): it is invoked once per cache *miss* — i.e.
    once per distinct exact evaluation — with
    ``(shape, variant, dtype, time_s)``, so memoized exact evaluations
    double as surrogate training rows.  The hook observes and never
    steers: measured values are computed and cached before it runs, and
    its presence cannot change what ``measure`` returns (property-
    tested in ``tests/test_surrogate_properties.py``).
    """

    __slots__ = ("_chip", "_table", "_recorder", "hits", "misses")

    def __init__(self, chip: ChipSpec, recorder=None) -> None:
        self._chip = chip
        self._table: Dict[Tuple, float] = {}
        self._recorder = recorder
        self.hits = 0
        self.misses = 0

    @property
    def chip(self) -> ChipSpec:
        return self._chip

    def __len__(self) -> int:
        return len(self._table)

    def measure(
        self, shape: GemmShape, variant: GemmVariant, dtype: DType
    ) -> float:
        """``estimate_gemm(...).engine_time_s``, cached."""
        key = (
            "gemm",
            (shape.m, shape.k, shape.n),
            dtype,
            self._chip.frequency_hz,
            variant.key(),
        )
        cached = self._table.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        time_s = estimate_gemm(shape, self._chip, dtype, variant).engine_time_s
        self._table[key] = time_s
        if self._recorder is not None:
            self._recorder(shape, variant, dtype, time_s)
        return time_s
