"""Retired exact-path engines, kept verbatim as differential oracles.

When a hot loop is ported onto the fast substrate, its legacy
implementation moves here *unchanged* and becomes the oracle the
differential harness (``tests/test_fastsim_equivalence.py``) runs
against the fast path on identical seeded scenarios.  This is the
NeuroScalar fast-path/exact-path split: the exact model is the
verifier, and parity means report-level byte-identity — every float,
every count, every trace byte.

The cluster simulator keeps its reference mode in-tree instead
(``run_cluster(..., engine="reference")`` revalidates the incremental
queue-depth bookkeeping against full recomputation at every event) —
its fast path changes *bookkeeping*, not algorithm, so the oracle is
an invariant checker rather than a second implementation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry, active
from repro.serving.batcher import Batch


def schedule_batches_reference(
    batches: Sequence["Batch"],
    profile,
    registry: Optional[MetricsRegistry] = None,
):
    """The original O(n^2) scan-the-pending-list device scheduler.

    Byte-identical oracle for ``repro.serving.scheduler.schedule_batches``
    (the fast ready-heap port).  Kept verbatim — do not optimize.
    """
    from repro.serving.scheduler import (
        BatchCompletion,
        ScheduleResult,
        _Job,
    )

    obs = active(registry)
    runnable_depth = obs.histogram("serving.scheduler.runnable_depth")
    jobs: List[_Job] = []
    merge_jobs: Dict[int, _Job] = {}
    for index, batch in enumerate(batches):
        for _ in range(profile.remote_jobs_per_batch):
            jobs.append(
                _Job(
                    batch_index=index,
                    kind="remote",
                    duration_s=profile.remote_time_s + profile.dispatch_overhead_s,
                    enqueue_s=batch.formed_at_s,
                )
            )
        merge = _Job(
            batch_index=index,
            kind="merge",
            duration_s=profile.merge_time_s + profile.dispatch_overhead_s,
            enqueue_s=batch.formed_at_s,
            remaining_deps=profile.remote_jobs_per_batch,
        )
        jobs.append(merge)
        merge_jobs[index] = merge
    # Event-driven single-server simulation.
    pending = sorted(jobs, key=lambda j: (j.enqueue_s, 0 if j.kind == "remote" else 1))
    time = 0.0
    busy = 0.0
    done = 0
    while done < len(jobs):
        runnable = [
            j
            for j in pending
            if j.finish_s < 0 and j.enqueue_s <= time and j.remaining_deps == 0
        ]
        if not runnable:
            # Advance to the next enqueue event.
            future = [j.enqueue_s for j in pending if j.finish_s < 0 and j.remaining_deps == 0]
            if not future:
                raise RuntimeError("scheduler deadlock: jobs with unresolved deps")
            time = max(time, min(future))
            continue
        # FIFO by (current) queue-entry time.
        runnable_depth.observe(float(len(runnable)))
        job = min(runnable, key=lambda j: j.enqueue_s)
        job.start_s = time
        job.finish_s = time + job.duration_s
        busy += job.duration_s
        time = job.finish_s
        done += 1
        if job.kind == "remote":
            merge = merge_jobs[job.batch_index]
            merge.remaining_deps -= 1
            if merge.remaining_deps == 0:
                # The merge is (re)submitted after a host round trip; its
                # new FIFO position is behind any remote already queued —
                # the crux of the remote-remote-merge-merge pattern.
                merge.enqueue_s = time + profile.merge_submission_delay_s
    completions = []
    for index, batch in enumerate(batches):
        remotes = [
            j for j in jobs if j.batch_index == index and j.kind == "remote"
        ]
        completions.append(
            BatchCompletion(
                batch=batch,
                remote_done_s=max(j.finish_s for j in remotes),
                merge_done_s=merge_jobs[index].finish_s,
            )
        )
    makespan = max((j.finish_s for j in jobs), default=0.0)
    result = ScheduleResult(
        completions=completions, device_busy_s=busy, makespan_s=makespan
    )
    if obs.enabled:
        obs.counter("serving.scheduler.jobs_dispatched").inc(len(jobs))
        obs.gauge("serving.scheduler.utilization").set(result.utilization)
        obs.gauge("serving.scheduler.makespan_s").set(makespan)
    return result
