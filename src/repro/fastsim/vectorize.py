"""Numpy vectorizations that are byte-identical to the scalar loops.

Two facts make these drop-in replacements rather than approximations:

- ``numpy.random.Generator`` draws the same underlying stream for one
  batched call as for the equivalent sequence of scalar calls
  (``rng.exponential(s, size=n)`` == ``[rng.exponential(s) for _ in
  range(n)]``, values *and* final generator state), so a scalar draw
  loop can be replaced by save-state → probe in blocks → restore-state
  → draw exactly the consumed count in one call.
- ``numpy.cumsum`` accumulates sequentially in C, reproducing the exact
  float rounding of a ``t += dt`` Python loop.

Both facts are asserted by ``tests/test_fastsim_properties.py`` so a
numpy behaviour change reads as a test failure, not silent drift.
"""

from __future__ import annotations

import numpy as np


def seeded_poisson_arrivals(
    rng: np.random.Generator, rate_per_s: float, horizon_s: float
) -> np.ndarray:
    """Arrival times of a homogeneous Poisson process on [0, horizon).

    Byte-identical — in arrival values and in generator state afterwards
    — to the scalar loop::

        t = 0.0
        while True:
            t += rng.exponential(1.0 / rate_per_s)
            if t >= horizon_s:
                break
            arrivals.append(t)

    The loop consumes ``k + 1`` exponential draws for ``k`` arrivals
    (the last draw crosses the horizon).  We probe in doubling blocks
    from a saved state to find that count, then restore and draw it in
    a single batched call so the stream position lands exactly where
    the scalar loop would leave it.
    """
    if rate_per_s <= 0:
        raise ValueError("rate must be positive")
    scale = 1.0 / rate_per_s
    if horizon_s <= 0:
        # The scalar loop's first draw crosses immediately — but it is
        # still drawn, and the stream position must reflect that.
        rng.exponential(scale)
        return np.empty(0, dtype=np.float64)
    state = rng.bit_generator.state
    block = max(16, int(rate_per_s * horizon_s * 1.1) + 8)
    while True:
        gaps = rng.exponential(scale, size=block)
        times = np.cumsum(gaps)
        crossed = np.nonzero(times >= horizon_s)[0]
        if crossed.size:
            consumed = int(crossed[0]) + 1
            break
        block *= 2
        rng.bit_generator.state = state
    rng.bit_generator.state = state
    gaps = rng.exponential(scale, size=consumed)
    return np.cumsum(gaps)[: consumed - 1]


def sorted_percentile(sorted_values: np.ndarray, percentile: float) -> float:
    """The repository's legacy nearest-rank percentile over a sorted array.

    Index formula kept bit-for-bit: ``min(n - 1, int(round(p / 100 *
    (n - 1))))`` — matching ``ScheduleResult.latency_percentile`` and
    the cluster/fleet report percentiles it replaces.
    """
    n = len(sorted_values)
    if not n:
        return 0.0
    index = min(n - 1, int(round(percentile / 100 * (n - 1))))
    return float(sorted_values[index])
