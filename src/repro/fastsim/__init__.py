"""Shared fast-simulation substrate (ROADMAP item 1).

The hot engines — ``serving.scheduler``, ``cluster.simulator`` (and
through it ``fleet_global``), the ``sdc`` campaign loop, and
``autotune`` evaluation — all run on the pieces in this package:

- :mod:`repro.fastsim.engine`: a deterministic event queue with a
  binary-heap and a calendar-queue (bucketed) backend sharing one total
  order, ``(time_s, tiebreak)``.
- :mod:`repro.fastsim.memo`: memoized kernel-latency tables keyed on
  (op, shape, dtype, frequency, variant).
- :mod:`repro.fastsim.vectorize`: numpy vectorizations of per-request
  math that are *byte-identical* to the scalar loops they replace
  (same RNG draws in the same order, same float accumulation order).
- :mod:`repro.fastsim.trials`: an opt-in ``multiprocessing`` map over
  independent seeded trials, sequential by default.
- :mod:`repro.fastsim.reference`: the retired exact-path engines, kept
  verbatim as differential-testing oracles (the NeuroScalar-style
  fast-path/exact-path split: the exact model is the verifier).

Determinism is the contract: every golden in ``repro.obs.golden`` is
byte-identical on the fast paths, and ``tests/test_fastsim_equivalence``
proves report-level parity against the reference engines.
"""

from repro.fastsim.engine import CalendarQueue, EventEngine, HeapQueue
from repro.fastsim.memo import KernelLatencyMemo
from repro.fastsim.trials import trial_map
from repro.fastsim.vectorize import seeded_poisson_arrivals, sorted_percentile

__all__ = [
    "CalendarQueue",
    "EventEngine",
    "HeapQueue",
    "KernelLatencyMemo",
    "seeded_poisson_arrivals",
    "sorted_percentile",
    "trial_map",
]
