"""Opt-in multiprocessing over independent seeded trials.

Determinism rules (also documented in DESIGN.md):

- Sequential is the default (``processes=None``): ``trial_map`` is then
  exactly ``[fn(item) for item in items]`` — same call order, same RNG
  consumption, byte-identical results.
- Process mode is *only* sound for trials that are independent pure
  functions of their arguments (each trial seeds its own generators
  from its item; no shared mutable state, no registry/tracer capture).
  Every sweep wired through this helper already has that shape — one
  seeded simulator run per grid cell.
- Results always come back in submission order regardless of worker
  completion order, so downstream aggregation is order-stable.
- ``fn`` and the items must be picklable (module-level function,
  dataclass/ tuple arguments) for process mode.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Iterable, List, Optional, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def trial_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    processes: Optional[int] = None,
) -> List[R]:
    """Map ``fn`` over independent trials; fork out only when asked."""
    materialized = list(items)
    if processes is None or processes <= 1 or len(materialized) <= 1:
        return [fn(item) for item in materialized]
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )
    workers = min(processes, len(materialized))
    with context.Pool(processes=workers) as pool:
        # Pool.map preserves submission order.
        return pool.map(fn, materialized)
