"""Deterministic event queues for the discrete-event simulators.

Every entry is a tuple ``(time_s, tiebreak, payload)`` and pop order is
the total order ``(time_s, tiebreak)`` — the payload is never compared.
Callers make ``tiebreak`` unique per engine (the default is a
monotonically increasing sequence number, i.e. FIFO among equal
timestamps — exactly the ``(time_s, seq, ...)`` heap tuples the cluster
simulator has always used).  Injection-style callers that need an
argument-order-independent total order pass an explicit tiebreak tuple
built from ``repro.cluster.simulator.injection_sort_key`` semantics:
``(kind_rank, targets, magnitude, seq)``.

Two backends share the contract:

- :class:`HeapQueue` — a plain binary heap (``heapq``), the default.
- :class:`CalendarQueue` — bucketed (calendar-queue) scheduling: events
  land in ``floor(time_s / bucket_width)`` buckets; pop takes the min
  entry of the earliest non-empty bucket.  Bucket ids are monotone in
  time, so the earliest non-empty bucket always holds the global
  minimum, and entries inside one bucket are a small heap ordered by
  the same ``(time_s, tiebreak)`` key — the pop sequence is therefore
  *identical* to the binary heap's for any push/pop interleaving
  (property-tested in ``tests/test_fastsim_properties.py``).  The queue
  re-buckets itself with a halved width when any bucket grows past
  ``resize_threshold``, keeping per-pop work O(1)-ish for the
  clustered-in-time event populations a DES produces.

The simulators advance time monotonically, so pushes never land before
the last popped bucket — but nothing here relies on that: lazy bucket-id
bookkeeping keeps the order correct for arbitrary interleavings.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, List, Optional, Tuple

Entry = Tuple[float, Any, Any]  # (time_s, tiebreak, payload)


class HeapQueue:
    """Binary-heap backend: a thin wrapper over ``heapq``."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[Entry] = []

    def push(self, entry: Entry) -> None:
        heapq.heappush(self._heap, entry)

    def pop(self) -> Entry:
        return heapq.heappop(self._heap)

    def peek(self) -> Entry:
        return self._heap[0]

    def __iter__(self):
        return iter(self._heap)

    def __len__(self) -> int:
        return len(self._heap)


class CalendarQueue:
    """Calendar-queue (bucketed) backend with heap-identical pop order."""

    __slots__ = ("_buckets", "_bucket_ids", "_width", "_size", "_threshold")

    def __init__(
        self, bucket_width: float = 0.25, resize_threshold: int = 128
    ) -> None:
        if bucket_width <= 0:
            raise ValueError("bucket width must be positive")
        if resize_threshold < 8:
            raise ValueError("resize threshold must be at least 8")
        self._buckets: dict = {}
        self._bucket_ids: List[int] = []  # lazy min-heap of bucket ids
        self._width = float(bucket_width)
        self._size = 0
        self._threshold = resize_threshold

    def push(self, entry: Entry) -> None:
        bucket_id = math.floor(entry[0] / self._width)
        bucket = self._buckets.get(bucket_id)
        if not bucket:
            self._buckets[bucket_id] = bucket = []
            heapq.heappush(self._bucket_ids, bucket_id)
        heapq.heappush(bucket, entry)
        self._size += 1
        if len(bucket) > self._threshold:
            self._rebucket()

    def pop(self) -> Entry:
        bucket = self._min_bucket()
        entry = heapq.heappop(bucket)
        self._size -= 1
        return entry

    def peek(self) -> Entry:
        return self._min_bucket()[0]

    def _min_bucket(self) -> List[Entry]:
        if not self._size:
            raise IndexError("pop from an empty calendar queue")
        while True:
            bucket_id = self._bucket_ids[0]
            bucket = self._buckets.get(bucket_id)
            if bucket:
                return bucket
            # Bucket drained since its id was queued: retire the id.  A
            # later push into the same bucket re-queues it.
            heapq.heappop(self._bucket_ids)
            self._buckets.pop(bucket_id, None)

    def _rebucket(self) -> None:
        """Halve the bucket width and redistribute every entry."""
        entries = [e for bucket in self._buckets.values() for e in bucket]
        self._width /= 2.0
        self._buckets = {}
        self._bucket_ids = []
        for entry in entries:
            bucket_id = math.floor(entry[0] / self._width)
            bucket = self._buckets.get(bucket_id)
            if bucket is None:
                self._buckets[bucket_id] = bucket = []
                heapq.heappush(self._bucket_ids, bucket_id)
            bucket.append(entry)
        for bucket in self._buckets.values():
            heapq.heapify(bucket)

    def __iter__(self):
        for bucket in self._buckets.values():
            yield from bucket

    def __len__(self) -> int:
        return self._size


BACKENDS = ("heap", "calendar")


class EventEngine:
    """A deterministic event queue over a selectable backend.

    ``schedule(time_s, payload)`` assigns the next sequence number as
    the tiebreak (FIFO among equal timestamps); ``schedule(time_s,
    payload, tiebreak=...)`` pins an explicit total order.  ``pop``
    returns the full ``(time_s, tiebreak, payload)`` entry.
    """

    __slots__ = ("_queue", "_seq", "_staged", "_cursor", "_heap")

    def __init__(
        self, backend: str = "heap", bucket_width: Optional[float] = None
    ) -> None:
        if backend == "heap":
            self._queue = HeapQueue()
            # Direct view of the heap list: ``pop`` on the default
            # backend runs in one Python frame (len / index / compare /
            # heappop are all C-level).
            self._heap: Optional[List[Entry]] = self._queue._heap
        elif backend == "calendar":
            self._queue = CalendarQueue(bucket_width=bucket_width or 0.25)
            self._heap = None
        else:
            raise ValueError(
                f"unknown event-engine backend {backend!r}; "
                f"expected one of {BACKENDS}"
            )
        self._seq = itertools.count()
        # Staged entries: pre-known, already-sorted event populations
        # kept as one flat sorted list behind a cursor instead of heap
        # entries (see ``schedule_batch``).  ``pop`` compares the
        # staged head with the queue head, so the drain order is
        # exactly what individual ``schedule`` calls would produce.
        self._staged: List[Entry] = []
        self._cursor = 0

    def schedule(
        self, time_s: float, payload: Any = None, tiebreak: Any = None
    ) -> None:
        if tiebreak is None:
            tiebreak = next(self._seq)
        self._queue.push((time_s, tiebreak, payload))

    def schedule_batch(self, items) -> None:
        """Schedule many ``(time_s, payload)`` pairs in one call.

        Tiebreaks come off the same running sequence as ``schedule``,
        in iteration order — byte-identical pop order to the equivalent
        loop of ``schedule`` calls, whatever order the items arrive in.
        The batch joins the staged list: entries drain through a cursor
        rather than the heap, so a simulator that stages its pre-known
        populations this way (request arrivals, fault schedules, probe
        ticks) keeps the heap down to the handful of in-flight runtime
        events, which is where the log-factor of every push and pop
        goes.  Merging a batch into the staged list is one Timsort pass
        — near-linear, since both sides are already sorted runs.
        """
        seq = self._seq
        entries = [(time_s, next(seq), payload) for time_s, payload in items]
        if not entries:
            return
        undrained = self._staged[self._cursor:]
        undrained.extend(entries)
        undrained.sort()
        self._staged = undrained
        self._cursor = 0

    def pop(self) -> Entry:
        staged = self._staged
        cursor = self._cursor
        heap = self._heap
        if heap is not None:
            if cursor < len(staged):
                head = staged[cursor]
                if not heap or head < heap[0]:
                    self._cursor = cursor + 1
                    return head
            return heapq.heappop(heap)  # IndexError when empty: done
        queue = self._queue
        if cursor < len(staged):
            head = staged[cursor]
            if not len(queue) or head < queue.peek():
                self._cursor = cursor + 1
                return head
        return queue.pop()

    def peek(self) -> Entry:
        staged_head: Optional[Entry] = None
        if self._cursor < len(self._staged):
            staged_head = self._staged[self._cursor]
        if len(self._queue):
            queued = self._queue.peek()
            if staged_head is None or queued < staged_head:
                return queued
        if staged_head is None:
            raise IndexError("peek on an empty event engine")
        return staged_head

    def count_due(self, time_s: float) -> int:
        """How many pending entries have ``time <= time_s`` (an O(n)
        observability probe — callers gate it on metrics being on)."""
        due = sum(1 for entry in self._queue if entry[0] <= time_s)
        due += sum(
            1 for entry in self._staged[self._cursor:]
            if entry[0] <= time_s
        )
        return due

    def __len__(self) -> int:
        return len(self._queue) + (len(self._staged) - self._cursor)

    def __bool__(self) -> bool:
        return (
            self._cursor < len(self._staged) or len(self._queue) > 0
        )
