"""Operator nodes of the model IR.

The model builders (:mod:`repro.models`) construct graphs of these ops;
the optimization passes rewrite them; the kernel models cost them.  The
op set covers the workloads the paper describes: FC/GEMM, Table Batched
Embedding (pooled and sequence), LayerNorm, Softmax, multi-headed and
HSTU ragged attention, layout ops, elementwise math, quantize/dequantize,
and broadcast (the In-Batch Broadcast of section 6).
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.tensors.dtypes import DType
from repro.tensors.tensor import (
    GemmShape,
    TensorKind,
    TensorSpec,
    activation,
    concat_specs,
    transposed,
)

_OP_IDS = itertools.count()


class OpType(enum.Enum):
    """Kinds of operators in the IR."""

    FC = "fc"
    TBE = "tbe"
    LAYERNORM = "layernorm"
    SOFTMAX = "softmax"
    MHA = "mha"
    HSTU_ATTENTION = "hstu_attention"
    TRANSPOSE = "transpose"
    RESHAPE = "reshape"
    CONCAT = "concat"
    SLICE = "slice"
    ELEMENTWISE = "elementwise"
    INTERACTION = "interaction"
    BROADCAST = "broadcast"
    QUANTIZE = "quantize"
    DEQUANTIZE = "dequantize"
    CAST = "cast"
    FUSED = "fused"


@dataclasses.dataclass
class Op:
    """One operator: inputs, outputs, and type-specific attributes."""

    op_type: OpType
    name: str
    inputs: List[TensorSpec]
    outputs: List[TensorSpec]
    attrs: Dict[str, Any] = dataclasses.field(default_factory=dict)
    uid: int = dataclasses.field(default_factory=lambda: next(_OP_IDS))

    def __post_init__(self) -> None:
        if not self.outputs:
            raise ValueError(f"op {self.name!r} must produce at least one output")

    @property
    def output(self) -> TensorSpec:
        """The primary (first) output."""
        return self.outputs[0]

    def attr(self, key: str, default: Any = None) -> Any:
        """Fetch an attribute with a default."""
        return self.attrs.get(key, default)

    def flops(self) -> float:
        """Canonical FLOP count of this op (per graph execution)."""
        return _FLOP_COUNTERS.get(self.op_type, _default_flops)(self)

    def input_bytes(self) -> int:
        """Bytes across all inputs."""
        return sum(t.num_bytes for t in self.inputs)

    def output_bytes(self) -> int:
        """Bytes across all outputs."""
        return sum(t.num_bytes for t in self.outputs)

    def weight_inputs(self) -> List[TensorSpec]:
        """Inputs that are weights or embedding tables."""
        return [
            t
            for t in self.inputs
            if t.kind in (TensorKind.WEIGHT, TensorKind.EMBEDDING)
        ]

    def activation_inputs(self) -> List[TensorSpec]:
        """Inputs that are activations or model inputs."""
        return [t for t in self.inputs if t not in self.weight_inputs()]

    def __str__(self) -> str:
        ins = ", ".join(str(t) for t in self.inputs)
        outs = ", ".join(str(t) for t in self.outputs)
        return f"{self.name}<{self.op_type.value}>({ins}) -> {outs}"


# --------------------------------------------------------------------------
# FLOP accounting
# --------------------------------------------------------------------------


def _default_flops(op: Op) -> float:
    return float(op.output.num_elements)


def _fc_flops(op: Op) -> float:
    shape: GemmShape = op.attrs["gemm"]
    return float(shape.flops)


def _tbe_flops(op: Op) -> float:
    # Pooling is one add per element gathered.
    rows = op.attrs["total_rows"]
    dim = op.attrs["embed_dim"]
    weighted = 2.0 if op.attrs.get("weighted", False) else 1.0
    return float(rows * dim * weighted)


def _layernorm_flops(op: Op) -> float:
    # Mean, variance, and normalize: ~8 flops per element.
    return 8.0 * op.inputs[0].num_elements


def _softmax_flops(op: Op) -> float:
    # Max, subtract, exp, sum, divide: ~5 passes.
    return 5.0 * op.inputs[0].num_elements


def _mha_flops(op: Op) -> float:
    batch = op.attrs["batch"]
    heads = op.attrs["heads"]
    seq = op.attrs["seq_len"]
    head_dim = op.attrs["head_dim"]
    # QK^T and PV, per head: 2 * seq^2 * head_dim MACs each.
    return float(batch * heads * 2 * (2 * seq * seq * head_dim))


def _hstu_flops(op: Op) -> float:
    lengths: Sequence[int] = op.attrs["seq_lengths"]
    heads = op.attrs["heads"]
    head_dim = op.attrs["head_dim"]
    # Ragged attention: per sample, attention over its own history length,
    # plus the pointwise bias gather (~3 ops per score).
    total = 0.0
    for length in lengths:
        total += heads * (2 * 2 * length * length * head_dim + 3 * length * length)
    return total


def _elementwise_flops(op: Op) -> float:
    return op.attrs.get("ops_per_element", 1.0) * op.output.num_elements


def _interaction_flops(op: Op) -> float:
    # Pairwise dot products among F feature vectors of dim D, per batch item.
    batch = op.attrs["batch"]
    features = op.attrs["num_features"]
    dim = op.attrs["dim"]
    pairs = features * (features - 1) // 2
    return float(batch * pairs * 2 * dim)


def _quantize_flops(op: Op) -> float:
    # Scale computation plus per-element multiply-round.
    return 3.0 * op.inputs[0].num_elements


_FLOP_COUNTERS = {
    OpType.FC: _fc_flops,
    OpType.TBE: _tbe_flops,
    OpType.LAYERNORM: _layernorm_flops,
    OpType.SOFTMAX: _softmax_flops,
    OpType.MHA: _mha_flops,
    OpType.HSTU_ATTENTION: _hstu_flops,
    OpType.ELEMENTWISE: _elementwise_flops,
    OpType.INTERACTION: _interaction_flops,
    OpType.QUANTIZE: _quantize_flops,
    OpType.DEQUANTIZE: _quantize_flops,
    OpType.TRANSPOSE: lambda op: 0.0,
    OpType.RESHAPE: lambda op: 0.0,
    OpType.CONCAT: lambda op: 0.0,
    OpType.SLICE: lambda op: 0.0,
    OpType.BROADCAST: lambda op: 0.0,
    OpType.CAST: lambda op: float(op.output.num_elements),
    OpType.FUSED: lambda op: sum(sub.flops() for sub in op.attrs.get("sub_ops", [])),
}


# --------------------------------------------------------------------------
# Factory functions — the API model builders use
# --------------------------------------------------------------------------


def fc(
    x: TensorSpec,
    w: TensorSpec,
    name: str = "fc",
    out_dtype: Optional[DType] = None,
    sparse: bool = False,
) -> Op:
    """A fully-connected layer: ``y[M,N] = x[M,K] @ w[K,N]``."""
    if x.rank != 2 or w.rank != 2:
        raise ValueError(f"fc expects rank-2 tensors, got {x.shape} @ {w.shape}")
    if x.shape[1] != w.shape[0]:
        raise ValueError(f"fc shape mismatch: {x.shape} @ {w.shape}")
    shape = GemmShape(m=x.shape[0], k=x.shape[1], n=w.shape[1])
    out = activation(shape.m, shape.n, dtype=out_dtype or x.dtype, name=f"{name}_out")
    return Op(
        op_type=OpType.FC,
        name=name,
        inputs=[x, w],
        outputs=[out],
        attrs={"gemm": shape, "sparse": sparse},
    )


def tbe(
    tables: Sequence[TensorSpec],
    batch: int,
    avg_indices_per_lookup: float,
    name: str = "tbe",
    weighted: bool = False,
    sequence: bool = False,
) -> Op:
    """Table Batched Embedding: gather + pool rows from many tables.

    For pooled TBE the output is dense ``(batch, T * D)``.  For sequence
    (jagged) TBE the output is the flattened sequence values; the symbolic
    shape uses the average length.
    """
    if not tables:
        raise ValueError("tbe needs at least one table")
    if batch <= 0 or avg_indices_per_lookup <= 0:
        raise ValueError("batch and pooling factor must be positive")
    dims = {t.shape[1] for t in tables}
    if len(dims) != 1:
        raise ValueError(f"tables disagree on embedding dim: {sorted(dims)}")
    dim = dims.pop()
    num_tables = len(tables)
    total_rows = int(batch * num_tables * avg_indices_per_lookup)
    if sequence:
        out = activation(max(1, total_rows), dim, dtype=tables[0].dtype, name=f"{name}_seq")
    else:
        out = activation(batch, num_tables * dim, dtype=tables[0].dtype, name=f"{name}_pooled")
    return Op(
        op_type=OpType.TBE,
        name=name,
        inputs=list(tables),
        outputs=[out],
        attrs={
            "batch": batch,
            "num_tables": num_tables,
            "embed_dim": dim,
            "avg_indices_per_lookup": avg_indices_per_lookup,
            "total_rows": total_rows,
            "weighted": weighted,
            "sequence": sequence,
        },
    )


def layernorm(x: TensorSpec, name: str = "layernorm") -> Op:
    """Row-wise layer normalization."""
    out = activation(*x.shape, dtype=x.dtype, name=f"{name}_out")
    rows = x.shape[0] if x.rank > 1 else 1
    cols = x.num_elements // rows
    return Op(
        op_type=OpType.LAYERNORM,
        name=name,
        inputs=[x],
        outputs=[out],
        attrs={"rows": rows, "cols": cols},
    )


def softmax(x: TensorSpec, name: str = "softmax") -> Op:
    """Row-wise softmax."""
    out = activation(*x.shape, dtype=x.dtype, name=f"{name}_out")
    rows = x.shape[0] if x.rank > 1 else 1
    cols = x.num_elements // rows
    return Op(
        op_type=OpType.SOFTMAX,
        name=name,
        inputs=[x],
        outputs=[out],
        attrs={"rows": rows, "cols": cols},
    )


def mha(
    x: TensorSpec,
    heads: int,
    head_dim: int,
    seq_len: int,
    batch: int,
    name: str = "mha",
) -> Op:
    """A multi-headed attention block over an already-projected input."""
    if heads <= 0 or head_dim <= 0 or seq_len <= 0 or batch <= 0:
        raise ValueError("mha dimensions must be positive")
    out = activation(batch * seq_len, heads * head_dim, dtype=x.dtype, name=f"{name}_out")
    return Op(
        op_type=OpType.MHA,
        name=name,
        inputs=[x],
        outputs=[out],
        attrs={"heads": heads, "head_dim": head_dim, "seq_len": seq_len, "batch": batch},
    )


def hstu_attention(
    x: TensorSpec,
    seq_lengths: Sequence[int],
    heads: int,
    head_dim: int,
    name: str = "hstu_attn",
) -> Op:
    """HSTU's fused ragged attention with positional/timestamp bias."""
    if not len(seq_lengths):
        raise ValueError("need at least one sequence")
    total = int(sum(seq_lengths))
    out = activation(max(1, total), heads * head_dim, dtype=x.dtype, name=f"{name}_out")
    return Op(
        op_type=OpType.HSTU_ATTENTION,
        name=name,
        inputs=[x],
        outputs=[out],
        attrs={
            "seq_lengths": list(int(s) for s in seq_lengths),
            "heads": heads,
            "head_dim": head_dim,
        },
    )


def transpose(x: TensorSpec, name: str = "transpose") -> Op:
    """2-D transpose (MLU-executed layout change).

    The output is an on-chip activation regardless of the input's kind —
    once data has been transformed by an engine it lives in the
    activation buffer.
    """
    out = transposed(x).with_kind(TensorKind.ACTIVATION)
    return Op(op_type=OpType.TRANSPOSE, name=name, inputs=[x], outputs=[out])


def reshape(x: TensorSpec, shape: Tuple[int, ...], name: str = "reshape") -> Op:
    """Reshape preserving element count; output is an activation."""
    out = x.with_shape(shape).with_kind(TensorKind.ACTIVATION)
    if out.num_elements != x.num_elements:
        raise ValueError(f"reshape changes element count: {x.shape} -> {shape}")
    return Op(op_type=OpType.RESHAPE, name=name, inputs=[x], outputs=[out])


def concat(xs: Sequence[TensorSpec], axis: int = -1, name: str = "concat") -> Op:
    """Concatenate along an axis; output is an activation."""
    out = concat_specs(list(xs), axis=axis).with_kind(TensorKind.ACTIVATION)
    return Op(op_type=OpType.CONCAT, name=name, inputs=list(xs), outputs=[out], attrs={"axis": axis})


def elementwise(
    xs: Sequence[TensorSpec],
    function: str = "add",
    ops_per_element: float = 1.0,
    name: str = "elementwise",
) -> Op:
    """An elementwise op over one or more same-shape inputs."""
    if not xs:
        raise ValueError("elementwise needs at least one input")
    first = xs[0]
    for x in xs[1:]:
        if x.shape != first.shape:
            raise ValueError(f"elementwise shape mismatch: {x.shape} vs {first.shape}")
    out = activation(*first.shape, dtype=first.dtype, name=f"{name}_out")
    return Op(
        op_type=OpType.ELEMENTWISE,
        name=name,
        inputs=list(xs),
        outputs=[out],
        attrs={"function": function, "ops_per_element": ops_per_element},
    )


def interaction(
    x: TensorSpec, batch: int, num_features: int, dim: int, name: str = "interaction"
) -> Op:
    """DLRM pairwise feature interaction (dot products between features)."""
    pairs = num_features * (num_features - 1) // 2
    out = activation(batch, pairs, dtype=x.dtype, name=f"{name}_out")
    return Op(
        op_type=OpType.INTERACTION,
        name=name,
        inputs=[x],
        outputs=[out],
        attrs={"batch": batch, "num_features": num_features, "dim": dim},
    )


def broadcast(x: TensorSpec, factor: int, name: str = "broadcast") -> Op:
    """In-Batch Broadcast: replicate user-side rows ``factor`` times to
    align user-ad pairs (section 6)."""
    if factor <= 0:
        raise ValueError("broadcast factor must be positive")
    new_shape = (x.shape[0] * factor,) + tuple(x.shape[1:])
    out = activation(*new_shape, dtype=x.dtype, name=f"{name}_out")
    return Op(
        op_type=OpType.BROADCAST,
        name=name,
        inputs=[x],
        outputs=[out],
        attrs={"factor": factor},
    )


def quantize(x: TensorSpec, name: str = "quantize") -> Op:
    """Dynamic row-wise quantization FP16 -> INT8."""
    out = activation(*x.shape, dtype=DType.INT8, name=f"{name}_out")
    return Op(op_type=OpType.QUANTIZE, name=name, inputs=[x], outputs=[out])


def dequantize(x: TensorSpec, out_dtype: DType = DType.FP16, name: str = "dequantize") -> Op:
    """Dequantize INT32 accumulators / INT8 data back to floating point."""
    out = activation(*x.shape, dtype=out_dtype, name=f"{name}_out")
    return Op(op_type=OpType.DEQUANTIZE, name=name, inputs=[x], outputs=[out])


def cast(x: TensorSpec, out_dtype: DType, name: str = "cast") -> Op:
    """Dtype conversion (e.g. the FP32->FP16 host-offload cast of §3.4)."""
    out = activation(*x.shape, dtype=out_dtype, name=f"{name}_out")
    return Op(op_type=OpType.CAST, name=name, inputs=[x], outputs=[out])


def fused(sub_ops: Sequence[Op], name: str = "fused") -> Op:
    """A fusion of several ops into one kernel.

    Inputs are every sub-op input not produced inside the fusion; the
    outputs are the sub-op outputs consumed outside (callers typically
    treat the last sub-op's output as primary).  Intermediate tensors
    live in PE Local Memory and never touch LLS/LLC — the working-set
    reduction fusions exist for (section 4.2).
    """
    sub_list = list(sub_ops)
    if not sub_list:
        raise ValueError("fusion needs at least one sub-op")
    produced = {t.uid for op in sub_list for t in op.outputs}
    external_inputs: List[TensorSpec] = []
    seen = set()
    for op in sub_list:
        for t in op.inputs:
            if t.uid not in produced and t.uid not in seen:
                external_inputs.append(t)
                seen.add(t.uid)
    consumed_inside = {t.uid for op in sub_list for t in op.inputs}
    outputs = [
        t for op in sub_list for t in op.outputs if t.uid not in consumed_inside
    ]
    if not outputs:
        outputs = [sub_list[-1].outputs[0]]
    return Op(
        op_type=OpType.FUSED,
        name=name,
        inputs=external_inputs,
        outputs=outputs,
        attrs={"sub_ops": sub_list},
    )
