"""The model graph: ops, dependencies, liveness, and footprint queries.

An :class:`OpGraph` is an ordered collection of ops whose edges are
implied by tensor producer/consumer relationships.  The order of ``ops``
is the *execution schedule*; passes that reorder ops (to shrink
activation liveness, section 4.2) produce a new graph with a different
order but identical dependencies.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.graph.ops import Op
from repro.tensors.tensor import TensorKind, TensorSpec


class GraphError(ValueError):
    """Raised for malformed graphs (cycles, missing producers)."""


@dataclasses.dataclass(frozen=True)
class Liveness:
    """A tensor's live range over schedule indices, inclusive."""

    tensor: TensorSpec
    start: int
    end: int

    @property
    def span(self) -> int:
        """Number of schedule steps the tensor is live."""
        return self.end - self.start + 1


class OpGraph:
    """A scheduled operator graph."""

    def __init__(self, ops: Optional[Sequence[Op]] = None, name: str = "model") -> None:
        self.name = name
        self.ops: List[Op] = []
        self._producer: Dict[int, Op] = {}
        for op in ops or []:
            self.add(op)

    def add(self, op: Op) -> Op:
        """Append an op to the schedule; returns it for chaining."""
        for out in op.outputs:
            if out.uid in self._producer:
                raise GraphError(f"tensor {out} produced twice")
        for inp in op.inputs:
            if inp.kind == TensorKind.ACTIVATION and inp.uid not in self._producer:
                raise GraphError(
                    f"op {op.name!r} consumes activation {inp} with no producer; "
                    "add its producer first or mark it as an input"
                )
        self.ops.append(op)
        for out in op.outputs:
            self._producer[out.uid] = op
        return op

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    def producer_of(self, tensor: TensorSpec) -> Optional[Op]:
        """The op producing a tensor, or None for graph inputs/weights."""
        return self._producer.get(tensor.uid)

    def consumers_of(self, tensor: TensorSpec) -> List[Op]:
        """Ops consuming a tensor."""
        return [op for op in self.ops if any(t.uid == tensor.uid for t in op.inputs)]

    # -- structure queries --------------------------------------------------

    def graph_inputs(self) -> List[TensorSpec]:
        """Tensors consumed but never produced, excluding weights/tables."""
        seen: Set[int] = set()
        result: List[TensorSpec] = []
        for op in self.ops:
            for t in op.inputs:
                if (
                    t.uid not in self._producer
                    and t.kind in (TensorKind.INPUT, TensorKind.ACTIVATION)
                    and t.uid not in seen
                ):
                    seen.add(t.uid)
                    result.append(t)
        return result

    def graph_outputs(self) -> List[TensorSpec]:
        """Tensors produced but never consumed."""
        consumed = {t.uid for op in self.ops for t in op.inputs}
        return [t for op in self.ops for t in op.outputs if t.uid not in consumed]

    def weights(self) -> List[TensorSpec]:
        """All distinct weight and embedding tensors."""
        seen: Set[int] = set()
        result: List[TensorSpec] = []
        for op in self.ops:
            for t in op.inputs:
                if t.kind in (TensorKind.WEIGHT, TensorKind.EMBEDDING) and t.uid not in seen:
                    seen.add(t.uid)
                    result.append(t)
        return result

    def weight_bytes(self) -> int:
        """Total parameter footprint (the 'model size' of Table 1)."""
        return sum(t.num_bytes for t in self.weights())

    def embedding_bytes(self) -> int:
        """Footprint of embedding tables only (90% of model size per Table 1)."""
        return sum(t.num_bytes for t in self.weights() if t.kind == TensorKind.EMBEDDING)

    def total_flops(self) -> float:
        """FLOPs for one execution of the graph (one batch)."""
        return sum(op.flops() for op in self.ops)

    def flops_per_sample(self, batch: int) -> float:
        """FLOPs per sample given the graph was built at ``batch``."""
        if batch <= 0:
            raise ValueError("batch must be positive")
        return self.total_flops() / batch

    # -- scheduling / dependencies -------------------------------------------

    def dependencies(self, op: Op) -> List[Op]:
        """Producer ops this op depends on."""
        deps = []
        for t in op.inputs:
            producer = self._producer.get(t.uid)
            if producer is not None and producer is not op:
                deps.append(producer)
        return deps

    def validate_schedule(self) -> None:
        """Check the op order respects producer-before-consumer."""
        position = {id(op): i for i, op in enumerate(self.ops)}
        for op in self.ops:
            for dep in self.dependencies(op):
                if position[id(dep)] >= position[id(op)]:
                    raise GraphError(
                        f"schedule violation: {op.name!r} runs before its "
                        f"dependency {dep.name!r}"
                    )

    def reordered(self, new_order: Sequence[Op]) -> "OpGraph":
        """A new graph with the same ops in a different schedule."""
        if len(new_order) != len(self.ops) or set(map(id, new_order)) != set(
            map(id, self.ops)
        ):
            raise GraphError("reorder must be a permutation of the graph's ops")
        graph = OpGraph(name=self.name)
        graph.ops = list(new_order)
        graph._producer = dict(self._producer)
        graph.validate_schedule()
        return graph

    # -- liveness -------------------------------------------------------------

    def liveness(self) -> List[Liveness]:
        """Live ranges of every activation tensor over schedule indices.

        A tensor is live from the step its producer runs (or step 0 for
        graph inputs) until its last consumer runs.
        """
        position = {id(op): i for i, op in enumerate(self.ops)}
        ranges: Dict[int, Tuple[TensorSpec, int, int]] = {}
        for op in self.ops:
            index = position[id(op)]
            for t in op.outputs:
                if t.kind == TensorKind.ACTIVATION:
                    ranges[t.uid] = (t, index, index)
            for t in op.inputs:
                if t.kind in (TensorKind.ACTIVATION, TensorKind.INPUT):
                    if t.uid in ranges:
                        spec, start, _ = ranges[t.uid]
                        ranges[t.uid] = (spec, start, index)
                    else:
                        ranges[t.uid] = (t, 0, index)
        return [Liveness(tensor=t, start=s, end=e) for t, s, e in ranges.values()]

    def peak_activation_bytes(self) -> int:
        """Peak bytes of simultaneously-live activations — the
        'activation buffer' size autotuning fits into the LLS."""
        events: List[Tuple[int, int]] = []  # (step, delta)
        for live in self.liveness():
            events.append((live.start, live.tensor.num_bytes))
            events.append((live.end + 1, -live.tensor.num_bytes))
        events.sort()
        peak = current = 0
        for _, delta in events:
            current += delta
            peak = max(peak, current)
        return peak

    def activation_buffer_requests(self):
        """Scratch-allocator requests for every activation."""
        from repro.memory.scratch import BufferRequest

        return [
            BufferRequest(
                name=f"{live.tensor.name or live.tensor.uid}",
                size_bytes=live.tensor.num_bytes,
                start=live.start,
                end=live.end,
            )
            for live in self.liveness()
            if live.tensor.num_bytes > 0
        ]

    def summary(self) -> str:
        """One-line-per-op description of the graph."""
        lines = [f"graph {self.name!r}: {len(self.ops)} ops"]
        lines.extend(f"  [{i}] {op}" for i, op in enumerate(self.ops))
        return "\n".join(lines)
