"""Delayed In-Batch Broadcast (paper sections 4.2 and 6).

In-Batch Broadcast (IBB) expands user-side inputs to the model batch size
so user-ad pairs align for the interaction layers.  When the early merge
network only needs *user-side* inputs, broadcasting eagerly duplicates
activation data and wastes compute; deferring the broadcast past the
user-side-only ops reduced some models' memory footprint by up to 2x and
increased throughput by 17% in the section 6 case study.

An op participates in deferral when it carries the attribute
``user_side=True``, meaning its math is independent per user row.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.graph.graph import OpGraph
from repro.graph.ops import Op, OpType, broadcast, elementwise, fc, layernorm
from repro.tensors.tensor import TensorSpec

# Op types whose row dimension can be shrunk when run pre-broadcast.
_DEFERRABLE = (OpType.FC, OpType.LAYERNORM, OpType.ELEMENTWISE, OpType.CAST)


def _shrink_op(op: Op, old_input: TensorSpec, new_input: TensorSpec) -> Op:
    """Rebuild a deferrable op on the un-broadcast (smaller) input."""
    if op.op_type is OpType.FC:
        weight_tensor = op.inputs[1]
        return fc(new_input, weight_tensor, name=op.name, sparse=op.attr("sparse", False))
    if op.op_type is OpType.LAYERNORM:
        return layernorm(new_input, name=op.name)
    if op.op_type is OpType.ELEMENTWISE:
        return elementwise(
            [new_input],
            function=op.attr("function", "add"),
            ops_per_element=op.attr("ops_per_element", 1.0),
            name=op.name,
        )
    if op.op_type is OpType.CAST:
        from repro.graph.ops import cast

        return cast(new_input, op.output.dtype, name=op.name)
    raise ValueError(f"cannot defer broadcast past {op.op_type}")


def defer_broadcast(graph: OpGraph) -> OpGraph:
    """Push each broadcast below its chain of user-side-only consumers.

    Pattern: ``broadcast(u) -> op1 -> op2 -> ... -> opK -> rest``, where
    each ``op_i`` has ``user_side=True``, a single consumer, and only the
    chain tensor plus weights as inputs.  The rewrite runs the chain on
    the un-broadcast rows and broadcasts the final output instead.
    """
    new_ops: List[Op] = []
    consumed: Set[int] = set()
    replacement: Dict[int, TensorSpec] = {}

    def resolve(t: TensorSpec) -> TensorSpec:
        return replacement.get(t.uid, t)

    for op in graph.ops:
        if id(op) in consumed:
            continue
        if op.op_type is not OpType.BROADCAST:
            rebuilt = _with_inputs(op, [resolve(t) for t in op.inputs])
            if rebuilt is not op:
                for old_out, new_out in zip(op.outputs, rebuilt.outputs):
                    replacement[old_out.uid] = new_out
            new_ops.append(rebuilt)
            continue
        chain = _user_side_chain(graph, op)
        if not chain:
            rebuilt = _with_inputs(op, [resolve(t) for t in op.inputs])
            new_ops.append(rebuilt)
            continue
        # Rebuild the chain on the pre-broadcast input.
        current = resolve(op.inputs[0])
        factor = op.attr("factor")
        for link in chain:
            consumed.add(id(link))
            shrunk = _shrink_op(link, link.inputs[0], current)
            new_ops.append(shrunk)
            current = shrunk.output
        late_broadcast = broadcast(current, factor, name=f"{op.name}_deferred")
        # Downstream consumers of the original chain tail now read the
        # late broadcast's output.
        replacement[chain[-1].output.uid] = late_broadcast.output
        new_ops.append(late_broadcast)
    result = OpGraph(name=graph.name)
    for op in new_ops:
        result.add(op)
    result.validate_schedule()
    return result


def _with_inputs(op: Op, new_inputs: List[TensorSpec]) -> Op:
    if all(a.uid == b.uid for a, b in zip(op.inputs, new_inputs)):
        return op
    # Shapes may have changed (an upstream deferral shrank a tensor);
    # rebuild shape-sensitive ops, otherwise swap inputs in place.
    if op.op_type in _DEFERRABLE and new_inputs[0].shape != op.inputs[0].shape:
        return _shrink_op(op, op.inputs[0], new_inputs[0])
    return Op(
        op_type=op.op_type,
        name=op.name,
        inputs=new_inputs,
        outputs=op.outputs,
        attrs=op.attrs,
    )


def _user_side_chain(graph: OpGraph, bcast: Op) -> List[Op]:
    """The maximal single-consumer chain of user-side ops after a broadcast."""
    chain: List[Op] = []
    current = bcast.output
    while True:
        consumers = graph.consumers_of(current)
        if len(consumers) != 1:
            break
        nxt = consumers[0]
        if nxt.op_type not in _DEFERRABLE or not nxt.attr("user_side", False):
            break
        if nxt.inputs[0].uid != current.uid:
            break
        chain.append(nxt)
        current = nxt.output
    return chain


def broadcast_savings(before: OpGraph, after: OpGraph) -> Dict[str, float]:
    """Footprint and FLOP savings from deferral."""
    peak_before = before.peak_activation_bytes()
    peak_after = after.peak_activation_bytes()
    return {
        "peak_activation_before": float(peak_before),
        "peak_activation_after": float(peak_after),
        "footprint_reduction": peak_before / peak_after if peak_after else 1.0,
        "flops_before": before.total_flops(),
        "flops_after": after.total_flops(),
    }
