"""Liveness-minimizing operator scheduling (paper section 4.2).

"We maximize data reuse by selecting the best operator scheduling
algorithm for a model to minimize the liveness range required for
activations."  Given a graph, these passes produce a dependency-valid
schedule with a smaller peak activation footprint, which lets the
autotuner fit the activation buffer into LLS at a larger batch size.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.graph.graph import OpGraph
from repro.graph.ops import Op
from repro.tensors.tensor import TensorKind


def _ready_ops(graph: OpGraph, scheduled: Set[int]) -> List[Op]:
    ready = []
    for op in graph.ops:
        if id(op) in scheduled:
            continue
        if all(id(dep) in scheduled for dep in graph.dependencies(op)):
            ready.append(op)
    return ready


def _memory_delta(graph: OpGraph, op: Op, remaining_uses: Dict[int, int]) -> int:
    """Net change in live activation bytes if ``op`` runs next.

    Running an op allocates its activation outputs and frees every input
    whose last remaining use this is.
    """
    allocated = sum(
        t.num_bytes for t in op.outputs if t.kind == TensorKind.ACTIVATION
    )
    freed = 0
    counted: Set[int] = set()
    for t in op.inputs:
        if t.kind not in (TensorKind.ACTIVATION, TensorKind.INPUT):
            continue
        if t.uid in counted:
            continue
        counted.add(t.uid)
        if remaining_uses.get(t.uid, 0) == 1:
            freed += t.num_bytes
    return allocated - freed


def minimize_liveness(graph: OpGraph) -> OpGraph:
    """Memory-aware scheduling: the best of the original order and a
    greedy rescheduling.

    The greedy pass runs the ready op with the smallest net memory growth
    (ties broken by original order) — the classic heuristic production ML
    compilers use (optimal scheduling is NP-hard).  Because greedy can
    backfire on adversarial DAGs, the pass keeps whichever schedule has
    the lower peak, mirroring the paper's 'selecting the best operator
    scheduling algorithm for a model' (section 4.2).
    """
    remaining_uses: Dict[int, int] = {}
    for op in graph.ops:
        seen: Set[int] = set()
        for t in op.inputs:
            if t.uid in seen:
                continue
            seen.add(t.uid)
            remaining_uses[t.uid] = remaining_uses.get(t.uid, 0) + 1
    original_position = {id(op): i for i, op in enumerate(graph.ops)}
    scheduled: Set[int] = set()
    order: List[Op] = []
    while len(order) < len(graph.ops):
        ready = _ready_ops(graph, scheduled)
        if not ready:
            raise ValueError("graph has a dependency cycle")
        best = min(
            ready,
            key=lambda op: (
                _memory_delta(graph, op, remaining_uses),
                original_position[id(op)],
            ),
        )
        order.append(best)
        scheduled.add(id(best))
        seen = set()
        for t in best.inputs:
            if t.uid in seen:
                continue
            seen.add(t.uid)
            if t.uid in remaining_uses:
                remaining_uses[t.uid] -= 1
    rescheduled = graph.reordered(order)
    if rescheduled.peak_activation_bytes() <= graph.peak_activation_bytes():
        return rescheduled
    return graph


def schedule_quality(graph: OpGraph) -> Dict[str, float]:
    """Metrics comparing schedules: peak activation bytes and mean span."""
    liveness = graph.liveness()
    spans = [live.span for live in liveness] or [0]
    return {
        "peak_activation_bytes": float(graph.peak_activation_bytes()),
        "mean_live_span": sum(spans) / len(spans),
        "num_live_ranges": float(len(liveness)),
    }
