"""Fusion passes (paper sections 4.2 and 6).

Fusions move a sub-graph's working set out of the shared SRAM into the
PEs' distributed Local Memory by combining operators that would otherwise
load and store intermediates through LLS/LLC:

* **vertical fusion** — an FC followed by its single-consumer elementwise
  / activation chain becomes one kernel;
* **sibling transpose-FC fusion** — a transposed output used as input to
  multiple FC layers is fused with them, shrinking the activation size
  and improving cache hit rate (up to 15% on some models);
* **horizontal FC fusion** — parallel FCs reading the same input run as
  one kernel;
* **LayerNorm batching** — hundreds of small LayerNorms are batched
  horizontally to amortize kernel-launch overhead (section 6).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.graph.graph import OpGraph
from repro.graph.ops import Op, OpType, fused

# Elementwise-ish ops eligible for vertical fusion into a producer FC.
_VERTICAL_FUSABLE = (OpType.ELEMENTWISE, OpType.LAYERNORM, OpType.CAST)


def _rebuild(graph: OpGraph, new_ops: List[Op]) -> OpGraph:
    result = OpGraph(name=graph.name)
    for op in new_ops:
        result.add(op)
    result.validate_schedule()
    return result


def _consumer_counts(graph: OpGraph) -> Dict[int, int]:
    counts: Dict[int, int] = {}
    for op in graph.ops:
        for t in op.inputs:
            counts[t.uid] = counts.get(t.uid, 0) + 1
    return counts


def fuse_vertical(graph: OpGraph) -> OpGraph:
    """Fuse each FC with its downstream single-consumer elementwise chain."""
    counts = _consumer_counts(graph)
    consumed: Set[int] = set()
    new_ops: List[Op] = []
    position = {id(op): i for i, op in enumerate(graph.ops)}
    for op in graph.ops:
        if id(op) in consumed:
            continue
        if op.op_type is not OpType.FC:
            new_ops.append(op)
            continue
        chain = [op]
        current = op
        while True:
            out = current.outputs[0]
            if counts.get(out.uid, 0) != 1:
                break
            consumers = graph.consumers_of(out)
            if len(consumers) != 1:
                break
            nxt = consumers[0]
            if nxt.op_type not in _VERTICAL_FUSABLE:
                break
            # Only fuse ops adjacent in dataflow with no other inputs
            # produced later than the FC (keeps the schedule valid).
            if any(
                graph.producer_of(t) is not None
                and position[id(graph.producer_of(t))] > position[id(op)]
                and graph.producer_of(t) not in chain
                for t in nxt.inputs
            ):
                break
            chain.append(nxt)
            current = nxt
        if len(chain) == 1:
            new_ops.append(op)
            continue
        for link in chain[1:]:
            consumed.add(id(link))
        new_ops.append(fused(chain, name=f"{op.name}_fused"))
    return _rebuild(graph, new_ops)


def fuse_sibling_transpose_fc(graph: OpGraph, min_siblings: int = 2) -> OpGraph:
    """Fuse a transpose with all the sibling FCs consuming its output.

    This is the paper's example fusion: "a transposed output is used as
    input for multiple FC layers; fusing these improved cache locality".
    """
    new_ops: List[Op] = []
    consumed: Set[int] = set()
    for op in graph.ops:
        if id(op) in consumed:
            continue
        if op.op_type is not OpType.TRANSPOSE:
            new_ops.append(op)
            continue
        siblings = [
            c for c in graph.consumers_of(op.outputs[0]) if c.op_type is OpType.FC
        ]
        all_consumers = graph.consumers_of(op.outputs[0])
        if len(siblings) < min_siblings or len(siblings) != len(all_consumers):
            new_ops.append(op)
            continue
        for sibling in siblings:
            consumed.add(id(sibling))
        new_ops.append(fused([op] + siblings, name=f"{op.name}_sibling_fc_fused"))
    return _rebuild(graph, new_ops)


def fuse_horizontal_fc(graph: OpGraph, min_group: int = 2) -> OpGraph:
    """Fuse parallel FCs that read the same input tensor into one kernel."""
    groups: Dict[int, List[Op]] = {}
    for op in graph.ops:
        if op.op_type is OpType.FC:
            groups.setdefault(op.inputs[0].uid, []).append(op)
    fuse_sets = {
        id(member): members
        for members in groups.values()
        if len(members) >= min_group
        for member in members
    }
    new_ops: List[Op] = []
    emitted: Set[int] = set()
    for op in graph.ops:
        members = fuse_sets.get(id(op))
        if members is None:
            new_ops.append(op)
            continue
        group_key = id(members[0])
        if group_key in emitted:
            continue
        emitted.add(group_key)
        new_ops.append(fused(members, name=f"{members[0].name}_horizontal_fused"))
    graph_out = _rebuild_tolerant(graph, new_ops)
    return graph_out


def _rebuild_tolerant(graph: OpGraph, new_ops: List[Op]) -> OpGraph:
    """Rebuild, hoisting fused ops later if their inputs are not ready yet.

    Horizontal fusion can group an op with a later sibling whose other
    inputs appear in between; emit ops in an order that respects
    producers.
    """
    result = OpGraph(name=graph.name)
    pending = list(new_ops)
    produced: Set[int] = set()
    for op in graph.ops:
        for t in op.inputs:
            if graph.producer_of(t) is None:
                produced.add(t.uid)
    progress = True
    while pending and progress:
        progress = False
        remaining: List[Op] = []
        for op in pending:
            ready = all(
                t.uid in produced or graph.producer_of(t) is None for t in op.inputs
            )
            if ready:
                result.add(op)
                for t in op.outputs:
                    produced.add(t.uid)
                progress = True
            else:
                remaining.append(op)
        pending = remaining
    if pending:
        names = [op.name for op in pending]
        raise ValueError(f"fusion produced an unschedulable graph; stuck ops: {names}")
    result.validate_schedule()
    return result


def batch_layernorms(graph: OpGraph, min_group: int = 2) -> OpGraph:
    """Batch independent LayerNorms into one horizontally-fused kernel.

    Section 6: "hundreds of LayerNorm layers ... batched together
    horizontally to amortize the kernel launch overhead."  Only
    LayerNorms with no dataflow path between them are grouped.
    """
    layernorms = [op for op in graph.ops if op.op_type is OpType.LAYERNORM]
    if len(layernorms) < min_group:
        return graph
    # Group LayerNorms whose inputs are all produced strictly before the
    # *first* member of the group.  This guarantees independence (no
    # member can transitively depend on another through an intermediate
    # op), so the batched kernel can run at the first member's position.
    position = {id(op): i for i, op in enumerate(graph.ops)}
    groups: List[List[Op]] = []
    current: List[Op] = []
    group_start = -1
    for ln in sorted(layernorms, key=lambda o: position[id(o)]):
        producer_positions = [
            position[id(graph.producer_of(t))]
            for t in ln.inputs
            if graph.producer_of(t) is not None
        ]
        needed = max(producer_positions) if producer_positions else -1
        if not current:
            current = [ln]
            group_start = position[id(ln)]
        elif needed < group_start:
            current.append(ln)
        else:
            groups.append(current)
            current = [ln]
            group_start = position[id(ln)]
    if current:
        groups.append(current)
    to_fuse = {id(op): group for group in groups if len(group) >= min_group for op in group}
    if not to_fuse:
        return graph
    new_ops: List[Op] = []
    emitted: Set[int] = set()
    for op in graph.ops:
        group = to_fuse.get(id(op))
        if group is None:
            new_ops.append(op)
            continue
        key = id(group[0])
        if key in emitted:
            continue
        emitted.add(key)
        new_ops.append(fused(group, name=f"layernorm_batch_{len(group)}"))
    return _rebuild_tolerant(graph, new_ops)


def count_kernel_launches(graph: OpGraph) -> int:
    """Number of kernel launches the schedule needs (fused ops launch once)."""
    return len(graph.ops)
