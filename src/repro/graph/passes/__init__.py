"""Graph optimization passes (paper sections 4.2 and 6)."""

from repro.graph.passes.broadcast import broadcast_savings, defer_broadcast
from repro.graph.passes.fusion import (
    batch_layernorms,
    count_kernel_launches,
    fuse_horizontal_fc,
    fuse_sibling_transpose_fc,
    fuse_vertical,
)
from repro.graph.passes.scheduling import minimize_liveness, schedule_quality

__all__ = [
    "batch_layernorms",
    "broadcast_savings",
    "count_kernel_launches",
    "defer_broadcast",
    "fuse_horizontal_fc",
    "fuse_sibling_transpose_fc",
    "fuse_vertical",
    "minimize_liveness",
    "schedule_quality",
]
