"""Work Queue Engine (WQE) and eager-mode job-launch model.

Paper section 3.3: to support PyTorch eager mode, MTIA 2i's Control Core
broadcasts Work Queue descriptors to the PEs, each of which has a WQE to
DMA requests in.  This cut job launch time by as much as 80% versus
MTIA 1 — under 1 us to launch and under 0.5 us to replace a job.

Eager mode executes each operator as a separate job, so launch overhead
multiplies by the operator count; this model quantifies when a chip's
launch path makes eager execution viable.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.arch.specs import ChipSpec, EagerLaunchSpec


@dataclasses.dataclass(frozen=True)
class LaunchTimeline:
    """Launch accounting for a sequence of eager-mode jobs."""

    num_jobs: int
    launch_overhead_s: float
    compute_time_s: float

    @property
    def total_time_s(self) -> float:
        """Wall time: compute plus exposed launch overhead."""
        return self.compute_time_s + self.launch_overhead_s

    @property
    def overhead_fraction(self) -> float:
        """Fraction of wall time lost to launches."""
        return self.launch_overhead_s / self.total_time_s if self.total_time_s else 0.0


def eager_launch_timeline(
    job_times_s: Sequence[float], eager: EagerLaunchSpec
) -> LaunchTimeline:
    """Launch overhead for back-to-back eager jobs.

    The first job pays the full launch latency; with broadcast work
    queues, subsequent jobs are *replaced* while the previous one drains,
    paying only the (cheaper) replace latency.  Without broadcast support
    every job pays the full launch latency.
    """
    jobs = list(job_times_s)
    if any(t < 0 for t in jobs):
        raise ValueError("job times must be non-negative")
    if not jobs:
        return LaunchTimeline(num_jobs=0, launch_overhead_s=0.0, compute_time_s=0.0)
    if eager.broadcast_work_queues:
        overhead = eager.job_launch_s + (len(jobs) - 1) * eager.job_replace_s
    else:
        overhead = len(jobs) * eager.job_launch_s
    return LaunchTimeline(
        num_jobs=len(jobs),
        launch_overhead_s=overhead,
        compute_time_s=sum(jobs),
    )


def launch_reduction(new: EagerLaunchSpec, old: EagerLaunchSpec) -> float:
    """Fractional reduction in job-launch time (the paper's 'as much as
    80%')."""
    return 1.0 - new.job_launch_s / old.job_launch_s


def eager_viable(
    chip: ChipSpec, median_op_time_s: float, max_overhead_fraction: float = 0.1
) -> bool:
    """Whether eager-mode execution keeps launch overhead acceptable for a
    model whose median operator runs for ``median_op_time_s``."""
    if median_op_time_s <= 0:
        raise ValueError("op time must be positive")
    per_job = (
        chip.eager.job_replace_s
        if chip.eager.broadcast_work_queues
        else chip.eager.job_launch_s
    )
    return per_job / (per_job + median_op_time_s) <= max_overhead_fraction
