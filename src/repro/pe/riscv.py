"""RISC-V core custom-instruction issue model (paper section 3.3).

On MTIA, the per-PE scalar cores generate custom instructions that the
Command Processor dispatches to the fixed-function units.  When the
instruction stream cannot keep the engines fed, the kernel becomes
*issue-bound* — the out-of-the-box problem MTIA 2i hit with its 3x faster
engines.  The fixes the paper describes, all modelled here:

* **multi-context instructions** avoid re-writing custom registers
  between GEMM tiles;
* **auto-increment offsets** let matrix-multiply instructions issue in a
  tight loop;
* **indexed DMA_IN** computes embedding-row addresses in hardware;
* **128-row SIMD accumulation** (up from 32) cuts the instructions needed
  for embedding pooling by 4x.
"""

from __future__ import annotations

import dataclasses
import math

from repro.arch.specs import IssueSpec
from repro.tensors.dtypes import DType
from repro.tensors.tensor import GemmShape


@dataclasses.dataclass(frozen=True)
class IssueEstimate:
    """Instruction count and issue time for one kernel invocation."""

    instructions: float
    issue_time_s: float


def gemm_issue(
    shape: GemmShape,
    issue: IssueSpec,
    dtype: DType,
    tile_m: int = 32,
    tile_n: int = 32,
    tile_k_bytes: int = 32,
    use_advanced_instructions: bool = True,
) -> IssueEstimate:
    """Instructions to drive a GEMM through the DPE on one PE.

    One custom instruction launches one (tile_m x tile_k x tile_n) tile
    pass; without multi-context/auto-increment each pass also needs
    register setup instructions (modelled by the amortization factor).
    """
    k_elements = max(1, tile_k_bytes // dtype.bytes)
    tiles = (
        math.ceil(shape.m / tile_m)
        * math.ceil(shape.k / k_elements)
        * math.ceil(shape.n / tile_n)
    )
    amortization = issue.multi_context_amortization if use_advanced_instructions else 1.0
    instructions = tiles / amortization + tiles * (0.0 if use_advanced_instructions else 3.0)
    return IssueEstimate(
        instructions=instructions,
        issue_time_s=instructions / issue.instructions_per_s,
    )


def tbe_issue(
    total_rows: int,
    issue: IssueSpec,
    use_advanced_instructions: bool = True,
) -> IssueEstimate:
    """Instructions to drive a Table Batched Embedding lookup on one PE.

    Each embedding row needs a DMA read and participates in a SIMD
    accumulation.  Indexed DMA_IN turns per-row address computation (an
    extra ~4 scalar instructions) into a single instruction; wide
    accumulation divides the SIMD instruction count by the supported row
    count (128 on MTIA 2i vs 32 on MTIA 1).
    """
    if total_rows < 0:
        raise ValueError("row count must be non-negative")
    indexed = issue.indexed_dma and use_advanced_instructions
    dma_instructions = total_rows * (1.0 if indexed else 5.0)
    accumulate_rows = issue.simd_accumulate_rows if use_advanced_instructions else 32
    simd_instructions = math.ceil(total_rows / accumulate_rows)
    # Unaligned rows need split transfers when hardware cannot handle them.
    if not issue.unaligned_access:
        dma_instructions *= 1.3
    instructions = dma_instructions + simd_instructions
    return IssueEstimate(
        instructions=instructions,
        issue_time_s=instructions / issue.instructions_per_s,
    )


def vector_kernel_issue(
    num_vector_ops: int, issue: IssueSpec, ops_per_instruction: float = 16.0
) -> IssueEstimate:
    """Instructions for a kernel run on the RISC-V vector extension.

    The vector core's 64 B registers process 32 FP16 elements per
    instruction; ``ops_per_instruction`` captures how much work each
    vector instruction performs.
    """
    if ops_per_instruction <= 0:
        raise ValueError("ops per instruction must be positive")
    instructions = num_vector_ops / ops_per_instruction
    return IssueEstimate(
        instructions=instructions,
        issue_time_s=instructions / issue.instructions_per_s,
    )


@dataclasses.dataclass(frozen=True)
class RiscvVectorConfig:
    """The RISC-V vector extension: 64-byte vector registers.

    Offers lower throughput than the SIMD Engine but full ISA generality —
    the escape hatch the paper used for jagged-tensor operators where
    data-level parallelism is limited (section 4.3).
    """

    vlen_bytes: int = 64
    frequency_hz: float = 1.35e9
    # Table 2: RISC-V vector core at 1.4 TOPS FP32 chip-wide => ~16
    # FP32 lanes per PE at 1.35 GHz.
    throughput_scale: float = 1.0

    def elements_per_s(self, dtype: DType) -> float:
        """Vector elements per second on one PE's vector core."""
        lanes = self.vlen_bytes // dtype.bytes
        return lanes * self.frequency_hz * self.throughput_scale
