"""Dot Product Engine (DPE) model.

Each PE's DPE contains two 32 x 32B x 32 MAC tiles (paper section 3.2),
together delivering 2.76 TFLOP/s per PE at FP16/BF16 (64 PEs x 2.76 ~= 177
TFLOP/s chip-wide, matching Table 2).  The first operand is cached inside
the engine; the second streams from Local Memory.  2:4 structured weight
sparsity doubles effective throughput.

The model computes tile-level utilization: shapes that do not fill the
32-wide MAC dimensions waste lanes, which is why small GEMMs run far from
peak even after the instruction-issue fixes.
"""

from __future__ import annotations

import dataclasses
import math

from repro.tensors.dtypes import DType
from repro.tensors.tensor import GemmShape


@dataclasses.dataclass(frozen=True)
class DpeConfig:
    """Geometry and rates of one PE's DPE."""

    mac_tiles: int = 2
    tile_rows: int = 32  # M dimension handled per tile pass
    tile_k_bytes: int = 32  # reduction bytes consumed per lane per cycle
    tile_cols: int = 32  # N dimension lanes
    frequency_hz: float = 1.35e9
    sparsity_supported: bool = True

    def macs_per_cycle(self, dtype: DType) -> int:
        """MACs per cycle across all tiles for a given input dtype.

        Each tile consumes ``tile_k_bytes`` of the reduction dimension per
        lane-row per cycle, so narrower dtypes pack more MACs: with two
        tiles, 2 x 32 x 16 = 1024 MACs/cycle at FP16 and 2048 at INT8 —
        at 1.35 GHz that is 2.76 TFLOP/s and 5.5 TOPS per PE, matching
        Table 2 when multiplied by 64 PEs.
        """
        k_elements = self.tile_k_bytes // dtype.bytes
        return self.mac_tiles * self.tile_rows * k_elements

    def peak_flops(self, dtype: DType) -> float:
        """Peak FLOP/s of one DPE for a dtype (2 FLOPs per MAC)."""
        return 2.0 * self.macs_per_cycle(dtype) * self.frequency_hz


def tile_utilization(shape: GemmShape, config: DpeConfig, dtype: DType) -> float:
    """Fraction of MAC lanes doing useful work for a GEMM shape.

    Each dimension is padded up to the tile geometry; utilization is the
    product of the fill fractions.  A 2048x2048x2048 GEMM fills every
    dimension; a 32x64x16 GEMM wastes half the N lanes.
    """
    k_elements = config.tile_k_bytes // dtype.bytes
    m_fill = shape.m / (math.ceil(shape.m / config.tile_rows) * config.tile_rows)
    k_fill = shape.k / (math.ceil(shape.k / k_elements) * k_elements)
    n_fill = shape.n / (math.ceil(shape.n / config.tile_cols) * config.tile_cols)
    return m_fill * k_fill * n_fill


def dpe_compute_time(
    shape: GemmShape,
    config: DpeConfig,
    dtype: DType,
    sparse: bool = False,
    pipeline_efficiency: float = 0.97,
) -> float:
    """Time for one DPE to execute a GEMM, compute-side only.

    ``pipeline_efficiency`` covers drain/fill bubbles between tile passes.
    Memory and instruction-issue constraints are composed by the kernel
    model, not here.
    """
    if not (0 < pipeline_efficiency <= 1):
        raise ValueError("pipeline efficiency must be in (0, 1]")
    if sparse and not config.sparsity_supported:
        raise ValueError("this DPE does not support 2:4 sparsity")
    util = tile_utilization(shape, config, dtype)
    peak = config.peak_flops(dtype) * (2.0 if sparse else 1.0)
    effective = peak * util * pipeline_efficiency
    return shape.flops / effective


def weight_cache_passes(shape: GemmShape, config: DpeConfig, dtype: DType,
                        cache_bytes: int = 64 * 1024) -> int:
    """How many times the streamed operand must be re-read because the
    cached operand does not fit in the DPE's input cache.

    MTIA 2i increased the DPE input caches to accommodate the 2x larger
    effective tile size (section 3.6); when the cached tile still does not
    cover K x tile_cols, the activation stream repeats.
    """
    tile_weight_bytes = shape.k * config.tile_cols * dtype.bytes
    return max(1, math.ceil(tile_weight_bytes / cache_bytes))
