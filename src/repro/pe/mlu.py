"""Memory Layout Unit (MLU) model.

The MLU performs layout transformations — transpose, concatenate, reshape
— directly on Local Memory data (paper section 3.2), sparing the compute
engines.  Section 6 replaces a Slice/Reshape/Concat operator sequence in
the MHA blocks with a single custom transpose on this unit.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class MluConfig:
    """Throughput of one PE's MLU."""

    bytes_per_cycle: int = 64
    frequency_hz: float = 1.35e9
    # Strided access patterns (transpose) run below streaming rate.
    transpose_efficiency: float = 0.6

    @property
    def streaming_bandwidth(self) -> float:
        """Peak streaming bytes/s for layout-preserving moves."""
        return self.bytes_per_cycle * self.frequency_hz


def reshape_time(num_bytes: int, config: MluConfig) -> float:
    """Reshape/concat are streaming copies at full MLU bandwidth."""
    if num_bytes < 0:
        raise ValueError("byte count must be non-negative")
    return num_bytes / config.streaming_bandwidth


def transpose_time(num_bytes: int, config: MluConfig) -> float:
    """Transpose pays the strided-access efficiency penalty."""
    if num_bytes < 0:
        raise ValueError("byte count must be non-negative")
    return num_bytes / (config.streaming_bandwidth * config.transpose_efficiency)


def fused_transpose_savings(num_bytes: int, num_fused_ops: int, config: MluConfig) -> float:
    """Time saved by fusing a Slice/Reshape/Concat chain into one transpose.

    The unfused chain streams the data once per operator; the fused kernel
    touches it once.  Returns the saved seconds.
    """
    if num_fused_ops < 1:
        raise ValueError("must fuse at least one op")
    unfused = num_fused_ops * reshape_time(num_bytes, config)
    fused = transpose_time(num_bytes, config)
    return max(0.0, unfused - fused)
