"""Processing Element engine models (paper section 3.2 and 3.3)."""

from repro.pe.command import (
    CircularBuffer,
    CircularBufferError,
    PipelineStage,
    pipeline_time,
    simulate_pipeline,
)
from repro.pe.dpe import (
    DpeConfig,
    dpe_compute_time,
    tile_utilization,
    weight_cache_passes,
)
from repro.pe.fi import DmaConfig, dma_time, overlapped_load_time
from repro.pe.mlu import MluConfig, fused_transpose_savings, reshape_time, transpose_time
from repro.pe.reduction import (
    ReductionConfig,
    accumulate_time,
    cross_pe_reduce_time,
    rowwise_minmax,
)
from repro.pe.riscv import (
    IssueEstimate,
    RiscvVectorConfig,
    gemm_issue,
    tbe_issue,
    vector_kernel_issue,
)
from repro.pe.simd import (
    LUT_FUNCTIONS,
    SimdConfig,
    elementwise_time,
    lut_approximation,
    lut_gather_time,
    mtia2i_simd_config,
)
from repro.pe.wqe import (
    LaunchTimeline,
    eager_launch_timeline,
    eager_viable,
    launch_reduction,
)

__all__ = [
    "CircularBuffer",
    "CircularBufferError",
    "DmaConfig",
    "DpeConfig",
    "IssueEstimate",
    "LUT_FUNCTIONS",
    "LaunchTimeline",
    "MluConfig",
    "PipelineStage",
    "ReductionConfig",
    "RiscvVectorConfig",
    "SimdConfig",
    "accumulate_time",
    "cross_pe_reduce_time",
    "dma_time",
    "dpe_compute_time",
    "eager_launch_timeline",
    "eager_viable",
    "elementwise_time",
    "fused_transpose_savings",
    "gemm_issue",
    "launch_reduction",
    "lut_approximation",
    "lut_gather_time",
    "mtia2i_simd_config",
    "overlapped_load_time",
    "pipeline_time",
    "reshape_time",
    "rowwise_minmax",
    "simulate_pipeline",
    "tbe_issue",
    "tile_utilization",
    "transpose_time",
    "vector_kernel_issue",
    "weight_cache_passes",
]
