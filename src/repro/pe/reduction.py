"""Reduction Engine (RE) model.

The RE accumulates matrix-multiplication partials as they are produced,
forwards results along a dedicated reduction network to the neighbouring
PE, or hands them to the SIMD Engine (paper section 3.2).  It is also the
hardware that makes dynamic INT8 quantization possible: it tracks per-row
min/max during accumulation so scaling factors are available the moment
the GEMM finishes (section 3.3).
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np


@dataclasses.dataclass(frozen=True)
class ReductionConfig:
    """Rates of the reduction network."""

    # Accumulator elements written per cycle.
    accumulate_lanes: int = 32
    # Bandwidth of the PE-to-PE reduction link, bytes/s.
    link_bandwidth: float = 128e9
    frequency_hz: float = 1.35e9
    tracks_minmax: bool = True  # MTIA 2i feature for dynamic quantization


def accumulate_time(num_elements: int, config: ReductionConfig) -> float:
    """Time to fold ``num_elements`` partials into the accumulator."""
    if num_elements < 0:
        raise ValueError("element count must be non-negative")
    return num_elements / (config.accumulate_lanes * config.frequency_hz)


def cross_pe_reduce_time(
    num_elements: int, element_bytes: int, num_pes: int, config: ReductionConfig
) -> float:
    """Time to reduce partials across a column of PEs.

    The dedicated network forms a systolic chain: each hop forwards the
    running sum, so total time is one traversal of the chain plus the
    streaming time of the vector.
    """
    if num_pes <= 0:
        raise ValueError("need at least one PE")
    stream = num_elements * element_bytes / config.link_bandwidth
    hops = max(0, num_pes - 1)
    hop_latency = 4.0 / config.frequency_hz  # a few cycles per hop
    return stream + hops * hop_latency


def rowwise_minmax(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row min and max, as the RE computes during accumulation.

    This is the concrete numeric primitive the dynamic-quantization stack
    builds on: scaling factors derive from these values with no extra pass
    over the data.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {matrix.shape}")
    if matrix.shape[0] == 0:
        return np.zeros(0), np.zeros(0)
    return matrix.min(axis=1), matrix.max(axis=1)
