"""SIMD Engine model.

The SIMD Engine performs vector operations — quantization, activation
functions, embedding-row accumulation — with floating-point ALUs fed from
the Reduction Engine or Local Memory, plus lookup tables (LUTs) for
approximating nonlinear functions (paper section 3.2).  Section 4.3
describes repurposing the LUT for piecewise gathers in HSTU's bias
computation.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict

import numpy as np

from repro.tensors.dtypes import DType

# Nonlinear functions with LUT approximation support.
LUT_FUNCTIONS = ("exp", "sigmoid", "tanh", "gelu", "rsqrt", "log", "reciprocal")


@dataclasses.dataclass(frozen=True)
class SimdConfig:
    """Throughput description of one PE's SIMD Engine."""

    # Elements processed per cycle per dtype (Table 2's SIMD Engine row:
    # 5.5 TOPS at every dtype => elements/cycle constant across widths).
    lanes: Dict[DType, int]
    frequency_hz: float = 1.35e9
    lut_entries: int = 1024
    lut_tables: int = 4

    def elements_per_s(self, dtype: DType) -> float:
        """Vector elements processed per second."""
        if dtype not in self.lanes:
            raise ValueError(f"SIMD engine does not support {dtype}")
        return self.lanes[dtype] * self.frequency_hz


def mtia2i_simd_config() -> SimdConfig:
    """MTIA 2i's SIMD Engine: 5.5 TOPS at INT8/FP16/BF16/FP32 per Table 2
    chip-wide; per-PE that is 5.5e12 / 64 ops/s => 64 lanes at 1.35 GHz."""
    lanes = {d: 64 for d in (DType.INT8, DType.FP16, DType.BF16, DType.FP32)}
    return SimdConfig(lanes=lanes)


def elementwise_time(
    num_elements: int, config: SimdConfig, dtype: DType, ops_per_element: float = 1.0
) -> float:
    """Time for an elementwise vector operation on one PE."""
    if num_elements < 0 or ops_per_element <= 0:
        raise ValueError("element count must be >= 0 and ops/element > 0")
    return num_elements * ops_per_element / config.elements_per_s(dtype)


def lut_gather_time(
    num_lookups: int, table_bytes: int, config: SimdConfig, dtype: DType
) -> float:
    """Time for a piecewise gather through the SIMD LUT (section 4.3).

    When the gather table exceeds the LUT capacity, the kernel loads it in
    segments and performs the gather piecewise; each segment reload costs
    a table-load pass over the lookups.
    """
    lut_capacity_bytes = config.lut_entries * config.lut_tables * dtype.bytes
    segments = max(1, math.ceil(table_bytes / lut_capacity_bytes))
    per_pass = elementwise_time(num_lookups, config, dtype, ops_per_element=1.0)
    reloads = elementwise_time(
        segments * config.lut_entries, config, dtype, ops_per_element=1.0
    )
    return segments * per_pass + reloads


def lut_approximation(function: str, x: np.ndarray, entries: int = 1024) -> np.ndarray:
    """A concrete piecewise-linear LUT approximation of a nonlinearity.

    Used by the quantization-quality analysis to model the numeric error a
    LUT-based activation introduces relative to exact math.  The domain is
    clamped to a fixed range as hardware LUTs are.
    """
    funcs = {
        "exp": np.exp,
        "sigmoid": lambda v: 1.0 / (1.0 + np.exp(-v)),
        "tanh": np.tanh,
        "gelu": lambda v: 0.5 * v * (1.0 + np.tanh(0.7978845608 * (v + 0.044715 * v**3))),
        "rsqrt": lambda v: 1.0 / np.sqrt(np.maximum(v, 1e-12)),
        "log": lambda v: np.log(np.maximum(v, 1e-12)),
        "reciprocal": lambda v: 1.0 / np.where(np.abs(v) < 1e-12, 1e-12, v),
    }
    if function not in funcs:
        raise ValueError(f"unknown LUT function {function!r}; supported: {LUT_FUNCTIONS}")
    exact = funcs[function]
    lo, hi = (1e-6, 16.0) if function in ("rsqrt", "log") else (-8.0, 8.0)
    grid = np.linspace(lo, hi, entries)
    table = exact(grid.astype(np.float64))
    clamped = np.clip(np.asarray(x, dtype=np.float64), lo, hi)
    return np.interp(clamped, grid, table)
