"""Command Processor (CP) and Circular Buffer model.

The CP orchestrates the fixed-function units: dependency checking,
scheduling, and tracking of custom instructions, plus arbitration of
Local Memory between the RISC-V cores and the engines.  It exposes a
hardware-managed Circular Buffer (CB) abstraction over Local Memory
(paper section 3.2): producers append tiles, consumers pop them, and the
CP tracks the dependencies so software never polls.

The CB here is a *functional* implementation — the dataflow pipeline
simulator uses it to verify that a kernel's producer/consumer schedule is
deadlock-free and to measure its steady-state occupancy.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Deque, List


class CircularBufferError(RuntimeError):
    """Raised on CB protocol violations (overflow/underflow)."""


class CircularBuffer:
    """A bounded FIFO of tiles in Local Memory, managed by the CP."""

    def __init__(self, name: str, num_slots: int, slot_bytes: int) -> None:
        if num_slots <= 0 or slot_bytes <= 0:
            raise ValueError("slots and slot size must be positive")
        self.name = name
        self.num_slots = num_slots
        self.slot_bytes = slot_bytes
        self._queue: Deque[object] = deque()
        self.max_occupancy = 0
        self.total_pushes = 0

    @property
    def occupancy(self) -> int:
        """Slots currently full."""
        return len(self._queue)

    @property
    def full(self) -> bool:
        """Whether a push would overflow."""
        return len(self._queue) >= self.num_slots

    @property
    def empty(self) -> bool:
        """Whether a pop would underflow."""
        return not self._queue

    @property
    def footprint_bytes(self) -> int:
        """Local Memory consumed by this CB."""
        return self.num_slots * self.slot_bytes

    def push(self, item: object) -> None:
        """Producer side: append a tile."""
        if self.full:
            raise CircularBufferError(f"CB {self.name!r} overflow")
        self._queue.append(item)
        self.total_pushes += 1
        self.max_occupancy = max(self.max_occupancy, len(self._queue))

    def pop(self) -> object:
        """Consumer side: remove the oldest tile."""
        if self.empty:
            raise CircularBufferError(f"CB {self.name!r} underflow")
        return self._queue.popleft()


@dataclasses.dataclass(frozen=True)
class PipelineStage:
    """One fixed-function unit in a coarse-grained PE pipeline."""

    name: str
    time_per_tile_s: float

    def __post_init__(self) -> None:
        if self.time_per_tile_s < 0:
            raise ValueError("stage time must be non-negative")


def pipeline_time(stages: List[PipelineStage], num_tiles: int) -> float:
    """Makespan of a linear dataflow pipeline over ``num_tiles`` tiles.

    Classic pipeline law: fill time (sum of stage times) plus steady-state
    time governed by the slowest stage.  This is the execution model of a
    PE's fixed-function units chained through circular buffers, which is
    why MTIA kernels approach the bottleneck engine's throughput once the
    pipeline is primed.
    """
    if num_tiles < 0:
        raise ValueError("tile count must be non-negative")
    if not stages or num_tiles == 0:
        return 0.0
    fill = sum(stage.time_per_tile_s for stage in stages)
    bottleneck = max(stage.time_per_tile_s for stage in stages)
    return fill + (num_tiles - 1) * bottleneck


def simulate_pipeline(
    stages: List[PipelineStage],
    num_tiles: int,
    cb_slots: int = 2,
    slot_bytes: int = 32 * 1024,
) -> float:
    """Makespan of a CB-connected pipeline with *finite* buffers.

    Unlike :func:`pipeline_time`, this honours the bounded circular
    buffers between stages: a fast producer stalls when the downstream CB
    is full (it may run at most ``cb_slots`` tiles ahead of its consumer),
    which is how undersized CBs serialize a kernel.

    Computed with the standard recurrence for a flow line with finite
    inter-stage buffers: tile ``t`` on stage ``s`` starts once (a) stage
    ``s`` finished tile ``t-1``, (b) stage ``s-1`` finished tile ``t``,
    and (c) stage ``s+1`` has finished tile ``t - cb_slots`` so a slot is
    free.
    """
    if num_tiles < 0 or cb_slots <= 0:
        raise ValueError("tile count must be >= 0 and cb_slots > 0")
    if num_tiles == 0 or not stages:
        return 0.0
    num_stages = len(stages)
    finish = [[0.0] * num_tiles for _ in range(num_stages)]
    for tile in range(num_tiles):
        for s in range(num_stages):
            prev_tile_done = finish[s][tile - 1] if tile else 0.0
            upstream_done = finish[s - 1][tile] if s else 0.0
            start = max(prev_tile_done, upstream_done)
            if s + 1 < num_stages and tile >= cb_slots:
                start = max(start, finish[s + 1][tile - cb_slots])
            finish[s][tile] = start + stages[s].time_per_tile_s
    return finish[-1][-1]
