"""Fabric Interface (FI) DMA model.

The FI moves data between a PE's Local Memory and the NoC (to shared SRAM
or off-chip memory).  MTIA 2i doubled the FI-to-NoC bandwidth over MTIA 1
(paper section 3.2) and added a DMA_IN prefetch mode that reads DRAM data
into SRAM ahead of the Local Memory load (section 3.3), hiding LPDDR
latency behind compute.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class DmaConfig:
    """One PE's FI characteristics."""

    bandwidth_bytes_per_s: float = 64e9  # FI-to-NoC, per PE
    setup_latency_s: float = 200e-9
    supports_prefetch: bool = True

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("DMA bandwidth must be positive")


def dma_time(num_bytes: float, config: DmaConfig, num_transfers: int = 1) -> float:
    """Time for one PE's FI to move ``num_bytes`` in ``num_transfers``
    descriptor-level transfers (each pays the setup latency)."""
    if num_bytes < 0 or num_transfers <= 0:
        raise ValueError("bytes must be >= 0 and transfers > 0")
    return num_transfers * config.setup_latency_s + num_bytes / config.bandwidth_bytes_per_s


def overlapped_load_time(
    compute_time_s: float,
    load_time_s: float,
    prefetch: bool,
    prefetch_efficiency: float = 0.95,
) -> float:
    """Combined time when a data load can (or cannot) hide behind compute.

    With prefetch, the load overlaps compute and only the non-hidden
    remainder is exposed; without it, the kernel serializes load then
    compute.  ``prefetch_efficiency`` reflects imperfect overlap at tile
    boundaries.
    """
    if compute_time_s < 0 or load_time_s < 0:
        raise ValueError("times must be non-negative")
    if not (0 < prefetch_efficiency <= 1):
        raise ValueError("prefetch efficiency must be in (0, 1]")
    if not prefetch:
        return compute_time_s + load_time_s
    hidden = min(load_time_s, compute_time_s * prefetch_efficiency)
    return compute_time_s + (load_time_s - hidden)
