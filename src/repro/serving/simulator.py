"""End-to-end serving simulation: traffic -> coalescing -> device schedule.

Combines the workload generator, the request coalescer, and the
remote/merge job scheduler, and answers the production question the
paper's serving work optimizes for: *how much throughput can one device
sustain while meeting the P99 latency SLO* (100 ms for the case-study
model)?
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.obs.metrics import MetricsRegistry, active
from repro.serving.batcher import CoalescingConfig, coalesce, coalescing_stats
from repro.serving.scheduler import ModelJobProfile, schedule_batches
from repro.serving.workload import poisson_stream

DEFAULT_P99_SLO_S = 0.100


@dataclasses.dataclass(frozen=True)
class ServingOutcome:
    """One simulated serving run."""

    offered_samples_per_s: float
    served_samples_per_s: float
    p50_latency_s: float
    p99_latency_s: float
    device_utilization: float
    mean_fill_fraction: float
    meets_slo: bool


def simulate_serving(
    profile: ModelJobProfile,
    coalescing: CoalescingConfig,
    request_rate_per_s: float,
    samples_per_request: int = 256,
    duration_s: float = 60.0,
    p99_slo_s: float = DEFAULT_P99_SLO_S,
    seed: int = 3,
    registry: Optional[MetricsRegistry] = None,
) -> ServingOutcome:
    """Simulate one device serving Poisson traffic.

    An attached registry is threaded through the coalescer and the job
    scheduler, and additionally receives the end-to-end view: a request
    latency histogram and the SLO-attainment fraction
    (``serving.simulator.*``).
    """
    obs = active(registry)
    requests = poisson_stream(
        rate_per_s=request_rate_per_s,
        duration_s=duration_s,
        samples_per_request=samples_per_request,
        seed=seed,
    )
    batches = coalesce(requests, coalescing, registry=registry)
    stats = coalescing_stats(batches, coalescing)
    result = schedule_batches(batches, profile, registry=registry)
    p99 = result.latency_percentile(99)
    if obs.enabled:
        latency = obs.histogram("serving.simulator.request_latency_s")
        latencies = result.request_latencies()
        within = 0
        for value in latencies:
            latency.observe(value)
            if value <= p99_slo_s:
                within += 1
        obs.gauge("serving.simulator.slo_attainment").set(
            within / len(latencies) if latencies else 1.0
        )
        obs.gauge("serving.simulator.mean_fill_fraction").set(
            stats.mean_fill_fraction
        )
    return ServingOutcome(
        offered_samples_per_s=sum(r.samples for r in requests) / duration_s,
        served_samples_per_s=result.throughput_samples_per_s,
        p50_latency_s=result.latency_percentile(50),
        p99_latency_s=p99,
        device_utilization=result.utilization,
        mean_fill_fraction=stats.mean_fill_fraction,
        meets_slo=p99 <= p99_slo_s,
    )


def max_throughput_under_slo(
    profile: ModelJobProfile,
    coalescing: CoalescingConfig,
    p99_slo_s: float = DEFAULT_P99_SLO_S,
    samples_per_request: int = 256,
    low_rate: float = 10.0,
    high_rate: float = 400.0,
    iterations: int = 8,
    duration_s: float = 40.0,
    seed: int = 3,
) -> ServingOutcome:
    """Binary-search the highest request rate whose P99 meets the SLO.

    This is the capacity figure production provisioning uses ('a model's
    throughput at its P99 latency SLO is highly sensitive to these
    parameters', section 4.1).
    """
    if low_rate <= 0 or high_rate <= low_rate:
        raise ValueError("need 0 < low_rate < high_rate")
    best: Optional[ServingOutcome] = None
    lo, hi = low_rate, high_rate
    for _ in range(iterations):
        mid = (lo + hi) / 2
        outcome = simulate_serving(
            profile,
            coalescing,
            request_rate_per_s=mid,
            samples_per_request=samples_per_request,
            duration_s=duration_s,
            p99_slo_s=p99_slo_s,
            seed=seed,
        )
        if outcome.meets_slo:
            best = outcome
            lo = mid
        else:
            hi = mid
    if best is None:
        best = simulate_serving(
            profile,
            coalescing,
            request_rate_per_s=low_rate,
            samples_per_request=samples_per_request,
            duration_s=duration_s,
            p99_slo_s=p99_slo_s,
            seed=seed,
        )
    return best
