"""Serving simulation: traffic, coalescing, device scheduling, SLOs."""

from repro.serving.batcher import (
    Batch,
    CoalescingConfig,
    CoalescingStats,
    coalesce,
    coalescing_stats,
)
from repro.serving.faults import (
    FaultImpact,
    PoolState,
    headroom_for_fault_tolerance,
    inject_device_faults,
    queueing_delay_factor,
)
from repro.serving.scheduler import (
    BatchCompletion,
    ModelJobProfile,
    ScheduleResult,
    schedule_batches,
)
from repro.serving.simulator import (
    DEFAULT_P99_SLO_S,
    ServingOutcome,
    max_throughput_under_slo,
    simulate_serving,
)
from repro.serving.workload import (
    DiurnalTrafficModel,
    Request,
    diurnal_load_curve,
    diurnal_poisson_stream,
    poisson_stream,
    replay_stream,
    with_priorities,
)

__all__ = [
    "Batch",
    "BatchCompletion",
    "CoalescingConfig",
    "CoalescingStats",
    "DEFAULT_P99_SLO_S",
    "FaultImpact",
    "ModelJobProfile",
    "PoolState",
    "Request",
    "ScheduleResult",
    "ServingOutcome",
    "DiurnalTrafficModel",
    "coalesce",
    "coalescing_stats",
    "diurnal_load_curve",
    "diurnal_poisson_stream",
    "headroom_for_fault_tolerance",
    "inject_device_faults",
    "max_throughput_under_slo",
    "queueing_delay_factor",
    "poisson_stream",
    "replay_stream",
    "schedule_batches",
    "simulate_serving",
    "with_priorities",
]
