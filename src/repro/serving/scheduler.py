"""Device job scheduling: remote/merge networks and TBE consolidation.

Paper section 6 (Figure 5): models are partitioned into remote (sparse)
and merge (dense) networks.  Each batched request runs its remote jobs
(one per TBE shard — weighted and unweighted TBEs were separate jobs)
and then a merge job consuming their outputs.  With FIFO job queues, a
following request's remote jobs can be scheduled ahead of the previous
request's merge job (remote-remote-merge-merge), inflating merge latency
and P99.  Consolidating the weighted and unweighted TBE instances into a
single job halves the remote-job count, improving interleaving and
cutting measured P99 from 99 ms to 86 ms — with identical PE-grid
execution times, the gains coming purely from scheduling.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from repro.fastsim.engine import EventEngine
from repro.fastsim.vectorize import sorted_percentile
from repro.obs.metrics import MetricsRegistry, active
from repro.serving.batcher import Batch


@dataclasses.dataclass(frozen=True)
class ModelJobProfile:
    """Execution times of one model's jobs on a device.

    ``dispatch_overhead_s`` is the serving-stack cost each job carries
    (host dispatch, completion round trip); ``merge_submission_delay_s``
    is the host round trip between the last remote finishing and the
    merge job entering the device queue — the gap that lets a following
    batch's remotes jump ahead (the remote-remote-merge-merge pattern).
    """

    remote_time_s: float  # one remote (TBE) job, PE-grid time
    merge_time_s: float
    remote_jobs_per_batch: int  # 2 when weighted/unweighted are separate
    dispatch_overhead_s: float = 0.5e-3
    merge_submission_delay_s: float = 0.5e-3

    def __post_init__(self) -> None:
        if self.remote_time_s < 0 or self.merge_time_s < 0:
            raise ValueError("job times must be non-negative")
        if self.remote_jobs_per_batch < 1:
            raise ValueError("need at least one remote job")
        if self.dispatch_overhead_s < 0 or self.merge_submission_delay_s < 0:
            raise ValueError("overheads must be non-negative")

    def consolidated(self) -> "ModelJobProfile":
        """The TBE-consolidation transform: half the remote jobs, with the
        *same total PE-grid time* (paper: 'the execution time of the
        merge and remote jobs ... remains the same in both cases, so the
        gains were realized higher in the serving stack').  What shrinks
        is the per-job serving-stack overhead and the number of
        scheduling slots a later batch can steal."""
        merged_jobs = max(1, self.remote_jobs_per_batch // 2)
        total_remote = self.remote_time_s * self.remote_jobs_per_batch
        return ModelJobProfile(
            remote_time_s=total_remote / merged_jobs,
            merge_time_s=self.merge_time_s,
            remote_jobs_per_batch=merged_jobs,
            dispatch_overhead_s=self.dispatch_overhead_s,
            merge_submission_delay_s=self.merge_submission_delay_s,
        )


@dataclasses.dataclass
class _Job:
    batch_index: int
    kind: str  # "remote" | "merge"
    duration_s: float
    enqueue_s: float
    remaining_deps: int = 0
    start_s: float = -1.0
    finish_s: float = -1.0


@dataclasses.dataclass(frozen=True)
class BatchCompletion:
    """Timing of one batch through the device."""

    batch: Batch
    remote_done_s: float
    merge_done_s: float

    @property
    def merge_latency_s(self) -> float:
        """Time from batch formation to merge completion."""
        return self.merge_done_s - self.batch.formed_at_s


@dataclasses.dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling a batch stream on one device."""

    completions: List[BatchCompletion]
    device_busy_s: float
    makespan_s: float

    @property
    def utilization(self) -> float:
        """Device busy fraction over the makespan."""
        return self.device_busy_s / self.makespan_s if self.makespan_s else 0.0

    def request_latencies(self) -> List[float]:
        """Per-request latency: arrival to merge completion."""
        return [
            completion.merge_done_s - request.arrival_s
            for completion in self.completions
            for request in completion.batch.requests
        ]

    def latency_percentile(self, percentile: float) -> float:
        """A latency percentile over requests (e.g. 99 for P99)."""
        latencies = np.sort(
            np.fromiter(
                (
                    completion.merge_done_s - request.arrival_s
                    for completion in self.completions
                    for request in completion.batch.requests
                ),
                dtype=np.float64,
            )
        )
        return sorted_percentile(latencies, percentile)

    @property
    def throughput_samples_per_s(self) -> float:
        """Served samples per second over the makespan."""
        samples = sum(c.batch.samples for c in self.completions)
        return samples / self.makespan_s if self.makespan_s else 0.0


def schedule_batches(
    batches: Sequence[Batch],
    profile: ModelJobProfile,
    registry: Optional[MetricsRegistry] = None,
    engine: str = "fast",
) -> ScheduleResult:
    """FIFO job scheduling of a batch stream on a single device.

    Jobs become runnable when enqueued and dependencies resolve; the
    device picks the runnable job with the earliest enqueue time.  Remote
    jobs enqueue at batch formation; the merge job enqueues with them but
    depends on all of its batch's remote jobs — so FIFO order interleaves
    a later batch's remotes ahead of an earlier batch's merge exactly as
    the paper's traces showed.

    ``engine="fast"`` (the default) runs a ready-heap port on the
    :class:`~repro.fastsim.engine.EventEngine` — O(n log n) instead of
    the legacy O(n^2) pending-list scan — and is byte-identical to
    ``engine="reference"`` (the original loop, kept verbatim in
    :mod:`repro.fastsim.reference`): the legacy dispatch rule picks the
    runnable job minimizing (current enqueue time, position in the
    initial (enqueue, remote-before-merge) stable sort), which is
    exactly the ready-heap key; busy time accumulates in the same
    dispatch order, so every float matches.

    An attached registry sees the runnable-queue depth at every dispatch
    plus job counts and final utilization (``serving.scheduler.*``).
    """
    if engine == "reference":
        from repro.fastsim.reference import schedule_batches_reference

        return schedule_batches_reference(batches, profile, registry)
    if engine != "fast":
        raise ValueError(f"unknown scheduler engine {engine!r}")
    obs = active(registry)
    observe_depth = obs.enabled
    runnable_depth = obs.histogram("serving.scheduler.runnable_depth")
    jobs: List[_Job] = []
    merge_jobs: List[_Job] = []
    remote_duration = profile.remote_time_s + profile.dispatch_overhead_s
    merge_duration = profile.merge_time_s + profile.dispatch_overhead_s
    remote_count = profile.remote_jobs_per_batch
    for index, batch in enumerate(batches):
        for _ in range(remote_count):
            jobs.append(
                _Job(
                    batch_index=index,
                    kind="remote",
                    duration_s=remote_duration,
                    enqueue_s=batch.formed_at_s,
                )
            )
        merge = _Job(
            batch_index=index,
            kind="merge",
            duration_s=merge_duration,
            enqueue_s=batch.formed_at_s,
            remaining_deps=remote_count,
        )
        jobs.append(merge)
        merge_jobs.append(merge)
    # The legacy tie-break: position in the stable (enqueue, remote-
    # before-merge) sort of the pending list.  Merges re-enqueue later
    # but keep their initial position as the tie rank.
    order = sorted(
        range(len(jobs)),
        key=lambda i: (jobs[i].enqueue_s, 0 if jobs[i].kind == "remote" else 1),
    )
    rank = [0] * len(jobs)
    for position, job_index in enumerate(order):
        rank[job_index] = position
    ready = EventEngine()
    for job_index, job in enumerate(jobs):
        if job.remaining_deps == 0:
            ready.schedule(job.enqueue_s, job, tiebreak=rank[job_index])
    time = 0.0
    busy = 0.0
    done = 0
    remote_done = [0.0] * len(merge_jobs)
    while ready:
        enqueue_s, _, job = ready.pop()
        if enqueue_s > time:
            time = enqueue_s
        if observe_depth:
            # The depth the legacy scan would have reported: every
            # ready job already enqueued at this dispatch instant,
            # including the one being dispatched.
            depth = 1 + ready.count_due(time)
            runnable_depth.observe(float(depth))
        job.start_s = time
        job.finish_s = time + job.duration_s
        busy += job.duration_s
        time = job.finish_s
        done += 1
        if job.kind == "remote":
            batch_index = job.batch_index
            if job.finish_s > remote_done[batch_index]:
                remote_done[batch_index] = job.finish_s
            merge = merge_jobs[batch_index]
            merge.remaining_deps -= 1
            if merge.remaining_deps == 0:
                # The merge is (re)submitted after a host round trip; its
                # new FIFO position is behind any remote already queued —
                # the crux of the remote-remote-merge-merge pattern.
                merge.enqueue_s = time + profile.merge_submission_delay_s
                ready.schedule(
                    merge.enqueue_s,
                    merge,
                    tiebreak=rank[(batch_index + 1) * (remote_count + 1) - 1],
                )
    if done < len(jobs):
        raise RuntimeError("scheduler deadlock: jobs with unresolved deps")
    completions = []
    for index, batch in enumerate(batches):
        completions.append(
            BatchCompletion(
                batch=batch,
                remote_done_s=remote_done[index],
                merge_done_s=merge_jobs[index].finish_s,
            )
        )
    makespan = max((j.finish_s for j in jobs), default=0.0)
    result = ScheduleResult(
        completions=completions, device_busy_s=busy, makespan_s=makespan
    )
    if obs.enabled:
        obs.counter("serving.scheduler.jobs_dispatched").inc(len(jobs))
        obs.gauge("serving.scheduler.utilization").set(result.utilization)
        obs.gauge("serving.scheduler.makespan_s").set(makespan)
    return result
