"""Serving traffic generation: Poisson, diurnal, and replay streams.

Production recommendation traffic is bursty Poisson arrival at short
timescales riding a diurnal curve at long timescales.  The coalescing
tuner uses the short-timescale generator; the power-provisioning and
utilization studies use the diurnal one.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

import numpy as np


@dataclasses.dataclass(frozen=True)
class Request:
    """One inference request: arrival time and candidate count."""

    arrival_s: float
    samples: int
    request_id: int = 0

    def __post_init__(self) -> None:
        if self.samples <= 0:
            raise ValueError("request must carry at least one sample")
        if self.arrival_s < 0:
            raise ValueError("arrival time must be non-negative")


def poisson_stream(
    rate_per_s: float,
    duration_s: float,
    samples_per_request: int = 64,
    samples_jitter: float = 0.3,
    seed: int = 0,
) -> List[Request]:
    """Poisson arrivals with log-normal candidate-count jitter."""
    if rate_per_s <= 0 or duration_s <= 0:
        raise ValueError("rate and duration must be positive")
    rng = np.random.default_rng(seed)
    arrivals = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / rate_per_s)
        if t >= duration_s:
            break
        arrivals.append(t)
    sizes = np.maximum(
        1,
        np.round(
            samples_per_request * rng.lognormal(0, samples_jitter, size=len(arrivals))
        ).astype(int),
    )
    return [
        Request(arrival_s=float(t), samples=int(s), request_id=i)
        for i, (t, s) in enumerate(zip(arrivals, sizes))
    ]


def diurnal_load_curve(
    mean_rate_per_s: float,
    peak_to_mean: float = 2.2,
    num_points: int = 288,
    noise: float = 0.05,
    seed: int = 0,
) -> np.ndarray:
    """A day of 5-minute load samples with a sinusoidal diurnal swing."""
    if mean_rate_per_s <= 0 or peak_to_mean < 1:
        raise ValueError("invalid load-curve parameters")
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 2 * np.pi, num_points)
    amplitude = peak_to_mean - 1.0
    raw = np.maximum(1.0 + amplitude * np.sin(t - np.pi / 2), 0.05)
    # Renormalize so the mean is exact; clipping skews it otherwise.
    raw = raw * (peak_to_mean / raw.max())  # peak = peak_to_mean exactly
    raw = raw / raw.mean()
    curve = mean_rate_per_s * raw * rng.lognormal(0, noise, size=num_points)
    return np.maximum(curve, 0.0)


def replay_stream(
    inter_arrival_s: Sequence[float], samples: Sequence[int]
) -> List[Request]:
    """Build a request stream from recorded inter-arrival gaps — the
    'traffic-replay tests' of section 4.1."""
    if len(inter_arrival_s) != len(samples):
        raise ValueError("gap and size traces must align")
    requests = []
    t = 0.0
    for i, (gap, size) in enumerate(zip(inter_arrival_s, samples)):
        if gap < 0:
            raise ValueError("inter-arrival gaps must be non-negative")
        t += gap
        requests.append(Request(arrival_s=t, samples=int(size), request_id=i))
    return requests
