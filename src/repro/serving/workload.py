"""Serving traffic generation: Poisson, diurnal, and replay streams.

Production recommendation traffic is bursty Poisson arrival at short
timescales riding a diurnal curve at long timescales.  The coalescing
tuner uses the short-timescale generator; the power-provisioning and
utilization studies use the diurnal one.
"""

from __future__ import annotations

import bisect
import dataclasses
import math
from typing import List, Sequence

import numpy as np

from repro.fastsim.vectorize import seeded_poisson_arrivals


@dataclasses.dataclass(frozen=True)
class Request:
    """One inference request: arrival time and candidate count.

    ``priority`` feeds the chaos tier's brownout admission (higher =
    more important); the default 0 keeps every pre-chaos stream below
    any raised admission floor's exemption and leaves existing behaviour
    untouched.
    """

    arrival_s: float
    samples: int
    request_id: int = 0
    priority: int = 0

    def __post_init__(self) -> None:
        if self.samples <= 0:
            raise ValueError("request must carry at least one sample")
        if self.arrival_s < 0:
            raise ValueError("arrival time must be non-negative")
        if self.priority < 0:
            raise ValueError("priority must be non-negative")


def with_priorities(
    requests: Sequence["Request"],
    weights: Sequence[float],
    seed: int = 0,
) -> List["Request"]:
    """Assign priority tiers to a stream by seeded weighted draw.

    ``weights[p]`` is the relative frequency of priority ``p`` — e.g.
    ``(0.2, 0.5, 0.3)`` makes 20% of traffic priority 0 (best-effort),
    50% priority 1, 30% priority 2 (critical).  The draw is seeded and
    independent of the arrival process, so re-prioritizing a stream
    never perturbs its timing.
    """
    if not weights or any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative and non-empty")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("at least one weight must be positive")
    rng = np.random.default_rng(seed)
    priorities = rng.choice(
        len(weights), size=len(requests), p=[w / total for w in weights]
    )
    return [
        dataclasses.replace(request, priority=int(priority))
        for request, priority in zip(requests, priorities)
    ]


def poisson_stream(
    rate_per_s: float,
    duration_s: float,
    samples_per_request: int = 64,
    samples_jitter: float = 0.3,
    seed: int = 0,
) -> List[Request]:
    """Poisson arrivals with log-normal candidate-count jitter.

    Arrival times come from the vectorized
    :func:`repro.fastsim.vectorize.seeded_poisson_arrivals`, which is
    byte-identical (values and generator state) to the scalar
    ``t += rng.exponential(1/rate)`` loop this replaced.
    """
    if rate_per_s <= 0 or duration_s <= 0:
        raise ValueError("rate and duration must be positive")
    rng = np.random.default_rng(seed)
    arrivals = seeded_poisson_arrivals(rng, rate_per_s, duration_s)
    sizes = np.maximum(
        1,
        np.round(
            samples_per_request * rng.lognormal(0, samples_jitter, size=len(arrivals))
        ).astype(int),
    )
    return [
        Request(arrival_s=float(t), samples=int(s), request_id=i)
        for i, (t, s) in enumerate(zip(arrivals, sizes))
    ]


def diurnal_load_curve(
    mean_rate_per_s: float,
    peak_to_mean: float = 2.2,
    num_points: int = 288,
    noise: float = 0.05,
    seed: int = 0,
) -> np.ndarray:
    """A day of 5-minute load samples with a sinusoidal diurnal swing."""
    if mean_rate_per_s <= 0 or peak_to_mean < 1:
        raise ValueError("invalid load-curve parameters")
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 2 * np.pi, num_points)
    amplitude = peak_to_mean - 1.0
    raw = np.maximum(1.0 + amplitude * np.sin(t - np.pi / 2), 0.05)
    # Renormalize so the mean is exact; clipping skews it otherwise.
    raw = raw * (peak_to_mean / raw.max())  # peak = peak_to_mean exactly
    raw = raw / raw.mean()
    curve = mean_rate_per_s * raw * rng.lognormal(0, noise, size=num_points)
    return np.maximum(curve, 0.0)


@dataclasses.dataclass(frozen=True)
class DiurnalTrafficModel:
    """The long-timescale traffic shape: a sinusoidal day.

    ``rate_at`` is the *expected* arrival rate at wall time ``t`` — the
    deterministic curve both the bursty stream generator below and the
    cluster tier's predictive autoscaler share, so a forecast made from
    the model is consistent with the traffic actually generated from it.
    """

    mean_rate_per_s: float
    peak_to_mean: float = 2.2
    day_length_s: float = 86_400.0
    phase_s: float = 0.0  # where in the day t=0 lands (0 = trough side)
    floor_fraction: float = 0.05  # overnight trough never quite hits zero
    # Timezone phase offset in *hours of the diurnal cycle* — a region 8
    # timezones east peaks 8/24 of a day earlier, whatever ``day_length_s``
    # compresses the day to.  The fleet tier threads one model per region
    # through this field; ``phase_h=0`` leaves every rate byte-identical
    # to the pre-fleet behaviour.
    phase_h: float = 0.0

    def __post_init__(self) -> None:
        if self.mean_rate_per_s <= 0 or self.day_length_s <= 0:
            raise ValueError("mean rate and day length must be positive")
        if self.peak_to_mean < 1:
            raise ValueError("peak-to-mean must be at least 1")
        if not (0 <= self.floor_fraction <= 1):
            raise ValueError("floor fraction must be in [0, 1]")

    def rate_at(self, t_s: float) -> float:
        """Expected arrival rate (requests/s) at wall time ``t_s``."""
        angle = 2.0 * math.pi * (t_s + self.phase_s) / self.day_length_s
        if self.phase_h:
            # Hours map onto the (possibly compressed) day: guarded so a
            # zero offset leaves the float math exactly as it was.
            angle += 2.0 * math.pi * self.phase_h / 24.0
        amplitude = self.peak_to_mean - 1.0
        raw = 1.0 + amplitude * math.sin(angle - math.pi / 2.0)
        return self.mean_rate_per_s * max(raw, self.floor_fraction)

    @property
    def peak_rate_per_s(self) -> float:
        """The daily-peak expected rate."""
        return self.mean_rate_per_s * self.peak_to_mean

    def shifted(self, phase_h: float) -> "DiurnalTrafficModel":
        """This curve moved ``phase_h`` hours east (peak earlier)."""
        return dataclasses.replace(self, phase_h=self.phase_h + phase_h)

    def scaled(self, factor: float) -> "DiurnalTrafficModel":
        """This curve at ``factor`` times the traffic (per-region share)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return dataclasses.replace(
            self, mean_rate_per_s=self.mean_rate_per_s * factor
        )


def diurnal_poisson_stream(
    model: DiurnalTrafficModel,
    duration_s: float,
    samples_per_request: int = 64,
    samples_jitter: float = 0.3,
    burst_rate_per_hour: float = 0.0,
    burst_factor: float = 3.0,
    burst_duration_s: float = 30.0,
    seed: int = 0,
) -> List[Request]:
    """Seeded diurnal + bursty arrivals (sinusoid-modulated Poisson).

    A non-homogeneous Poisson process whose intensity is the diurnal
    curve, multiplied by ``burst_factor`` inside burst episodes — short
    flash-crowd windows themselves arriving as a Poisson process at
    ``burst_rate_per_hour``.  Sampling is Lewis-Shedler thinning against
    the peak intensity, with all randomness drawn from one seeded
    generator in a fixed order (episodes, then arrivals, then sizes), so
    the stream is a pure function of the seed.
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    if burst_rate_per_hour < 0 or burst_duration_s < 0:
        raise ValueError("burst rate and duration must be non-negative")
    if burst_factor < 1:
        raise ValueError("burst factor must be at least 1")
    rng = np.random.default_rng(seed)
    episodes: List[float] = []
    if burst_rate_per_hour > 0:
        episode_rate = burst_rate_per_hour / 3600.0
        t = 0.0
        while True:
            t += rng.exponential(1.0 / episode_rate)
            if t >= duration_s:
                break
            episodes.append(t)

    def in_burst(t: float) -> bool:
        index = bisect.bisect_right(episodes, t) - 1
        return index >= 0 and t < episodes[index] + burst_duration_s

    lam_max = model.peak_rate_per_s * (burst_factor if episodes else 1.0)
    arrivals: List[float] = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / lam_max)
        if t >= duration_s:
            break
        rate = model.rate_at(t) * (burst_factor if in_burst(t) else 1.0)
        if rng.random() * lam_max <= rate:
            arrivals.append(t)
    sizes = np.maximum(
        1,
        np.round(
            samples_per_request * rng.lognormal(0, samples_jitter, size=len(arrivals))
        ).astype(int),
    )
    return [
        Request(arrival_s=float(t), samples=int(s), request_id=i)
        for i, (t, s) in enumerate(zip(arrivals, sizes))
    ]


def replay_stream(
    inter_arrival_s: Sequence[float], samples: Sequence[int]
) -> List[Request]:
    """Build a request stream from recorded inter-arrival gaps — the
    'traffic-replay tests' of section 4.1."""
    if len(inter_arrival_s) != len(samples):
        raise ValueError("gap and size traces must align")
    requests = []
    t = 0.0
    for i, (gap, size) in enumerate(zip(inter_arrival_s, samples)):
        if gap < 0:
            raise ValueError("inter-arrival gaps must be non-negative")
        t += gap
        requests.append(Request(arrival_s=t, samples=int(size), request_id=i))
    return requests
