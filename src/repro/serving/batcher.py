"""Request coalescing into batches (paper section 4.1).

"To autotune request coalescing, we run experiments to identify the
optimal time window for coalescing requests and the number of windows
that can be supported in parallel.  ...  With effective autotuning, we
typically achieve >95% requests per batch" — i.e. batches leave nearly
full.

A window opens when a request arrives, admits requests until its time
budget expires or the batch fills, then emits a batch.  At most
``max_parallel_windows`` windows form concurrently; excess requests wait,
which is how an undersized window count inflates tail latency.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry, active
from repro.serving.workload import Request


@dataclasses.dataclass(frozen=True)
class CoalescingConfig:
    """The two knobs the paper autotunes, plus the batch capacity."""

    window_s: float
    max_parallel_windows: int
    max_batch_samples: int

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError("window must be positive")
        if self.max_parallel_windows <= 0 or self.max_batch_samples <= 0:
            raise ValueError("window count and batch capacity must be positive")


@dataclasses.dataclass
class Batch:
    """A formed batch ready for device execution."""

    requests: List[Request]
    formed_at_s: float

    @property
    def samples(self) -> int:
        """Total samples across coalesced requests."""
        return sum(r.samples for r in self.requests)

    @property
    def oldest_arrival_s(self) -> float:
        """Arrival of the earliest request (queueing starts here)."""
        return min(r.arrival_s for r in self.requests)


@dataclasses.dataclass
class _Window:
    opened_at: float
    requests: List[Request]
    samples: int


def coalesce(
    requests: Sequence[Request],
    config: CoalescingConfig,
    registry: Optional[MetricsRegistry] = None,
) -> List[Batch]:
    """Form batches from an arrival-ordered request stream.

    With a :class:`~repro.obs.metrics.MetricsRegistry` attached, the
    coalescer reports wait-queue depth per arrival plus batch fill,
    per-request wait, and emit counts (``serving.batcher.*``); the
    formed batches are identical either way.
    """
    obs = active(registry)
    queue_depth = obs.histogram("serving.batcher.wait_queue_depth")
    ordered = sorted(requests, key=lambda r: r.arrival_s)
    open_windows: List[_Window] = []
    batches: List[Batch] = []
    waiting: List[Request] = []

    def close_expired(now: float) -> None:
        still_open = []
        for window in open_windows:
            if window.opened_at + config.window_s <= now:
                batches.append(
                    Batch(requests=window.requests, formed_at_s=window.opened_at + config.window_s)
                )
            else:
                still_open.append(window)
        open_windows[:] = still_open

    def admit(request: Request, now: float) -> bool:
        for window in open_windows:
            if window.samples + request.samples <= config.max_batch_samples:
                window.requests.append(request)
                window.samples += request.samples
                if window.samples >= config.max_batch_samples * 0.98:
                    open_windows.remove(window)
                    batches.append(Batch(requests=window.requests, formed_at_s=now))
                return True
        if len(open_windows) < config.max_parallel_windows:
            open_windows.append(
                _Window(opened_at=now, requests=[request], samples=request.samples)
            )
            return True
        return False

    for request in ordered:
        now = request.arrival_s
        queue_depth.observe(float(len(waiting)))
        close_expired(now)
        # Waiting requests re-try as windows free up.
        still_waiting = []
        for queued in waiting:
            if not admit(queued, now):
                still_waiting.append(queued)
        waiting = still_waiting
        if not admit(request, now):
            waiting.append(request)
    # Drain: close remaining windows and flush the wait queue.
    final_time = ordered[-1].arrival_s + config.window_s if ordered else 0.0
    close_expired(final_time + config.window_s)
    for queued in waiting:
        batches.append(Batch(requests=[queued], formed_at_s=final_time))
    batches = sorted(batches, key=lambda b: b.formed_at_s)
    if obs.enabled:
        fill = obs.histogram("serving.batcher.batch_fill")
        wait = obs.histogram("serving.batcher.request_wait_s")
        for batch in batches:
            fill.observe(min(1.0, batch.samples / config.max_batch_samples))
            for member in batch.requests:
                wait.observe(batch.formed_at_s - member.arrival_s)
        obs.counter("serving.batcher.requests_coalesced").inc(len(ordered))
        obs.counter("serving.batcher.batches_emitted").inc(len(batches))
    return batches


@dataclasses.dataclass(frozen=True)
class CoalescingStats:
    """Batch-formation quality metrics."""

    num_batches: int
    mean_requests_per_batch: float
    mean_fill_fraction: float  # samples / capacity
    mean_wait_s: float
    max_wait_s: float


def coalescing_stats(batches: Sequence[Batch], config: CoalescingConfig) -> CoalescingStats:
    """Summarize a batch stream (fill fraction is the paper's 'requests
    per batch' quality measure)."""
    if not batches:
        return CoalescingStats(0, 0.0, 0.0, 0.0, 0.0)
    waits = [
        batch.formed_at_s - request.arrival_s
        for batch in batches
        for request in batch.requests
    ]
    fills = [min(1.0, b.samples / config.max_batch_samples) for b in batches]
    return CoalescingStats(
        num_batches=len(batches),
        mean_requests_per_batch=sum(len(b.requests) for b in batches) / len(batches),
        mean_fill_fraction=sum(fills) / len(fills),
        mean_wait_s=sum(waits) / len(waits) if waits else 0.0,
        max_wait_s=max(waits) if waits else 0.0,
    )
