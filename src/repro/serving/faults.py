"""Serving-level fault injection: devices dropping out of a pool.

The section 5.5 deadlock manifests as a device losing PCIe connectivity
— from the serving tier's perspective, a replica silently vanishing.
This module quantifies what a device-fault rate does to a serving pool:
the surviving replicas absorb the load, queueing amplifies latency as
utilization climbs, and past the headroom the pool violates its SLO.
It is the arithmetic behind treating a 0.1% fleet incidence as urgent
enough for an emergency firmware rollout.

The model is an M/M/c-style approximation: each device is a server with
exponential-ish service; we use the square-root staffing heuristics that
capacity teams actually apply rather than a full queueing simulation.
"""

from __future__ import annotations

import dataclasses
import math


@dataclasses.dataclass(frozen=True)
class PoolState:
    """A serving pool before/after faults."""

    devices: int
    device_throughput: float  # samples/s each
    offered_load: float  # samples/s

    def __post_init__(self) -> None:
        if self.devices <= 0 or self.device_throughput <= 0:
            raise ValueError("pool must have capacity")
        if self.offered_load < 0:
            raise ValueError("load must be non-negative")

    @property
    def utilization(self) -> float:
        """Offered load over pool capacity."""
        return self.offered_load / (self.devices * self.device_throughput)

    @property
    def overloaded(self) -> bool:
        """Whether the pool cannot serve the offered load at all."""
        return self.utilization >= 1.0


def queueing_delay_factor(utilization: float) -> float:
    """Relative queueing delay at a given utilization (M/M/1-style
    1/(1-rho) growth, capped for reporting)."""
    if utilization < 0:
        raise ValueError("utilization must be non-negative")
    if utilization >= 1.0:
        return math.inf
    return 1.0 / (1.0 - utilization)


@dataclasses.dataclass(frozen=True)
class FaultImpact:
    """Effect of a device-fault rate on a pool."""

    before: PoolState
    after: PoolState
    fault_rate: float

    @property
    def devices_lost(self) -> int:
        """Replicas removed by the faults."""
        return self.before.devices - self.after.devices

    @property
    def latency_amplification(self) -> float:
        """Queueing-delay growth caused by the faults."""
        base = queueing_delay_factor(self.before.utilization)
        faulted = queueing_delay_factor(self.after.utilization)
        return faulted / base if base else math.inf

    @property
    def slo_at_risk(self) -> bool:
        """Whether the pool's tail latency is meaningfully degraded
        (queueing delay more than ~1.5x) or the pool is overloaded."""
        return self.after.overloaded or self.latency_amplification > 1.5


def inject_device_faults(pool: PoolState, fault_rate: float) -> FaultImpact:
    """Remove ``fault_rate`` of the pool's devices (rounded up: a single
    wedged device still matters in a small pool) and re-evaluate."""
    if not (0.0 <= fault_rate < 1.0):
        raise ValueError("fault rate must be in [0, 1)")
    lost = math.ceil(pool.devices * fault_rate) if fault_rate > 0 else 0
    lost = min(lost, pool.devices - 1)
    after = dataclasses.replace(pool, devices=pool.devices - lost)
    return FaultImpact(before=pool, after=after, fault_rate=fault_rate)


def headroom_for_fault_tolerance(
    pool: PoolState, fault_rate: float, max_delay_factor: float = 1.5
) -> int:
    """Extra devices needed so the pool still meets its delay budget when
    ``fault_rate`` of devices are down — the buffer capacity sizing the
    paper's section 5.4 discussion alludes to.

    Solved in closed form.  A provisioned pool of ``T`` devices keeps
    ``T - ceil(T * fault_rate) = floor(T * (1 - fault_rate))`` survivors
    (the rounding of :func:`inject_device_faults`), so the delay budget
    needs ``floor(T * (1 - fault_rate)) >= ceil(load / (throughput *
    target_utilization))``, i.e. ``T >= survivors_needed / (1 -
    fault_rate)``.  The one-step adjustment below absorbs floating-point
    boundary cases so the result matches the exhaustive search exactly.
    """
    if max_delay_factor <= 1.0:
        raise ValueError("delay budget must exceed 1")
    if not (0.0 <= fault_rate < 1.0):
        raise ValueError("fault rate must be in [0, 1)")
    target_utilization = 1.0 - 1.0 / max_delay_factor

    def satisfies(total_devices: int) -> bool:
        candidate = dataclasses.replace(pool, devices=total_devices)
        impact = inject_device_faults(candidate, fault_rate)
        return (
            not impact.after.overloaded
            and impact.after.utilization <= target_utilization
        )

    capacity_target = pool.device_throughput * target_utilization
    survivors_needed = max(1, math.ceil(pool.offered_load / capacity_target))
    total = max(pool.devices, math.ceil(survivors_needed / (1.0 - fault_rate)))
    # Float rounding can land one device high or low of the true minimum;
    # nudge onto the boundary using the same predicate the search used.
    while not satisfies(total):
        total += 1
    while total > pool.devices and satisfies(total - 1):
        total -= 1
    return total - pool.devices
