"""The autotuning orchestrator (paper section 4.1, 'Summary').

Runs the individual tuners in the order production uses: sharding (a
capacity constraint), batch size and data placement (they interact),
then FC kernel variants.  The result is everything needed to deploy a
model: shard count, batch, SRAM partition, and a kernel-variant table.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, Optional

from repro.arch.specs import ChipSpec
from repro.obs.metrics import MetricsRegistry, active
from repro.autotune.batch import BatchTuningResult, tune_batch_size
from repro.autotune.kernel_tuner import (
    PerformanceDatabase,
    TuningResult,
    ann_tune,
    exhaustive_tune,
    surrogate_tune,
)
from repro.fastsim.memo import KernelLatencyMemo
from repro.autotune.placement import PlacementDecision, tune_placement
from repro.autotune.sharding import ShardPlan, plan_sharding
from repro.graph.graph import OpGraph
from repro.graph.ops import OpType
from repro.kernels.gemm import GemmVariant
from repro.tensors.tensor import GemmShape


@dataclasses.dataclass
class AutotuneResult:
    """A deployable configuration for one model on one chip."""

    model_name: str
    shard_plan: ShardPlan
    batch_result: BatchTuningResult
    placement: PlacementDecision
    kernel_variants: Dict[str, TuningResult]  # FC op name -> variant

    @property
    def batch(self) -> int:
        """The tuned batch size."""
        return self.placement.batch

    def variant_for(self, op_name: str) -> Optional[GemmVariant]:
        """The tuned kernel variant for an FC op, if any."""
        result = self.kernel_variants.get(op_name)
        return result.variant if result else None


def _iter_fc_ops(graph: OpGraph):
    """Yield every FC op, including those inside fused kernels."""
    for op in graph.ops:
        if op.op_type is OpType.FC:
            yield op
        elif op.op_type is OpType.FUSED:
            for sub in op.attrs.get("sub_ops", []):
                if sub.op_type is OpType.FC:
                    yield sub


def autotune_model(
    build_graph: Callable[[int], OpGraph],
    chip: ChipSpec,
    latency_slo_s: float = 0.100,
    kernel_database: Optional[PerformanceDatabase] = None,
    model_name: str = "model",
    registry: Optional[MetricsRegistry] = None,
    use_surrogate: bool = False,
    surrogate=None,
    surrogate_top_k: int = 16,
) -> AutotuneResult:
    """Full autotuning pass for one model.

    ``kernel_database`` enables the fast ANN path for FC tuning; without
    it every distinct shape is tuned exhaustively (and a database is
    built as a side effect for subsequent models).

    ``use_surrogate=True`` (with a fitted
    :class:`~repro.surrogate.model.GemmSurrogate`) replaces both kernel
    search paths with verified surrogate tuning: the surrogate ranks
    the variant catalog, the exact cost model re-measures the predicted
    top ``surrogate_top_k``, and every deployed variant's
    ``kernel_time_s`` is an exact evaluation.  Off by default and
    byte-identical when off.

    An attached registry records the pass's shape: kernel measurements
    spent (exhaustive vs ANN vs verified-surrogate), FC ops covered,
    and per-stage wall time (``autotune.tuner.*``).
    """
    if use_surrogate and surrogate is None:
        raise ValueError("use_surrogate=True needs a fitted surrogate")
    obs = active(registry)
    started = time.perf_counter() if obs.enabled else 0.0
    probe_graph = build_graph(512)
    shard_plan = plan_sharding(probe_graph, chip)

    batch_result = tune_batch_size(build_graph, chip, latency_slo_s=latency_slo_s)
    placement = tune_placement(build_graph, batch_result.best.batch, chip)
    if obs.enabled:
        obs.histogram("autotune.tuner.stage_s").observe(
            time.perf_counter() - started
        )
        started = time.perf_counter()

    database = kernel_database if kernel_database is not None else PerformanceDatabase()
    memo = KernelLatencyMemo(chip)  # one latency table per tuning pass
    final_graph = build_graph(placement.batch)
    variants: Dict[str, TuningResult] = {}
    seen_shapes: Dict[GemmShape, TuningResult] = {}
    fc_ops = obs.counter("autotune.tuner.fc_ops_tuned")
    measurements = obs.counter("autotune.tuner.kernel_measurements")
    ann_hits = obs.counter("autotune.tuner.ann_lookups")
    for op in _iter_fc_ops(final_graph):
        fc_ops.inc()
        shape = op.attrs["gemm"]
        if shape in seen_shapes:
            variants[op.name] = seen_shapes[shape]
            continue
        if use_surrogate:
            result = surrogate_tune(
                shape, chip, surrogate, top_k=surrogate_top_k,
                memo=memo, registry=registry,
            )
            database.add(result)
        elif len(database):
            result = ann_tune(shape, chip, database, memo=memo)
            ann_hits.inc()
        else:
            result = exhaustive_tune(shape, chip, memo=memo)
            database.add(result)
        measurements.inc(result.evaluations)
        seen_shapes[shape] = result
        variants[op.name] = result
    if obs.enabled:
        obs.histogram("autotune.tuner.stage_s").observe(
            time.perf_counter() - started
        )
    return AutotuneResult(
        model_name=model_name,
        shard_plan=shard_plan,
        batch_result=batch_result,
        placement=placement,
        kernel_variants=variants,
    )
