"""Batch-size autotuning with traffic replay (paper section 4.1).

"To autotune a model's batch size, we build multiple snapshots of the
model with different batch sizes and select the best performing one
using traffic-replay tests."  The replay here scores each snapshot by
throughput subject to the serving latency SLO.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence

from repro.arch.specs import ChipSpec
from repro.graph.graph import OpGraph
from repro.perf.executor import Executor

DEFAULT_BATCH_CANDIDATES = (128, 256, 512, 1024, 2048, 4096)


@dataclasses.dataclass(frozen=True)
class BatchCandidate:
    """One snapshot's replay outcome."""

    batch: int
    latency_s: float
    throughput: float
    meets_slo: bool


@dataclasses.dataclass(frozen=True)
class BatchTuningResult:
    """The winning batch plus the full sweep for inspection."""

    best: BatchCandidate
    candidates: List[BatchCandidate]


def tune_batch_size(
    build_graph: Callable[[int], OpGraph],
    chip: ChipSpec,
    latency_slo_s: float = 0.100,
    candidates: Sequence[int] = DEFAULT_BATCH_CANDIDATES,
    executor: Optional[Executor] = None,
) -> BatchTuningResult:
    """Replay model snapshots at each batch size and pick the winner.

    The winner is the highest-throughput snapshot whose batch latency
    leaves room for queueing under the P99 SLO (batch latency below half
    the SLO, the standard rule of thumb the serving simulator validates).
    If none qualifies, the lowest-latency snapshot wins.
    """
    if latency_slo_s <= 0:
        raise ValueError("SLO must be positive")
    executor = executor or Executor(chip)
    results: List[BatchCandidate] = []
    for batch in candidates:
        graph = build_graph(batch)
        report = executor.run(graph, batch)
        results.append(
            BatchCandidate(
                batch=batch,
                latency_s=report.latency_s,
                throughput=report.throughput_samples_per_s,
                meets_slo=report.latency_s <= latency_slo_s / 2,
            )
        )
    eligible = [c for c in results if c.meets_slo]
    if eligible:
        best = max(eligible, key=lambda c: c.throughput)
    else:
        best = min(results, key=lambda c: c.latency_s)
    return BatchTuningResult(best=best, candidates=results)
