"""Request-coalescing autotuning (paper section 4.1).

Sweeps the coalescing time window and the number of parallel windows,
scoring each configuration by throughput at the P99 latency SLO — the
quantity the paper calls 'highly sensitive to these parameters'.  A good
configuration achieves near-full batches (>95% requests per batch).
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry, active
from repro.serving.batcher import CoalescingConfig
from repro.serving.scheduler import ModelJobProfile
from repro.serving.simulator import (
    DEFAULT_P99_SLO_S,
    ServingOutcome,
    max_throughput_under_slo,
)

DEFAULT_WINDOWS_S = (0.002, 0.005, 0.010, 0.020, 0.040)
DEFAULT_PARALLEL_WINDOWS = (1, 2, 4, 8)


@dataclasses.dataclass(frozen=True)
class CoalescingCandidate:
    """One configuration's score."""

    config: CoalescingConfig
    outcome: ServingOutcome


@dataclasses.dataclass(frozen=True)
class CoalescingTuningResult:
    """The winner plus the full sweep."""

    best: CoalescingCandidate
    candidates: List[CoalescingCandidate]


def tune_coalescing(
    profile: ModelJobProfile,
    max_batch_samples: int,
    windows_s: Sequence[float] = DEFAULT_WINDOWS_S,
    parallel_windows: Sequence[int] = DEFAULT_PARALLEL_WINDOWS,
    p99_slo_s: float = DEFAULT_P99_SLO_S,
    samples_per_request: int = 256,
    duration_s: float = 20.0,
    registry: Optional[MetricsRegistry] = None,
) -> CoalescingTuningResult:
    """Sweep (window, parallelism) and keep the highest SLO-throughput.

    An attached registry records the sweep's progress: configs
    evaluated, per-config wall time (so configs/sec falls out of the
    histogram), and the best-so-far SLO-throughput curve
    (``autotune.coalescing.*``).
    """
    obs = active(registry)
    configs_evaluated = obs.counter("autotune.coalescing.configs_evaluated")
    eval_wall = obs.histogram("autotune.coalescing.config_eval_s")
    best_curve = obs.series("autotune.coalescing.best_so_far_samples_per_s")
    candidates: List[CoalescingCandidate] = []
    best_so_far = -1.0
    for window in windows_s:
        for parallel in parallel_windows:
            config = CoalescingConfig(
                window_s=window,
                max_parallel_windows=parallel,
                max_batch_samples=max_batch_samples,
            )
            started = time.perf_counter() if obs.enabled else 0.0
            outcome = max_throughput_under_slo(
                profile,
                config,
                p99_slo_s=p99_slo_s,
                samples_per_request=samples_per_request,
                duration_s=duration_s,
                iterations=6,
            )
            candidates.append(CoalescingCandidate(config=config, outcome=outcome))
            configs_evaluated.inc()
            if obs.enabled:
                eval_wall.observe(time.perf_counter() - started)
                if outcome.served_samples_per_s > best_so_far:
                    best_so_far = outcome.served_samples_per_s
                best_curve.append(len(candidates), best_so_far)
    best = max(candidates, key=lambda c: c.outcome.served_samples_per_s)
    if obs.enabled:
        obs.gauge("autotune.coalescing.best_fill_fraction").set(
            best.outcome.mean_fill_fraction
        )
    return CoalescingTuningResult(best=best, candidates=candidates)
