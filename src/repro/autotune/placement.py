"""Data-placement autotuning: the LLS/LLC sizing policy (section 4.1).

The policy the paper describes verbatim: "configure the LLS to hold the
entire activation buffer and use the remaining SRAM for LLC.  When the
activation buffer is too large to fit, compare the performance of the
nearest lower batch size where activations do fit in LLS with the
current batch size with activations in LLC and pick the winner."
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from repro.arch.specs import ChipSpec
from repro.graph.graph import OpGraph
from repro.memory.hierarchy import SramPartition, partition_for_activations
from repro.memory.scratch import plan_allocation
from repro.perf.executor import ExecutionReport, Executor


@dataclasses.dataclass(frozen=True)
class PlacementDecision:
    """Outcome of the placement policy for one (model, batch) pair."""

    batch: int
    partition: SramPartition
    activations_in_lls: bool
    activation_buffer_bytes: int
    report: ExecutionReport

    @property
    def throughput(self) -> float:
        """Samples/s of the chosen configuration."""
        return self.report.throughput_samples_per_s


def activation_buffer_bytes(graph: OpGraph) -> int:
    """The liveness-packed activation footprint autotuning fits into LLS."""
    return plan_allocation(graph.activation_buffer_requests()).peak_bytes


def tune_placement(
    build_graph: Callable[[int], OpGraph],
    batch: int,
    chip: ChipSpec,
    executor_factory: Optional[Callable[[ChipSpec], Executor]] = None,
) -> PlacementDecision:
    """Apply the section 4.1 policy and return the winning configuration.

    ``build_graph`` rebuilds the model at a given batch size (placement
    and batch interact: the fallback compares a smaller LLS-resident
    batch against the requested LLC-resident one).
    """
    if batch <= 0:
        raise ValueError("batch must be positive")
    executor_factory = executor_factory or (lambda c: Executor(c))
    graph = build_graph(batch)
    buffer_bytes = activation_buffer_bytes(graph)
    partition = partition_for_activations(chip, buffer_bytes)
    fits = partition.lls_bytes >= buffer_bytes and partition.lls_bytes > 0
    executor = executor_factory(chip)
    report = executor.run(graph, batch)
    if fits:
        return PlacementDecision(
            batch=batch,
            partition=partition,
            activations_in_lls=True,
            activation_buffer_bytes=buffer_bytes,
            report=report,
        )
    # Fallback: find the nearest lower batch whose activations fit, and
    # race it against the LLC-resident configuration at the full batch.
    candidate = batch
    while candidate > 1:
        candidate //= 2
        smaller_graph = build_graph(candidate)
        smaller_bytes = activation_buffer_bytes(smaller_graph)
        smaller_partition = partition_for_activations(chip, smaller_bytes)
        if smaller_partition.lls_bytes >= smaller_bytes > 0:
            smaller_report = executor_factory(chip).run(smaller_graph, candidate)
            if (
                smaller_report.throughput_samples_per_s
                >= report.throughput_samples_per_s
            ):
                return PlacementDecision(
                    batch=candidate,
                    partition=smaller_partition,
                    activations_in_lls=True,
                    activation_buffer_bytes=smaller_bytes,
                    report=smaller_report,
                )
            break
    return PlacementDecision(
        batch=batch,
        partition=partition,
        activations_in_lls=False,
        activation_buffer_bytes=buffer_bytes,
        report=report,
    )
