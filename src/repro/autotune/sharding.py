"""Model-sharding autotuning (paper section 4.1).

"To determine model sharding, we measure whether a model and its runtime
buffers exceed the size of DRAM for a single device.  If so, autotuning
automatically explores how to shard the model across multiple devices."

Sharding splits the embedding tables (90% of model size, Table 1) across
devices behind one PCIe switch; dense weights are replicated.  The plan
balances per-device bytes and respects the NUMA constraint that shards
co-locate on one socket.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.arch.specs import ChipSpec
from repro.graph.graph import OpGraph
from repro.tensors.tensor import TensorKind

# Fraction of device DRAM reserved for runtime buffers (activations
# spilled from SRAM, I/O staging, code, allocator slack).
RUNTIME_RESERVE_FRACTION = 0.15


@dataclasses.dataclass(frozen=True)
class ShardPlan:
    """A sharding decision: which tables land on which device."""

    num_shards: int
    table_assignment: Dict[int, int]  # tensor uid -> shard index
    bytes_per_shard: List[int]
    replicated_bytes: int  # dense weights present on every shard

    @property
    def max_shard_bytes(self) -> int:
        """Footprint of the fullest shard, including replicated weights."""
        return (max(self.bytes_per_shard) if self.bytes_per_shard else 0) + self.replicated_bytes

    @property
    def balance(self) -> float:
        """Mean/max shard fill — 1.0 is perfectly balanced."""
        if not self.bytes_per_shard or max(self.bytes_per_shard) == 0:
            return 1.0
        return sum(self.bytes_per_shard) / len(self.bytes_per_shard) / max(self.bytes_per_shard)


def required_shards(graph: OpGraph, chip: ChipSpec) -> int:
    """Minimum devices to hold the model plus runtime buffers."""
    usable = chip.dram.capacity_bytes * (1.0 - RUNTIME_RESERVE_FRACTION)
    dense = graph.weight_bytes() - graph.embedding_bytes()
    table_bytes = graph.embedding_bytes()
    if dense >= usable:
        raise ValueError(
            "dense weights alone exceed device DRAM; model cannot be served"
        )
    shards = 1
    while table_bytes / shards + dense > usable:
        shards += 1
        if shards > 64:
            raise ValueError("model too large to shard within one PCIe switch")
    return shards


def plan_sharding(graph: OpGraph, chip: ChipSpec, num_shards: int = 0) -> ShardPlan:
    """Greedy balanced assignment of embedding tables to shards.

    Tables are placed largest-first onto the least-loaded shard — the
    classic LPT heuristic, which is what production sharders use for
    table placement.
    """
    if num_shards <= 0:
        num_shards = required_shards(graph, chip)
    tables = [t for t in graph.weights() if t.kind == TensorKind.EMBEDDING]
    dense = graph.weight_bytes() - graph.embedding_bytes()
    loads = [0] * num_shards
    assignment: Dict[int, int] = {}
    for table in sorted(tables, key=lambda t: -t.num_bytes):
        shard = loads.index(min(loads))
        assignment[table.uid] = shard
        loads[shard] += table.num_bytes
    plan = ShardPlan(
        num_shards=num_shards,
        table_assignment=assignment,
        bytes_per_shard=loads,
        replicated_bytes=dense,
    )
    usable = chip.dram.capacity_bytes * (1.0 - RUNTIME_RESERVE_FRACTION)
    if plan.max_shard_bytes > usable:
        raise ValueError(
            f"shard plan overflows DRAM: {plan.max_shard_bytes} > {usable:.0f}; "
            "increase num_shards"
        )
    return plan


def shard_throughput_tax(num_shards: int, floor: float = 0.5) -> float:
    """Throughput multiplier for serving a model sharded across devices.

    Sharding distributes capacity, not serving: every shard still
    executes merge/remote jobs, but pooled embeddings cross the PCIe
    switch, costing ~4% of throughput per extra shard (floored — even a
    maximally sharded model keeps half its throughput).  This is the
    same tax :func:`repro.tco.model.compare_platforms` applies; the
    codesign DSE uses it for candidate chips whose DRAM forces different
    shard counts than the base design.
    """
    if num_shards < 1:
        raise ValueError("need at least one shard")
    return max(floor, 1.0 - 0.04 * (num_shards - 1))
