"""Autotuning framework (paper section 4.1): placement, kernels, batch,
coalescing, sharding, and the orchestrator."""

from repro.autotune.batch import (
    BatchCandidate,
    BatchTuningResult,
    DEFAULT_BATCH_CANDIDATES,
    tune_batch_size,
)
from repro.autotune.coalescing import (
    CoalescingCandidate,
    CoalescingTuningResult,
    tune_coalescing,
)
from repro.autotune.kernel_tuner import (
    PerformanceDatabase,
    TunerComparison,
    TuningResult,
    ann_tune,
    compare_tuners,
    exhaustive_tune,
    measure_variant,
    surrogate_tune,
)
from repro.autotune.placement import (
    PlacementDecision,
    activation_buffer_bytes,
    tune_placement,
)
from repro.autotune.sharding import (
    RUNTIME_RESERVE_FRACTION,
    ShardPlan,
    plan_sharding,
    required_shards,
    shard_throughput_tax,
)
from repro.autotune.tuner import AutotuneResult, autotune_model

__all__ = [
    "AutotuneResult",
    "BatchCandidate",
    "BatchTuningResult",
    "CoalescingCandidate",
    "CoalescingTuningResult",
    "DEFAULT_BATCH_CANDIDATES",
    "PerformanceDatabase",
    "PlacementDecision",
    "RUNTIME_RESERVE_FRACTION",
    "ShardPlan",
    "TunerComparison",
    "TuningResult",
    "activation_buffer_bytes",
    "ann_tune",
    "autotune_model",
    "compare_tuners",
    "exhaustive_tune",
    "measure_variant",
    "plan_sharding",
    "required_shards",
    "shard_throughput_tax",
    "surrogate_tune",
    "tune_batch_size",
    "tune_coalescing",
    "tune_placement",
]
