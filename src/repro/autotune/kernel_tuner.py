"""FC kernel tuning: exhaustive search, performance database, and
approximate-nearest-neighbour reuse (paper section 4.1).

"Initially, we ran exhaustive tests to cover all FC shapes in a model
with different data placements, which proved to be too time-consuming.
Consequently, we created a performance database and used approximate
nearest neighbor search to pick FC kernel variants, which reduced FC
tuning time by up to 1000x while achieving kernel performance within 5%
of exhaustive FC tuning."

The tuner below implements both paths against the same kernel cost
model, so the speedup and the quality gap are measured quantities.
"""

from __future__ import annotations

import dataclasses
import math
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.arch.specs import ChipSpec
from repro.fastsim.memo import KernelLatencyMemo
from repro.kernels.gemm import GemmVariant, default_variants, estimate_gemm
from repro.obs.metrics import MetricsRegistry, active
from repro.surrogate.verify import verified_argmin
from repro.tensors.dtypes import DType
from repro.tensors.tensor import GemmShape

if TYPE_CHECKING:
    from repro.surrogate.model import GemmSurrogate


@dataclasses.dataclass(frozen=True)
class TuningResult:
    """The chosen kernel variant for one FC shape."""

    shape: GemmShape
    variant: GemmVariant
    kernel_time_s: float
    evaluations: int  # cost-model invocations spent


def measure_variant(
    shape: GemmShape,
    variant: GemmVariant,
    chip: ChipSpec,
    dtype: DType = DType.FP16,
    memo: Optional[KernelLatencyMemo] = None,
) -> float:
    """Kernel time for one (shape, variant) point.

    This is the tuner's 'run the kernel and time it' primitive; in this
    library it evaluates the kernel cost model.  Passing a ``memo``
    (bound to the same ``chip``) caches evaluations across a tuning run:
    the cost model is pure in (shape, dtype, variant, chip), so the
    memoized value is the recomputed value, and tuning outcomes are
    unchanged — only duplicate evaluations are skipped.
    """
    if memo is not None:
        if memo.chip is not chip:
            raise ValueError("memo is bound to a different chip instance")
        return memo.measure(shape, variant, dtype)
    estimate = estimate_gemm(shape, chip, dtype, variant)
    return estimate.engine_time_s


def exhaustive_tune(
    shape: GemmShape,
    chip: ChipSpec,
    variants: Optional[List[GemmVariant]] = None,
    dtype: DType = DType.FP16,
    memo: Optional[KernelLatencyMemo] = None,
) -> TuningResult:
    """Measure every variant and keep the best — the slow gold standard.

    ``evaluations`` counts cost-model invocations *requested* — the
    tuner's work metric — whether or not a ``memo`` short-circuited any
    of them.
    """
    variants = variants if variants is not None else default_variants()
    if not variants:
        raise ValueError("need at least one variant")
    best_variant = None
    best_time = math.inf
    for variant in variants:
        t = measure_variant(shape, variant, chip, dtype, memo=memo)
        if t < best_time:
            best_time = t
            best_variant = variant
    return TuningResult(
        shape=shape, variant=best_variant, kernel_time_s=best_time,
        evaluations=len(variants),
    )


def surrogate_tune(
    shape: GemmShape,
    chip: ChipSpec,
    surrogate: "GemmSurrogate",
    variants: Optional[List[GemmVariant]] = None,
    dtype: DType = DType.FP16,
    top_k: int = 16,
    memo: Optional[KernelLatencyMemo] = None,
    registry: Optional[MetricsRegistry] = None,
) -> TuningResult:
    """Verified surrogate tuning: predict all, exact-measure the top-k.

    The surrogate's factorized sweep ranks the whole variant catalog at
    ~100x less than one exact evaluation *per variant*; the exact cost
    model then re-measures only the predicted ``top_k`` and the argmin
    over those exact values wins (soundness:
    :func:`repro.surrogate.verify.verified_argmin` — the returned
    ``kernel_time_s`` is always an exact evaluation, never a
    prediction).  ``evaluations`` counts exact cost-model invocations,
    matching the other tuners' work metric; surrogate predictions are
    tallied separately under ``surrogate.kernel.*`` on an attached
    registry.
    """
    if surrogate.chip is not chip:
        raise ValueError("surrogate is bound to a different chip instance")
    if surrogate.dtype is not dtype:
        raise ValueError(
            f"surrogate was trained for {surrogate.dtype}, not {dtype}"
        )
    variants = variants if variants is not None else default_variants()
    if not variants:
        raise ValueError("need at least one variant")
    ranking = surrogate.rank_variants((shape.m, shape.k, shape.n), variants)
    result = verified_argmin(
        ranking,
        lambda i: measure_variant(shape, variants[i], chip, dtype, memo=memo),
        top_k=min(top_k, len(variants)),
    )
    obs = active(registry)
    if obs.enabled:
        obs.counter("surrogate.kernel.predictions").inc(
            result.surrogate_evaluations
        )
        obs.counter("surrogate.kernel.exact_evals").inc(
            result.exact_evaluations
        )
    return TuningResult(
        shape=shape,
        variant=variants[result.best_index],
        kernel_time_s=result.best_value,
        evaluations=result.exact_evaluations,
    )


def _shape_features(shape: GemmShape) -> np.ndarray:
    # Log-space features: kernel behaviour is scale-relative.
    return np.log2(np.array([shape.m, shape.k, shape.n], dtype=np.float64))


class PerformanceDatabase:
    """Tuned shapes indexed for approximate-nearest-neighbour lookup.

    The index is a coarse grid hash over log-space shape features —
    lookups inspect only the query's cell and its neighbours, giving
    O(1)-ish probes versus scanning the variant space.
    """

    def __init__(self, cell_size: float = 1.0) -> None:
        if cell_size <= 0:
            raise ValueError("cell size must be positive")
        self.cell_size = cell_size
        self._entries: List[TuningResult] = []
        self._grid: Dict[Tuple[int, ...], List[int]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def _cell(self, features: np.ndarray) -> Tuple[int, ...]:
        return tuple(int(math.floor(f / self.cell_size)) for f in features)

    def add(self, result: TuningResult) -> None:
        """Record a tuned shape."""
        index = len(self._entries)
        self._entries.append(result)
        cell = self._cell(_shape_features(result.shape))
        self._grid.setdefault(cell, []).append(index)

    def nearest(self, shape: GemmShape) -> Optional[TuningResult]:
        """Approximate nearest tuned shape (probe the cell neighbourhood;
        fall back to a full scan only if the neighbourhood is empty)."""
        if not self._entries:
            return None
        features = _shape_features(shape)
        base = self._cell(features)
        candidates: List[int] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    cell = (base[0] + dx, base[1] + dy, base[2] + dz)
                    candidates.extend(self._grid.get(cell, []))
        if not candidates:
            candidates = list(range(len(self._entries)))
        best = min(
            candidates,
            key=lambda i: float(
                np.sum((_shape_features(self._entries[i].shape) - features) ** 2)
            ),
        )
        return self._entries[best]


def ann_tune(
    shape: GemmShape,
    chip: ChipSpec,
    database: PerformanceDatabase,
    dtype: DType = DType.FP16,
    memo: Optional[KernelLatencyMemo] = None,
) -> TuningResult:
    """Pick a variant by ANN lookup: one neighbour probe plus a single
    validation measurement — versus hundreds for exhaustive search."""
    neighbour = database.nearest(shape)
    if neighbour is None:
        return exhaustive_tune(shape, chip, dtype=dtype, memo=memo)
    t = measure_variant(shape, neighbour.variant, chip, dtype, memo=memo)
    return TuningResult(shape=shape, variant=neighbour.variant, kernel_time_s=t, evaluations=1)


@dataclasses.dataclass(frozen=True)
class TunerComparison:
    """Exhaustive-versus-ANN outcome over a set of shapes."""

    shapes: int
    exhaustive_evaluations: int
    ann_evaluations: int
    mean_quality_gap: float  # mean (ann_time / exhaustive_time - 1)
    max_quality_gap: float

    @property
    def evaluation_speedup(self) -> float:
        """The paper's 'up to 1000x' tuning-time reduction."""
        return self.exhaustive_evaluations / self.ann_evaluations if self.ann_evaluations else 0.0


def compare_tuners(
    training_shapes: List[GemmShape],
    query_shapes: List[GemmShape],
    chip: ChipSpec,
    dtype: DType = DType.FP16,
) -> TunerComparison:
    """Build a database from ``training_shapes``, answer ``query_shapes``
    via ANN, and compare against exhaustive tuning of the queries.

    One :class:`~repro.fastsim.memo.KernelLatencyMemo` and one variant
    list span the whole comparison, so a (shape, variant) point shared
    between the gold exhaustive pass and the ANN validation probe is
    costed once; evaluation *counts* (the paper's tuning-time metric)
    still tally every requested measurement.
    """
    database = PerformanceDatabase()
    memo = KernelLatencyMemo(chip)
    variants = default_variants()
    for shape in training_shapes:
        database.add(
            exhaustive_tune(shape, chip, variants=variants, dtype=dtype, memo=memo)
        )
    exhaustive_evals = 0
    ann_evals = 0
    gaps: List[float] = []
    for shape in query_shapes:
        gold = exhaustive_tune(
            shape, chip, variants=variants, dtype=dtype, memo=memo
        )
        approx = ann_tune(shape, chip, database, dtype=dtype, memo=memo)
        exhaustive_evals += gold.evaluations
        ann_evals += approx.evaluations
        if gold.kernel_time_s > 0:
            gaps.append(approx.kernel_time_s / gold.kernel_time_s - 1.0)
    return TunerComparison(
        shapes=len(query_shapes),
        exhaustive_evaluations=exhaustive_evals,
        ann_evaluations=ann_evals,
        mean_quality_gap=float(np.mean(gaps)) if gaps else 0.0,
        max_quality_gap=float(np.max(gaps)) if gaps else 0.0,
    )
