"""Pinned golden values for the reproduction's headline claims.

Every entry pins one benchmark scalar as ``(value, rel_tol)``: the
value a seeded run of this repository produces today, and the relative
tolerance inside which future runs must stay.  ``python -m repro bench``
checks any benchmark it aggregates against this table, and the tier-1
golden tests (``tests/test_golden_values.py``) pin the same claims
directly, so a refactor cannot silently drift them.

Tolerances are deliberately explicit per scalar: count-derived ratios
(e.g. the SDC 57x undetected-reduction) are exact under a fixed seed but
get a generous band so a one-count shift across numpy versions reads as
drift, not noise; simulator-derived latencies get a few percent.
"""

from __future__ import annotations

from typing import Dict, Tuple

# benchmark name -> scalar key -> (pinned value, relative tolerance).
GOLDEN_SCALARS: Dict[str, Dict[str, Tuple[float, float]]] = {
    "sec5_sdc_campaign": {
        # Paper section 5: the protection ladder's headline — ECC+ABFT
        # leaves 57x fewer undetected NE-impacting corruptions than no
        # protection, and the full profile leaves none.
        "undetected_impacting_ratio": (57.0, 0.10),
        "clean_ne": (0.6373322319208822, 1e-6),
        "full_coverage": (1.0, 1e-9),
        "triple_flip_escape_rate": (1.0, 0.05),
    },
    "sec5_chaos": {
        # Paper section 5.5: the retry-storm headline.  Undefended, the
        # storm is metastable — post-clear goodput stays collapsed
        # (<0.2%, generous band on a tiny ratio) and the tier never
        # recovers (ttr -1.0 encodes 'never').  Defended (deadlines,
        # retry budget, backoff, breakers) the tier is back above the
        # 95% threshold in the first post-clear window.
        "retry_storm.undefended.post_clear_goodput": (
            0.0009628610729023383, 1.0
        ),
        "retry_storm.undefended.time_to_recovery_s": (-1.0, 1e-9),
        "retry_storm.undefended.unavailability": (0.7263043113571548, 0.05),
        "retry_storm.defended.post_clear_goodput": (0.9973865199449794, 0.01),
        "retry_storm.defended.time_to_recovery_s": (0.0, 1e-9),
        "retry_storm.defended.unavailability": (0.12044958899513503, 0.10),
        # Section 5.3: a power-domain trip with the brownout ladder
        # armed degrades quality instead of availability — unavailability
        # drops ~25x versus the undefended trip.
        "power_trip.undefended.unavailability": (0.12145613152155676, 0.10),
        "power_trip.defended.unavailability": (0.004781077000503231, 0.25),
    },
    "sec33_gemm_efficiency": {
        # Paper section 3.3: >92% of peak for 2K GEMMs with the new
        # instructions; the naive variant sits far below.
        "tuned_eff_2048": (0.9697106440677966, 0.01),
        "naive_eff_2048": (0.3998806779661017, 0.02),
    },
    "sec41_autotune": {
        # Paper section 4.1: ANN tuning ~1000x cheaper at equal kernel
        # quality; coalescing reaches near-full batches (our measured
        # fill — the paper's '>95% requests per batch' claim label).
        "evaluation_speedup": (1152.0, 0.05),
        "mean_quality_gap": (0.0, 1.0),
        "best_fill_fraction": (0.8869534201826197, 0.02),
    },
    "sec41_surrogate": {
        # Learned surrogate over the exact kernel cost model: sub-1%
        # holdout MAPE (band allows BLAS reduction-order drift), the
        # verified top-16 recovering the exhaustive argmin on every
        # section 4.1 query shape, and 1152/16 = 72x fewer exact
        # evaluations per tuned shape.  The >=100x wall-clock speedup
        # is asserted inside the benchmark, not pinned here.
        "holdout_mape_latency": (0.004165515788359837, 0.5),
        "verified_argmin_match": (1.0, 1e-9),
        "eval_reduction": (72.0, 1e-9),
    },
    "sec6_codesign": {
        # The co-design DSE acceptance shapes: every front point exact,
        # the MTIA 1 -> 2 generational step recovered as the sanity
        # anchor, and the surrogate rung scoring ~5x more candidates
        # than the exact rungs pay for.  Counts and booleans are pinned
        # tight (the search is bit-for-bit seeded); the anchor and
        # proposal objectives get a small band for float drift across
        # BLAS builds.
        "front_size": (5.0, 1e-9),
        "all_front_exact": (1.0, 1e-9),
        "mtia2_dominates_mtia1": (1.0, 1e-9),
        "candidates_scored": (93.0, 1e-9),
        "exact_evals": (17.0, 1e-9),
        "eval_reduction": (5.470588235294118, 1e-9),
        "anchor_mtia2_perf": (1052.6315789473688, 0.02),
        "anchor_mtia2_perf_per_watt": (0.6078379457643992, 0.02),
        "surrogate_mape_holdout": (0.07872610351135072, 0.5),
        "proposal_perf": (1645.5865890004357, 0.05),
        "proposal_gain_vs_mtia2": (1.5633072595504134, 0.05),
    },
    "fig5_tbe_consolidation": {
        # Paper figure 5: consolidation buys ~13 ms of P99.
        "p99_improvement_s": (0.013298990385909093, 0.05),
        "p99_separate_s": (0.1040694926401855, 0.02),
    },
    "fig4_case_study": {
        # Paper figure 4: ~0.5x -> well above parity Perf/TCO.
        "initial_perf_per_tco": (0.5835563561129902, 0.02),
        "final_perf_per_tco": (1.448328115712702, 0.02),
    },
    "cluster_capacity": {
        # Issue PR 4 acceptance shapes: power-of-two-choices beats
        # round-robin on P99 at >= 80% utilization, and locality-aware
        # routing eliminates the cross-host embedding traffic JSQ pays.
        "p99_round_robin_s": (0.1357294585487292, 0.05),
        "p99_po2_s": (0.11015150533913243, 0.05),
        "cross_host_fraction_jsq": (0.7463783329834138, 0.05),
        "cross_host_fraction_locality": (0.0, 1e-9),
        "replicas_po2_at_300qps": (9.0, 1e-9),
        "replicas_round_robin_at_300qps": (9.0, 1e-9),
    },
    "sec52_sec53_power": {
        # Paper sections 5.2-5.3 in the time domain: governed DVFS gain
        # inside the 5-20% band with real thermal throttling, per-chip
        # capping beating a server-level cap on P99 deficit at equal
        # budget, and the two-prong P90 re-derivation landing near the
        # ~40% budget reduction.  Simulator-derived, so a few percent.
        "dvfs_mean_gain": (0.07951350204552347, 0.05),
        "dvfs_mean_frequency_ghz": (1.2892604166666668, 0.02),
        "per_chip_p99_deficit": (0.019048492123659937, 0.05),
        "server_level_p99_deficit": (0.0370370370370372, 0.05),
        "provisioning_reduction_fraction": (0.42743522364557174, 0.05),
        "sweep_knee_budget_w": (2000.0, 1e-9),
        "sweep_max_qps": (421.05263157894734, 0.05),
    },
    "sec5_fleet": {
        # The global region-outage capacity study (ROADMAP item 2): 4M
        # users need 4 replicas/region on a quiet day, 5/region to hold
        # the P99 SLO through a full region outage with probe-driven
        # failover — 25% overprovision — while no swept size survives
        # undefended (-1 encodes 'none').  Verdict sizes are exact under
        # the fixed seed; simulator-derived fractions get a few percent.
        "capacity.baseline_replicas": (4.0, 1e-9),
        "capacity.defended_replicas": (5.0, 1e-9),
        "capacity.undefended_replicas": (-1.0, 1e-9),
        "capacity.overprovision_fraction": (0.25, 1e-9),
        "capacity.undefended.loss_fraction": (0.19355545813239808, 0.05),
        "capacity.defended.loss_fraction": (0.018851380973257344, 0.10),
        "capacity.defended.spill_fraction": (0.1983779044278825, 0.05),
        "capacity.undefended.p99_ms": (69.82455908090657, 0.05),
        "capacity.defended.p99_ms": (96.61823659750723, 0.05),
        "detection_lag_s": (0.8, 1e-6),
    },
    "sec36_llm_feasibility": {
        # Paper section 3.6: Llama2-7B decode misses 60 ms/token.
        "llama2_7b_mtia_decode_s": (0.08234887529411765, 0.02),
        "llama2_7b_mtia_prefill_s": (0.28058835310403013, 0.02),
    },
}
