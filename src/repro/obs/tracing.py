"""Unified Chrome trace-event writer.

One builder for every timeline the reproduction emits.  Before this
module existed, :mod:`repro.perf.trace` (executor op timelines) and
:mod:`repro.resilience.trace` (fleet incident timelines) each assembled
raw trace-event dicts by hand; both now go through :class:`TraceWriter`,
which owns the three invariants the Chrome trace-event spec cares
about:

* every event carries ``ph``, ``ts``, and ``pid`` (and ``tid`` for
  lane-scoped events);
* ``B``/``E`` duration events nest properly per lane (enforced with a
  per-lane span stack — unbalanced ``end`` calls raise);
* lane naming goes through ``M``-phase metadata records emitted ahead
  of the data events.

The writer is deliberately byte-compatible with the documents the two
legacy builders produced: field order inside each event dict is fixed,
so a seeded run serialises to the identical JSON file through the new
path (pinned by regression tests).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

__all__ = [
    "TraceError",
    "TraceWriter",
    "trace_metadata",
    "write_trace_json",
]


class TraceError(RuntimeError):
    """A malformed timeline: unbalanced or time-travelling spans."""


def trace_metadata(process_name: str, lanes: Dict[str, int], pid: int = 0) -> List[Dict]:
    """Chrome-trace metadata events naming a process and its lanes.

    Any timeline that wants to render in Perfetto builds its lane naming
    through this helper (directly or via :class:`TraceWriter`).
    """
    metadata: List[Dict] = [
        {"name": "process_name", "ph": "M", "pid": pid, "args": {"name": process_name}}
    ]
    metadata.extend(
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": label},
        }
        for label, tid in lanes.items()
    )
    return metadata


def write_trace_json(document: Dict, path: str) -> None:
    """Write any Chrome trace-event document to ``path``."""
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1)


class TraceWriter:
    """Builds one process's Chrome trace-event document.

    Lanes (Chrome "threads") are registered with :meth:`lane`, events
    are appended with :meth:`complete` / :meth:`instant` /
    :meth:`counter` / :meth:`begin` + :meth:`end`, and the finished
    document comes out of :meth:`document` with the lane-naming
    metadata prepended.
    """

    def __init__(self, process_name: str, pid: int = 0) -> None:
        self.process_name = process_name
        self.pid = pid
        self._lanes: Dict[str, int] = {}
        self._events: List[Dict] = []
        self._stacks: Dict[int, List[Dict]] = {}

    # ------------------------------------------------------------------
    # Lanes
    # ------------------------------------------------------------------

    def lane(self, label: str, tid: Optional[int] = None) -> int:
        """Register (or look up) a named lane; returns its ``tid``.

        Without an explicit ``tid``, lanes are numbered 1, 2, ... in
        registration order.
        """
        existing = self._lanes.get(label)
        if existing is not None:
            if tid is not None and tid != existing:
                raise TraceError(
                    f"lane {label!r} already registered as tid {existing}"
                )
            return existing
        if tid is None:
            tid = max(self._lanes.values(), default=0) + 1
        self._lanes[label] = tid
        return tid

    @property
    def lanes(self) -> Dict[str, int]:
        """Label -> tid, in registration order."""
        return dict(self._lanes)

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def complete(self, name: str, ts: float, dur: float, tid: int,
                 cat: str = "span", args: Optional[Dict] = None) -> None:
        """A complete (``ph: X``) duration event."""
        self._events.append(
            {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": ts,
                "dur": dur,
                "pid": self.pid,
                "tid": tid,
                "args": args if args is not None else {},
            }
        )

    def instant(self, name: str, ts: float, tid: int, cat: str = "instant",
                scope: str = "g", args: Optional[Dict] = None) -> None:
        """An instant (``ph: i``) marker; ``scope`` is g/p/t."""
        self._events.append(
            {
                "name": name,
                "cat": cat,
                "ph": "i",
                "s": scope,
                "ts": ts,
                "pid": self.pid,
                "tid": tid,
                "args": args if args is not None else {},
            }
        )

    def counter(self, name: str, ts: float, values: Dict[str, float]) -> None:
        """A counter (``ph: C``) sample; one track per ``values`` key."""
        self._events.append(
            {"name": name, "ph": "C", "ts": ts, "pid": self.pid,
             "args": dict(values)}
        )

    def begin(self, name: str, ts: float, tid: int, cat: str = "span",
              args: Optional[Dict] = None) -> None:
        """Open a nested (``ph: B``) span on ``tid``."""
        event = {
            "name": name,
            "cat": cat,
            "ph": "B",
            "ts": ts,
            "pid": self.pid,
            "tid": tid,
            "args": args if args is not None else {},
        }
        self._events.append(event)
        self._stacks.setdefault(tid, []).append(event)

    def end(self, ts: float, tid: int) -> None:
        """Close the innermost open span on ``tid`` (``ph: E``)."""
        stack = self._stacks.get(tid)
        if not stack:
            raise TraceError(f"end() with no open span on tid {tid}")
        opener = stack.pop()
        if ts < opener["ts"]:
            raise TraceError(
                f"span {opener['name']!r} ends at {ts} before it began "
                f"at {opener['ts']}"
            )
        self._events.append(
            {"name": opener["name"], "cat": opener["cat"], "ph": "E",
             "ts": ts, "pid": self.pid, "tid": tid, "args": {}}
        )

    @property
    def open_span_count(self) -> int:
        """Spans begun but not yet ended, across all lanes."""
        return sum(len(stack) for stack in self._stacks.values())

    @property
    def events(self) -> List[Dict]:
        """The data events appended so far (no metadata)."""
        return list(self._events)

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def document(self, display_time_unit: str = "ms",
                 other_data: Optional[Dict] = None) -> Dict:
        """The finished trace document (metadata first, then events)."""
        if self.open_span_count:
            open_names = [
                event["name"]
                for stack in self._stacks.values()
                for event in stack
            ]
            raise TraceError(f"unclosed spans: {open_names}")
        document: Dict = {
            "traceEvents": trace_metadata(self.process_name, self._lanes,
                                          pid=self.pid) + self._events,
            "displayTimeUnit": display_time_unit,
        }
        if other_data is not None:
            document["otherData"] = other_data
        return document

    def write(self, path: str, display_time_unit: str = "ms",
              other_data: Optional[Dict] = None) -> None:
        """Serialise the document to ``path``."""
        write_trace_json(self.document(display_time_unit, other_data), path)
