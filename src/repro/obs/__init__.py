"""``repro.obs`` — the reproduction's observability layer.

Three pieces, mirroring how the paper's productionization story is
actually *evidenced* (every section 4-5 claim is a measurement):

* :mod:`repro.obs.metrics` — counters, gauges, log-scale histograms and
  best-so-far series behind :class:`MetricsRegistry`; simulators accept
  an optional registry and pay ~nothing when none is attached;
* :mod:`repro.obs.tracing` — the unified Chrome trace-event writer that
  both the executor timeline (:mod:`repro.perf.trace`) and the fleet
  incident timeline (:mod:`repro.resilience.trace`) render through;
* :mod:`repro.obs.bench` + :mod:`repro.obs.golden` — machine-readable
  benchmark scalars, the ``BENCH_results.json`` aggregate, tolerance
  diffing, and the pinned headline values ``python -m repro bench``
  enforces.
"""

from repro.obs.bench import (
    BenchDiff,
    DiffEntry,
    aggregate,
    diff_results,
    dump_json,
    golden_violations,
    load_results,
    load_scalar_documents,
    normalize_text,
    write_results,
    write_scalars,
)
from repro.obs.golden import GOLDEN_SCALARS
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
    active,
)
from repro.obs.tracing import (
    TraceError,
    TraceWriter,
    trace_metadata,
    write_trace_json,
)

__all__ = [
    "BenchDiff",
    "Counter",
    "DiffEntry",
    "GOLDEN_SCALARS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "Series",
    "TraceError",
    "TraceWriter",
    "active",
    "aggregate",
    "diff_results",
    "dump_json",
    "golden_violations",
    "load_results",
    "load_scalar_documents",
    "normalize_text",
    "trace_metadata",
    "write_results",
    "write_scalars",
    "write_trace_json",
]
