"""Machine-readable benchmark results: write, aggregate, diff, pin.

The benchmarks under ``benchmarks/`` regenerate the paper's tables and
figures; historically they emitted free-text ``.txt`` artifacts only.
This module is the structured side of that loop:

* each benchmark records its headline scalars (speedups, crossover
  points, NE deltas) as ``benchmarks/out/<name>.json`` via the
  ``record_json`` fixture — deterministic bytes (sorted keys, fixed
  indentation, exactly one trailing newline) so identical runs produce
  identical artifacts;
* ``python -m repro bench`` aggregates those files into a top-level
  ``BENCH_results.json``, diffs it against the previous snapshot, and
  fails on drift beyond tolerance;
* the headline claims are additionally pinned against
  :mod:`repro.obs.golden`, so a refactor cannot silently move them.

Wall-clock runtimes are recorded in the aggregate for trending but are
*volatile*: the differ reports them and never fails on them.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, List, Mapping, Optional, Union

SCHEMA_VERSION = 1

# Aggregate-level keys that may differ between identical runs (machine
# speed, scheduling): reported by the differ, never a regression.
VOLATILE_KEYS = frozenset({"runtime_s"})

Number = Union[int, float]
PathLike = Union[str, pathlib.Path]


def normalize_text(text: str) -> str:
    """Exactly one trailing newline, whatever the caller handed over."""
    return text.rstrip("\n") + "\n"


def _validated_scalars(name: str, scalars: Mapping[str, Number]) -> Dict[str, Number]:
    clean: Dict[str, Number] = {}
    for key, value in scalars.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError(
                f"benchmark {name!r} scalar {key!r} must be int or float, "
                f"got {type(value).__name__}"
            )
        if value != value or value in (float("inf"), float("-inf")):
            raise ValueError(
                f"benchmark {name!r} scalar {key!r} must be finite, got {value!r}"
            )
        clean[key] = value
    if not clean:
        raise ValueError(f"benchmark {name!r} recorded no scalars")
    return clean


def dump_json(document: Dict) -> str:
    """Deterministic JSON bytes: sorted keys, indent 2, one newline."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def write_scalars(out_dir: PathLike, name: str,
                  scalars: Mapping[str, Number]) -> pathlib.Path:
    """Write one benchmark's scalar document to ``out_dir/<name>.json``."""
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    document = {
        "name": name,
        "schema": SCHEMA_VERSION,
        "scalars": _validated_scalars(name, scalars),
    }
    path = out_dir / f"{name}.json"
    path.write_text(dump_json(document))
    return path


def load_scalar_documents(out_dir: PathLike) -> Dict[str, Dict]:
    """Read every ``*.json`` scalar document in ``out_dir``, by name."""
    out_dir = pathlib.Path(out_dir)
    documents: Dict[str, Dict] = {}
    if not out_dir.is_dir():
        return documents
    for path in sorted(out_dir.glob("*.json")):
        document = json.loads(path.read_text())
        if not isinstance(document, dict) or "scalars" not in document:
            continue  # not one of ours
        documents[document.get("name", path.stem)] = document
    return documents


def aggregate(out_dir: PathLike,
              runtimes: Optional[Mapping[str, float]] = None) -> Dict:
    """Fold ``out_dir``'s scalar documents into one results document."""
    runtimes = dict(runtimes or {})
    benchmarks: Dict[str, Dict] = {}
    for name, document in load_scalar_documents(out_dir).items():
        entry: Dict = {"scalars": document["scalars"]}
        if name in runtimes:
            entry["runtime_s"] = round(float(runtimes[name]), 3)
        benchmarks[name] = entry
    return {"schema": SCHEMA_VERSION, "benchmarks": benchmarks}


def write_results(results: Dict, path: PathLike) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(dump_json(results))
    return path


def load_results(path: PathLike) -> Optional[Dict]:
    path = pathlib.Path(path)
    if not path.is_file():
        return None
    return json.loads(path.read_text())


# ----------------------------------------------------------------------
# Diffing
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class DiffEntry:
    """One scalar compared between two result snapshots."""

    benchmark: str
    key: str
    baseline: float
    current: float
    within_tolerance: bool

    @property
    def rel_change(self) -> float:
        if self.baseline == 0:
            return 0.0 if self.current == 0 else float("inf")
        return (self.current - self.baseline) / abs(self.baseline)


@dataclasses.dataclass(frozen=True)
class BenchDiff:
    """A full snapshot-to-snapshot comparison."""

    entries: List[DiffEntry]
    added_benchmarks: List[str]      # in current only (informational)
    missing_benchmarks: List[str]    # in baseline only (informational)

    @property
    def regressions(self) -> List[DiffEntry]:
        return [e for e in self.entries if not e.within_tolerance]

    @property
    def clean(self) -> bool:
        return not self.regressions

    def report(self) -> str:
        """Human-readable digest, regressions first."""
        lines: List[str] = []
        for entry in self.regressions:
            lines.append(
                f"REGRESSION {entry.benchmark}.{entry.key}: "
                f"{entry.baseline:g} -> {entry.current:g} "
                f"({entry.rel_change:+.1%})"
            )
        changed = [
            e for e in self.entries
            if e.within_tolerance and e.current != e.baseline
        ]
        for entry in changed:
            lines.append(
                f"drift (ok)  {entry.benchmark}.{entry.key}: "
                f"{entry.baseline:g} -> {entry.current:g} "
                f"({entry.rel_change:+.1%})"
            )
        if self.added_benchmarks:
            lines.append("new benchmarks: " + ", ".join(self.added_benchmarks))
        if self.missing_benchmarks:
            lines.append(
                "not in this run: " + ", ".join(self.missing_benchmarks)
            )
        if not lines:
            lines.append("no scalar changes")
        return "\n".join(lines)


def diff_results(baseline: Dict, current: Dict, rel_tol: float = 0.05,
                 abs_tol: float = 1e-12) -> BenchDiff:
    """Compare two results documents scalar by scalar.

    A scalar is within tolerance when ``|current - baseline| <=
    max(abs_tol, rel_tol * |baseline|)``; the check is symmetric in
    direction — an unexplained speed*up* is drift worth flagging too.
    Benchmarks present on only one side are reported, not failed (a
    ``--smoke`` run legitimately covers a subset).
    """
    if rel_tol < 0 or abs_tol < 0:
        raise ValueError("tolerances must be non-negative")
    base_benchmarks = baseline.get("benchmarks", {})
    cur_benchmarks = current.get("benchmarks", {})
    entries: List[DiffEntry] = []
    for name in sorted(set(base_benchmarks) & set(cur_benchmarks)):
        base_scalars = base_benchmarks[name].get("scalars", {})
        cur_scalars = cur_benchmarks[name].get("scalars", {})
        for key in sorted(set(base_scalars) & set(cur_scalars)):
            if key in VOLATILE_KEYS:
                continue
            old = float(base_scalars[key])
            new = float(cur_scalars[key])
            within = abs(new - old) <= max(abs_tol, rel_tol * abs(old))
            entries.append(DiffEntry(name, key, old, new, within))
    return BenchDiff(
        entries=entries,
        added_benchmarks=sorted(set(cur_benchmarks) - set(base_benchmarks)),
        missing_benchmarks=sorted(set(base_benchmarks) - set(cur_benchmarks)),
    )


# ----------------------------------------------------------------------
# Runtime guard
# ----------------------------------------------------------------------

# ``runtime_s`` is volatile for the scalar diff (machines differ), but a
# *large* slowdown against the committed baseline is exactly what the
# PR-8 fast-engine work must never silently lose.  The guard's
# tolerance is deliberately loose where the diff's is tight:
#
# * a benchmark regresses only past ``RUNTIME_REGRESSION_RATIO`` times
#   its baseline (1.5x — far above run-to-run noise, far below the
#   2x-5x speedups the fast engines bought);
# * sub-second benchmarks get an absolute floor instead: current
#   runtime must exceed ``max(RUNTIME_GUARD_FLOOR_S, ratio * baseline)``
#   before the guard fires, so interpreter start-up jitter on a 0.3 s
#   benchmark cannot fail CI.
#
# To re-baseline after an *intended* slowdown, commit the freshly
# written results file (``python -m repro bench`` then copy ``--out``
# over ``--baseline``).
RUNTIME_REGRESSION_RATIO = 1.5
RUNTIME_GUARD_FLOOR_S = 1.0


@dataclasses.dataclass(frozen=True)
class RuntimeRegression:
    """One benchmark past its runtime budget."""

    benchmark: str
    baseline_s: float
    current_s: float
    budget_s: float

    @property
    def ratio(self) -> float:
        if self.baseline_s <= 0:
            return float("inf")
        return self.current_s / self.baseline_s

    def __str__(self) -> str:
        return (
            f"{self.benchmark}: {self.current_s:.2f} s vs baseline "
            f"{self.baseline_s:.2f} s ({self.ratio:.2f}x, budget "
            f"{self.budget_s:.2f} s) — if intended, re-baseline by "
            f"committing the new results file"
        )


def runtime_comparison(baseline: Dict, current: Dict,
                       ratio: float = RUNTIME_REGRESSION_RATIO,
                       min_runtime_s: float = RUNTIME_GUARD_FLOOR_S,
                       ) -> Dict[str, Dict[str, float]]:
    """Per-benchmark runtime table: baseline, current, budget, verdict.

    Covers every benchmark carrying a ``runtime_s`` on both sides; the
    budget is ``max(min_runtime_s, ratio * baseline_s)`` (tolerance
    rationale on the module constants above).  This is the artifact CI
    uploads so a regression's evidence survives the failed run.
    """
    if ratio <= 1.0:
        raise ValueError("runtime regression ratio must exceed 1.0")
    base_benchmarks = baseline.get("benchmarks", {})
    cur_benchmarks = current.get("benchmarks", {})
    table: Dict[str, Dict[str, float]] = {}
    for name in sorted(set(base_benchmarks) & set(cur_benchmarks)):
        base_runtime = base_benchmarks[name].get("runtime_s")
        cur_runtime = cur_benchmarks[name].get("runtime_s")
        if base_runtime is None or cur_runtime is None:
            continue
        base_runtime = float(base_runtime)
        cur_runtime = float(cur_runtime)
        budget = max(min_runtime_s, ratio * base_runtime)
        table[name] = {
            "baseline_s": base_runtime,
            "current_s": cur_runtime,
            "budget_s": round(budget, 3),
            "speedup": round(base_runtime / cur_runtime, 3)
            if cur_runtime > 0 else float("inf"),
            "ok": cur_runtime <= budget,
        }
    return table


def runtime_regressions(baseline: Dict, current: Dict,
                        ratio: float = RUNTIME_REGRESSION_RATIO,
                        min_runtime_s: float = RUNTIME_GUARD_FLOOR_S,
                        ) -> List[RuntimeRegression]:
    """Benchmarks whose runtime broke the budget, worst first."""
    offenders = [
        RuntimeRegression(
            benchmark=name,
            baseline_s=row["baseline_s"],
            current_s=row["current_s"],
            budget_s=row["budget_s"],
        )
        for name, row in runtime_comparison(
            baseline, current, ratio=ratio, min_runtime_s=min_runtime_s
        ).items()
        if not row["ok"]
    ]
    offenders.sort(key=lambda r: r.ratio, reverse=True)
    return offenders


def golden_violations(results: Dict,
                      goldens: Optional[Dict] = None) -> List[str]:
    """Check a results document against the pinned golden scalars.

    Only benchmarks present in ``results`` are checked (a smoke subset
    is fine), but a covered benchmark missing a pinned key is a
    violation — goldens exist precisely so scalars cannot quietly
    disappear.
    """
    if goldens is None:
        from repro.obs.golden import GOLDEN_SCALARS
        goldens = GOLDEN_SCALARS
    violations: List[str] = []
    benchmarks = results.get("benchmarks", {})
    for name in sorted(set(goldens) & set(benchmarks)):
        scalars = benchmarks[name].get("scalars", {})
        for key, (pinned, rel_tol) in sorted(goldens[name].items()):
            if key not in scalars:
                violations.append(f"{name}.{key}: pinned scalar missing")
                continue
            measured = float(scalars[key])
            budget = max(1e-12, rel_tol * abs(pinned))
            if abs(measured - pinned) > budget:
                violations.append(
                    f"{name}.{key}: measured {measured:g} vs pinned "
                    f"{pinned:g} (tolerance ±{rel_tol:.1%})"
                )
    return violations
