"""Lightweight metrics: counters, gauges, log-scale histograms, series.

The productionization half of the paper (sections 4-5) rests on being
able to *measure* everything — coalescing fill, rollout wave progress,
SDC catch latencies — and this module is the reproduction's equivalent
of that fleet telemetry layer.  Simulators accept an optional
:class:`MetricsRegistry`; when none is supplied they fall back to the
module-level :data:`NULL_REGISTRY`, whose instruments are shared no-op
singletons.

Zero-overhead-when-disabled contract:

* a disabled registry hands out the *same* pre-allocated null
  instrument objects on every call — no allocation, no bookkeeping;
* every null method (``inc``/``set``/``observe``/``append``) is a bare
  ``pass``, so an instrumented hot loop pays one no-op method call per
  event and nothing more;
* any instrumentation that would require extra work beyond the call
  itself (post-hoc summary loops, ``time.perf_counter`` reads) must be
  gated on ``registry.enabled``.

The simulators' *results* never depend on whether a registry is
attached: metrics observe, they do not steer (asserted by the seeded
byte-identical trace regression tests).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "active",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1)."""
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A last-value-wins instantaneous reading."""

    __slots__ = ("name", "_value", "_updates")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._updates = 0

    def set(self, value: float) -> None:
        self._value = float(value)
        self._updates += 1

    @property
    def value(self) -> float:
        return self._value

    @property
    def updates(self) -> int:
        return self._updates


class Series:
    """An append-only (x, y) curve — e.g. best-so-far during a sweep."""

    __slots__ = ("name", "_points")

    def __init__(self, name: str) -> None:
        self.name = name
        self._points: List[Tuple[float, float]] = []

    def append(self, x: float, y: float) -> None:
        self._points.append((float(x), float(y)))

    @property
    def points(self) -> Tuple[Tuple[float, float], ...]:
        return tuple(self._points)


class Histogram:
    """Log-scale bucketed distribution with percentile extraction.

    Buckets are geometric: ``buckets_per_decade`` buckets per power of
    ten (default 10, i.e. ~26% bucket width, so percentile estimates
    carry ~13% worst-case relative error — plenty for latency and
    occupancy telemetry).  Non-positive observations land in a dedicated
    zero bucket.  Exact min/max are tracked so percentile estimates are
    always clamped into the observed range.
    """

    __slots__ = (
        "name", "buckets_per_decade", "_buckets", "_zeros",
        "_count", "_sum", "_min", "_max",
    )

    def __init__(self, name: str, buckets_per_decade: int = 10) -> None:
        if buckets_per_decade <= 0:
            raise ValueError("buckets_per_decade must be positive")
        self.name = name
        self.buckets_per_decade = buckets_per_decade
        self._buckets: Dict[int, int] = {}
        self._zeros = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value <= 0.0:
            self._zeros += 1
            return
        index = math.floor(math.log10(value) * self.buckets_per_decade)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-th percentile (0-100) from the buckets."""
        if not (0.0 <= p <= 100.0):
            raise ValueError("percentile must be in [0, 100]")
        if self._count == 0:
            return 0.0
        target = max(1, math.ceil(p / 100.0 * self._count))
        seen = self._zeros
        if target <= seen:
            return self._min  # the non-positive bucket
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if target <= seen:
                # Geometric bucket midpoint, clamped to the exact range.
                mid = 10.0 ** ((index + 0.5) / self.buckets_per_decade)
                return min(self._max, max(self._min, mid))
        return self._max  # pragma: no cover - defensive

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def snapshot(self) -> Dict[str, float]:
        """Summary dict (count, sum, mean, min/max, p50/p95/p99)."""
        return {
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullSeries(Series):
    __slots__ = ()

    def append(self, x: float, y: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_SERIES = _NullSeries("null")
_NULL_HISTOGRAM = _NullHistogram("null")


class MetricsRegistry:
    """Named instruments for one run (or one fleet of runs).

    Instruments are created on first request and shared by name
    afterwards.  A disabled registry returns the module's shared null
    instruments instead — see the module docstring for the overhead
    contract.
    """

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = bool(enabled)
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, Series] = {}

    @property
    def enabled(self) -> bool:
        return self._enabled

    def counter(self, name: str) -> Counter:
        if not self._enabled:
            return _NULL_COUNTER
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        if not self._enabled:
            return _NULL_GAUGE
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, buckets_per_decade: int = 10) -> Histogram:
        if not self._enabled:
            return _NULL_HISTOGRAM
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                name, buckets_per_decade=buckets_per_decade
            )
        return instrument

    def series(self, name: str) -> Series:
        if not self._enabled:
            return _NULL_SERIES
        instrument = self._series.get(name)
        if instrument is None:
            instrument = self._series[name] = Series(name)
        return instrument

    def snapshot(self) -> Dict[str, Dict]:
        """Everything recorded so far, as plain JSON-able dicts."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)
            },
            "series": {
                name: [list(point) for point in self._series[name].points]
                for name in sorted(self._series)
            },
        }


NULL_REGISTRY = MetricsRegistry(enabled=False)


def active(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """The registry to instrument against: the caller's, else the null one."""
    return registry if registry is not None else NULL_REGISTRY
