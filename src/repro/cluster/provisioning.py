"""Multi-host capacity pool: where replicas physically land.

One :class:`~repro.fleet.allocator.NumaAllocator` governs one server;
the cluster tier owns many servers.  :class:`HostPool` wraps a rack of
them and hands out replica grants first-fit (each grant still lands on a
single socket, per the NUMA constraint), releases them on scale-down,
and aggregates the fragmentation accounting — the quantity capacity
planning actually cares about, because a rack can be "30% free" and
still unable to place one more 12-accelerator sharded replica.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

from repro.arch.server import ServerSpec
from repro.fleet.allocator import (
    Allocation,
    AllocationError,
    FragmentationStats,
    NumaAllocator,
)


@dataclasses.dataclass(frozen=True)
class ReplicaGrant:
    """One replica's physical placement: a host and its allocation."""

    host_id: int
    allocation: Allocation


def _default_server() -> ServerSpec:
    from repro.arch import mtia2i_server

    return mtia2i_server()


class HostPool:
    """A rack of accelerator servers the autoscaler draws from."""

    def __init__(
        self,
        num_hosts: int,
        server_factory: Optional[Callable[[], ServerSpec]] = None,
    ) -> None:
        if num_hosts <= 0:
            raise ValueError("pool needs at least one host")
        factory = server_factory or _default_server
        self._allocators: List[NumaAllocator] = [
            NumaAllocator(factory()) for _ in range(num_hosts)
        ]

    @property
    def num_hosts(self) -> int:
        return len(self._allocators)

    def acquire(self, model_name: str, accelerators: int) -> ReplicaGrant:
        """Place one replica first-fit across hosts (NUMA-aware within)."""
        for host_id, allocator in enumerate(self._allocators):
            try:
                allocation = allocator.allocate(model_name, accelerators)
            except AllocationError:
                continue
            return ReplicaGrant(host_id=host_id, allocation=allocation)
        raise AllocationError(
            f"{model_name}: no host can place {accelerators} accelerators "
            f"(pool of {self.num_hosts} hosts, "
            f"{self.free_accelerators()} free but fragmented)"
        )

    def release(self, grant: ReplicaGrant) -> None:
        """Return a replica's accelerators to its host."""
        self._allocators[grant.host_id].release(grant.allocation)

    def free_accelerators(self) -> int:
        """Unallocated accelerators across the whole pool."""
        return sum(a.free_accelerators() for a in self._allocators)

    def utilization(self) -> float:
        """Allocated fraction of the pool's accelerators."""
        total = sum(
            a.server.accelerators_per_server for a in self._allocators
        )
        return (total - self.free_accelerators()) / total

    def hosts_in_use(self) -> int:
        """Hosts carrying at least one allocation."""
        return sum(1 for a in self._allocators if a.allocations)

    def fragmentation_stats(self, request_size: int = 1) -> FragmentationStats:
        """Pool-wide fragmentation: sockets are the placement unit."""
        if request_size <= 0:
            raise ValueError("probe request size must be positive")
        per_socket = [
            free
            for allocator in self._allocators
            for free in allocator.free_by_socket()
        ]
        free_total = sum(per_socket)
        largest = max(per_socket, default=0)
        return FragmentationStats(
            free_total=free_total,
            largest_socket_free=largest,
            fragmentation=1.0 - largest / free_total if free_total else 0.0,
            request_size=request_size,
            unplaceable_free=sum(f for f in per_socket if f < request_size),
        )
