"""The multi-host serving-tier simulator: front door to replica pool.

An event-driven composition of everything below it in the stack:

* traffic from :mod:`repro.serving.workload` (Poisson or the diurnal +
  bursty stream);
* a front door routing each request to one replica through a pluggable
  :mod:`repro.cluster.routing` policy, under
  :mod:`repro.cluster.admission` overload control;
* per-replica single-server queues whose service times come from
  :class:`~repro.cluster.service.ServiceModel` (calibrated from the
  device-level serving profiles);
* embedding-shard locality via
  :class:`~repro.cluster.locality.ShardLocalityMap` — serving a request
  off-shard costs the cross-host penalty;
* a reactive + predictive :class:`~repro.cluster.autoscaler.Autoscaler`
  placing and releasing replicas through
  :class:`~repro.cluster.provisioning.HostPool`;
* replica-stopping faults at rates from the section 5 reliability
  models (:func:`repro.resilience.faults.fault_rates_from_reliability`),
  with reboot times from the resilience drain policy.

The chaos tier (:mod:`repro.chaos`) plugs in through four optional
hooks, every one of which defaults to off and leaves the event log
byte-identical when unused:

* ``injections`` — externally scheduled correlated faults
  (:class:`Injection`): forced replica outages, network partitions,
  service-time inflation (thermal throttling);
* ``client`` — client-side retry behaviour
  (:class:`ClientRetryConfig`): a request that has not completed within
  the client timeout is re-sent, duplicating work — the raw material of
  a retry storm;
* ``defense`` — the overload defenses of
  :mod:`repro.chaos.defense` (deadline propagation, retry token bucket,
  backoff with jitter, per-replica circuit breakers);
* ``brownout`` — the graceful-degradation ladder of
  :mod:`repro.chaos.brownout` (priority-tiered admission and
  cheaper-variant serving under overload).

A request now reaches exactly one of *three* terminal outcomes — served,
shed, or timed out — and the report enforces
``served + shed + timed_out == offered``.  The timeout bucket closes the
old unbounded-retry hole: a request stranded by a fault is re-routed
only while it is inside its deadline (``retry_deadline_slos`` times the
P99 SLO); past that it is counted ``timed_out`` instead of bouncing
through the front door forever.

The engine is the same discipline as :mod:`repro.resilience.simulator`:
one event heap keyed ``(time, sequence)``, every random draw from one
seeded generator in a fixed order, so a seed fully determines the run —
the property tests assert byte-identical event logs.  An attached
:class:`~repro.obs.metrics.MetricsRegistry` or
:class:`~repro.obs.tracing.TraceWriter` observes without steering.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fastsim.engine import EventEngine
from repro.fastsim.vectorize import seeded_poisson_arrivals, sorted_percentile

from repro.cluster.admission import AdmissionConfig
from repro.cluster.autoscaler import Autoscaler
from repro.cluster.locality import ShardLocalityMap
from repro.cluster.provisioning import HostPool, ReplicaGrant
from repro.cluster.routing import RoutingPolicy, healthy_candidates, make_policy
from repro.cluster.service import ServiceModel
from repro.fleet.allocator import AllocationError
from repro.obs.metrics import MetricsRegistry, active
from repro.obs.tracing import TraceWriter
from repro.resilience.policies import DrainPolicy
from repro.serving.simulator import DEFAULT_P99_SLO_S
from repro.serving.workload import Request

INJECTION_KINDS = ("down", "up", "slow", "slow_end", "partition", "heal")


def injection_sort_key(injection: "Injection") -> Tuple:
    """The total order injections execute in at equal timestamps.

    Sorting by time alone leaves same-timestamp events — routine once
    multi-region schedules are merged — ordered by whatever sequence the
    caller happened to assemble them in, which is exactly the kind of
    hidden input-order dependence that breaks seed stability.  The
    tie-break is the :data:`INJECTION_KINDS` declaration order (``down``
    before its paired ``up``, ``slow`` before ``slow_end``,
    ``partition`` before ``heal`` — so a zero-duration event nets to
    recovered), then the target tuple, then magnitude.  Every
    ``Injection`` field participates, so the key is a total order: any
    arrangement of the same events sorts to the same schedule.
    """
    return (
        injection.time_s,
        INJECTION_KINDS.index(injection.kind),
        injection.targets,
        injection.magnitude,
    )


def fault_rate_from_reliability() -> float:
    """Replica-stopping faults per replica-hour, from the section 5
    reliability models (the deadlock family — the one that wedges a
    host until reboot)."""
    from repro.resilience.faults import fault_rates_from_reliability

    return fault_rates_from_reliability().deadlock_per_device_hour


@dataclasses.dataclass(frozen=True)
class Injection:
    """One externally scheduled chaos event.

    ``kind`` is one of :data:`INJECTION_KINDS`:

    * ``down`` / ``up`` — force the target replicas into / out of a
      correlated outage (no reboot sampling; recovery comes only from
      the paired ``up``, so a schedule fully determines the outage);
    * ``slow`` / ``slow_end`` — multiply the targets' service times by
      ``magnitude`` (thermal-emergency throttling) and restore them;
    * ``partition`` / ``heal`` — sever the targets from the front door:
      no new routing, and in-flight completions are delivered only after
      the heal (the response cannot cross a partitioned network).
    """

    time_s: float
    kind: str
    targets: Tuple[int, ...] = ()
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError("injection time must be non-negative")
        if self.kind not in INJECTION_KINDS:
            raise ValueError(
                f"unknown injection kind {self.kind!r}; "
                f"choose one of {INJECTION_KINDS}"
            )
        if self.kind == "slow" and self.magnitude < 1.0:
            raise ValueError("slow injections must not speed replicas up")


@dataclasses.dataclass(frozen=True)
class ClientRetryConfig:
    """Client-side retry behaviour — the load side of a retry storm.

    A client that has not seen a response ``timeout_s`` after sending
    re-sends the request (a duplicate the servers cannot distinguish),
    up to ``max_retries`` times (``None`` = unbounded, the storm case).
    ``retry_delay_s`` is the client's own send delay on top of whatever
    backoff an armed defense imposes.
    """

    timeout_s: float = 0.25
    max_retries: Optional[int] = None
    retry_delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise ValueError("client timeout must be positive")
        if self.max_retries is not None and self.max_retries < 0:
            raise ValueError("max retries must be non-negative")
        if self.retry_delay_s < 0:
            raise ValueError("retry delay must be non-negative")


@dataclasses.dataclass(frozen=True)
class ClusterConfig:
    """One cluster run's shape: replicas, policy, limits, faults."""

    replicas: int = 8
    accelerators_per_replica: int = 1
    num_hosts: int = 8
    policy: str = "po2"
    p99_slo_s: float = DEFAULT_P99_SLO_S
    admission: AdmissionConfig = dataclasses.field(
        default_factory=AdmissionConfig
    )
    fault_rate_per_replica_hour: float = 0.0
    # Fault-stranded requests are re-routed only while inside this many
    # SLOs of their arrival; past it they are counted ``timed_out``.
    # ``None`` restores the old unbounded-retry behaviour.
    retry_deadline_slos: Optional[float] = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.replicas <= 0:
            raise ValueError("need at least one replica")
        if self.accelerators_per_replica <= 0:
            raise ValueError("replicas need at least one accelerator")
        if self.num_hosts <= 0:
            raise ValueError("need at least one host")
        if self.p99_slo_s <= 0:
            raise ValueError("SLO must be positive")
        if self.fault_rate_per_replica_hour < 0:
            raise ValueError("fault rate must be non-negative")
        if self.retry_deadline_slos is not None and self.retry_deadline_slos <= 0:
            raise ValueError("retry deadline must be positive (or None)")


@dataclasses.dataclass(frozen=True)
class ClusterReport:
    """One cluster run's outcome."""

    policy: str
    seed: int
    duration_s: float
    offered: int
    served: int
    shed: int
    retried: int
    cross_host_served: int
    latencies_s: Tuple[float, ...]
    busy_seconds: float
    replica_seconds: float
    peak_replicas: int
    final_replicas: int
    faults: int
    scale_events: Tuple[Tuple[float, int, int], ...]
    event_log: Tuple[Tuple[float, str, int], ...]
    # Chaos-tier outcomes (all zero/empty on a defense-free run).
    timed_out: int = 0
    client_retries: int = 0
    rejected: int = 0  # non-terminal front-door drops of retry copies
    duplicate_service: int = 0  # completions for already-resolved requests
    brownout_served: Tuple[Tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        if self.served + self.shed + self.timed_out != self.offered:
            raise ValueError(
                "request conservation violated: "
                f"{self.served} served + {self.shed} shed + "
                f"{self.timed_out} timed out != {self.offered}"
            )

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def timed_out_fraction(self) -> float:
        return self.timed_out / self.offered if self.offered else 0.0

    @property
    def cross_host_fraction(self) -> float:
        """Fraction of served requests whose embedding shard was remote."""
        return self.cross_host_served / self.served if self.served else 0.0

    @property
    def utilization(self) -> float:
        """Busy fraction of replica capacity over the run."""
        return self.busy_seconds / self.replica_seconds if self.replica_seconds else 0.0

    def latency_percentile(self, percentile: float) -> float:
        """Exact request-latency percentile (e.g. 99 for P99)."""
        if not self.latencies_s:
            return 0.0
        ordered = np.sort(np.asarray(self.latencies_s, dtype=np.float64))
        return sorted_percentile(ordered, percentile)

    @property
    def p50_latency_s(self) -> float:
        return self.latency_percentile(50)

    @property
    def p99_latency_s(self) -> float:
        return self.latency_percentile(99)

    def meets_slo(self, p99_slo_s: float, max_shed_fraction: float = 0.0) -> bool:
        """SLO attainment: P99 within budget, losses bounded."""
        return (
            self.p99_latency_s <= p99_slo_s
            and self.shed_fraction + self.timed_out_fraction <= max_shed_fraction
        )

    def summary(self) -> str:
        """Human-readable digest of the run."""
        return (
            f"policy={self.policy} offered={self.offered} "
            f"served={self.served} shed={self.shed} ({self.shed_fraction:.2%}) "
            f"timed_out={self.timed_out} "
            f"retried={self.retried} faults={self.faults}\n"
            f"p50={self.p50_latency_s * 1e3:.1f} ms "
            f"p99={self.p99_latency_s * 1e3:.1f} ms "
            f"util={self.utilization:.0%} "
            f"cross-host={self.cross_host_fraction:.1%} "
            f"replicas peak={self.peak_replicas} final={self.final_replicas}"
        )


class _Replica:
    """One single-server replica queue."""

    __slots__ = (
        "replica_id", "shard", "state", "grant", "queue", "in_service",
        "in_service_cross", "in_service_rung", "service_token", "up_since",
        "up_seconds", "slow_factor", "partitioned", "forced_down",
        "deferred_depart", "outstanding",
    )

    def __init__(self, replica_id: int, shard: int,
                 grant: Optional[ReplicaGrant], now_s: float) -> None:
        self.replica_id = replica_id
        self.shard = shard
        self.state = "up"  # up | draining | down | retired
        self.grant = grant
        self.queue: Deque[Tuple[int, bool]] = deque()
        self.in_service: Optional[int] = None
        self.in_service_cross = False
        self.in_service_rung: Optional[str] = None
        # Bumped at each service start so a departure event left behind by
        # a fault cannot complete a later request (stale-event guard).
        self.service_token = 0
        self.up_since: Optional[float] = now_s
        self.up_seconds = 0.0
        # Chaos-tier state: service-time inflation (thermal throttling),
        # network reachability, and forced outages that must not be
        # resurrected by a natural reboot.
        self.slow_factor = 1.0
        self.partitioned = False
        self.forced_down = False
        self.deferred_depart: Optional[int] = None
        # Queue depth, maintained incrementally (len(queue) + one if a
        # request is in service) — the routing hot path reads this on
        # every candidate, so it is a counter rather than a recount.
        # ``recount()`` is the definition; ``engine="reference"``
        # revalidates the counter against it after every event.
        self.outstanding = 0

    def recount(self) -> int:
        """The definitional queue depth the counter must always equal."""
        return len(self.queue) + (1 if self.in_service is not None else 0)

    @property
    def serving(self) -> bool:
        return self.state in ("up", "draining")

    def accrue_up_time(self, now_s: float) -> None:
        if self.up_since is not None:
            self.up_seconds += now_s - self.up_since
            self.up_since = None

    def mark_up(self, now_s: float) -> None:
        if self.up_since is None:
            self.up_since = now_s


class ClusterSimulator:
    """Seeded DES over one model's replica set."""

    def __init__(
        self,
        config: ClusterConfig,
        service: ServiceModel,
        requests: Sequence[Request],
        locality: Optional[ShardLocalityMap] = None,
        autoscaler: Optional[Autoscaler] = None,
        pool: Optional[HostPool] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[TraceWriter] = None,
        model_name: str = "model",
        throttle=None,
        defense=None,
        client: Optional[ClientRetryConfig] = None,
        injections: Sequence[Injection] = (),
        brownout=None,
        engine: str = "fast",
        fail_fast: bool = False,
    ) -> None:
        self.config = config
        self.service = service
        self.requests = list(requests)
        # Optional power/thermal coupling: anything with a
        # ``multiplier(time_s)`` method (e.g. repro.power.cluster_link
        # .ThrottleSchedule) stretching service times while the tier is
        # frequency-throttled.  Applied after the rng draw, so None
        # preserves byte-identical event logs.
        self.throttle = throttle
        # Chaos hooks — all off by default; see the module docstring.
        # ``defense`` duck-types repro.chaos.defense.DefenseRuntime and
        # ``brownout`` repro.chaos.brownout.BrownoutController, so the
        # cluster tier stays importable without the chaos package.
        self.defense = defense
        self.client = client
        # Total-order sort (not time alone): see injection_sort_key.
        self.injections = sorted(injections, key=injection_sort_key)
        self.brownout = brownout
        self.locality = locality or ShardLocalityMap.uniform(1)
        self.autoscaler = autoscaler
        self.pool = pool or HostPool(config.num_hosts)
        self.model_name = model_name
        self.policy: RoutingPolicy = make_policy(config.policy)
        self._obs = active(registry)
        # Zero-overhead-when-disabled: per-event instrument calls are
        # gated on this flag (a no-op call still costs a name lookup),
        # and enabled-path counters are cached per kind.
        self._obs_enabled = self._obs.enabled
        self._event_counters: Dict[str, object] = {}
        self._tracer = tracer
        self._drain_policy = DrainPolicy()
        self._retry_deadline_s = (
            None if config.retry_deadline_slos is None
            else config.retry_deadline_slos * config.p99_slo_s
        )
        # All randomness flows from here, consumed in a fixed order:
        # request shards, fault schedule, then event-loop draws (policy
        # sampling, reboot times, and — only when a defense is armed —
        # backoff jitter).
        self._rng = np.random.default_rng(config.seed)
        # Plain ints up front: ``_route`` reads one shard per routing
        # attempt, and repeated numpy-scalar conversion there is
        # measurable at event-loop rates.
        self._shards = [
            int(s)
            for s in self.locality.sample_shards(len(self.requests), self._rng)
        ]
        self._fault_schedule = self._presample_faults()
        # ``fast`` and ``calendar`` differ only in event-queue backend
        # (identical pop order by construction); ``reference`` is the
        # verifier mode — it revalidates the incremental queue-depth
        # counters against full recomputation after every event.
        if engine in ("fast", "reference"):
            backend = "heap"
        elif engine == "calendar":
            backend = "calendar"
        else:
            raise ValueError(
                f"unknown cluster engine {engine!r}; "
                f"expected 'fast', 'calendar', or 'reference'"
            )
        self._validate = engine == "reference"
        self.engine = engine
        # Feasibility-probe mode: stop simulating once SLO failure is
        # *certain* — the first lost request (shed or timed out), or
        # more completions over ``config.p99_slo_s`` than the final P99
        # could tolerate.  Sound only for callers that discard
        # everything but the ``meets_slo(config.p99_slo_s,
        # max_shed_fraction=0)`` verdict: losses and over-SLO
        # completions never un-happen, and the over-SLO budget is
        # computed at the maximum possible served count (the nearest-
        # rank allowance is nondecreasing in count), so any run the
        # probe aborts would have failed in full too — and a run that
        # holds the SLO never trips either certificate, making it
        # byte-identical with the flag on or off.  An aborted run's
        # report stays conservation-clean (the drain sweep times out
        # whatever is pending) but describes a truncated run.
        self._fail_fast = fail_fast
        self._slo_over = 0
        self._events = EventEngine(backend=backend)
        self._outstanding_total = 0
        self._replicas: Dict[int, _Replica] = {}
        self._next_replica_id = 0
        self._target = config.replicas
        self._now = 0.0
        # Outcomes.
        self._latencies: List[float] = []
        self._admitted_at: Dict[int, float] = {}
        self._terminal: Dict[int, str] = {}
        self._attempts: Dict[int, int] = {}
        self._served = 0
        self._shed = 0
        self._timed_out = 0
        self._retried = 0
        self._client_retries = 0
        self._rejected = 0
        self._duplicate_service = 0
        self._cross_served = 0
        self._faults = 0
        self._busy_seconds = 0.0
        self._peak_replicas = 0
        self._brownout_counts: Dict[str, int] = {}
        self._scale_events: List[Tuple[float, int, int]] = []
        self._event_log: List[Tuple[float, str, int]] = []
        # Autoscaler window accounting.
        self._window_offered = 0
        self._window_busy = 0.0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _presample_faults(self) -> List[Tuple[float, int]]:
        """Poisson fault arrivals per potential replica id, pre-drawn in
        a fixed order (id-major) so the schedule is seed-pure."""
        rate_per_s = self.config.fault_rate_per_replica_hour / 3600.0
        if rate_per_s <= 0 or not self.requests:
            return []
        horizon = max(r.arrival_s for r in self.requests)
        id_space = self.config.replicas
        if self.autoscaler is not None:
            id_space = max(id_space, self.autoscaler.config.max_replicas)
        # Autoscaling churn can push ids past the initial space; arrivals
        # for ids that never exist are dropped (Poisson thinning).
        id_space *= 2
        arrivals: List[Tuple[float, int]] = []
        for replica_id in range(id_space):
            # Vectorized but stream-identical to the per-id scalar loop.
            times = seeded_poisson_arrivals(self._rng, rate_per_s, horizon)
            arrivals.extend((float(t), replica_id) for t in times)
        arrivals.sort()
        return arrivals

    def _push(self, time_s: float, kind: str, entity: object = -1) -> None:
        self._events.schedule(time_s, (kind, entity))

    def _emit(self, kind: str, entity: int = -1) -> None:
        if self._obs_enabled:
            counter = self._event_counters.get(kind)
            if counter is None:
                counter = self._obs.counter(f"cluster.events.{kind}")
                self._event_counters[kind] = counter
            counter.inc()
        self._event_log.append((self._now, kind, entity))

    def _spawn_replica(self) -> Optional[_Replica]:
        try:
            grant = self.pool.acquire(
                self.model_name, self.config.accelerators_per_replica
            )
        except AllocationError:
            self._emit("pool_exhausted")
            return None
        replica_id = self._next_replica_id
        self._next_replica_id += 1
        replica = _Replica(
            replica_id=replica_id,
            shard=replica_id % self.locality.num_shards,
            grant=grant,
            now_s=self._now,
        )
        self._replicas[replica_id] = replica
        if self._tracer is not None:
            self._tracer.lane(f"replica-{replica_id}")
        return replica

    def _retire_replica(self, replica: _Replica) -> None:
        replica.accrue_up_time(self._now)
        replica.state = "retired"
        if replica.grant is not None:
            self.pool.release(replica.grant)
            replica.grant = None
        self._emit("replica_retired", replica.replica_id)

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------

    def run(self) -> ClusterReport:
        """Execute the run and return the report.

        Arrivals stop at the traffic horizon; the tier then drains, so
        every offered request reaches exactly one terminal outcome
        (served, shed, or timed out) — the conservation the report
        asserts.  Requests still unresolved once the event heap empties
        (e.g. stuck behind a partition that never healed) are finalized
        as timed out.
        """
        horizon = max((r.arrival_s for r in self.requests), default=0.0)
        self._horizon = horizon
        for replica_id in range(self.config.replicas):
            self._spawn_replica()
        self._peak_replicas = len(self._replicas)
        # The pre-known event populations are all time-sorted, so they
        # stage as cursor streams (see EventEngine.schedule_batch) and
        # the heap carries only the in-flight runtime events (departs,
        # recoveries, retry timers) — pop order is identical, the
        # per-event log factor is not.
        self._events.schedule_batch(
            (request.arrival_s, ("arrival", index))
            for index, request in enumerate(self.requests)
        )
        self._events.schedule_batch(
            (time_s, ("fault", replica_id))
            for time_s, replica_id in self._fault_schedule
        )
        self._events.schedule_batch(
            (injection.time_s, ("inject", injection))
            for injection in self.injections
        )
        if self.client is not None:
            timeout_s = self.client.timeout_s
            self._events.schedule_batch(
                (request.arrival_s + timeout_s, ("client", index))
                for index, request in enumerate(self.requests)
            )
        if self.autoscaler is not None:
            tick = self.autoscaler.config.tick_interval_s
            ticks = []
            t = tick
            while t < horizon:
                ticks.append((t, ("scale", -1)))
                t += tick
            self._events.schedule_batch(ticks)

        events = self._events
        validate = self._validate
        fail_fast = self._fail_fast
        slo_budget = 0
        if fail_fast and self.requests:
            # Largest over-SLO completion count the final P99 could
            # absorb, at the maximum possible served count (see the
            # nearest-rank formula in fastsim.vectorize
            # .sorted_percentile; the allowance only grows with count).
            n = len(self.requests)
            slo_budget = (n - 1) - min(n - 1, int(round(0.99 * (n - 1))))
        pop = events.pop
        route = self._route
        while True:
            if fail_fast and (
                self._shed or self._timed_out
                or self._slo_over > slo_budget
            ):
                break
            try:
                time_s, _, (kind, entity) = pop()
            except IndexError:
                break
            self._now = time_s
            if kind == "arrival":
                route(entity, mode="arrival")
            elif kind == "depart":
                self._on_depart(entity)
            elif kind == "fault":
                self._on_fault(entity)
            elif kind == "recover":
                self._on_recover(entity)
            elif kind == "scale":
                self._on_scale()
            elif kind == "inject":
                self._on_inject(entity)
            elif kind == "client":
                self._on_client_check(entity)
            elif kind == "retry_fire":
                self._on_retry_fire(entity)
            if validate:
                self._validate_counters(kind)

        # Conservation sweep: anything still pending (wedged behind an
        # unhealed partition, a never-recovered outage) is lost work.
        for index in range(len(self.requests)):
            if index not in self._terminal:
                self._finalize_timeout(index)

        for replica in self._replicas.values():
            replica.accrue_up_time(self._now)
        replica_seconds = sum(r.up_seconds for r in self._replicas.values())
        final = sum(1 for r in self._replicas.values() if r.serving)
        report = ClusterReport(
            policy=self.config.policy,
            seed=self.config.seed,
            duration_s=horizon,
            offered=len(self.requests),
            served=self._served,
            shed=self._shed,
            retried=self._retried,
            cross_host_served=self._cross_served,
            latencies_s=tuple(self._latencies),
            busy_seconds=self._busy_seconds,
            replica_seconds=replica_seconds,
            peak_replicas=self._peak_replicas,
            final_replicas=final,
            faults=self._faults,
            scale_events=tuple(self._scale_events),
            event_log=tuple(self._event_log),
            timed_out=self._timed_out,
            client_retries=self._client_retries,
            rejected=self._rejected,
            duplicate_service=self._duplicate_service,
            brownout_served=tuple(sorted(self._brownout_counts.items())),
        )
        if self._obs.enabled:
            self._obs.gauge("cluster.p99_latency_s").set(report.p99_latency_s)
            self._obs.gauge("cluster.utilization").set(report.utilization)
            self._obs.gauge("cluster.shed_fraction").set(report.shed_fraction)
            self._obs.gauge("cluster.timed_out_fraction").set(
                report.timed_out_fraction
            )
            self._obs.gauge("cluster.cross_host_fraction").set(
                report.cross_host_fraction
            )
        return report

    # ------------------------------------------------------------------
    # Terminal outcomes
    # ------------------------------------------------------------------

    def _finalize_shed(self, index: int) -> None:
        self._terminal[index] = "shed"
        self._shed += 1
        self._admitted_at.pop(index, None)
        self._emit("shed", index)
        if self._tracer is not None:
            self._tracer.instant(
                "shed", ts=self._now * 1e6,
                tid=self._tracer.lane("front-door"),
            )

    def _finalize_timeout(self, index: int) -> None:
        self._terminal[index] = "timeout"
        self._timed_out += 1
        self._admitted_at.pop(index, None)
        if self._obs_enabled:
            self._obs.counter("cluster.timed_out").inc()
        self._emit("timeout", index)

    def _drop_copy(self, index: int) -> None:
        """A routing attempt found no home for this copy.

        Without a client the request is terminally shed (today's
        behaviour); with one, the copy just vanishes — the client's next
        timeout check will retry or give up.
        """
        if self.client is None:
            self._finalize_shed(index)
        else:
            self._rejected += 1
            if self._obs_enabled:
                self._obs.counter("cluster.rejected").inc()
            self._emit("reject", index)

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    def _total_outstanding(self) -> int:
        return self._outstanding_total

    def _validate_counters(self, kind: str) -> None:
        """Reference-engine invariant check, run after every event: the
        incremental per-replica and tier-wide queue-depth counters must
        equal full recomputation, and non-serving replicas must hold no
        work (the legacy tier-wide sum skipped them, the counter does
        not — equality requires both)."""
        serving_total = 0
        full_total = 0
        for replica in self._replicas.values():
            expected = replica.recount()
            if replica.outstanding != expected:
                raise AssertionError(
                    f"replica {replica.replica_id} outstanding counter "
                    f"{replica.outstanding} != recount {expected} "
                    f"after {kind!r} at t={self._now}"
                )
            full_total += expected
            if replica.serving:
                serving_total += expected
        if self._outstanding_total != full_total or serving_total != full_total:
            raise AssertionError(
                f"tier outstanding counter {self._outstanding_total} != "
                f"recount {full_total} (serving {serving_total}) "
                f"after {kind!r} at t={self._now}"
            )

    def _up_count(self) -> int:
        return sum(1 for r in self._replicas.values() if r.state == "up")

    def _route(self, index: int, mode: str) -> None:
        """Send one copy of request ``index`` through the front door.

        ``mode`` is ``arrival`` for the original send, ``fault_retry``
        for a fault-stranded re-dispatch, ``client_retry`` for a
        client-timeout duplicate.
        """
        # Offered demand for the autoscaler: every routing attempt,
        # including ones that end up shed — an overloaded tier must see
        # the demand it is turning away, not just what it admitted.
        self._window_offered += 1
        request = self.requests[index]
        # Deadline propagation (defense): dead-on-arrival work is
        # dropped at the front door, never queued.
        if self.defense is not None and self.defense.past_deadline(
            self._now, request.arrival_s
        ):
            if index not in self._terminal:
                self._finalize_timeout(index)
            return
        # The always-on retry cutoff: a fault-stranded request past its
        # deadline is lost, not re-routed forever.
        if (mode == "fault_retry" and self._retry_deadline_s is not None
                and self._now > request.arrival_s + self._retry_deadline_s):
            if index not in self._terminal:
                self._finalize_timeout(index)
            return
        # Brownout ladder: observe pressure, shed below the priority floor.
        if self.brownout is not None:
            self._brownout_observe()
            if not self.brownout.admit(request.priority):
                if self._obs_enabled:
                    self._obs.counter("cluster.brownout_shed").inc()
                self._emit("brownout_shed", index)
                if index not in self._terminal:
                    self._drop_copy(index)
                return
        admission = self.config.admission
        shard = self._shards[index]
        candidates = healthy_candidates(
            self._replicas.values(), admission,
            now_s=self._now, defense=self.defense,
        )
        if candidates and not admission.tier_admissible(self._total_outstanding()):
            candidates = []
        chosen = self.policy.choose(candidates, shard, self._rng) \
            if candidates else None
        if chosen is None:
            self._drop_copy(index)
            return
        if mode == "arrival":
            self._admitted_at[index] = self._now
            if self._obs_enabled:
                self._obs.counter("cluster.admitted").inc()
        if self.defense is not None:
            self.defense.on_dispatch(chosen.replica_id, self._now)
        cross = chosen.shard != shard and self.locality.num_shards > 1
        if chosen.in_service is None:
            self._start_service(chosen, index, cross)
        else:
            chosen.queue.append((index, cross))
            chosen.outstanding += 1
            self._outstanding_total += 1
        if self._obs_enabled:
            self._obs.histogram("cluster.routed_outstanding").observe(
                float(chosen.outstanding)
            )

    def _brownout_observe(self) -> None:
        level = self.brownout.on_route(
            self._now, self._total_outstanding(), self._up_count()
        )
        if level != getattr(self, "_brownout_level", 0):
            self._brownout_level = level
            self._obs.series("cluster.brownout_level").append(self._now, level)
            self._emit("brownout_level", level)

    def _start_service(self, replica: _Replica, index: int, cross: bool) -> None:
        service_s = self.service.sample(self._rng, cross_host=cross)
        if self.throttle is not None:
            service_s *= self.throttle.multiplier(self._now)
        if replica.slow_factor != 1.0:
            service_s *= replica.slow_factor
        rung_name = None
        if self.brownout is not None:
            rung_name, multiplier = self.brownout.rung()
            if multiplier != 1.0:
                service_s *= multiplier
        replica.in_service = index
        replica.in_service_cross = cross
        replica.in_service_rung = rung_name
        replica.service_token += 1
        replica.outstanding += 1
        self._outstanding_total += 1
        self._push(
            self._now + service_s, "depart",
            (replica.replica_id, replica.service_token),
        )
        self._busy_seconds += service_s
        self._window_busy += service_s
        if self._tracer is not None:
            self._tracer.complete(
                f"req-{self.requests[index].request_id}",
                ts=self._now * 1e6, dur=service_s * 1e6,
                tid=self._tracer.lane(f"replica-{replica.replica_id}"),
                cat="service",
                args={"cross_host": int(cross)},
            )

    def _on_arrival(self, index: int) -> None:
        self._route(index, mode="arrival")

    def _next_from_queue(self, replica: _Replica) -> None:
        """Start the next viable queued request, discarding dead work.

        With a deadline-propagating defense armed, entries past their
        deadline are dropped at dequeue (pending ones become timeouts,
        resolved ones are silently discarded) — a replica never burns
        service time on an answer nobody is waiting for.  Without the
        defense every entry is served, duplicates and stale work
        included: that wasted capacity is exactly what makes an
        undefended retry storm metastable.
        """
        deadline = None if self.defense is None else self.defense.deadline_s
        while replica.queue:
            index, cross = replica.queue.popleft()
            replica.outstanding -= 1
            self._outstanding_total -= 1
            if deadline is not None and (
                self._now > self.requests[index].arrival_s + deadline
            ):
                if index in self._terminal:
                    if self._obs_enabled:
                        self._obs.counter("cluster.stale_discarded").inc()
                else:
                    self._finalize_timeout(index)
                continue
            self._start_service(replica, index, cross)
            return
        if replica.state == "draining":
            self._retire_replica(replica)

    def _on_depart(self, entity: Tuple[int, int]) -> None:
        replica_id, token = entity
        replica = self._replicas[replica_id]
        if replica.in_service is None or replica.service_token != token:
            return  # the request was re-routed when this replica faulted
        if replica.partitioned:
            # The response cannot cross the partition; deliver at heal.
            replica.deferred_depart = token
            return
        index = replica.in_service
        rung = replica.in_service_rung
        replica.in_service = None
        replica.in_service_rung = None
        replica.outstanding -= 1
        self._outstanding_total -= 1
        if self.defense is not None:
            self.defense.on_replica_success(replica_id, self._now)
        if index in self._terminal:
            # A duplicate copy of an already-resolved request: the
            # capacity is spent, but nothing new is answered.
            self._duplicate_service += 1
            if self._obs_enabled:
                self._obs.counter("cluster.duplicate_service").inc()
            self._emit("duplicate", index)
            self._next_from_queue(replica)
            return
        self._terminal[index] = "serve"
        self._admitted_at.pop(index, None)
        # Latency spans original arrival (not retry time) to completion.
        start = self.requests[index].arrival_s
        latency = self._now - start
        self._latencies.append(latency)
        if self._fail_fast and latency > self.config.p99_slo_s:
            self._slo_over += 1
        self._served += 1
        if rung is not None:
            self._brownout_counts[rung] = self._brownout_counts.get(rung, 0) + 1
        self._emit("serve", index)
        if replica.in_service_cross:
            self._cross_served += 1
            if self._obs_enabled:
                self._obs.counter("cluster.cross_host_served").inc()
        if self._obs_enabled:
            self._obs.histogram("cluster.request_latency_s").observe(
                self._now - start
            )
        self._next_from_queue(replica)

    def _strand_and_retry(self, replica: _Replica) -> None:
        """Re-dispatch everything a failed replica held through the
        front door, under the retry cutoff and any armed defenses."""
        stranded: List[int] = []
        if replica.in_service is not None:
            stranded.append(replica.in_service)
            replica.in_service = None
            replica.in_service_rung = None
            replica.outstanding -= 1
            self._outstanding_total -= 1
        stranded.extend(index for index, _ in replica.queue)
        self._outstanding_total -= len(replica.queue)
        replica.outstanding -= len(replica.queue)
        replica.queue.clear()
        for index in stranded:
            if index in self._terminal:
                continue  # a duplicate copy of resolved work: just gone
            if self.defense is not None:
                if not self.defense.take_retry_token(self._now):
                    self._drop_copy(index)
                    continue
                attempt = self._attempts.get(index, 0)
                self._attempts[index] = attempt + 1
                self._retried += 1
                if self._obs_enabled:
                    self._obs.counter("cluster.retries").inc()
                delay = self.defense.backoff_s(attempt, self._rng)
                if delay > 0:
                    self._push(
                        self._now + delay, "retry_fire", (index, "fault_retry")
                    )
                else:
                    self._route(index, mode="fault_retry")
            else:
                self._retried += 1
                if self._obs_enabled:
                    self._obs.counter("cluster.retries").inc()
                self._route(index, mode="fault_retry")

    def _on_fault(self, replica_id: int) -> None:
        replica = self._replicas.get(replica_id)
        if replica is None or not replica.serving:
            return  # thinning: the id never existed or is already down
        self._faults += 1
        was_draining = replica.state == "draining"
        replica.accrue_up_time(self._now)
        replica.state = "down"
        self._emit("fault", replica_id)
        if self.defense is not None:
            self.defense.on_replica_failure(replica_id, self._now)
        if self._tracer is not None:
            self._tracer.instant(
                "fault", ts=self._now * 1e6,
                tid=self._tracer.lane(f"replica-{replica_id}"),
            )
        self._strand_and_retry(replica)
        reboot_s = self._drain_policy.sample_reboot_s(self._rng)
        if self._obs_enabled:
            self._obs.histogram("cluster.reboot_s").observe(reboot_s)
        if was_draining:
            # A draining replica that wedges is simply retired post-reboot.
            self._retire_replica(replica)
        else:
            self._push(self._now + reboot_s, "recover", replica_id)

    def _on_recover(self, replica_id: int) -> None:
        replica = self._replicas[replica_id]
        if replica.state != "down" or replica.forced_down:
            return
        replica.state = "up"
        replica.mark_up(self._now)
        self._emit("recover", replica_id)

    # ------------------------------------------------------------------
    # Chaos hooks: injections, client retries
    # ------------------------------------------------------------------

    def _on_inject(self, injection: Injection) -> None:
        targets = injection.targets or tuple(self._replicas)
        for replica_id in targets:
            replica = self._replicas.get(replica_id)
            if replica is None or replica.state == "retired":
                continue
            if injection.kind == "down":
                self._inject_down(replica)
            elif injection.kind == "up":
                self._inject_up(replica)
            elif injection.kind == "slow":
                replica.slow_factor = injection.magnitude
                self._emit("slow", replica_id)
            elif injection.kind == "slow_end":
                replica.slow_factor = 1.0
                self._emit("slow_end", replica_id)
            elif injection.kind == "partition":
                replica.partitioned = True
                self._emit("partition", replica_id)
            elif injection.kind == "heal":
                replica.partitioned = False
                self._emit("heal", replica_id)
                if replica.deferred_depart is not None:
                    self._push(
                        self._now, "depart",
                        (replica_id, replica.deferred_depart),
                    )
                    replica.deferred_depart = None

    def _inject_down(self, replica: _Replica) -> None:
        replica.forced_down = True
        if not replica.serving:
            return  # already down: stay down until the paired "up"
        self._faults += 1
        was_draining = replica.state == "draining"
        replica.accrue_up_time(self._now)
        replica.state = "down"
        replica.partitioned = False
        replica.deferred_depart = None
        self._emit("inject_down", replica.replica_id)
        if self.defense is not None:
            self.defense.on_replica_failure(replica.replica_id, self._now)
        if self._tracer is not None:
            self._tracer.instant(
                "inject_down", ts=self._now * 1e6,
                tid=self._tracer.lane(f"replica-{replica.replica_id}"),
            )
        self._strand_and_retry(replica)
        if was_draining:
            self._retire_replica(replica)

    def _inject_up(self, replica: _Replica) -> None:
        replica.forced_down = False
        if replica.state != "down":
            return
        replica.state = "up"
        replica.mark_up(self._now)
        self._emit("inject_up", replica.replica_id)

    def _on_client_check(self, index: int) -> None:
        """The client's response timer fired: retry or give up."""
        if index in self._terminal:
            return
        client = self.client
        assert client is not None
        if self._now > self._horizon:
            # Traffic has stopped: clients give up rather than re-send
            # into the drain forever.  Without this cutoff a permanently
            # dead tier (an unhealed injection) plus an unbounded client
            # would re-push checks without end and the run could never
            # terminate; with it, whatever the drain cannot serve is
            # finalized as lost work.
            self._finalize_timeout(index)
            return
        attempts = self._attempts.get(index, 0)
        if client.max_retries is not None and attempts >= client.max_retries:
            self._finalize_timeout(index)
            return
        arrival = self.requests[index].arrival_s
        if self.defense is not None:
            # Deadline propagation reaches the client too: past the
            # deadline there is no point re-sending.
            if self.defense.past_deadline(self._now, arrival):
                self._finalize_timeout(index)
                return
            if not self.defense.take_retry_token(self._now):
                # Over the retry budget: wait a full timeout and re-check.
                self._push(self._now + client.timeout_s, "client", index)
                return
        self._attempts[index] = attempts + 1
        delay = client.retry_delay_s
        if self.defense is not None:
            delay += self.defense.backoff_s(attempts, self._rng)
        self._push(self._now + delay, "retry_fire", (index, "client_retry"))
        self._push(self._now + delay + client.timeout_s, "client", index)

    def _on_retry_fire(self, entity: Tuple[int, str]) -> None:
        index, mode = entity
        if index in self._terminal:
            return
        if mode == "client_retry":
            self._client_retries += 1
            if self._obs_enabled:
                self._obs.counter("cluster.client_retries").inc()
            self._emit("client_retry", index)
        self._route(index, mode=mode)

    # ------------------------------------------------------------------
    # Autoscaling
    # ------------------------------------------------------------------

    def _on_scale(self) -> None:
        assert self.autoscaler is not None
        interval = self.autoscaler.config.tick_interval_s
        serving = [r for r in self._replicas.values() if r.serving]
        up = [r for r in serving if r.state == "up"]
        capacity_s = max(len(serving), 1) * interval
        utilization = min(self._window_busy / capacity_s, 2.0)
        rate = self._window_offered / interval
        self._window_busy = 0.0
        self._window_offered = 0
        desired = self.autoscaler.desired_replicas(
            self._now, len(up), utilization, rate
        )
        self._obs.series("cluster.replicas").append(self._now, len(up))
        self._obs.gauge("cluster.window_utilization").set(utilization)
        if desired == len(up):
            return
        self._scale_events.append((self._now, len(up), desired))
        self._emit("scale", desired)
        if self._tracer is not None:
            self._tracer.counter(
                "replicas", ts=self._now * 1e6,
                values={"target": float(desired)},
            )
        if desired > len(up):
            for _ in range(desired - len(up)):
                if self._spawn_replica() is None:
                    break
        else:
            # Drain the youngest replicas first (cold caches, cheapest loss).
            for replica in sorted(up, key=lambda r: -r.replica_id)[
                : len(up) - desired
            ]:
                replica.state = "draining"
                self._emit("drain", replica.replica_id)
                if replica.outstanding == 0:
                    self._retire_replica(replica)
        self._peak_replicas = max(
            self._peak_replicas,
            sum(1 for r in self._replicas.values() if r.serving),
        )


def run_cluster(
    config: ClusterConfig,
    service: ServiceModel,
    requests: Sequence[Request],
    locality: Optional[ShardLocalityMap] = None,
    autoscaler: Optional[Autoscaler] = None,
    pool: Optional[HostPool] = None,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[TraceWriter] = None,
    throttle=None,
    defense=None,
    client: Optional[ClientRetryConfig] = None,
    injections: Sequence[Injection] = (),
    brownout=None,
    engine: str = "fast",
    fail_fast: bool = False,
) -> ClusterReport:
    """One-call entry point: simulate a cluster run and return the report.

    ``engine`` selects the event substrate: ``fast`` (binary heap,
    default), ``calendar`` (bucketed calendar queue — identical pop
    order), or ``reference`` (fast plus per-event revalidation of the
    incremental queue-depth counters — the differential-test oracle).
    All three are byte-identical in every report field.

    ``fail_fast`` stops the run at the first lost request — a
    feasibility probe for searches that only ask "does this size hold
    the SLO with zero loss?", where one loss already decides the
    answer.  A run that finishes without loss is untouched by the flag
    (identical events, identical report); an aborted run's report is
    conservation-clean but truncated, so use it only for the verdict.
    """
    return ClusterSimulator(
        config, service, requests,
        locality=locality, autoscaler=autoscaler, pool=pool,
        registry=registry, tracer=tracer, throttle=throttle,
        defense=defense, client=client, injections=injections,
        brownout=brownout, engine=engine, fail_fast=fail_fast,
    ).run()
