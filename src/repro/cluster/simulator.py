"""The multi-host serving-tier simulator: front door to replica pool.

An event-driven composition of everything below it in the stack:

* traffic from :mod:`repro.serving.workload` (Poisson or the diurnal +
  bursty stream);
* a front door routing each request to one replica through a pluggable
  :mod:`repro.cluster.routing` policy, under
  :mod:`repro.cluster.admission` overload control;
* per-replica single-server queues whose service times come from
  :class:`~repro.cluster.service.ServiceModel` (calibrated from the
  device-level serving profiles);
* embedding-shard locality via
  :class:`~repro.cluster.locality.ShardLocalityMap` — serving a request
  off-shard costs the cross-host penalty;
* a reactive + predictive :class:`~repro.cluster.autoscaler.Autoscaler`
  placing and releasing replicas through
  :class:`~repro.cluster.provisioning.HostPool`;
* replica-stopping faults at rates from the section 5 reliability
  models (:func:`repro.resilience.faults.fault_rates_from_reliability`),
  with reboot times from the resilience drain policy.

The engine is the same discipline as :mod:`repro.resilience.simulator`:
one event heap keyed ``(time, sequence)``, every random draw from one
seeded generator in a fixed order, so a seed fully determines the run —
the property tests assert byte-identical event logs.  An attached
:class:`~repro.obs.metrics.MetricsRegistry` or
:class:`~repro.obs.tracing.TraceWriter` observes without steering.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.admission import AdmissionConfig
from repro.cluster.autoscaler import Autoscaler
from repro.cluster.locality import ShardLocalityMap
from repro.cluster.provisioning import HostPool, ReplicaGrant
from repro.cluster.routing import RoutingPolicy, make_policy
from repro.cluster.service import ServiceModel
from repro.fleet.allocator import AllocationError
from repro.obs.metrics import MetricsRegistry, active
from repro.obs.tracing import TraceWriter
from repro.resilience.policies import DrainPolicy
from repro.serving.simulator import DEFAULT_P99_SLO_S
from repro.serving.workload import Request


def fault_rate_from_reliability() -> float:
    """Replica-stopping faults per replica-hour, from the section 5
    reliability models (the deadlock family — the one that wedges a
    host until reboot)."""
    from repro.resilience.faults import fault_rates_from_reliability

    return fault_rates_from_reliability().deadlock_per_device_hour


@dataclasses.dataclass(frozen=True)
class ClusterConfig:
    """One cluster run's shape: replicas, policy, limits, faults."""

    replicas: int = 8
    accelerators_per_replica: int = 1
    num_hosts: int = 8
    policy: str = "po2"
    p99_slo_s: float = DEFAULT_P99_SLO_S
    admission: AdmissionConfig = dataclasses.field(
        default_factory=AdmissionConfig
    )
    fault_rate_per_replica_hour: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.replicas <= 0:
            raise ValueError("need at least one replica")
        if self.accelerators_per_replica <= 0:
            raise ValueError("replicas need at least one accelerator")
        if self.num_hosts <= 0:
            raise ValueError("need at least one host")
        if self.p99_slo_s <= 0:
            raise ValueError("SLO must be positive")
        if self.fault_rate_per_replica_hour < 0:
            raise ValueError("fault rate must be non-negative")


@dataclasses.dataclass(frozen=True)
class ClusterReport:
    """One cluster run's outcome."""

    policy: str
    seed: int
    duration_s: float
    offered: int
    served: int
    shed: int
    retried: int
    cross_host_served: int
    latencies_s: Tuple[float, ...]
    busy_seconds: float
    replica_seconds: float
    peak_replicas: int
    final_replicas: int
    faults: int
    scale_events: Tuple[Tuple[float, int, int], ...]
    event_log: Tuple[Tuple[float, str, int], ...]

    def __post_init__(self) -> None:
        if self.served + self.shed != self.offered:
            raise ValueError(
                "request conservation violated: "
                f"{self.served} served + {self.shed} shed != {self.offered}"
            )

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def cross_host_fraction(self) -> float:
        """Fraction of served requests whose embedding shard was remote."""
        return self.cross_host_served / self.served if self.served else 0.0

    @property
    def utilization(self) -> float:
        """Busy fraction of replica capacity over the run."""
        return self.busy_seconds / self.replica_seconds if self.replica_seconds else 0.0

    def latency_percentile(self, percentile: float) -> float:
        """Exact request-latency percentile (e.g. 99 for P99)."""
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        index = min(
            len(ordered) - 1,
            int(round(percentile / 100 * (len(ordered) - 1))),
        )
        return ordered[index]

    @property
    def p50_latency_s(self) -> float:
        return self.latency_percentile(50)

    @property
    def p99_latency_s(self) -> float:
        return self.latency_percentile(99)

    def meets_slo(self, p99_slo_s: float, max_shed_fraction: float = 0.0) -> bool:
        """SLO attainment: P99 within budget and shedding bounded."""
        return (
            self.p99_latency_s <= p99_slo_s
            and self.shed_fraction <= max_shed_fraction
        )

    def summary(self) -> str:
        """Human-readable digest of the run."""
        return (
            f"policy={self.policy} offered={self.offered} "
            f"served={self.served} shed={self.shed} ({self.shed_fraction:.2%}) "
            f"retried={self.retried} faults={self.faults}\n"
            f"p50={self.p50_latency_s * 1e3:.1f} ms "
            f"p99={self.p99_latency_s * 1e3:.1f} ms "
            f"util={self.utilization:.0%} "
            f"cross-host={self.cross_host_fraction:.1%} "
            f"replicas peak={self.peak_replicas} final={self.final_replicas}"
        )


class _Replica:
    """One single-server replica queue."""

    __slots__ = (
        "replica_id", "shard", "state", "grant", "queue", "in_service",
        "in_service_cross", "service_token", "up_since", "up_seconds",
    )

    def __init__(self, replica_id: int, shard: int,
                 grant: Optional[ReplicaGrant], now_s: float) -> None:
        self.replica_id = replica_id
        self.shard = shard
        self.state = "up"  # up | draining | down | retired
        self.grant = grant
        self.queue: Deque[Tuple[int, bool]] = deque()
        self.in_service: Optional[int] = None
        self.in_service_cross = False
        # Bumped at each service start so a departure event left behind by
        # a fault cannot complete a later request (stale-event guard).
        self.service_token = 0
        self.up_since: Optional[float] = now_s
        self.up_seconds = 0.0

    @property
    def outstanding(self) -> int:
        return len(self.queue) + (1 if self.in_service is not None else 0)

    @property
    def serving(self) -> bool:
        return self.state in ("up", "draining")

    def accrue_up_time(self, now_s: float) -> None:
        if self.up_since is not None:
            self.up_seconds += now_s - self.up_since
            self.up_since = None

    def mark_up(self, now_s: float) -> None:
        if self.up_since is None:
            self.up_since = now_s


class ClusterSimulator:
    """Seeded DES over one model's replica set."""

    def __init__(
        self,
        config: ClusterConfig,
        service: ServiceModel,
        requests: Sequence[Request],
        locality: Optional[ShardLocalityMap] = None,
        autoscaler: Optional[Autoscaler] = None,
        pool: Optional[HostPool] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[TraceWriter] = None,
        model_name: str = "model",
        throttle=None,
    ) -> None:
        self.config = config
        self.service = service
        self.requests = list(requests)
        # Optional power/thermal coupling: anything with a
        # ``multiplier(time_s)`` method (e.g. repro.power.cluster_link
        # .ThrottleSchedule) stretching service times while the tier is
        # frequency-throttled.  Applied after the rng draw, so None
        # preserves byte-identical event logs.
        self.throttle = throttle
        self.locality = locality or ShardLocalityMap.uniform(1)
        self.autoscaler = autoscaler
        self.pool = pool or HostPool(config.num_hosts)
        self.model_name = model_name
        self.policy: RoutingPolicy = make_policy(config.policy)
        self._obs = active(registry)
        self._tracer = tracer
        self._drain_policy = DrainPolicy()
        # All randomness flows from here, consumed in a fixed order:
        # request shards, fault schedule, then event-loop draws.
        self._rng = np.random.default_rng(config.seed)
        self._shards = self.locality.sample_shards(len(self.requests), self._rng)
        self._fault_schedule = self._presample_faults()
        self._heap: List[Tuple[float, int, str, object]] = []
        self._seq = itertools.count()
        self._replicas: Dict[int, _Replica] = {}
        self._next_replica_id = 0
        self._target = config.replicas
        self._now = 0.0
        # Outcomes.
        self._latencies: List[float] = []
        self._admitted_at: Dict[int, float] = {}
        self._served = 0
        self._shed = 0
        self._retried = 0
        self._cross_served = 0
        self._faults = 0
        self._busy_seconds = 0.0
        self._peak_replicas = 0
        self._scale_events: List[Tuple[float, int, int]] = []
        self._event_log: List[Tuple[float, str, int]] = []
        # Autoscaler window accounting.
        self._window_offered = 0
        self._window_busy = 0.0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _presample_faults(self) -> List[Tuple[float, int]]:
        """Poisson fault arrivals per potential replica id, pre-drawn in
        a fixed order (id-major) so the schedule is seed-pure."""
        rate_per_s = self.config.fault_rate_per_replica_hour / 3600.0
        if rate_per_s <= 0 or not self.requests:
            return []
        horizon = max(r.arrival_s for r in self.requests)
        id_space = self.config.replicas
        if self.autoscaler is not None:
            id_space = max(id_space, self.autoscaler.config.max_replicas)
        # Autoscaling churn can push ids past the initial space; arrivals
        # for ids that never exist are dropped (Poisson thinning).
        id_space *= 2
        arrivals: List[Tuple[float, int]] = []
        for replica_id in range(id_space):
            t = 0.0
            while True:
                t += self._rng.exponential(1.0 / rate_per_s)
                if t >= horizon:
                    break
                arrivals.append((t, replica_id))
        arrivals.sort()
        return arrivals

    def _push(self, time_s: float, kind: str, entity: object = -1) -> None:
        heapq.heappush(self._heap, (time_s, next(self._seq), kind, entity))

    def _emit(self, kind: str, entity: int = -1) -> None:
        self._obs.counter(f"cluster.events.{kind}").inc()
        self._event_log.append((self._now, kind, entity))

    def _spawn_replica(self) -> Optional[_Replica]:
        try:
            grant = self.pool.acquire(
                self.model_name, self.config.accelerators_per_replica
            )
        except AllocationError:
            self._emit("pool_exhausted")
            return None
        replica_id = self._next_replica_id
        self._next_replica_id += 1
        replica = _Replica(
            replica_id=replica_id,
            shard=replica_id % self.locality.num_shards,
            grant=grant,
            now_s=self._now,
        )
        self._replicas[replica_id] = replica
        if self._tracer is not None:
            self._tracer.lane(f"replica-{replica_id}")
        return replica

    def _retire_replica(self, replica: _Replica) -> None:
        replica.accrue_up_time(self._now)
        replica.state = "retired"
        if replica.grant is not None:
            self.pool.release(replica.grant)
            replica.grant = None
        self._emit("replica_retired", replica.replica_id)

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------

    def run(self) -> ClusterReport:
        """Execute the run and return the report.

        Arrivals stop at the traffic horizon; the tier then drains, so
        every offered request reaches exactly one terminal outcome
        (served or shed) — the conservation the report asserts.
        """
        horizon = max((r.arrival_s for r in self.requests), default=0.0)
        for replica_id in range(self.config.replicas):
            self._spawn_replica()
        self._peak_replicas = len(self._replicas)
        for index, request in enumerate(self.requests):
            self._push(request.arrival_s, "arrival", index)
        for time_s, replica_id in self._fault_schedule:
            self._push(time_s, "fault", replica_id)
        if self.autoscaler is not None:
            tick = self.autoscaler.config.tick_interval_s
            t = tick
            while t < horizon:
                self._push(t, "scale", -1)
                t += tick

        while self._heap:
            time_s, _, kind, entity = heapq.heappop(self._heap)
            self._now = time_s
            if kind == "arrival":
                self._on_arrival(entity)
            elif kind == "depart":
                self._on_depart(entity)
            elif kind == "fault":
                self._on_fault(entity)
            elif kind == "recover":
                self._on_recover(entity)
            elif kind == "scale":
                self._on_scale()

        for replica in self._replicas.values():
            replica.accrue_up_time(self._now)
        replica_seconds = sum(r.up_seconds for r in self._replicas.values())
        final = sum(1 for r in self._replicas.values() if r.serving)
        report = ClusterReport(
            policy=self.config.policy,
            seed=self.config.seed,
            duration_s=horizon,
            offered=len(self.requests),
            served=self._served,
            shed=self._shed,
            retried=self._retried,
            cross_host_served=self._cross_served,
            latencies_s=tuple(self._latencies),
            busy_seconds=self._busy_seconds,
            replica_seconds=replica_seconds,
            peak_replicas=self._peak_replicas,
            final_replicas=final,
            faults=self._faults,
            scale_events=tuple(self._scale_events),
            event_log=tuple(self._event_log),
        )
        if self._obs.enabled:
            self._obs.gauge("cluster.p99_latency_s").set(report.p99_latency_s)
            self._obs.gauge("cluster.utilization").set(report.utilization)
            self._obs.gauge("cluster.shed_fraction").set(report.shed_fraction)
            self._obs.gauge("cluster.cross_host_fraction").set(
                report.cross_host_fraction
            )
        return report

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    def _total_outstanding(self) -> int:
        return sum(r.outstanding for r in self._replicas.values() if r.serving)

    def _route(self, index: int, retry: bool) -> None:
        """Send request ``index`` through the front door."""
        # Offered demand for the autoscaler: every routing attempt,
        # including ones that end up shed — an overloaded tier must see
        # the demand it is turning away, not just what it admitted.
        self._window_offered += 1
        admission = self.config.admission
        shard = int(self._shards[index])
        candidates = [
            r for r in self._replicas.values()
            if r.state == "up" and admission.replica_admissible(r.outstanding)
        ]
        if candidates and not admission.tier_admissible(self._total_outstanding()):
            candidates = []
        chosen = self.policy.choose(candidates, shard, self._rng) \
            if candidates else None
        if chosen is None:
            self._shed += 1
            self._admitted_at.pop(index, None)
            self._emit("shed", index)
            if self._tracer is not None:
                self._tracer.instant(
                    "shed", ts=self._now * 1e6,
                    tid=self._tracer.lane("front-door"),
                )
            return
        if not retry:
            self._admitted_at[index] = self._now
            self._obs.counter("cluster.admitted").inc()
        cross = chosen.shard != shard and self.locality.num_shards > 1
        if chosen.in_service is None:
            self._start_service(chosen, index, cross)
        else:
            chosen.queue.append((index, cross))
        self._obs.histogram("cluster.routed_outstanding").observe(
            float(chosen.outstanding)
        )

    def _start_service(self, replica: _Replica, index: int, cross: bool) -> None:
        service_s = self.service.sample(self._rng, cross_host=cross)
        if self.throttle is not None:
            service_s *= self.throttle.multiplier(self._now)
        replica.in_service = index
        replica.in_service_cross = cross
        replica.service_token += 1
        self._push(
            self._now + service_s, "depart",
            (replica.replica_id, replica.service_token),
        )
        self._busy_seconds += service_s
        self._window_busy += service_s
        if self._tracer is not None:
            self._tracer.complete(
                f"req-{self.requests[index].request_id}",
                ts=self._now * 1e6, dur=service_s * 1e6,
                tid=self._tracer.lane(f"replica-{replica.replica_id}"),
                cat="service",
                args={"cross_host": int(cross)},
            )

    def _on_arrival(self, index: int) -> None:
        self._route(index, retry=False)

    def _on_depart(self, entity: Tuple[int, int]) -> None:
        replica_id, token = entity
        replica = self._replicas[replica_id]
        if replica.in_service is None or replica.service_token != token:
            return  # the request was re-routed when this replica faulted
        index = replica.in_service
        replica.in_service = None
        self._admitted_at.pop(index, None)
        # Latency spans original arrival (not retry time) to completion.
        start = self.requests[index].arrival_s
        self._latencies.append(self._now - start)
        self._served += 1
        self._emit("serve", index)
        if replica.in_service_cross:
            self._cross_served += 1
            self._obs.counter("cluster.cross_host_served").inc()
        self._obs.histogram("cluster.request_latency_s").observe(
            self._now - start
        )
        if replica.queue:
            next_index, next_cross = replica.queue.popleft()
            self._start_service(replica, next_index, next_cross)
        elif replica.state == "draining":
            self._retire_replica(replica)

    def _on_fault(self, replica_id: int) -> None:
        replica = self._replicas.get(replica_id)
        if replica is None or not replica.serving:
            return  # thinning: the id never existed or is already down
        self._faults += 1
        was_draining = replica.state == "draining"
        replica.accrue_up_time(self._now)
        replica.state = "down"
        self._emit("fault", replica_id)
        if self._tracer is not None:
            self._tracer.instant(
                "fault", ts=self._now * 1e6,
                tid=self._tracer.lane(f"replica-{replica_id}"),
            )
        # Re-dispatch everything this replica held through the front door.
        stranded: List[int] = []
        if replica.in_service is not None:
            stranded.append(replica.in_service)
            replica.in_service = None
        stranded.extend(index for index, _ in replica.queue)
        replica.queue.clear()
        for index in stranded:
            self._retried += 1
            self._obs.counter("cluster.retries").inc()
            self._route(index, retry=True)
        reboot_s = self._drain_policy.sample_reboot_s(self._rng)
        self._obs.histogram("cluster.reboot_s").observe(reboot_s)
        if was_draining:
            # A draining replica that wedges is simply retired post-reboot.
            self._retire_replica(replica)
        else:
            self._push(self._now + reboot_s, "recover", replica_id)

    def _on_recover(self, replica_id: int) -> None:
        replica = self._replicas[replica_id]
        if replica.state != "down":
            return
        replica.state = "up"
        replica.mark_up(self._now)
        self._emit("recover", replica_id)

    def _on_scale(self) -> None:
        assert self.autoscaler is not None
        interval = self.autoscaler.config.tick_interval_s
        serving = [r for r in self._replicas.values() if r.serving]
        up = [r for r in serving if r.state == "up"]
        capacity_s = max(len(serving), 1) * interval
        utilization = min(self._window_busy / capacity_s, 2.0)
        rate = self._window_offered / interval
        self._window_busy = 0.0
        self._window_offered = 0
        desired = self.autoscaler.desired_replicas(
            self._now, len(up), utilization, rate
        )
        self._obs.series("cluster.replicas").append(self._now, len(up))
        self._obs.gauge("cluster.window_utilization").set(utilization)
        if desired == len(up):
            return
        self._scale_events.append((self._now, len(up), desired))
        self._emit("scale", desired)
        if self._tracer is not None:
            self._tracer.counter(
                "replicas", ts=self._now * 1e6,
                values={"target": float(desired)},
            )
        if desired > len(up):
            for _ in range(desired - len(up)):
                if self._spawn_replica() is None:
                    break
        else:
            # Drain the youngest replicas first (cold caches, cheapest loss).
            for replica in sorted(up, key=lambda r: -r.replica_id)[
                : len(up) - desired
            ]:
                replica.state = "draining"
                self._emit("drain", replica.replica_id)
                if replica.outstanding == 0:
                    self._retire_replica(replica)
        self._peak_replicas = max(
            self._peak_replicas,
            sum(1 for r in self._replicas.values() if r.serving),
        )


def run_cluster(
    config: ClusterConfig,
    service: ServiceModel,
    requests: Sequence[Request],
    locality: Optional[ShardLocalityMap] = None,
    autoscaler: Optional[Autoscaler] = None,
    pool: Optional[HostPool] = None,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[TraceWriter] = None,
    throttle=None,
) -> ClusterReport:
    """One-call entry point: simulate a cluster run and return the report."""
    return ClusterSimulator(
        config, service, requests,
        locality=locality, autoscaler=autoscaler, pool=pool,
        registry=registry, tracer=tracer, throttle=throttle,
    ).run()
