"""Reactive + predictive replica autoscaling.

The reactive half is classic utilization tracking: when the measured
busy fraction over the last tick leaves the target band, resize toward
``measured_rate * mean_service / target_utilization`` replicas.  The
predictive half uses the known diurnal traffic model
(:class:`~repro.serving.workload.DiurnalTrafficModel`) to provision for
the rate ``predictive_lead_s`` ahead — replicas take minutes to place,
load, and warm, so scaling on the forecast rather than the measurement
is what keeps the morning ramp from eating the P99 budget.  The two
estimates race and the larger wins; a cooldown stops flapping.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

from repro.cluster.service import ServiceModel
from repro.serving.workload import DiurnalTrafficModel


@dataclasses.dataclass(frozen=True)
class AutoscalerConfig:
    """Scaling bounds, band, cadence, and forecast lead."""

    min_replicas: int = 1
    max_replicas: int = 64
    target_utilization: float = 0.70
    scale_up_utilization: float = 0.85
    scale_down_utilization: float = 0.45
    tick_interval_s: float = 30.0
    cooldown_s: float = 60.0
    predictive: bool = True
    predictive_lead_s: float = 300.0

    def __post_init__(self) -> None:
        if not (1 <= self.min_replicas <= self.max_replicas):
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        if not (0 < self.scale_down_utilization < self.target_utilization
                < self.scale_up_utilization <= 1):
            raise ValueError(
                "need 0 < scale_down < target < scale_up <= 1 utilization"
            )
        if self.tick_interval_s <= 0 or self.cooldown_s < 0:
            raise ValueError("tick interval must be positive, cooldown >= 0")
        if self.predictive_lead_s < 0:
            raise ValueError("predictive lead must be non-negative")


class Autoscaler:
    """Desired-replica-count controller for one replica set."""

    def __init__(
        self,
        config: AutoscalerConfig,
        service: ServiceModel,
        traffic_model: Optional[DiurnalTrafficModel] = None,
    ) -> None:
        self.config = config
        self.service = service
        self.traffic_model = traffic_model
        self._last_change_s = -math.inf

    def _clamp(self, replicas: int) -> int:
        return max(self.config.min_replicas,
                   min(self.config.max_replicas, replicas))

    def _replicas_for_rate(self, rate_per_s: float) -> int:
        demand = rate_per_s * self.service.mean_service_s
        return self._clamp(
            math.ceil(demand / self.config.target_utilization)
            if demand > 0 else self.config.min_replicas
        )

    def desired_replicas(
        self,
        now_s: float,
        current: int,
        measured_utilization: float,
        measured_rate_per_s: float,
    ) -> int:
        """The replica count this tick wants (current if inside the band
        or cooling down)."""
        config = self.config
        if now_s - self._last_change_s < config.cooldown_s:
            return current
        reactive = current
        if (measured_utilization > config.scale_up_utilization
                or measured_utilization < config.scale_down_utilization):
            reactive = self._replicas_for_rate(measured_rate_per_s)
        predictive = 0
        if config.predictive and self.traffic_model is not None:
            forecast = self.traffic_model.rate_at(
                now_s + config.predictive_lead_s
            )
            predictive = self._replicas_for_rate(forecast)
        desired = self._clamp(max(reactive, predictive))
        # Never scale *down* on the forecast alone while measured load is
        # inside the band — the model may underestimate a burst in flight.
        if desired < current and measured_utilization >= config.scale_down_utilization:
            return current
        if desired != current:
            self._last_change_s = now_s
        return desired
