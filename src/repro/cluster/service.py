"""Per-replica service-time model, calibrated from the serving stack.

The cluster tier treats one replica as a single-server queue; what it
needs from the device level is *how long one routed request occupies a
replica*.  Rather than invent that number, it is derived from the same
:class:`~repro.serving.scheduler.ModelJobProfile` the device-level
simulator executes — either closed-form from the job times
(:meth:`ServiceModel.from_profile`) or measured by actually running the
coalescing + job-scheduling pipeline once
(:meth:`ServiceModel.calibrated`).

Service times carry a mean-preserving log-normal jitter (input-size and
cache variation), and requests served by a replica that does not hold
the request's embedding shard pay a ``cross_host_penalty`` — the remote
sparse lookup crossing the host network instead of the local PCIe
switch.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.serving.batcher import CoalescingConfig
from repro.serving.scheduler import ModelJobProfile
from repro.serving.simulator import simulate_serving


@dataclasses.dataclass(frozen=True)
class ServiceModel:
    """How long one request occupies a replica."""

    mean_service_s: float
    jitter_sigma: float = 0.45  # log-normal shape of service-time noise
    cross_host_penalty: float = 1.35  # remote-shard fetch multiplier

    def __post_init__(self) -> None:
        if self.mean_service_s <= 0:
            raise ValueError("mean service time must be positive")
        if self.jitter_sigma < 0:
            raise ValueError("jitter sigma must be non-negative")
        if self.cross_host_penalty < 1:
            raise ValueError("cross-host penalty must be at least 1")
        # ``sample`` runs once per routed request; precompute the
        # log-normal location parameter (same expression, same float).
        object.__setattr__(
            self,
            "_lognormal_mu",
            math.log(self.mean_service_s) - 0.5 * self.jitter_sigma**2,
        )

    def sample(self, rng: np.random.Generator, cross_host: bool = False) -> float:
        """Draw one service time (mean-preserving log-normal jitter)."""
        if self.jitter_sigma == 0:
            base = self.mean_service_s
        else:
            base = float(rng.lognormal(self._lognormal_mu, self.jitter_sigma))
        return base * (self.cross_host_penalty if cross_host else 1.0)

    def capacity_per_replica(self) -> float:
        """Sustainable requests/s of one replica at 100% occupancy."""
        return 1.0 / self.mean_service_s

    @classmethod
    def from_profile(
        cls,
        profile: ModelJobProfile,
        requests_per_batch: float = 4.0,
        **kwargs: float,
    ) -> "ServiceModel":
        """Closed-form calibration from the device job profile.

        One batch occupies the device for its remote jobs, merge job, and
        per-job dispatch overheads plus the merge resubmission round
        trip; coalescing amortizes that across ``requests_per_batch``
        requests.
        """
        if requests_per_batch <= 0:
            raise ValueError("requests per batch must be positive")
        batch_s = (
            profile.remote_jobs_per_batch
            * (profile.remote_time_s + profile.dispatch_overhead_s)
            + profile.merge_time_s
            + profile.dispatch_overhead_s
            + profile.merge_submission_delay_s
        )
        return cls(mean_service_s=batch_s / requests_per_batch, **kwargs)

    @classmethod
    def calibrated(
        cls,
        profile: ModelJobProfile,
        coalescing: CoalescingConfig,
        request_rate_per_s: float = 100.0,
        samples_per_request: int = 256,
        duration_s: float = 30.0,
        seed: int = 3,
        **kwargs: float,
    ) -> "ServiceModel":
        """Measured calibration: run the device-level serving simulator
        once and take busy-seconds-per-offered-request as the mean."""
        outcome = simulate_serving(
            profile,
            coalescing,
            request_rate_per_s=request_rate_per_s,
            samples_per_request=samples_per_request,
            duration_s=duration_s,
            seed=seed,
        )
        mean_service_s = outcome.device_utilization / request_rate_per_s
        return cls(mean_service_s=mean_service_s, **kwargs)


def default_service_model(requests_per_batch: float = 1.0) -> ServiceModel:
    """The ranking-model service model the CLI, example, and benchmark
    share: the same job profile the serving examples run, closed-form
    calibrated.  ``requests_per_batch=1`` (no coalescing credit) keeps
    request counts — and so simulation time — small at cluster scale."""
    profile = ModelJobProfile(
        remote_time_s=0.005,
        merge_time_s=0.009,
        remote_jobs_per_batch=2,
        dispatch_overhead_s=0.001,
        merge_submission_delay_s=0.0008,
    )
    return ServiceModel.from_profile(
        profile, requests_per_batch=requests_per_batch
    )
