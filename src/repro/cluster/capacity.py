"""Capacity planning: hosts needed versus offered QPS at a fixed SLO.

The provisioning question the paper's productionization sections keep
returning to — "a model's throughput at its P99 latency SLO is highly
sensitive to these parameters" (section 4.1) — posed at fleet scale:
for each routing policy, how many replicas does a model need to hold
its P99 SLO (with no shedding) at a given offered request rate?  The
sweep answers it by seeded simulation, searching replica counts upward
from the work-conserving lower bound ``ceil(rate * service_time)``.

A second probe, :func:`policy_comparison`, fixes the replica count and
pushes utilization to a target (default 85%) to expose the tail-latency
ordering between policies — the power-of-two-choices-beats-round-robin
shape the golden tests pin — and the cross-host traffic gap between
queue-blind JSQ and the locality-aware policy.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional, Sequence, Tuple

from repro.cluster.admission import AdmissionConfig
from repro.cluster.autoscaler import Autoscaler, AutoscalerConfig
from repro.cluster.locality import ShardLocalityMap
from repro.cluster.routing import POLICY_NAMES
from repro.cluster.service import ServiceModel
from repro.cluster.simulator import ClusterConfig, ClusterReport, run_cluster
from repro.fastsim.trials import trial_map
from repro.obs.tracing import TraceWriter
from repro.serving.simulator import DEFAULT_P99_SLO_S
from repro.serving.workload import (
    DiurnalTrafficModel,
    Request,
    diurnal_poisson_stream,
    poisson_stream,
)


@dataclasses.dataclass(frozen=True)
class CapacityPoint:
    """One (policy, offered QPS) cell of the sweep."""

    policy: str
    offered_qps: float
    replicas: int
    p99_latency_s: float
    utilization: float
    shed_fraction: float
    cross_host_fraction: float
    feasible: bool  # an SLO-holding replica count was found


@dataclasses.dataclass(frozen=True)
class CapacitySweep:
    """Hosts-needed-vs-QPS, per routing policy."""

    p99_slo_s: float
    points: Tuple[CapacityPoint, ...]

    def point(self, policy: str, offered_qps: float) -> CapacityPoint:
        for candidate in self.points:
            if (candidate.policy == policy
                    and candidate.offered_qps == offered_qps):
                return candidate
        raise KeyError(f"no sweep point for ({policy}, {offered_qps})")

    def table(self) -> str:
        """The sweep as an aligned text table."""
        qps_values = sorted({p.offered_qps for p in self.points})
        policies = sorted({p.policy for p in self.points})
        header = f"{'offered QPS':>12} " + " ".join(
            f"{policy:>12}" for policy in policies
        )
        lines = [f"replicas needed at P99 <= {self.p99_slo_s * 1e3:.0f} ms:",
                 header]
        for qps in qps_values:
            cells = []
            for policy in policies:
                point = self.point(policy, qps)
                cells.append(
                    f"{point.replicas:>12}" if point.feasible else
                    f"{'>' + str(point.replicas):>12}"
                )
            lines.append(f"{qps:>12.0f} " + " ".join(cells))
        return "\n".join(lines)

    def scalars(self) -> Dict[str, float]:
        """Flat scalars for the benchmark-regression harness."""
        out: Dict[str, float] = {"p99_slo_s": self.p99_slo_s}
        for point in self.points:
            key = f"replicas_{point.policy}_at_{point.offered_qps:.0f}qps"
            out[key] = float(point.replicas)
        return out


def _stream(qps: float, duration_s: float, seed: int) -> Sequence[Request]:
    return poisson_stream(
        rate_per_s=qps, duration_s=duration_s,
        samples_per_request=64, seed=seed,
    )


def _step_fractions(qps_step_fraction: float) -> Tuple[float, ...]:
    """The exact probe ladder ``max_qps_at_slo`` walks, highest first.

    Built by the same repeated subtraction the scan performs, so the
    float values (and therefore every derived QPS) are bit-identical
    between the scan and the surrogate-guided search over this ladder.
    """
    fractions = []
    fraction = 1.0
    while fraction > qps_step_fraction / 2:
        fractions.append(fraction)
        fraction -= qps_step_fraction
    return tuple(fractions)


def max_qps_at_slo(
    service: ServiceModel,
    replicas: int,
    p99_slo_s: float,
    duration_s: float,
    seed: int,
    qps_step_fraction: float = 0.05,
) -> Tuple[float, float]:
    """Largest offered QPS the replica set serves within the SLO with no
    shedding, by stepping down from the fluid capacity bound.

    Returns ``(max_qps, p99_at_max)``; ``(0, inf)`` if even the lightest
    probe misses.  (Historically lived in ``repro.power.cluster_link``,
    which still re-exports it; it moved here because it is the serving
    tier's Perf primitive — the power sweep and the codesign DSE both
    score candidates with it.)
    """
    ceiling = replicas * service.capacity_per_replica()
    config = ClusterConfig(replicas=replicas, num_hosts=replicas, seed=seed)
    for fraction in _step_fractions(qps_step_fraction):
        qps = ceiling * fraction
        requests = poisson_stream(qps, duration_s, seed=seed)
        report = run_cluster(config, service, requests)
        if report.meets_slo(p99_slo_s):
            return qps, report.p99_latency_s
    return 0.0, float("inf")


def replicas_needed(
    policy: str,
    offered_qps: float,
    service: ServiceModel,
    p99_slo_s: float = DEFAULT_P99_SLO_S,
    locality: Optional[ShardLocalityMap] = None,
    duration_s: float = 40.0,
    max_replicas: int = 96,
    seed: int = 0,
    admission: Optional[AdmissionConfig] = None,
    use_surrogate: bool = False,
    surrogate=None,
    registry=None,
) -> CapacityPoint:
    """Smallest replica count holding the SLO with zero shedding.

    Starts at the work-conserving bound and walks upward — replica count
    versus tail latency is monotone enough at these scales that linear
    search from the bound is both cheap and exact.  Undersized counts
    probe with ``fail_fast``: the SLO here demands *zero* loss, so the
    first shed or timeout already proves infeasibility and the rest of
    the run is skipped.  A run that finishes without loss is identical
    with or without the flag, so the returned point (and its report
    statistics) match the exhaustive search byte for byte.

    ``use_surrogate=True`` (with a fitted capacity
    :class:`~repro.surrogate.model.SurrogateModel`, see
    :func:`repro.surrogate.dataset.train_capacity_surrogate`) keeps the
    answer exact but replaces the scan's *starting point*: the surrogate
    predicts the replica count and
    :func:`repro.surrogate.verify.verified_min_feasible` certifies the
    boundary with exact seeded runs from both sides.  Under the same
    monotone-feasibility assumption the linear scan already relies on,
    the returned point is identical — only the number of cluster
    simulations spent changes (tallied under ``surrogate.capacity.*``
    on an attached registry).
    """
    if offered_qps <= 0:
        raise ValueError("offered QPS must be positive")
    if use_surrogate and surrogate is None:
        raise ValueError("use_surrogate=True needs a fitted surrogate")
    requests = _stream(offered_qps, duration_s, seed)
    floor = max(1, math.ceil(offered_qps * service.mean_service_s))

    def _config(replicas: int) -> ClusterConfig:
        return ClusterConfig(
            replicas=replicas,
            num_hosts=math.ceil(max_replicas / 24) + 1,
            policy=policy,
            p99_slo_s=p99_slo_s,
            admission=admission or AdmissionConfig(),
            seed=seed,
        )

    def _point(replicas: int, report: ClusterReport) -> CapacityPoint:
        return CapacityPoint(
            policy=policy,
            offered_qps=offered_qps,
            replicas=replicas,
            p99_latency_s=report.p99_latency_s,
            utilization=report.utilization,
            shed_fraction=report.shed_fraction,
            cross_host_fraction=report.cross_host_fraction,
            feasible=True,
        )

    if use_surrogate:
        from repro.obs.metrics import active
        from repro.surrogate.features import capacity_feature_row
        from repro.surrogate.verify import verified_min_feasible

        row = capacity_feature_row(
            policy, offered_qps, service.mean_service_s, p99_slo_s,
            service.jitter_sigma,
        )
        guess = int(round(float(surrogate.predict(row[None, :])[0])))
        probed: Dict[int, ClusterReport] = {}

        def _feasible(replicas: int) -> bool:
            report = run_cluster(
                _config(replicas), service, requests, locality=locality,
                fail_fast=True,
            )
            probed[replicas] = report
            return report.meets_slo(p99_slo_s)

        answer, exact_calls = verified_min_feasible(
            guess, floor, max_replicas, _feasible
        )
        obs = active(registry)
        if obs.enabled:
            obs.counter("surrogate.capacity.predictions").inc()
            obs.counter("surrogate.capacity.exact_runs").inc(exact_calls)
            obs.counter("surrogate.capacity.linear_scan_runs").inc(
                ((answer if answer is not None else max_replicas) - floor)
                + 1
            )
        if answer is not None:
            return _point(answer, probed[answer])
    else:
        for replicas in range(floor, max_replicas + 1):
            report = run_cluster(
                _config(replicas), service, requests, locality=locality,
                fail_fast=True,
            )
            if report.meets_slo(p99_slo_s):
                return _point(replicas, report)
    # No swept size held the SLO: re-run the ceiling exhaustively so the
    # reported statistics describe the full run, not a truncated probe.
    report = run_cluster(
        _config(max_replicas), service, requests, locality=locality
    )
    return CapacityPoint(
        policy=policy,
        offered_qps=offered_qps,
        replicas=max_replicas,
        p99_latency_s=report.p99_latency_s,
        utilization=report.utilization,
        shed_fraction=report.shed_fraction,
        cross_host_fraction=report.cross_host_fraction,
        feasible=False,
    )


def _sweep_cell(args: Tuple) -> CapacityPoint:
    """One (policy, qps) cell — module-level so it pickles for
    :func:`~repro.fastsim.trials.trial_map` workers.  The 8th slot is
    a fitted capacity surrogate (or None): the pure-numpy surrogate
    pickles, so guided cells fan out across processes like exact ones."""
    policy, qps, service, p99_slo_s, locality, duration_s, seed, surrogate = args
    return replicas_needed(
        policy, qps, service,
        p99_slo_s=p99_slo_s, locality=locality,
        duration_s=duration_s, seed=seed,
        use_surrogate=surrogate is not None, surrogate=surrogate,
    )


def capacity_sweep(
    service: ServiceModel,
    qps_points: Sequence[float],
    policies: Sequence[str] = POLICY_NAMES,
    p99_slo_s: float = DEFAULT_P99_SLO_S,
    locality: Optional[ShardLocalityMap] = None,
    duration_s: float = 40.0,
    seed: int = 0,
    processes: Optional[int] = None,
    use_surrogate: bool = False,
    surrogate=None,
) -> CapacitySweep:
    """The full hosts-vs-QPS grid, one seeded run per cell step.

    Every cell is an independent seeded simulation, so the grid maps
    over :func:`~repro.fastsim.trials.trial_map`: ``processes=None``
    (the default) runs sequentially and is the reference behaviour;
    ``processes=N`` fans cells across worker processes with results
    returned in submission order — identical points either way, because
    each cell's randomness is a pure function of its arguments.

    ``use_surrogate=True`` forwards a fitted capacity surrogate into
    every cell (see :func:`replicas_needed`): the grid's points are
    unchanged, only the simulations-per-cell count drops.
    """
    if use_surrogate and surrogate is None:
        raise ValueError("use_surrogate=True needs a fitted surrogate")
    cells = [
        (policy, qps, service, p99_slo_s, locality, duration_s, seed,
         surrogate if use_surrogate else None)
        for policy in policies
        for qps in qps_points
    ]
    points = trial_map(_sweep_cell, cells, processes=processes)
    return CapacitySweep(p99_slo_s=p99_slo_s, points=tuple(points))


def policy_comparison(
    service: ServiceModel,
    replicas: int = 12,
    target_utilization: float = 0.85,
    policies: Sequence[str] = POLICY_NAMES,
    locality: Optional[ShardLocalityMap] = None,
    duration_s: float = 60.0,
    seed: int = 0,
    admission: Optional[AdmissionConfig] = None,
) -> Dict[str, ClusterReport]:
    """Run every policy on the *same* traffic at high utilization.

    The offered rate is chosen to put the fixed-size replica set at
    ``target_utilization`` — the regime where queue-aware routing earns
    its keep — and the identical seeded request stream goes through each
    policy, so differences are routing and nothing else.  By default no
    shard map is attached (every request is local everywhere): this
    probe isolates pure queueing behaviour, which is what the
    po2-beats-round-robin tail ordering is about.  Pass ``locality`` (or
    use :func:`locality_comparison`) to study shard affinity instead.
    """
    if not (0 < target_utilization <= 1):
        raise ValueError("target utilization must be in (0, 1]")
    qps = target_utilization * replicas / service.mean_service_s
    requests = _stream(qps, duration_s, seed)
    reports: Dict[str, ClusterReport] = {}
    for policy in policies:
        config = ClusterConfig(
            replicas=replicas,
            num_hosts=math.ceil(replicas / 24) + 1,
            policy=policy,
            admission=admission or AdmissionConfig(),
            seed=seed,
        )
        reports[policy] = run_cluster(
            config, service, requests, locality=locality
        )
    return reports


def autoscaled_day(
    service: ServiceModel,
    mean_rate_per_s: float = 30.0,
    peak_to_mean: float = 2.2,
    day_length_s: float = 3600.0,
    policy: str = "po2",
    burst_rate_per_hour: float = 6.0,
    burst_factor: float = 2.5,
    burst_duration_s: float = 30.0,
    fault_rate_per_replica_hour: float = 0.0,
    predictive: bool = True,
    max_replicas: int = 48,
    seed: int = 0,
    tracer: Optional["TraceWriter"] = None,
) -> Tuple[ClusterReport, DiurnalTrafficModel]:
    """One (compressed) diurnal day under the autoscaler.

    Traffic follows the sinusoidal day with burst episodes; the
    autoscaler tracks it reactively and — when ``predictive`` — also
    provisions ahead of the forecast ramp.  Returns the run report and
    the traffic model (for plotting or for re-running with knobs
    changed).  ``fault_rate_per_replica_hour`` composes the resilience
    story in: faulted replicas drain mid-run and their requests retry
    through the front door.
    """
    model = DiurnalTrafficModel(
        mean_rate_per_s=mean_rate_per_s,
        peak_to_mean=peak_to_mean,
        day_length_s=day_length_s,
        phase_s=0.0,
    )
    requests = diurnal_poisson_stream(
        model,
        duration_s=day_length_s,
        burst_rate_per_hour=burst_rate_per_hour,
        burst_factor=burst_factor,
        burst_duration_s=burst_duration_s,
        seed=seed,
    )
    floor = max(1, math.ceil(
        model.rate_at(0.0) * service.mean_service_s / 0.7
    ))
    autoscaler = Autoscaler(
        AutoscalerConfig(
            min_replicas=floor,
            max_replicas=max_replicas,
            tick_interval_s=min(30.0, day_length_s / 60.0),
            cooldown_s=min(60.0, day_length_s / 30.0),
            predictive=predictive,
            predictive_lead_s=day_length_s / 12.0,
        ),
        service,
        traffic_model=model,
    )
    config = ClusterConfig(
        replicas=floor,
        num_hosts=math.ceil(max_replicas / 24) + 1,
        policy=policy,
        fault_rate_per_replica_hour=fault_rate_per_replica_hour,
        seed=seed,
    )
    report = run_cluster(
        config, service, requests, autoscaler=autoscaler, tracer=tracer
    )
    return report, model


def locality_comparison(
    service: ServiceModel,
    replicas: int = 12,
    num_shards: int = 4,
    target_utilization: float = 0.60,
    policies: Sequence[str] = ("jsq", "locality"),
    locality: Optional[ShardLocalityMap] = None,
    duration_s: float = 60.0,
    seed: int = 0,
) -> Dict[str, ClusterReport]:
    """Shard-affinity probe: queue-blind JSQ versus the locality policy.

    With an attached shard map, every request JSQ spreads to the least
    loaded replica pays the cross-host embedding-fetch penalty whenever
    that replica does not hold its shard; the locality policy keeps
    traffic on shard-holding replicas and spills only under pressure.
    Run below saturation so both policies shed nothing and the
    cross-host fraction is the differentiator.
    """
    shard_map = locality or ShardLocalityMap.uniform(num_shards)
    return policy_comparison(
        service,
        replicas=replicas,
        target_utilization=target_utilization,
        policies=policies,
        locality=shard_map,
        duration_s=duration_s,
        seed=seed,
    )
