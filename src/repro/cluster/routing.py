"""Front-door routing policies: which replica takes the next request.

Each policy sees the currently *admissible* replicas (up, below the
admission queue cap) and picks one.  The menu is the classic load-balancer
ladder the capacity sweep compares:

* **round_robin** — cycle through replicas, blind to queue state;
* **jsq** (join-shortest-queue / least-outstanding) — global minimum of
  outstanding requests; optimal with perfect state, expensive to know at
  scale;
* **po2** (power of two choices) — sample two replicas, queue the less
  loaded; nearly JSQ's tail at a fraction of the state, the standard
  production compromise;
* **locality** — keep a request on a replica holding its embedding
  shard (least-outstanding within the shard group), spilling to
  power-of-two across the whole set only when the local group is deep in
  queue — trading a little balance for avoiding cross-host sparse
  lookups.

Policies are deliberately stateful-but-seedless: any randomness comes
from the simulator's generator passed into ``choose``, so one seed fixes
the whole run.
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence

import numpy as np

POLICY_NAMES = ("round_robin", "jsq", "po2", "locality")


class ReplicaView(Protocol):
    """What a routing policy may observe about a replica."""

    replica_id: int
    shard: int
    outstanding: int


def healthy_candidates(replicas, admission, now_s=0.0, defense=None):
    """The admissible routing targets at ``now_s``.

    A replica is a candidate when it is up, reachable (not severed by a
    network partition), and below the admission queue cap; when an
    overload ``defense`` (duck-typing
    :class:`repro.chaos.defense.DefenseRuntime`) is armed, its
    per-replica circuit breaker must also admit traffic.  With
    ``defense=None`` and no partitions this reduces exactly to the
    historical up-and-admissible filter.
    """
    # Inlined ``admission.replica_admissible`` — this filter runs once
    # per routed request and is the cluster tier's hottest loop.
    cap = admission.max_outstanding_per_replica
    candidates = [
        r for r in replicas
        if r.state == "up" and not r.partitioned and r.outstanding < cap
    ]
    if defense is not None:
        candidates = [
            r for r in candidates if defense.replica_allowed(r.replica_id, now_s)
        ]
    return candidates


class RoutingPolicy:
    """Base: pick one of ``candidates`` for a request with ``shard_id``."""

    name = "base"

    def choose(
        self,
        candidates: Sequence[ReplicaView],
        shard_id: int,
        rng: np.random.Generator,
    ) -> Optional[ReplicaView]:
        raise NotImplementedError


def _least_outstanding(candidates: Sequence[ReplicaView]) -> ReplicaView:
    # Manual scan, not ``min(..., key=...)`` — this runs once per routed
    # request and the key-tuple allocations dominate at that rate.  Ties
    # break on replica id, and the scan keeps the first (lowest-id)
    # minimum, so the result is the historical ``(outstanding,
    # replica_id)`` ordering exactly.
    best = candidates[0]
    best_outstanding = best.outstanding
    for candidate in candidates:
        outstanding = candidate.outstanding
        if outstanding < best_outstanding or (
            outstanding == best_outstanding
            and candidate.replica_id < best.replica_id
        ):
            best = candidate
            best_outstanding = outstanding
    return best


class RoundRobinPolicy(RoutingPolicy):
    """Cycle through replicas regardless of queue state."""

    name = "round_robin"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, candidates, shard_id, rng):
        if not candidates:
            return None
        chosen = candidates[self._cursor % len(candidates)]
        self._cursor += 1
        return chosen


class LeastOutstandingPolicy(RoutingPolicy):
    """Join the shortest queue (global least-outstanding, ties by id)."""

    name = "jsq"

    def choose(self, candidates, shard_id, rng):
        if not candidates:
            return None
        return _least_outstanding(candidates)


class PowerOfTwoPolicy(RoutingPolicy):
    """Sample two distinct replicas, queue the less loaded one."""

    name = "po2"

    def choose(self, candidates, shard_id, rng):
        if not candidates:
            return None
        if len(candidates) == 1:
            return candidates[0]
        first, second = rng.choice(len(candidates), size=2, replace=False)
        return _least_outstanding([candidates[int(first)], candidates[int(second)]])


class LocalityAwarePolicy(RoutingPolicy):
    """Prefer replicas holding the request's shard; spill under pressure.

    ``spill_outstanding`` is the local-group queue depth beyond which the
    policy gives up on locality for this request and falls back to
    power-of-two over every admissible replica (the spilled request then
    pays the cross-host penalty, which the simulator accounts).
    """

    name = "locality"

    def __init__(self, spill_outstanding: int = 8) -> None:
        if spill_outstanding < 1:
            raise ValueError("spill threshold must be at least 1")
        self.spill_outstanding = spill_outstanding
        self._fallback = PowerOfTwoPolicy()

    def choose(self, candidates, shard_id, rng):
        if not candidates:
            return None
        local = [r for r in candidates if r.shard == shard_id]
        if local:
            best = _least_outstanding(local)
            if best.outstanding < self.spill_outstanding:
                return best
        return self._fallback.choose(candidates, shard_id, rng)


def make_policy(name: str, spill_outstanding: int = 8) -> RoutingPolicy:
    """Instantiate a routing policy by its sweep name."""
    policies = {
        "round_robin": RoundRobinPolicy,
        "jsq": LeastOutstandingPolicy,
        "po2": PowerOfTwoPolicy,
    }
    if name == "locality":
        return LocalityAwarePolicy(spill_outstanding=spill_outstanding)
    if name not in policies:
        raise ValueError(
            f"unknown routing policy {name!r}; choose one of {POLICY_NAMES}"
        )
    return policies[name]()
