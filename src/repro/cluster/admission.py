"""Admission control and load shedding at the cluster front door.

Under overload the serving tier must bound queueing rather than let
latency grow without limit (the paper's section 5.5 incident shows what
unbounded backlog does to a pool): a replica stops being an admissible
routing target once its outstanding count reaches the per-replica cap,
and a request that finds no admissible replica at all is shed — counted,
never silently dropped.  An optional total-outstanding cap models a
global front-door token limit.
"""

from __future__ import annotations

import dataclasses
from typing import Optional


@dataclasses.dataclass(frozen=True)
class AdmissionConfig:
    """The front door's overload limits."""

    max_outstanding_per_replica: int = 16
    max_total_outstanding: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_outstanding_per_replica < 1:
            raise ValueError("per-replica outstanding cap must be at least 1")
        if self.max_total_outstanding is not None and self.max_total_outstanding < 1:
            raise ValueError("total outstanding cap must be at least 1")

    def replica_admissible(self, outstanding: int) -> bool:
        """Whether a replica at ``outstanding`` may take another request."""
        return outstanding < self.max_outstanding_per_replica

    def tier_admissible(self, total_outstanding: int) -> bool:
        """Whether the tier as a whole may admit another request."""
        if self.max_total_outstanding is None:
            return True
        return total_outstanding < self.max_total_outstanding

    @staticmethod
    def priority_admissible(priority: int, floor: int) -> bool:
        """Priority-tiered admission for brownout serving.

        Under overload the chaos tier's brownout controller raises the
        admission ``floor``; only requests at or above it are admitted
        (higher number = more important).  At the default floor of 0
        every request passes, so the gate is invisible until a brownout
        ladder is armed.
        """
        return priority >= floor
