"""Embedding-shard locality: which hosts hold which tables.

Sharded models split their embedding tables across devices behind one
PCIe switch (:mod:`repro.autotune.sharding`); at the cluster tier the
consequence is that a request whose dominant embedding lookups live on
shard *s* is cheap on a replica holding shard *s* and pays a host-network
round trip anywhere else.  :class:`ShardLocalityMap` carries the
shard-popularity distribution the front door samples request affinities
from — built either uniformly or from a real zoo model's table placement
(:func:`repro.autotune.sharding.plan_sharding`), weighting each shard by
the bytes of the tables it holds.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from repro.arch.specs import ChipSpec


@dataclasses.dataclass(frozen=True)
class ShardLocalityMap:
    """Shard count plus the request-affinity distribution over shards."""

    num_shards: int
    shard_weights: Tuple[float, ...]  # popularity, sums to 1

    def __post_init__(self) -> None:
        if self.num_shards <= 0:
            raise ValueError("need at least one shard")
        if len(self.shard_weights) != self.num_shards:
            raise ValueError("one weight per shard required")
        if any(w < 0 for w in self.shard_weights):
            raise ValueError("shard weights must be non-negative")
        total = sum(self.shard_weights)
        if not np.isclose(total, 1.0):
            raise ValueError("shard weights must sum to 1")

    @classmethod
    def uniform(cls, num_shards: int) -> "ShardLocalityMap":
        """Every shard equally popular."""
        if num_shards <= 0:
            raise ValueError("need at least one shard")
        return cls(
            num_shards=num_shards,
            shard_weights=tuple([1.0 / num_shards] * num_shards),
        )

    @classmethod
    def from_model(
        cls,
        model_name: str = "HC3",
        num_shards: int = 4,
        chip: Optional[ChipSpec] = None,
    ) -> "ShardLocalityMap":
        """Build from a zoo model's actual table-to-shard placement.

        Plans sharding with the production LPT heuristic and weights each
        shard by the embedding bytes it ends up holding — lookup traffic
        tracks table size in the paper's workloads (Table 1: embeddings
        dominate both bytes and sparse access volume).
        """
        from repro.arch.mtia import mtia2i_spec
        from repro.autotune.sharding import plan_sharding
        from repro.models import figure6_models

        for model in figure6_models():
            if model.name.lower() == model_name.lower():
                break
        else:
            raise ValueError(f"unknown zoo model {model_name!r}")
        plan = plan_sharding(
            model.graph(), chip or mtia2i_spec(), num_shards=num_shards
        )
        total = sum(plan.bytes_per_shard)
        if total == 0:
            return cls.uniform(num_shards)
        weights = tuple(b / total for b in plan.bytes_per_shard)
        return cls(num_shards=num_shards, shard_weights=weights)

    def sample_shards(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` request shard affinities from the popularity
        distribution (one vectorized draw, deterministic under seed)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        cdf = np.cumsum(self.shard_weights)
        cdf[-1] = 1.0  # guard against float round-down at the top end
        return np.searchsorted(cdf, rng.random(count), side="right").astype(int)
