"""The multi-host serving tier: routing, autoscaling, capacity planning.

Everything below this package models one device or one host; this is
where the reproduction becomes a *fleet*: a traffic front door routing
requests across replica sets (round-robin, JSQ, power-of-two-choices,
shard-locality-aware), admission control and load shedding under
overload, a reactive + predictive autoscaler placing replicas through
the NUMA-aware allocator, replica faults at the section 5 reliability
rates, and the capacity-planning sweep production provisioning runs —
hosts needed versus offered QPS at a fixed P99 SLO.
"""

from repro.cluster.admission import AdmissionConfig
from repro.cluster.autoscaler import Autoscaler, AutoscalerConfig
from repro.cluster.capacity import (
    CapacityPoint,
    CapacitySweep,
    autoscaled_day,
    capacity_sweep,
    locality_comparison,
    max_qps_at_slo,
    policy_comparison,
    replicas_needed,
)
from repro.cluster.locality import ShardLocalityMap
from repro.cluster.provisioning import HostPool, ReplicaGrant
from repro.cluster.routing import (
    POLICY_NAMES,
    LeastOutstandingPolicy,
    LocalityAwarePolicy,
    PowerOfTwoPolicy,
    RoundRobinPolicy,
    RoutingPolicy,
    healthy_candidates,
    make_policy,
)
from repro.cluster.service import ServiceModel, default_service_model
from repro.cluster.simulator import (
    INJECTION_KINDS,
    ClientRetryConfig,
    ClusterConfig,
    ClusterReport,
    ClusterSimulator,
    Injection,
    fault_rate_from_reliability,
    injection_sort_key,
    run_cluster,
)

__all__ = [
    "AdmissionConfig",
    "Autoscaler",
    "AutoscalerConfig",
    "CapacityPoint",
    "CapacitySweep",
    "ClientRetryConfig",
    "ClusterConfig",
    "ClusterReport",
    "ClusterSimulator",
    "HostPool",
    "INJECTION_KINDS",
    "Injection",
    "injection_sort_key",
    "LeastOutstandingPolicy",
    "LocalityAwarePolicy",
    "POLICY_NAMES",
    "PowerOfTwoPolicy",
    "ReplicaGrant",
    "RoundRobinPolicy",
    "RoutingPolicy",
    "ServiceModel",
    "ShardLocalityMap",
    "autoscaled_day",
    "capacity_sweep",
    "default_service_model",
    "fault_rate_from_reliability",
    "healthy_candidates",
    "locality_comparison",
    "make_policy",
    "max_qps_at_slo",
    "policy_comparison",
    "replicas_needed",
    "run_cluster",
]
