"""Unit constants and formatting helpers.

Conventions used throughout the library:

* capacities are in **bytes**, with binary prefixes (``KiB``/``MiB``/``GiB``)
  for on-chip memories, matching how SRAM sizes are specified;
* bandwidths are in **bytes/second**, with decimal prefixes (``GB``/``TB``)
  matching datasheet convention (e.g. LPDDR5 at 204.8 GB/s);
* time is in **seconds**; frequency in **Hz**; compute in **FLOP/s**;
* power in **watts**; cost in **dollars**.
"""

from __future__ import annotations

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

KHZ = 1_000.0
MHZ = 1_000_000.0
GHZ = 1_000_000_000.0

US = 1e-6
MS = 1e-3
NS = 1e-9

GFLOPS = 1e9
TFLOPS = 1e12
MFLOPS = 1e6


def fmt_bytes(num_bytes: float) -> str:
    """Human-readable byte count with binary prefixes."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024 or unit == "TiB":
            return f"{value:.4g} {unit}"
        value /= 1024
    raise AssertionError("unreachable")


def fmt_bandwidth(bytes_per_s: float) -> str:
    """Human-readable bandwidth with decimal prefixes."""
    value = float(bytes_per_s)
    for unit in ("B/s", "KB/s", "MB/s", "GB/s", "TB/s"):
        if abs(value) < 1000 or unit == "TB/s":
            return f"{value:.4g} {unit}"
        value /= 1000
    raise AssertionError("unreachable")


def fmt_time(seconds: float) -> str:
    """Human-readable duration."""
    if seconds == 0:
        return "0 s"
    if abs(seconds) < 1e-6:
        return f"{seconds / NS:.4g} ns"
    if abs(seconds) < 1e-3:
        return f"{seconds / US:.4g} us"
    if abs(seconds) < 1.0:
        return f"{seconds / MS:.4g} ms"
    return f"{seconds:.4g} s"


def fmt_flops(flops_per_s: float) -> str:
    """Human-readable FLOP/s."""
    value = float(flops_per_s)
    for unit in ("FLOP/s", "KFLOP/s", "MFLOP/s", "GFLOP/s", "TFLOP/s", "PFLOP/s"):
        if abs(value) < 1000 or unit == "PFLOP/s":
            return f"{value:.4g} {unit}"
        value /= 1000
    raise AssertionError("unreachable")
