"""Firmware: the PCIe/NoC/Control-Core deadlock and staged rollouts
(paper section 5.5).

Two reproductions live here:

1. **The deadlock.**  A wait-for-graph model of the silicon bug: under
   high PE utilization, the Control Core reads host memory; PCIe
   transaction ordering makes that read wait behind earlier in-flight
   transactions; those are back-pressured by the NoC, which is waiting
   on the Control Core — a cycle.  The firmware mitigation relocates the
   Control Core's data from host memory to device SRAM, removing the
   Control-Core -> PCIe edge and breaking the cycle.

2. **The rollout machinery.**  Conveyor-style staged deployment: builds
   three times daily, stress-tested pre-production (where the deadlock
   was caught), typical fleet rollout in 18 days, emergency rollout in
   3 hours honoring restart-safety policies, 1 hour with overrides.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np


# ---------------------------------------------------------------------------
# The deadlock model
# ---------------------------------------------------------------------------


class Component(enum.Enum):
    """Agents in the deadlock cycle."""

    CONTROL_CORE = "control_core"
    PCIE_CONTROLLER = "pcie_controller"
    NOC = "noc"
    HOST = "host"


@dataclasses.dataclass(frozen=True)
class SystemState:
    """Conditions under which the wait-for edges materialize."""

    pe_utilization: float  # 0..1
    pcie_queue_depth: int  # transactions already in flight
    control_core_reads_host_memory: bool  # the firmware knob

    def __post_init__(self) -> None:
        if not (0 <= self.pe_utilization <= 1):
            raise ValueError("utilization must be in [0, 1]")
        if self.pcie_queue_depth < 0:
            raise ValueError("queue depth must be non-negative")


def wait_for_edges(state: SystemState) -> Set[Tuple[Component, Component]]:
    """The wait-for graph implied by a system state.

    * The Control Core waits on the host completing its memory read —
      only if firmware still places that memory host-side.
    * The host's response is ordered behind earlier PCIe transactions
      when the queue is non-empty (PCIe ordering rules).
    * Those transactions are back-pressured by the NoC when the PE grid
      saturates it.
    * The NoC serializes certain transactions behind a Control Core
      operation.
    """
    edges: Set[Tuple[Component, Component]] = set()
    if state.control_core_reads_host_memory:
        edges.add((Component.CONTROL_CORE, Component.HOST))
    if state.pcie_queue_depth > 0:
        edges.add((Component.HOST, Component.PCIE_CONTROLLER))
    if state.pe_utilization >= 0.95:
        edges.add((Component.PCIE_CONTROLLER, Component.NOC))
    edges.add((Component.NOC, Component.CONTROL_CORE))
    return edges


def has_deadlock(state: SystemState) -> bool:
    """Whether the wait-for graph contains a cycle."""
    edges = wait_for_edges(state)
    graph: Dict[Component, List[Component]] = {}
    for src, dst in edges:
        graph.setdefault(src, []).append(dst)
    visited: Dict[Component, int] = {}  # 0=visiting, 1=done

    def visit(node: Component) -> bool:
        mark = visited.get(node)
        if mark == 0:
            return True  # back edge -> cycle
        if mark == 1:
            return False
        visited[node] = 0
        for nxt in graph.get(node, []):
            if visit(nxt):
                return True
        visited[node] = 1
        return False

    return any(visit(node) for node in Component if node not in visited)


def apply_firmware_mitigation(state: SystemState) -> SystemState:
    """The deployed fix: relocate the Control Core's working memory from
    host DRAM to device SRAM, removing the host read entirely."""
    return dataclasses.replace(state, control_core_reads_host_memory=False)


def deadlock_incidence(
    num_servers: int = 10_000,
    high_load_fraction: float = 0.05,
    deep_queue_probability: float = 0.02,
    mitigated: bool = False,
    seed: int = 0,
) -> float:
    """Fraction of servers hitting the deadlock in one window.

    The paper saw ~1% of servers fail under a saturating stress test and
    ~0.1% of production servers on susceptible models.
    """
    rng = np.random.default_rng(seed)
    high_load = rng.uniform(size=num_servers) < high_load_fraction
    deep_queue = rng.uniform(size=num_servers) < deep_queue_probability
    hits = 0
    for is_high, is_deep in zip(high_load, deep_queue):
        if not (is_high and is_deep):
            continue
        state = SystemState(
            pe_utilization=1.0 if is_high else 0.5,
            pcie_queue_depth=8 if is_deep else 0,
            control_core_reads_host_memory=not mitigated,
        )
        if has_deadlock(state):
            hits += 1
    return hits / num_servers


# ---------------------------------------------------------------------------
# Staged rollout simulation
# ---------------------------------------------------------------------------

BUILDS_PER_DAY = 3
PAPER_RELEASES_PER_YEAR = 23
TYPICAL_ROLLOUT_DAYS = 18
EMERGENCY_ROLLOUT_HOURS = 3
OVERRIDE_ROLLOUT_HOURS = 1


@dataclasses.dataclass(frozen=True)
class RolloutStage:
    """One ring of a staged deployment."""

    name: str
    fleet_fraction: float
    soak_hours: float


TYPICAL_STAGES = (
    RolloutStage("staging", 0.001, 48.0),
    RolloutStage("canary", 0.01, 72.0),
    RolloutStage("early", 0.05, 72.0),
    RolloutStage("quarter", 0.25, 96.0),
    RolloutStage("fleet", 1.00, 144.0),
)


@dataclasses.dataclass(frozen=True)
class RolloutPlan:
    """A firmware-bundle deployment schedule."""

    stages: Sequence[RolloutStage]
    # Max fraction of servers restarting concurrently (service-health
    # policy enforced by the cluster manager).
    max_concurrent_restart_fraction: float = 0.02
    restart_minutes: float = 10.0

    @property
    def total_hours(self) -> float:
        """Wall time to full fleet coverage."""
        hours = 0.0
        previous = 0.0
        for stage in self.stages:
            delta = max(0.0, stage.fleet_fraction - previous)
            waves = math.ceil(delta / self.max_concurrent_restart_fraction)
            hours += waves * self.restart_minutes / 60.0 + stage.soak_hours
            previous = stage.fleet_fraction
        return hours

    @property
    def total_days(self) -> float:
        """Wall time in days."""
        return self.total_hours / 24.0

    def restart_wave_size(self, fleet_devices: int) -> int:
        """Devices one restart wave may take down concurrently."""
        if fleet_devices <= 0:
            raise ValueError("fleet must be non-empty")
        return max(1, int(self.max_concurrent_restart_fraction * fleet_devices))

    def restart_waves(self, fleet_devices: int) -> List[int]:
        """Wave sizes covering the whole fleet under the concurrency cap.

        This is the schedule the resilience simulator executes: each
        wave restarts at most ``max_concurrent_restart_fraction`` of the
        fleet, waves are ``restart_minutes`` apart, and the sum covers
        every device exactly once.
        """
        wave = self.restart_wave_size(fleet_devices)
        full, remainder = divmod(fleet_devices, wave)
        waves = [wave] * full
        if remainder:
            waves.append(remainder)
        return waves


def typical_rollout() -> RolloutPlan:
    """The standard 18-day incremental rollout."""
    return RolloutPlan(stages=TYPICAL_STAGES)


def emergency_rollout() -> RolloutPlan:
    """Fleet-wide within ~3 hours, still honoring restart-safety limits."""
    return RolloutPlan(
        stages=(RolloutStage("fleet", 1.0, 0.5),),
        max_concurrent_restart_fraction=0.07,
        restart_minutes=10.0,
    )


def override_rollout() -> RolloutPlan:
    """Extreme case: the whole fleet within ~1 hour, policies overridden."""
    return RolloutPlan(
        stages=(RolloutStage("fleet", 1.0, 0.0),),
        max_concurrent_restart_fraction=0.2,
        restart_minutes=10.0,
    )


@dataclasses.dataclass(frozen=True)
class StagedDetectionResult:
    """Whether staged deployment catches a low-incidence issue before the
    fleet stage, and how many servers were exposed."""

    detected_at_stage: Optional[str]
    servers_exposed: int
    fleet_servers: int


def staged_detection(
    issue_incidence: float,
    fleet_servers: int = 80_000,
    stages: Sequence[RolloutStage] = TYPICAL_STAGES,
    detection_threshold_servers: int = 3,
    seed: int = 0,
) -> StagedDetectionResult:
    """Simulate whether the ring rollout catches an issue affecting
    ``issue_incidence`` of servers (e.g. the 0.1% deadlock) before it
    reaches the whole fleet."""
    if not (0 <= issue_incidence <= 1):
        raise ValueError("incidence must be in [0, 1]")
    rng = np.random.default_rng(seed)
    exposed = 0
    for stage in stages:
        stage_servers = int(stage.fleet_fraction * fleet_servers)
        exposed = stage_servers
        affected = rng.binomial(stage_servers, issue_incidence)
        if affected >= detection_threshold_servers and stage.fleet_fraction < 1.0:
            return StagedDetectionResult(
                detected_at_stage=stage.name,
                servers_exposed=exposed,
                fleet_servers=fleet_servers,
            )
    return StagedDetectionResult(
        detected_at_stage=None, servers_exposed=exposed, fleet_servers=fleet_servers
    )
