"""ECC: a working SEC-DED code plus the enable-ECC decision model
(paper section 5.1).

LPDDR lacks on-die ECC, so MTIA 2i's memory controller computes it —
costing 10-15% of throughput.  This module implements the actual
(72, 64) Hamming SEC-DED code such controllers use (correct any single
bit flip, detect any double flip), and the decision analysis that led
Meta to enable it despite the penalty.
"""

from __future__ import annotations

import dataclasses

DATA_BITS = 64
PARITY_BITS = 8  # 7 Hamming + 1 overall parity -> SEC-DED
CODE_BITS = DATA_BITS + PARITY_BITS

# Positions 1..72 (1-indexed); powers of two are parity positions.
_PARITY_POSITIONS = [1, 2, 4, 8, 16, 32, 64]


def _data_positions() -> list:
    # Positions 1..71 excluding Hamming parity slots; position 72 is the
    # overall parity bit (7 Hamming + 64 data + 1 overall = 72).
    return [p for p in range(1, CODE_BITS) if p not in _PARITY_POSITIONS]


_DATA_POSITIONS = _data_positions()

# Public layout: DATA_BIT_POSITIONS[i] is the 0-indexed codeword bit that
# carries data bit i.  The SDC memory-word channel uses this to land
# data-space bit flips at the right codeword positions, so campaigns with
# and without ECC corrupt exactly the same logical bits.
DATA_BIT_POSITIONS = tuple(p - 1 for p in _DATA_POSITIONS)


def encode_word(data: int) -> int:
    """Encode a 64-bit word into a 72-bit SEC-DED codeword."""
    if not (0 <= data < (1 << DATA_BITS)):
        raise ValueError("data must be a 64-bit unsigned value")
    code = 0
    for i, position in enumerate(_DATA_POSITIONS):
        if (data >> i) & 1:
            code |= 1 << (position - 1)
    for parity_position in _PARITY_POSITIONS:
        parity = 0
        for position in range(1, CODE_BITS):
            if position & parity_position and (code >> (position - 1)) & 1:
                parity ^= 1
        if parity:
            code |= 1 << (parity_position - 1)
    # Overall parity in the last position for double-error detection.
    overall = bin(code).count("1") & 1
    if overall:
        code |= 1 << (CODE_BITS - 1)
    return code


@dataclasses.dataclass(frozen=True)
class DecodeResult:
    """Outcome of decoding one codeword."""

    data: int
    corrected: bool
    double_error_detected: bool


def decode_word(code: int) -> DecodeResult:
    """Decode a 72-bit codeword, correcting single errors and detecting
    double errors."""
    if not (0 <= code < (1 << CODE_BITS)):
        raise ValueError("codeword must be a 72-bit value")
    syndrome = 0
    for parity_position in _PARITY_POSITIONS:
        parity = 0
        for position in range(1, CODE_BITS):
            if position & parity_position and (code >> (position - 1)) & 1:
                parity ^= 1
        if parity:
            syndrome |= parity_position
    overall = bin(code).count("1") & 1
    corrected = False
    double = False
    if syndrome and overall:
        # Single-bit error at the syndrome position: correct it.
        code ^= 1 << (syndrome - 1)
        corrected = True
    elif syndrome and not overall:
        double = True
    elif not syndrome and overall:
        # The overall parity bit itself flipped.
        code ^= 1 << (CODE_BITS - 1)
        corrected = True
    data = 0
    for i, position in enumerate(_DATA_POSITIONS):
        if (code >> (position - 1)) & 1:
            data |= 1 << i
    return DecodeResult(data=data, corrected=corrected, double_error_detected=double)


# ---------------------------------------------------------------------------
# The enable-ECC decision (section 5.1's multi-pronged assessment).
# ---------------------------------------------------------------------------

ECC_THROUGHPUT_PENALTY = (0.10, 0.15)  # the paper's quoted band


@dataclasses.dataclass(frozen=True)
class EccDecisionInputs:
    """Evidence gathered by the three-pronged assessment."""

    # Prong 1: fleet measurement — fraction of servers with ECC errors.
    server_error_fraction: float
    # Prong 2: injection study — failure probability of an uncorrected
    # error (non-benign outcome rate).
    uncorrected_failure_rate: float
    # Prong 3: product tolerance — max anomalies/day operators can absorb.
    anomaly_budget_per_day: float
    errors_per_affected_server_per_day: float
    fleet_servers: int
    throughput_penalty: float = 0.125


@dataclasses.dataclass(frozen=True)
class EccDecision:
    """The verdict and its arithmetic."""

    expected_anomalies_per_day: float
    anomaly_budget_per_day: float
    throughput_penalty: float
    enable_ecc: bool
    rationale: str


def decide_ecc(inputs: EccDecisionInputs) -> EccDecision:
    """Reproduce the decision logic: enable ECC when uncorrected errors
    would exceed what product-level anomaly detection can absorb."""
    if not (0 <= inputs.server_error_fraction <= 1):
        raise ValueError("server error fraction must be in [0, 1]")
    affected = inputs.fleet_servers * inputs.server_error_fraction
    anomalies = (
        affected
        * inputs.errors_per_affected_server_per_day
        * inputs.uncorrected_failure_rate
    )
    enable = anomalies > inputs.anomaly_budget_per_day
    if enable:
        rationale = (
            f"{anomalies:.0f} expected product anomalies/day exceeds the "
            f"operator budget of {inputs.anomaly_budget_per_day:.0f}; the "
            f"{inputs.throughput_penalty:.0%} throughput penalty is the "
            "cheaper cost"
        )
    else:
        rationale = (
            f"{anomalies:.0f} expected anomalies/day fits within the "
            f"budget of {inputs.anomaly_budget_per_day:.0f}; forgo ECC"
        )
    return EccDecision(
        expected_anomalies_per_day=anomalies,
        anomaly_budget_per_day=inputs.anomaly_budget_per_day,
        throughput_penalty=inputs.throughput_penalty,
        enable_ecc=enable,
        rationale=rationale,
    )


def hashing_integrity_overhead(
    region_bytes: int,
    accesses_per_s: float,
    hash_bytes_per_s: float = 10e9,
) -> float:
    """Throughput cost of the software hashing alternative the paper
    prototyped and rejected ('found the overhead too high'): fraction of
    a device's time spent hashing protected regions."""
    if region_bytes < 0 or accesses_per_s < 0:
        raise ValueError("inputs must be non-negative")
    return min(1.0, region_bytes * accesses_per_s / hash_bytes_per_s)
