"""Fleet-scale memory-error telemetry (paper section 5.1).

"From an initial sample of 1,700 servers, we found that 24% exhibited
ECC errors, typically on a single MTIA card per server."

The Monte-Carlo sampler below draws per-card error events over an
observation window and reproduces both statistics: the fraction of
servers affected and the typical one-card-per-server pattern.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

PAPER_SAMPLE_SERVERS = 1700
PAPER_AFFECTED_FRACTION = 0.24
CARDS_PER_SERVER = 24


@dataclasses.dataclass(frozen=True)
class FleetErrorStats:
    """Measured error telemetry over one observation window."""

    servers: int
    affected_servers: int
    total_errored_cards: int
    max_errored_cards_on_one_server: int

    @property
    def affected_fraction(self) -> float:
        """Fraction of servers with at least one errored card."""
        return self.affected_servers / self.servers if self.servers else 0.0

    @property
    def mean_errored_cards_per_affected_server(self) -> float:
        """Paper: 'typically on a single MTIA card per server'."""
        if not self.affected_servers:
            return 0.0
        return self.total_errored_cards / self.affected_servers


def card_error_probability_for_server_fraction(
    target_server_fraction: float, cards_per_server: int = CARDS_PER_SERVER
) -> float:
    """The per-card error probability implying a target server fraction.

    P(server affected) = 1 - (1 - p)^cards, inverted for p.  The paper's
    24% of servers implies roughly a 1.1% per-card error rate over the
    observation window — low enough that affected servers usually have
    exactly one bad card, matching the reported pattern.
    """
    if not (0 < target_server_fraction < 1):
        raise ValueError("target fraction must be in (0, 1)")
    return 1.0 - (1.0 - target_server_fraction) ** (1.0 / cards_per_server)


def sample_fleet_errors(
    servers: int = PAPER_SAMPLE_SERVERS,
    cards_per_server: int = CARDS_PER_SERVER,
    card_error_probability: Optional[float] = None,
    seed: int = 0,
) -> FleetErrorStats:
    """Monte-Carlo one observation window over the fleet."""
    if card_error_probability is None:
        card_error_probability = card_error_probability_for_server_fraction(
            PAPER_AFFECTED_FRACTION, cards_per_server
        )
    if not (0 <= card_error_probability <= 1):
        raise ValueError("probability must be in [0, 1]")
    rng = np.random.default_rng(seed)
    errored = rng.uniform(size=(servers, cards_per_server)) < card_error_probability
    per_server = errored.sum(axis=1)
    return FleetErrorStats(
        servers=servers,
        affected_servers=int(np.count_nonzero(per_server)),
        total_errored_cards=int(per_server.sum()),
        max_errored_cards_on_one_server=int(per_server.max(initial=0)),
    )
