"""Overclocking-at-scale study (paper section 5.2).

Meta raised MTIA 2i's frequency from the 1.1 GHz design point to
1.35 GHz after a study on ~3,000 chips x 10 test types at three
frequencies (1.1, 1.25, 1.35 GHz) showed negligible pass-rate decrease —
evidence of ample margin from design and manufacturing.  End-to-end
throughput improved 5-20% in replay tests.

The model: each chip's maximum stable frequency is drawn from a
manufacturing-variation distribution whose mean sits well above the
design point (the guard-banded reality the study discovered).  A test
passes when the chip's margin at the test frequency exceeds the test's
sensitivity, with small measurement noise.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

import numpy as np

from repro.units import GHZ

DESIGN_FREQUENCY_HZ = 1.1 * GHZ
STUDY_FREQUENCIES_HZ = (1.1 * GHZ, 1.25 * GHZ, 1.35 * GHZ)
PAPER_STUDY_CHIPS = 3000

# The ten per-chip test types the paper lists (performance, power,
# memory, kernel, module manufacturing, functional PCIe, plus the
# remaining qualification suites), with relative frequency sensitivity.
TEST_SUITE = (
    ("performance", 1.00),
    ("power", 0.85),
    ("memory", 0.95),
    ("kernel", 0.98),
    ("module_manufacturing", 0.70),
    ("functional_pcie", 0.60),
    ("thermal", 0.80),
    ("stress", 1.00),
    ("io_integrity", 0.65),
    ("boot", 0.50),
)


@dataclasses.dataclass(frozen=True)
class MarginModel:
    """Manufacturing-variation model of per-chip stable frequency."""

    mean_fmax_hz: float = 1.52 * GHZ  # design guard band discovered by the study
    sigma_hz: float = 0.05 * GHZ
    test_noise_hz: float = 0.01 * GHZ

    def sample_fmax(self, num_chips: int, rng: np.random.Generator) -> np.ndarray:
        """Draw each chip's true maximum stable frequency."""
        return rng.normal(self.mean_fmax_hz, self.sigma_hz, size=num_chips)


@dataclasses.dataclass(frozen=True)
class StudyResult:
    """Pass rates per frequency per test, over the chip population."""

    frequencies_hz: Sequence[float]
    pass_rates: Dict[float, Dict[str, float]]  # freq -> test -> rate
    chips: int

    def overall_pass_rate(self, frequency_hz: float) -> float:
        """Fraction of (chip, test) runs passing at a frequency."""
        rates = self.pass_rates[frequency_hz]
        return sum(rates.values()) / len(rates)

    def pass_rate_drop(self, low_hz: float, high_hz: float) -> float:
        """Pass-rate decrease going from ``low_hz`` to ``high_hz``."""
        return self.overall_pass_rate(low_hz) - self.overall_pass_rate(high_hz)


def run_overclocking_study(
    num_chips: int = PAPER_STUDY_CHIPS,
    frequencies_hz: Sequence[float] = STUDY_FREQUENCIES_HZ,
    margin: Optional[MarginModel] = None,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> StudyResult:
    """Simulate the 3,000-chip x 10-test x 3-frequency campaign.

    Randomness is reproducible: pass either a ``seed`` or an explicit
    ``rng`` (which wins when both are given), matching the convention of
    :func:`repro.fleet.server_sim.production_utilization`.
    """
    if num_chips <= 0:
        raise ValueError("need at least one chip")
    margin = margin or MarginModel()
    if rng is None:
        rng = np.random.default_rng(seed)
    fmax = margin.sample_fmax(num_chips, rng)
    pass_rates: Dict[float, Dict[str, float]] = {}
    for frequency in frequencies_hz:
        per_test: Dict[str, float] = {}
        for test_name, sensitivity in TEST_SUITE:
            noise = rng.normal(0, margin.test_noise_hz, size=num_chips)
            # A test at sensitivity s effectively stresses the chip at
            # s * frequency relative to its margin.
            effective = frequency * sensitivity + noise
            per_test[test_name] = float(np.mean(effective <= fmax))
        pass_rates[frequency] = per_test
    return StudyResult(
        frequencies_hz=tuple(frequencies_hz), pass_rates=pass_rates, chips=num_chips
    )


def overclock_throughput_gain(
    report_at_design, report_at_overclock
) -> float:
    """End-to-end throughput gain from re-clocking (executor reports).

    Compute-bound models approach the full 23% frequency ratio; DRAM- or
    host-bound models see less — the paper's 5-20% band.
    """
    base = report_at_design.throughput_samples_per_s
    fast = report_at_overclock.throughput_samples_per_s
    if base <= 0:
        raise ValueError("baseline throughput must be positive")
    return fast / base - 1.0
