"""Rack power provisioning (paper section 5.3).

The lifecycle the paper describes: set the initial rack budget from
small-scale stress tests of *unoptimized* models, then — six months into
production — re-derive it from two measurements and take the higher:

1. an experiment driving every accelerator in a server at the P90 of the
   peak per-accelerator throughput the two largest models see in
   production;
2. the P90 power of fully-utilized production servers.

For MTIA 2i this cut the budget nearly 40%, helped by model optimization
(out-of-the-box models burned more power per query) and by fine-grained
allocation across 24 small chips smoothing load spikes.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.arch.server import ServerSpec

PAPER_REDUCTION_FRACTION = 0.40


@dataclasses.dataclass(frozen=True)
class PowerSample:
    """Per-accelerator power draw observations (watts)."""

    values_w: np.ndarray

    def percentile(self, q: float) -> float:
        """A percentile of the observed draw."""
        return float(np.percentile(self.values_w, q))


def stress_test_budget(
    server: ServerSpec,
    unoptimized_power_factor: float = 1.25,
    safety_margin: float = 1.15,
) -> float:
    """The initial (pre-production) rack budget per server.

    Stress tests run out-of-the-box models that burn more power than
    optimized ones, and planners stack a safety margin on top — both
    factors the paper cites for the over-provisioning.
    """
    if unoptimized_power_factor < 1 or safety_margin < 1:
        raise ValueError("factors must be >= 1")
    accelerators = server.accelerators_per_server * server.chip.tdp_watts
    return (server.platform_power_watts + accelerators * unoptimized_power_factor) * safety_margin


def sample_production_power(
    server: ServerSpec,
    mean_utilization: float = 0.55,
    diurnal_swing: float = 0.35,
    noise: float = 0.08,
    num_samples: int = 10_000,
    optimized_power_factor: float = 0.80,
    seed: int = 0,
) -> PowerSample:
    """Synthetic per-accelerator production power telemetry.

    Optimized models draw ``optimized_power_factor`` of the stress-test
    draw at equal load; utilization rides a diurnal curve with noise.
    """
    rng = np.random.default_rng(seed)
    t = rng.uniform(0, 2 * np.pi, size=num_samples)
    utilization = np.clip(
        mean_utilization * (1 + diurnal_swing * np.sin(t)) * rng.lognormal(0, noise, num_samples),
        0.02,
        1.0,
    )
    chip = server.chip
    idle = chip.tdp_watts * chip.idle_power_fraction
    draw = (idle + utilization * (chip.tdp_watts - idle)) * optimized_power_factor
    return PowerSample(values_w=draw)


def p90_experiment_budget(
    server: ServerSpec, per_accelerator_p90_w: float
) -> float:
    """Prong 1: every accelerator held at the P90 of its peak production
    throughput for the largest models."""
    if per_accelerator_p90_w <= 0:
        raise ValueError("power must be positive")
    return server.platform_power_watts + server.accelerators_per_server * per_accelerator_p90_w


def p90_fleet_budget(
    server: ServerSpec, fully_utilized_server_powers_w: Sequence[float]
) -> float:
    """Prong 2: P90 power of fully-utilized production servers."""
    if not len(fully_utilized_server_powers_w):
        raise ValueError("need at least one observation")
    return float(np.percentile(np.asarray(fully_utilized_server_powers_w), 90))


@dataclasses.dataclass(frozen=True)
class ProvisioningOutcome:
    """Initial versus revised rack budget."""

    initial_budget_w: float
    experiment_budget_w: float
    fleet_budget_w: float

    @property
    def revised_budget_w(self) -> float:
        """The paper's rule: the higher of the two P90 figures."""
        return max(self.experiment_budget_w, self.fleet_budget_w)

    @property
    def reduction_fraction(self) -> float:
        """How much provisioned power the revision frees."""
        if self.initial_budget_w <= 0:
            return 0.0
        return 1.0 - self.revised_budget_w / self.initial_budget_w


def provisioning_study(
    server: ServerSpec,
    mean_utilization: float = 0.55,
    seed: int = 0,
) -> ProvisioningOutcome:
    """Run the full before/after provisioning analysis for one server
    generation."""
    initial = stress_test_budget(server)
    telemetry = sample_production_power(server, mean_utilization=mean_utilization, seed=seed)
    experiment = p90_experiment_budget(server, telemetry.percentile(90))
    # Fully-utilized servers: all accelerators near their production P90
    # simultaneously, with server-level dispersion.
    rng = np.random.default_rng(seed + 1)
    per_server = (
        server.platform_power_watts * rng.uniform(0.85, 1.0, size=500)
        + server.accelerators_per_server
        * telemetry.percentile(75)
        * rng.uniform(0.9, 1.05, size=500)
    )
    fleet = p90_fleet_budget(server, per_server)
    return ProvisioningOutcome(
        initial_budget_w=initial,
        experiment_budget_w=experiment,
        fleet_budget_w=fleet,
    )
