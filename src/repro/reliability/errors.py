"""Memory-error injection (paper section 5.1).

"We developed a memory error injection tool to identify which parts of a
model (e.g., weights, activations, inputs, or outputs) are most
sensitive to errors and how to mitigate them.  We found that bit flips
in Table Batched Embedding (TBE) indices, TBE table rows, or specific
bits in floating-point representations of dense weights can cause NaNs
or output corruptions, with some failures occurring with high
probability."

This module runs a real (small) numeric DLRM forward pass and flips
actual bits in each storage region, classifying every outcome — so the
sensitivity ranking is measured.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Optional

import numpy as np


class ErrorRegion(enum.Enum):
    """Where a bit flip lands."""

    TBE_INDICES = "tbe_indices"
    TBE_ROWS = "tbe_rows"
    DENSE_WEIGHTS = "dense_weights"
    ACTIVATIONS = "activations"
    INPUTS = "inputs"


class Outcome(enum.Enum):
    """Classified effect of one injected error."""

    BENIGN = "benign"  # output shift below tolerance
    CORRUPTED = "corrupted"  # silent output corruption above tolerance
    NAN = "nan"  # NaN/Inf in the output
    CRASH = "crash"  # out-of-bounds index (detectable fault)


@dataclasses.dataclass
class NumericDlrm:
    """A small, real-arithmetic DLRM used as the injection target."""

    num_tables: int = 8
    rows_per_table: int = 4096
    embed_dim: int = 32
    dense_features: int = 64
    hidden: int = 128
    batch: int = 64
    pooling: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        rng = np.random.default_rng(self.seed)
        self.tables = [
            rng.normal(0, 0.1, size=(self.rows_per_table, self.embed_dim)).astype(np.float16)
            for _ in range(self.num_tables)
        ]
        self.w_bottom = rng.normal(0, 0.1, size=(self.dense_features, self.hidden)).astype(
            np.float16
        )
        top_in = self.hidden + self.num_tables * self.embed_dim
        self.w_top = rng.normal(0, 0.1, size=(top_in, 1)).astype(np.float16)

    def sample_inputs(self, seed: int = 1):
        """Draw (dense_features, indices) for one batch."""
        rng = np.random.default_rng(seed)
        dense = rng.normal(0, 1, size=(self.batch, self.dense_features)).astype(np.float16)
        indices = rng.integers(
            0, self.rows_per_table, size=(self.num_tables, self.batch, self.pooling)
        ).astype(np.int32)
        return dense, indices

    def forward(self, dense: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """The reference forward pass; raises IndexError on bad indices.

        Overflow/invalid warnings are silenced: propagating Inf/NaN from a
        flipped bit is exactly the behaviour under study.
        """
        if np.any(indices < 0) or np.any(indices >= self.rows_per_table):
            raise IndexError("embedding index out of bounds")
        with np.errstate(over="ignore", invalid="ignore"):
            bottom = np.maximum(dense.astype(np.float32) @ self.w_bottom.astype(np.float32), 0)
            pooled = [
                self.tables[t].astype(np.float32)[indices[t]].sum(axis=1)
                for t in range(self.num_tables)
            ]
            combined = np.concatenate([bottom] + pooled, axis=1)
            logits = combined @ self.w_top.astype(np.float32)
            return 1.0 / (1.0 + np.exp(-logits[:, 0]))


def _flip_bit_int32(array: np.ndarray, flat_index: int, bit: int) -> None:
    view = array.reshape(-1).view(np.uint32)
    view[flat_index] ^= np.uint32(1 << bit)


def _flip_bit_fp16(array: np.ndarray, flat_index: int, bit: int) -> None:
    view = array.reshape(-1).view(np.uint16)
    view[flat_index] ^= np.uint16(1 << bit)


def inject_and_classify(
    model: NumericDlrm,
    region: ErrorRegion,
    rng: np.random.Generator,
    tolerance: float = 1e-3,
    input_seed: int = 1,
) -> Outcome:
    """Flip one random bit in the given region and classify the effect."""
    dense, indices = model.sample_inputs(seed=input_seed)
    reference = model.forward(dense, indices)
    # Work on copies so the model survives for the next injection.
    tables = [t.copy() for t in model.tables]
    w_bottom = model.w_bottom.copy()
    dense = dense.copy()
    indices = indices.copy()
    if region is ErrorRegion.TBE_INDICES:
        _flip_bit_int32(indices, int(rng.integers(indices.size)), int(rng.integers(32)))
    elif region is ErrorRegion.TBE_ROWS:
        table = int(rng.integers(len(tables)))
        _flip_bit_fp16(tables[table], int(rng.integers(tables[table].size)), int(rng.integers(16)))
    elif region is ErrorRegion.DENSE_WEIGHTS:
        _flip_bit_fp16(w_bottom, int(rng.integers(w_bottom.size)), int(rng.integers(16)))
    elif region is ErrorRegion.INPUTS:
        _flip_bit_fp16(dense, int(rng.integers(dense.size)), int(rng.integers(16)))
    elif region is ErrorRegion.ACTIVATIONS:
        # Activations are transient; model as an input-like flip scaled to
        # one batch element mid-network: flip a bottom-weight bit for one
        # forward only (equivalent corruption surface).
        _flip_bit_fp16(w_bottom, int(rng.integers(w_bottom.size)), int(rng.integers(16)))
    else:  # pragma: no cover - exhaustive enum
        raise AssertionError(region)
    corrupted_model = NumericDlrm.__new__(NumericDlrm)
    corrupted_model.__dict__.update(model.__dict__)
    corrupted_model.tables = tables
    corrupted_model.w_bottom = w_bottom
    try:
        output = corrupted_model.forward(dense, indices)
    except IndexError:
        return Outcome.CRASH
    if not np.all(np.isfinite(output)):
        return Outcome.NAN
    delta = np.max(np.abs(output - reference))
    return Outcome.CORRUPTED if delta > tolerance else Outcome.BENIGN


@dataclasses.dataclass(frozen=True)
class SensitivityReport:
    """Outcome distribution per region over many injections."""

    trials_per_region: int
    outcomes: Dict[ErrorRegion, Dict[Outcome, int]]

    def failure_rate(self, region: ErrorRegion) -> float:
        """Fraction of injections with a non-benign outcome."""
        counts = self.outcomes[region]
        bad = sum(v for k, v in counts.items() if k is not Outcome.BENIGN)
        return bad / self.trials_per_region if self.trials_per_region else 0.0

    def most_sensitive(self) -> ErrorRegion:
        """The region with the highest failure rate."""
        return max(self.outcomes, key=self.failure_rate)


def sensitivity_study(
    model: Optional[NumericDlrm] = None,
    trials_per_region: int = 200,
    seed: int = 5,
) -> SensitivityReport:
    """Run the injection campaign across every region."""
    model = model or NumericDlrm()
    rng = np.random.default_rng(seed)
    outcomes: Dict[ErrorRegion, Dict[Outcome, int]] = {}
    for region in ErrorRegion:
        counts: Dict[Outcome, int] = {outcome: 0 for outcome in Outcome}
        for _ in range(trials_per_region):
            counts[inject_and_classify(model, region, rng)] += 1
        outcomes[region] = counts
    return SensitivityReport(trials_per_region=trials_per_region, outcomes=outcomes)
