"""repro: a performance-model reproduction of Meta's MTIA 2i (ISCA 2025).

The library models an MTIA-2i-class inference accelerator — its PE grid,
memory hierarchy (Local Memory / partitioned SRAM / LPDDR), NoC, and
engines — alongside synthetic DLRM/DHEN/HSTU workloads, the model-chip
co-design machinery (graph passes, autotuning), a serving simulator, and
the productionization studies the paper reports (memory errors and ECC,
overclocking, power provisioning, firmware rollouts, A/B testing), and a
fleet resilience simulator that replays the section 5.5 incident arc.

Quick start::

    from repro import Mtia2iSystem, small_dlrm
    from repro.models.dlrm import build_dlrm
    import dataclasses

    config = small_dlrm()
    system = Mtia2iSystem()
    result = system.deploy(
        lambda b: build_dlrm(dataclasses.replace(config, batch=b)),
        model_name=config.name,
    )
    print(result.report.throughput_samples_per_s)
"""

from repro.arch import gpu_spec, mtia1_spec, mtia2i_spec, spec_ratio
from repro.core import (
    Mtia2iSystem,
    ModelEvaluation,
    evaluate_model,
    optimize_graph,
    run_case_study,
)
from repro.graph import OpGraph
from repro.models import figure6_models, small_dlrm, table1_models
from repro.perf import ExecutionReport, Executor, evaluate_llm, llama2_7b, llama3_8b
from repro.resilience import run_resilience, run_section_55_drill
from repro.tco import compare_platforms

__version__ = "1.0.0"

__all__ = [
    "ExecutionReport",
    "Executor",
    "ModelEvaluation",
    "Mtia2iSystem",
    "OpGraph",
    "__version__",
    "compare_platforms",
    "evaluate_llm",
    "evaluate_model",
    "figure6_models",
    "gpu_spec",
    "llama2_7b",
    "llama3_8b",
    "mtia1_spec",
    "mtia2i_spec",
    "optimize_graph",
    "run_case_study",
    "run_resilience",
    "run_section_55_drill",
    "small_dlrm",
    "spec_ratio",
    "table1_models",
]
