"""Data types used throughout the performance model.

MTIA 2i natively computes GEMMs in INT8 and FP16/BF16 (accumulating in
FP32), and the SIMD engine additionally handles FP32.  The performance
model only needs element widths and a few classification helpers, but the
quantization and error-injection subsystems also need concrete numpy
equivalents, so both views live here.
"""

from __future__ import annotations

import enum

import numpy as np


class DType(enum.Enum):
    """An element type with a known storage width."""

    INT8 = "int8"
    UINT8 = "uint8"
    INT32 = "int32"
    FP16 = "fp16"
    BF16 = "bf16"
    FP32 = "fp32"

    @property
    def bytes(self) -> int:
        """Storage size of one element in bytes."""
        return _WIDTH_BYTES[self]

    @property
    def bits(self) -> int:
        """Storage size of one element in bits."""
        return self.bytes * 8

    @property
    def is_float(self) -> bool:
        """Whether this is a floating-point type."""
        return self in (DType.FP16, DType.BF16, DType.FP32)

    @property
    def is_int(self) -> bool:
        """Whether this is an integer type."""
        return not self.is_float

    def to_numpy(self) -> np.dtype:
        """The closest numpy dtype.

        BF16 has no numpy equivalent; we model its numerics with FP32
        storage truncated to a BF16-width mantissa (see
        :func:`quantize_to_bf16`), so its *storage* dtype here is FP32.
        Performance modelling always uses :attr:`bytes` (2 for BF16), never
        the numpy width.
        """
        return np.dtype(_NUMPY_EQUIV[self])


_WIDTH_BYTES = {
    DType.INT8: 1,
    DType.UINT8: 1,
    DType.INT32: 4,
    DType.FP16: 2,
    DType.BF16: 2,
    DType.FP32: 4,
}

_NUMPY_EQUIV = {
    DType.INT8: np.int8,
    DType.UINT8: np.uint8,
    DType.INT32: np.int32,
    DType.FP16: np.float16,
    DType.BF16: np.float32,
    DType.FP32: np.float32,
}


def quantize_to_bf16(values: np.ndarray) -> np.ndarray:
    """Round an FP32 array to BF16 precision, keeping FP32 storage.

    BF16 keeps the FP32 exponent and truncates the mantissa to 7 bits.
    We implement round-to-nearest-even on the raw bit pattern, which is
    what hardware BF16 conversion units do.
    """
    as_f32 = np.asarray(values, dtype=np.float32)
    bits = as_f32.view(np.uint32)
    # Round to nearest even: add 0x7FFF plus the LSB of the surviving part.
    lsb = (bits >> 16) & 1
    rounded = bits + 0x7FFF + lsb
    return (rounded & 0xFFFF0000).view(np.float32)


def parse_dtype(name: str) -> DType:
    """Parse a dtype from a case-insensitive string such as ``"fp16"``."""
    try:
        return DType(name.lower())
    except ValueError:
        valid = ", ".join(d.value for d in DType)
        raise ValueError(f"unknown dtype {name!r}; expected one of: {valid}") from None
