"""Tensor descriptions (symbolic) and jagged tensors (concrete numerics)."""

from repro.tensors.dtypes import DType, parse_dtype, quantize_to_bf16
from repro.tensors.jagged import (
    JaggedTensor,
    jagged_dense_elementwise_add,
    jagged_hadamard,
    jagged_linear,
    jagged_mean_pool,
    jagged_softmax,
    jagged_sum_pool,
)
from repro.tensors.tensor import (
    GemmShape,
    TensorKind,
    TensorSpec,
    activation,
    concat_specs,
    embedding_table,
    model_input,
    transposed,
    weight,
)

__all__ = [
    "DType",
    "GemmShape",
    "JaggedTensor",
    "TensorKind",
    "TensorSpec",
    "activation",
    "concat_specs",
    "embedding_table",
    "jagged_dense_elementwise_add",
    "jagged_hadamard",
    "jagged_linear",
    "jagged_mean_pool",
    "jagged_softmax",
    "jagged_sum_pool",
    "model_input",
    "parse_dtype",
    "quantize_to_bf16",
    "transposed",
    "weight",
]
