"""Symbolic tensor descriptions used by the op graph and cost model.

The performance model never materializes model-sized tensors; it reasons
about their shapes, dtypes, and placement.  ``TensorSpec`` is the symbolic
handle that flows through the graph IR, liveness analysis, and the memory
hierarchy.
"""

from __future__ import annotations

import contextlib
import dataclasses
import itertools
from typing import Tuple

from repro.tensors.dtypes import DType

_SPEC_IDS = itertools.count()

# Base for scoped uid allocation — far above anything the global
# counters reach organically, so scoped and unscoped uids never collide.
_STABLE_UID_BASE = 1 << 40


@contextlib.contextmanager
def stable_uid_scope(base: int = _STABLE_UID_BASE):
    """Allocate tensor *and* op uids from a fixed base inside the scope.

    Tensor/op uids normally come from process-global counters, so a
    graph built twice is not byte-identical: the second build's tensors
    carry different uids, which land cache blocks in different LLC sets
    (``hash((uid, index)) % num_sets``) and perturb simulated hit rates
    at the 4th decimal.  Deterministic pipelines that *rebuild* graphs —
    the codesign search re-evaluates zoo models once per candidate chip
    and must be bit-for-bit reproducible under a fixed seed — wrap each
    build in this scope so every rebuild allocates the same uids.

    Graphs from different scope entries share uid ranges, so never mix
    tensors from two scoped builds in one structure keyed by uid; each
    scoped graph must be consumed in isolation (which is how the
    executor and autotuners use graphs).  The global counters are
    untouched — unscoped callers see no change.
    """
    global _SPEC_IDS
    from repro.graph import ops as _ops

    saved_specs, saved_ops = _SPEC_IDS, _ops._OP_IDS
    _SPEC_IDS = itertools.count(base)
    _ops._OP_IDS = itertools.count(base)
    try:
        yield
    finally:
        _SPEC_IDS = saved_specs
        _ops._OP_IDS = saved_ops


class TensorKind:
    """Role of a tensor in a model, which drives its placement policy.

    The paper (section 4.1) distinguishes activations (reused buffer,
    pinned in LLS when possible), weights (constant, clean LLC evictions),
    and inputs/outputs (short lifetime, wasteful to pin).
    """

    ACTIVATION = "activation"
    WEIGHT = "weight"
    INPUT = "input"
    OUTPUT = "output"
    EMBEDDING = "embedding"

    ALL = (ACTIVATION, WEIGHT, INPUT, OUTPUT, EMBEDDING)


@dataclasses.dataclass(frozen=True)
class TensorSpec:
    """A symbolic tensor: shape, dtype, and role.

    Instances are identified by ``uid`` so two tensors with the same shape
    remain distinct in liveness analysis and cache simulation.
    """

    shape: Tuple[int, ...]
    dtype: DType = DType.FP16
    kind: str = TensorKind.ACTIVATION
    name: str = ""
    uid: int = dataclasses.field(default_factory=lambda: next(_SPEC_IDS))

    def __post_init__(self) -> None:
        if not self.shape:
            raise ValueError("tensor shape must have at least one dimension")
        if any(d <= 0 for d in self.shape):
            raise ValueError(f"tensor dimensions must be positive, got {self.shape}")
        if self.kind not in TensorKind.ALL:
            raise ValueError(f"unknown tensor kind {self.kind!r}")

    @property
    def num_elements(self) -> int:
        """Total element count."""
        count = 1
        for dim in self.shape:
            count *= dim
        return count

    @property
    def num_bytes(self) -> int:
        """Storage footprint in bytes."""
        return self.num_elements * self.dtype.bytes

    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    def with_shape(self, shape: Tuple[int, ...]) -> "TensorSpec":
        """A new tensor spec (fresh uid) with a different shape."""
        return TensorSpec(shape=shape, dtype=self.dtype, kind=self.kind, name=self.name)

    def with_kind(self, kind: str) -> "TensorSpec":
        """A new tensor spec (fresh uid) with a different role."""
        return TensorSpec(shape=self.shape, dtype=self.dtype, kind=kind, name=self.name)

    def __str__(self) -> str:
        dims = "x".join(str(d) for d in self.shape)
        label = self.name or f"t{self.uid}"
        return f"{label}[{dims}:{self.dtype.value}:{self.kind}]"


def activation(
    *shape: int, dtype: DType = DType.FP16, name: str = ""
) -> TensorSpec:
    """Shorthand for an activation tensor spec."""
    return TensorSpec(shape=tuple(shape), dtype=dtype, kind=TensorKind.ACTIVATION, name=name)


def weight(*shape: int, dtype: DType = DType.FP16, name: str = "") -> TensorSpec:
    """Shorthand for a weight tensor spec."""
    return TensorSpec(shape=tuple(shape), dtype=dtype, kind=TensorKind.WEIGHT, name=name)


def embedding_table(
    rows: int, dim: int, dtype: DType = DType.FP16, name: str = ""
) -> TensorSpec:
    """Shorthand for an embedding-table tensor spec."""
    return TensorSpec(shape=(rows, dim), dtype=dtype, kind=TensorKind.EMBEDDING, name=name)


def model_input(*shape: int, dtype: DType = DType.FP16, name: str = "") -> TensorSpec:
    """Shorthand for a model-input tensor spec."""
    return TensorSpec(shape=tuple(shape), dtype=dtype, kind=TensorKind.INPUT, name=name)


@dataclasses.dataclass(frozen=True)
class GemmShape:
    """An M x K x N matrix multiplication shape.

    ``m`` is the batch-like dimension, ``k`` the reduction dimension, and
    ``n`` the output feature dimension, matching the paper's "M x K x N"
    notation (e.g. the 512 x 26592 x 2048 shape in section 4.2).
    """

    m: int
    k: int
    n: int

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n) <= 0:
            raise ValueError(f"GEMM dims must be positive, got {self}")

    @property
    def flops(self) -> int:
        """Multiply-accumulate FLOPs (2 per MAC)."""
        return 2 * self.m * self.k * self.n

    def weight_bytes(self, dtype: DType) -> int:
        """Bytes in the K x N weight tensor."""
        return self.k * self.n * dtype.bytes

    def activation_bytes(self, dtype: DType) -> int:
        """Bytes in the M x K input activation tensor."""
        return self.m * self.k * dtype.bytes

    def output_bytes(self, dtype: DType) -> int:
        """Bytes in the M x N output tensor."""
        return self.m * self.n * dtype.bytes

    def arithmetic_intensity(self, dtype: DType) -> float:
        """FLOPs per byte moved, assuming each operand is touched once."""
        total_bytes = (
            self.weight_bytes(dtype)
            + self.activation_bytes(dtype)
            + self.output_bytes(dtype)
        )
        return self.flops / total_bytes

    def as_tuple(self) -> Tuple[int, int, int]:
        """The (m, k, n) triple."""
        return (self.m, self.k, self.n)

    def __str__(self) -> str:
        return f"{self.m}x{self.k}x{self.n}"


def transposed(spec: TensorSpec) -> TensorSpec:
    """Spec of the transpose of a rank-2 tensor."""
    if spec.rank != 2:
        raise ValueError(f"can only transpose rank-2 tensors, got rank {spec.rank}")
    return spec.with_shape((spec.shape[1], spec.shape[0]))


def concat_specs(specs: list, axis: int = 0) -> TensorSpec:
    """Spec of concatenating tensors along ``axis``.

    All non-concat dimensions must agree; dtype and kind are taken from
    the first tensor.
    """
    if not specs:
        raise ValueError("cannot concat zero tensors")
    first = specs[0]
    if any(s.rank != first.rank for s in specs):
        raise ValueError("concat requires tensors of equal rank")
    if not (-first.rank <= axis < first.rank):
        raise ValueError(f"axis {axis} out of range for rank {first.rank}")
    axis = axis % first.rank
    for spec in specs[1:]:
        for dim in range(first.rank):
            if dim != axis and spec.shape[dim] != first.shape[dim]:
                raise ValueError(
                    f"concat shape mismatch on dim {dim}: {spec.shape} vs {first.shape}"
                )
    new_shape = list(first.shape)
    new_shape[axis] = sum(s.shape[axis] for s in specs)
    return first.with_shape(tuple(new_shape))
