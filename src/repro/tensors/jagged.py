"""A working jagged-tensor implementation.

Sequence embeddings and HSTU's ragged attention (paper section 4.3) operate
on *jagged* tensors, where each batch item has a different sequence length.
This module implements the jagged layout used by FBGEMM-style operators:
a flat ``values`` array of shape ``(total_len, dim)`` plus an ``offsets``
array of length ``batch + 1`` delimiting each row's segment.

Unlike most of this library, which is symbolic, these operators compute
real values: the quantization, error-injection, and A/B-testing subsystems
run actual numerics through them.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Sequence

import numpy as np


@dataclasses.dataclass
class JaggedTensor:
    """A batch of variable-length rows stored contiguously.

    ``values`` has shape ``(offsets[-1], dim)``; row ``i`` occupies
    ``values[offsets[i]:offsets[i + 1]]``.
    """

    values: np.ndarray
    offsets: np.ndarray

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values)
        self.offsets = np.asarray(self.offsets, dtype=np.int64)
        if self.values.ndim != 2:
            raise ValueError(f"values must be 2-D, got shape {self.values.shape}")
        if self.offsets.ndim != 1 or len(self.offsets) < 1:
            raise ValueError("offsets must be a 1-D array with at least one entry")
        if self.offsets[0] != 0:
            raise ValueError("offsets must start at 0")
        if np.any(np.diff(self.offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        if self.offsets[-1] != self.values.shape[0]:
            raise ValueError(
                f"offsets[-1]={self.offsets[-1]} must equal number of value rows "
                f"{self.values.shape[0]}"
            )

    @property
    def batch_size(self) -> int:
        """Number of jagged rows."""
        return len(self.offsets) - 1

    @property
    def dim(self) -> int:
        """Embedding dimension of each value row."""
        return self.values.shape[1]

    @property
    def lengths(self) -> np.ndarray:
        """Per-row sequence lengths."""
        return np.diff(self.offsets)

    @property
    def total_length(self) -> int:
        """Sum of all sequence lengths."""
        return int(self.offsets[-1])

    def row(self, i: int) -> np.ndarray:
        """The ``i``-th variable-length row as a view."""
        return self.values[self.offsets[i] : self.offsets[i + 1]]

    def rows(self) -> List[np.ndarray]:
        """All rows, as views into ``values``."""
        return [self.row(i) for i in range(self.batch_size)]

    @classmethod
    def from_rows(cls, rows: Sequence[np.ndarray]) -> "JaggedTensor":
        """Build from a list of ``(len_i, dim)`` arrays (``len_i`` may be 0)."""
        rows = [np.atleast_2d(np.asarray(r)) for r in rows]
        dims = {r.shape[1] for r in rows if r.size}
        if len(dims) > 1:
            raise ValueError(f"rows disagree on dim: {sorted(dims)}")
        dim = dims.pop() if dims else 1
        lengths = [r.shape[0] if r.size else 0 for r in rows]
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        if sum(lengths):
            values = np.concatenate([r for r in rows if r.size], axis=0)
        else:
            values = np.zeros((0, dim))
        return cls(values=values, offsets=offsets)

    @classmethod
    def from_dense(cls, dense: np.ndarray, lengths: Sequence[int]) -> "JaggedTensor":
        """Convert a padded ``(batch, max_len, dim)`` array into jagged form.

        Entries beyond each row's length are dropped.
        """
        dense = np.asarray(dense)
        if dense.ndim != 3:
            raise ValueError(f"dense must be 3-D (batch, max_len, dim), got {dense.shape}")
        lengths = np.asarray(lengths, dtype=np.int64)
        if len(lengths) != dense.shape[0]:
            raise ValueError("lengths must have one entry per batch item")
        if np.any(lengths < 0) or np.any(lengths > dense.shape[1]):
            raise ValueError("lengths must lie in [0, max_len]")
        rows = [dense[i, : lengths[i]] for i in range(dense.shape[0])]
        jagged = cls.from_rows(rows) if len(rows) else cls(
            np.zeros((0, dense.shape[2])), np.zeros(1, dtype=np.int64)
        )
        if jagged.dim != dense.shape[2] and jagged.total_length == 0:
            jagged = cls(np.zeros((0, dense.shape[2])), jagged.offsets)
        return jagged

    def to_dense(self, max_len: int = None, pad_value: float = 0.0) -> np.ndarray:
        """Convert to a padded ``(batch, max_len, dim)`` array.

        Rows longer than ``max_len`` are truncated; shorter rows are padded
        with ``pad_value``.  Defaults to the longest row's length.
        """
        if max_len is None:
            max_len = int(self.lengths.max()) if self.batch_size else 0
        dense = np.full((self.batch_size, max_len, self.dim), pad_value, dtype=self.values.dtype)
        for i in range(self.batch_size):
            row = self.row(i)[:max_len]
            dense[i, : row.shape[0]] = row
        return dense

    def map_values(self, fn: Callable[[np.ndarray], np.ndarray]) -> "JaggedTensor":
        """Apply an elementwise (shape-preserving) function to the values."""
        out = fn(self.values)
        if out.shape != self.values.shape:
            raise ValueError("map_values function must preserve shape")
        return JaggedTensor(values=out, offsets=self.offsets.copy())


def jagged_dense_elementwise_add(jagged: JaggedTensor, dense: np.ndarray) -> JaggedTensor:
    """Add a dense ``(batch, max_len, dim)`` tensor to a jagged tensor.

    Only positions that exist in the jagged tensor are produced — the dense
    padding is ignored, matching FBGEMM's jagged_dense_elementwise_add.
    """
    if dense.ndim != 3 or dense.shape[0] != jagged.batch_size or dense.shape[2] != jagged.dim:
        raise ValueError(
            f"dense shape {dense.shape} incompatible with jagged "
            f"(batch={jagged.batch_size}, dim={jagged.dim})"
        )
    out = np.empty_like(jagged.values)
    for i in range(jagged.batch_size):
        start, stop = jagged.offsets[i], jagged.offsets[i + 1]
        length = stop - start
        if length > dense.shape[1]:
            raise ValueError(f"row {i} longer than dense max_len {dense.shape[1]}")
        out[start:stop] = jagged.values[start:stop] + dense[i, :length]
    return JaggedTensor(values=out, offsets=jagged.offsets.copy())


def jagged_hadamard(a: JaggedTensor, b: JaggedTensor) -> JaggedTensor:
    """Elementwise (Hadamard) product of two identically-shaped jagged tensors."""
    if not np.array_equal(a.offsets, b.offsets) or a.dim != b.dim:
        raise ValueError("jagged tensors must share offsets and dim")
    return JaggedTensor(values=a.values * b.values, offsets=a.offsets.copy())


def jagged_linear(jagged: JaggedTensor, weight_matrix: np.ndarray) -> JaggedTensor:
    """Linear transform of every jagged row: ``values @ W``.

    ``weight_matrix`` has shape ``(dim, out_dim)``.  Offsets are preserved.
    """
    weight_matrix = np.asarray(weight_matrix)
    if weight_matrix.ndim != 2 or weight_matrix.shape[0] != jagged.dim:
        raise ValueError(
            f"weight shape {weight_matrix.shape} incompatible with dim {jagged.dim}"
        )
    return JaggedTensor(values=jagged.values @ weight_matrix, offsets=jagged.offsets.copy())


def jagged_softmax(jagged: JaggedTensor) -> JaggedTensor:
    """Row-segment softmax: softmax over each row's sequence, per feature.

    Used by ragged attention where attention scores for each query are
    normalized only over that user's history length.
    """
    out = np.empty_like(jagged.values, dtype=np.float64)
    for i in range(jagged.batch_size):
        start, stop = jagged.offsets[i], jagged.offsets[i + 1]
        if start == stop:
            continue
        seg = jagged.values[start:stop].astype(np.float64)
        seg = seg - seg.max(axis=0, keepdims=True)
        exp = np.exp(seg)
        out[start:stop] = exp / exp.sum(axis=0, keepdims=True)
    return JaggedTensor(values=out.astype(jagged.values.dtype, copy=False), offsets=jagged.offsets.copy())


def jagged_mean_pool(jagged: JaggedTensor) -> np.ndarray:
    """Mean-pool each jagged row to a single vector; empty rows pool to zero."""
    pooled = np.zeros((jagged.batch_size, jagged.dim), dtype=np.float64)
    for i in range(jagged.batch_size):
        row = jagged.row(i)
        if row.shape[0]:
            pooled[i] = row.mean(axis=0)
    return pooled.astype(jagged.values.dtype, copy=False)


def jagged_sum_pool(jagged: JaggedTensor) -> np.ndarray:
    """Sum-pool each jagged row to a single vector (TBE-style pooling)."""
    pooled = np.zeros((jagged.batch_size, jagged.dim), dtype=np.float64)
    for i in range(jagged.batch_size):
        pooled[i] = jagged.row(i).sum(axis=0)
    return pooled.astype(jagged.values.dtype, copy=False)
