"""Wukong-style scaled interaction models (paper section 2).

"Wukong extends DHEN by scaling models across two orders of magnitude.
With effective modeling of high-order interactions, more sparse features
enabled by larger embedding tables improve model quality."  Wukong's
architecture stacks Factorization Machine Blocks and Linear Compression
Blocks with a single *scale* knob that grows every dimension together —
the property that makes it a scaling-law family rather than one model.

This builder parameterizes that family so sweeps can walk the 60x+
complexity range the paper reports across late-stage ranking models and
locate where MTIA 2i's efficiency falls off.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List

from repro.graph.graph import OpGraph
from repro.models.dhen import DhenConfig, build_dhen
from repro.models.dlrm import EmbeddingBagConfig


@dataclasses.dataclass(frozen=True)
class WukongConfig:
    """One point of the Wukong scaling family.

    ``scale=1.0`` is a modest late-ranking model (~60 MFLOPS/sample);
    dimensions grow with sqrt(scale) and depth with log2(scale), so FLOPs
    per sample grow roughly linearly in ``scale`` — sweeping scale over
    [1, 100] walks the two orders of magnitude the paper cites.
    """

    scale: float = 1.0
    batch: int = 512
    base_hidden: int = 1024
    base_layers: int = 4
    base_embedding_gib: float = 8.0
    base_tables: int = 32
    name: str = "wukong"

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    @property
    def hidden_dim(self) -> int:
        """Width grows with sqrt(scale), rounded to a multiple of 256."""
        width = self.base_hidden * math.sqrt(self.scale)
        return max(256, int(round(width / 256)) * 256)

    @property
    def num_layers(self) -> int:
        """Depth grows logarithmically with scale."""
        return self.base_layers + max(0, int(round(2 * math.log2(max(1.0, self.scale)))))

    @property
    def embedding_gib(self) -> float:
        """Larger models carry more sparse features (bigger tables)."""
        return self.base_embedding_gib * self.scale ** 0.75

    @property
    def num_tables(self) -> int:
        """Table count grows with sqrt(scale)."""
        return max(8, int(round(self.base_tables * math.sqrt(self.scale))))

    def to_dhen(self) -> DhenConfig:
        """The concrete DHEN-family instantiation of this scale point."""
        rows = max(
            1, int(self.embedding_gib * (1 << 30)) // (self.num_tables * 128 * 2)
        )
        return DhenConfig(
            name=f"{self.name}_x{self.scale:g}",
            batch=self.batch,
            hidden_dim=self.hidden_dim,
            num_layers=self.num_layers,
            num_dense_features=1024,
            embeddings=(
                EmbeddingBagConfig(
                    num_tables=self.num_tables,
                    rows_per_table=rows,
                    embed_dim=128,
                    pooling_factor=12.0,
                ),
            ),
            fm_features=32,
            mha_heads=0,
        )


def build_wukong(config: WukongConfig) -> OpGraph:
    """Build the graph for one Wukong scale point."""
    return build_dhen(config.to_dhen())


def scaling_sweep(
    scales: List[float] = (1.0, 4.0, 16.0, 64.0), batch: int = 512
) -> List[WukongConfig]:
    """Configurations walking the paper's two-orders-of-magnitude range."""
    return [WukongConfig(scale=s, batch=batch) for s in scales]
