"""HSTU-style generative recommendation model builder (paper section 2).

HSTU processes user history generatively with ragged attention over
jagged sequences, introducing a 10-100x complexity increase per request
and much larger embeddings than pooled DLRM models (Table 1: 1-2 TB,
10-80 GFLOPS/request).
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from repro.graph.graph import OpGraph
from repro.graph.ops import fc, hstu_attention, layernorm, tbe
from repro.tensors.dtypes import DType
from repro.tensors.tensor import embedding_table, weight


@dataclasses.dataclass(frozen=True)
class HstuConfig:
    """Hyperparameters of an HSTU-style sequence model."""

    name: str
    batch: int
    hidden_dim: int
    num_layers: int
    heads: int
    # Skewed user-history length distribution (section 2: "ragged
    # attention to effectively manage the skewed distribution of user
    # history sequences").
    mean_seq_len: float
    max_seq_len: int
    num_tables: int
    rows_per_table: int
    embed_dim: int
    dtype: DType = DType.FP16
    seed: int = 7

    def __post_init__(self) -> None:
        if min(self.batch, self.hidden_dim, self.num_layers, self.heads) <= 0:
            raise ValueError("HSTU dimensions must be positive")
        if self.mean_seq_len <= 0 or self.max_seq_len <= 0:
            raise ValueError("sequence lengths must be positive")

    @property
    def embedding_bytes(self) -> int:
        """Total embedding footprint."""
        return self.num_tables * self.rows_per_table * self.embed_dim * self.dtype.bytes

    def sample_seq_lengths(self) -> List[int]:
        """Draw a skewed (log-normal) batch of user-history lengths."""
        rng = np.random.default_rng(self.seed)
        sigma = 1.0
        mu = np.log(self.mean_seq_len) - sigma**2 / 2
        lengths = np.exp(rng.normal(mu, sigma, size=self.batch))
        return [int(x) for x in np.clip(lengths, 1, self.max_seq_len)]


def build_hstu(config: HstuConfig) -> OpGraph:
    """Build an HSTU-style model graph over a sampled jagged batch."""
    graph = OpGraph(name=config.name)
    dtype = config.dtype
    seq_lengths = config.sample_seq_lengths()
    total_tokens = sum(seq_lengths)

    tables = [
        embedding_table(config.rows_per_table, config.embed_dim, dtype=dtype, name=f"hstu_t{i}")
        for i in range(config.num_tables)
    ]
    # Sequence TBE: per-event embedding lookups, one per history token.
    seq_tbe = graph.add(
        tbe(
            tables,
            batch=config.batch,
            avg_indices_per_lookup=max(1.0, total_tokens / config.batch / config.num_tables),
            name="sequence_tbe",
            sequence=True,
        )
    )
    proj_w = weight(config.embed_dim, config.hidden_dim, dtype=dtype, name="input_proj_w")
    current = graph.add(fc(seq_tbe.output, proj_w, name="input_proj")).output

    head_dim = config.hidden_dim // config.heads
    for layer in range(config.num_layers):
        norm = graph.add(layernorm(current, name=f"l{layer}_norm"))
        # Pointwise projections (U, V, Q, K in HSTU's pointwise section).
        uvqk_w = weight(
            config.hidden_dim, 4 * config.hidden_dim, dtype=dtype, name=f"l{layer}_uvqk_w"
        )
        uvqk = graph.add(fc(norm.output, uvqk_w, name=f"l{layer}_uvqk"))
        attn = graph.add(
            hstu_attention(
                uvqk.output,
                seq_lengths=seq_lengths,
                heads=config.heads,
                head_dim=head_dim,
                name=f"l{layer}_ragged_attn",
            )
        )
        out_w = weight(
            config.heads * head_dim, config.hidden_dim, dtype=dtype, name=f"l{layer}_out_w"
        )
        projected = graph.add(fc(attn.output, out_w, name=f"l{layer}_out_proj"))
        current = projected.output

    head_w = weight(config.hidden_dim, 1, dtype=dtype, name="hstu_head_w")
    graph.add(fc(current, head_w, name="hstu_prediction"))
    return graph


def hstu_flops_per_request(graph: OpGraph, batch: int) -> float:
    """FLOPs per request (HSTU complexity is quoted per request)."""
    return graph.total_flops() / batch
