"""DHEN-style graph builder (paper sections 2 and 6).

DHEN (Deep and Hierarchical Ensemble Network) stacks layers with skip
connections and layer normalization; each layer ensembles interaction
modules — here a Factorization Machine Block and a Linear Compression
Block, the combination the section 6 case-study model uses.  High-order
interactions convert FLOPs into model quality, which is why late-stage
models grew to ~1 GFLOPS/sample.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.graph.graph import OpGraph
from repro.graph.ops import concat, elementwise, fc, interaction, layernorm, mha, tbe
from repro.models.dlrm import EmbeddingBagConfig
from repro.tensors.dtypes import DType
from repro.tensors.tensor import TensorSpec, embedding_table, model_input, weight


@dataclasses.dataclass(frozen=True)
class DhenConfig:
    """Hyperparameters of a DHEN-style ranking model."""

    name: str
    batch: int
    hidden_dim: int
    num_layers: int
    num_dense_features: int
    embeddings: Sequence[EmbeddingBagConfig]
    # Factorization-machine block feature count per layer.
    fm_features: int = 16
    # Optional MHA ensemble members (the case-study model added a network
    # of multi-headed attention blocks late in its evolution).
    mha_heads: int = 0
    mha_seq_len: int = 8
    dtype: DType = DType.FP16

    def __post_init__(self) -> None:
        if min(self.batch, self.hidden_dim, self.num_layers) <= 0:
            raise ValueError("batch, hidden_dim, and num_layers must be positive")

    @property
    def embedding_bytes(self) -> int:
        """Total embedding footprint."""
        return sum(bag.total_bytes for bag in self.embeddings)


def _dhen_layer(
    graph: OpGraph, x: TensorSpec, config: DhenConfig, layer: int
) -> TensorSpec:
    """One DHEN layer: FM block + linear compression block, ensembled,
    with a skip connection and layer norm."""
    dtype = config.dtype
    hidden = config.hidden_dim
    # Factorization Machine Block: project then pairwise interactions.
    fm_proj_w = weight(hidden, hidden, dtype=dtype, name=f"l{layer}_fm_w")
    fm_proj = graph.add(fc(x, fm_proj_w, name=f"l{layer}_fm_proj"))
    fm_out = graph.add(
        interaction(
            fm_proj.output,
            batch=config.batch,
            num_features=config.fm_features,
            dim=hidden // config.fm_features,
            name=f"l{layer}_fm_interaction",
        )
    )
    fm_pairs = config.fm_features * (config.fm_features - 1) // 2
    fm_expand_w = weight(fm_pairs, hidden, dtype=dtype, name=f"l{layer}_fm_expand_w")
    fm_expanded = graph.add(fc(fm_out.output, fm_expand_w, name=f"l{layer}_fm_expand"))

    # Linear Compression Block: compress then restore.
    lcb_down_w = weight(hidden, hidden // 4, dtype=dtype, name=f"l{layer}_lcb_down_w")
    lcb_down = graph.add(fc(x, lcb_down_w, name=f"l{layer}_lcb_down"))
    lcb_up_w = weight(hidden // 4, hidden, dtype=dtype, name=f"l{layer}_lcb_up_w")
    lcb_up = graph.add(fc(lcb_down.output, lcb_up_w, name=f"l{layer}_lcb_up"))

    # Optional MHA ensemble member.
    members = [fm_expanded.output, lcb_up.output]
    if config.mha_heads > 0:
        head_dim = hidden // config.mha_heads // config.mha_seq_len
        if head_dim > 0:
            mha_op = graph.add(
                mha(
                    x,
                    heads=config.mha_heads,
                    head_dim=head_dim,
                    seq_len=config.mha_seq_len,
                    batch=config.batch // config.mha_seq_len or 1,
                    name=f"l{layer}_mha",
                )
            )
            mha_proj_w = weight(
                mha_op.output.shape[1], hidden, dtype=dtype, name=f"l{layer}_mha_proj_w"
            )
            mha_proj = graph.add(
                fc(mha_op.output, mha_proj_w, name=f"l{layer}_mha_proj")
            )
            if mha_proj.output.shape[0] == config.batch:
                members.append(mha_proj.output)

    # Ensemble sum + skip connection + layer norm.
    ensemble = graph.add(
        elementwise(members, function="add", name=f"l{layer}_ensemble")
    )
    skip = graph.add(
        elementwise([ensemble.output, x], function="add", name=f"l{layer}_skip")
    )
    norm = graph.add(layernorm(skip.output, name=f"l{layer}_layernorm"))
    return norm.output


def build_dhen(config: DhenConfig) -> OpGraph:
    """Build a DHEN-style ranking model graph."""
    graph = OpGraph(name=config.name)
    dtype = config.dtype
    dense_in = model_input(
        config.batch, config.num_dense_features, dtype=dtype, name="dense_features"
    )
    stem_w = weight(config.num_dense_features, config.hidden_dim, dtype=dtype, name="stem_w")
    stem = graph.add(fc(dense_in, stem_w, name="stem_fc"))

    sparse_parts = [stem.output]
    for bag_index, bag in enumerate(config.embeddings):
        tables = [
            embedding_table(
                bag.rows_per_table, bag.embed_dim, dtype=dtype, name=f"emb{bag_index}_t{i}"
            )
            for i in range(bag.num_tables)
        ]
        tbe_op = graph.add(
            tbe(
                tables,
                batch=config.batch,
                avg_indices_per_lookup=bag.pooling_factor,
                name=f"tbe{bag_index}",
                weighted=bag.weighted,
            )
        )
        sparse_parts.append(tbe_op.output)
    merged = graph.add(concat(sparse_parts, axis=-1, name="merge_concat")).output
    merge_w = weight(merged.shape[1], config.hidden_dim, dtype=dtype, name="merge_w")
    current = graph.add(fc(merged, merge_w, name="merge_fc")).output

    for layer in range(config.num_layers):
        current = _dhen_layer(graph, current, config, layer)

    head_w = weight(config.hidden_dim, 1, dtype=dtype, name="head_w")
    graph.add(fc(current, head_w, name="prediction_head"))
    return graph
