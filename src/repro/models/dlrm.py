"""Canonical DLRM graph builder (paper section 2).

The canonical DLRM architecture: embeddings for sparse (categorical)
features, a bottom MLP for dense (continuous) features, a feature
interaction between the two, and a top MLP producing the prediction.
Model builders here are parameterized so the zoo can hit the published
complexity/size points of Table 1 and Figure 6.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from repro.graph.graph import OpGraph
from repro.graph.ops import concat, elementwise, fc, interaction, tbe
from repro.tensors.dtypes import DType
from repro.tensors.tensor import TensorSpec, embedding_table, model_input, weight


@dataclasses.dataclass(frozen=True)
class EmbeddingBagConfig:
    """A group of identically-shaped embedding tables."""

    num_tables: int
    rows_per_table: int
    embed_dim: int
    pooling_factor: float  # average indices looked up per sample per table
    weighted: bool = False

    def __post_init__(self) -> None:
        if min(self.num_tables, self.rows_per_table, self.embed_dim) <= 0:
            raise ValueError("embedding config dimensions must be positive")
        if self.pooling_factor <= 0:
            raise ValueError("pooling factor must be positive")

    @property
    def total_bytes(self) -> int:
        """Total embedding footprint at FP16."""
        return self.num_tables * self.rows_per_table * self.embed_dim * 2


@dataclasses.dataclass(frozen=True)
class DlrmConfig:
    """Hyperparameters of one DLRM instance."""

    name: str
    batch: int
    num_dense_features: int
    bottom_mlp_dims: Sequence[int]
    top_mlp_dims: Sequence[int]
    embeddings: Sequence[EmbeddingBagConfig]
    dtype: DType = DType.FP16

    def __post_init__(self) -> None:
        if self.batch <= 0:
            raise ValueError("batch must be positive")
        if not self.bottom_mlp_dims or not self.top_mlp_dims:
            raise ValueError("MLP stacks must be non-empty")
        if not self.embeddings:
            raise ValueError("DLRM needs at least one embedding bag")

    @property
    def embedding_bytes(self) -> int:
        """Total embedding footprint."""
        return sum(bag.total_bytes for bag in self.embeddings)


def _mlp(
    graph: OpGraph,
    x: TensorSpec,
    dims: Sequence[int],
    prefix: str,
    dtype: DType,
) -> TensorSpec:
    """Append an MLP stack (FC + pointwise activation per layer)."""
    current = x
    for layer, out_dim in enumerate(dims):
        w = weight(current.shape[1], out_dim, dtype=dtype, name=f"{prefix}_w{layer}")
        fc_op = graph.add(fc(current, w, name=f"{prefix}_fc{layer}"))
        act = graph.add(
            elementwise([fc_op.output], function="relu", name=f"{prefix}_relu{layer}")
        )
        current = act.output
    return current


def build_dlrm(config: DlrmConfig) -> OpGraph:
    """Build the canonical DLRM op graph."""
    graph = OpGraph(name=config.name)
    dense_in = model_input(
        config.batch, config.num_dense_features, dtype=config.dtype, name="dense_features"
    )
    bottom_out = _mlp(graph, dense_in, config.bottom_mlp_dims, "bottom", config.dtype)

    pooled_outputs: List[TensorSpec] = []
    for bag_index, bag in enumerate(config.embeddings):
        tables = [
            embedding_table(
                bag.rows_per_table,
                bag.embed_dim,
                dtype=config.dtype,
                name=f"emb{bag_index}_t{i}",
            )
            for i in range(bag.num_tables)
        ]
        tbe_op = graph.add(
            tbe(
                tables,
                batch=config.batch,
                avg_indices_per_lookup=bag.pooling_factor,
                name=f"tbe{bag_index}",
                weighted=bag.weighted,
            )
        )
        pooled_outputs.append(tbe_op.output)

    sparse_concat = (
        graph.add(concat(pooled_outputs, axis=-1, name="sparse_concat")).output
        if len(pooled_outputs) > 1
        else pooled_outputs[0]
    )
    combined = graph.add(
        concat([bottom_out, sparse_concat], axis=-1, name="dense_sparse_concat")
    ).output

    # Feature interaction across the embedding dim slices.
    num_features = 1 + sum(bag.num_tables for bag in config.embeddings)
    inter_dim = config.embeddings[0].embed_dim
    inter = graph.add(
        interaction(
            combined,
            batch=config.batch,
            num_features=min(num_features, 64),
            dim=inter_dim,
            name="interaction",
        )
    ).output

    top_in = graph.add(concat([bottom_out, inter], axis=-1, name="top_concat")).output
    _mlp(graph, top_in, list(config.top_mlp_dims) + [1], "top", config.dtype)
    return graph


def small_dlrm(name: str = "small_dlrm", batch: int = 512) -> DlrmConfig:
    """A small, fast-to-simulate DLRM for tests and the quickstart."""
    return DlrmConfig(
        name=name,
        batch=batch,
        num_dense_features=256,
        bottom_mlp_dims=(512, 256, 128),
        top_mlp_dims=(512, 256),
        embeddings=(
            EmbeddingBagConfig(
                num_tables=16, rows_per_table=1_000_000, embed_dim=128, pooling_factor=10
            ),
        ),
    )
