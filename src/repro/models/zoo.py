"""The production model zoo: Table 1 classes and the nine Figure 6 models.

The paper's workloads are proprietary; these synthetic stand-ins are
parameterized to land on the *published* coordinates — model size,
FLOPs/sample, batch size, and accelerator count — so the efficiency
sweeps reproduce the paper's shape.  Table 1 gives the class-level
coordinates; section 7 gives the per-model facts used here (LC1 runs at
4K batch, LC2 at 512; HC1 pushes 2K batch with a small footprint; HC2
carries heavy host-side serving features; HC3 is the section 6 case-study
model; HC4 is large and less optimized).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

from repro.graph.graph import OpGraph
from repro.models.dhen import DhenConfig, build_dhen
from repro.models.dlrm import DlrmConfig, EmbeddingBagConfig, build_dlrm
from repro.models.hstu import HstuConfig, build_hstu
from repro.units import GiB


@dataclasses.dataclass(frozen=True)
class ZooModel:
    """One production model's serving configuration.

    ``batch`` is the MTIA-autotuned batch size; ``gpu_batch`` the
    GPU-autotuned one.  Batch size is a per-platform tuning knob
    (section 4.1), and GPUs prefer larger batches to amortize launches
    and fill their wider engines — except where the batch is capped by
    the request-coalescing limit of the serving tier, in which case both
    platforms share the cap.
    """

    name: str
    category: str  # retrieval | early_ranking | late_ranking | hstu
    batch: int
    build_at: Callable[[int], OpGraph]
    gpu_batch: Optional[int] = None
    accelerators: int = 1
    # Host-side serving overhead per batch (feature preprocessing etc.),
    # the factor that drags HC2's efficiency (section 7).
    host_overhead_s_per_batch: float = 0.0
    description: str = ""

    def graph(self) -> OpGraph:
        """Build the model graph at the MTIA batch size."""
        return self.build_at(self.batch)

    def graph_at(self, batch: int) -> OpGraph:
        """Build the model graph at an arbitrary batch size."""
        return self.build_at(batch)

    def gpu_graph(self) -> OpGraph:
        """Build the model graph at the GPU-autotuned batch size."""
        return self.build_at(self.gpu_batch or self.batch)


def _embeddings(total_gib: float, num_tables: int, embed_dim: int,
                pooling_factor: float, weighted: bool = False) -> EmbeddingBagConfig:
    """An embedding bag sized to a target total footprint."""
    total_bytes = int(total_gib * GiB)
    rows = max(1, total_bytes // (num_tables * embed_dim * 2))
    return EmbeddingBagConfig(
        num_tables=num_tables,
        rows_per_table=rows,
        embed_dim=embed_dim,
        pooling_factor=pooling_factor,
        weighted=weighted,
    )


def _dlrm_zoo_model(
    name: str,
    category: str,
    batch: int,
    hidden: int,
    num_layers: int,
    embedding_gib: float,
    num_tables: int = 32,
    pooling_factor: float = 12.0,
    host_overhead_s_per_batch: float = 0.0,
    accelerators: int = 1,
    gpu_batch: Optional[int] = None,
    description: str = "",
) -> ZooModel:
    """A DLRM-class zoo entry with an MLP stack sized for a FLOP target."""
    config = DlrmConfig(
        name=name,
        batch=batch,
        num_dense_features=hidden,
        bottom_mlp_dims=tuple([hidden] * (num_layers // 2)),
        top_mlp_dims=tuple([hidden] * (num_layers - num_layers // 2)),
        embeddings=(
            _embeddings(embedding_gib, num_tables, embed_dim=128, pooling_factor=pooling_factor),
        ),
    )
    return ZooModel(
        name=name,
        category=category,
        batch=batch,
        build_at=lambda b: build_dlrm(dataclasses.replace(config, batch=b)),
        gpu_batch=gpu_batch,
        accelerators=accelerators,
        host_overhead_s_per_batch=host_overhead_s_per_batch,
        description=description,
    )


def _dhen_zoo_model(
    name: str,
    batch: int,
    hidden: int,
    num_layers: int,
    embedding_gib: float,
    num_tables: int = 64,
    mha_heads: int = 0,
    host_overhead_s_per_batch: float = 0.0,
    accelerators: int = 1,
    gpu_batch: Optional[int] = None,
    description: str = "",
) -> ZooModel:
    """A DHEN-class (high-complexity late-ranking) zoo entry."""
    config = DhenConfig(
        name=name,
        batch=batch,
        hidden_dim=hidden,
        num_layers=num_layers,
        num_dense_features=1024,
        embeddings=(
            _embeddings(embedding_gib, num_tables, embed_dim=128, pooling_factor=15.0),
        ),
        fm_features=32,
        mha_heads=mha_heads,
    )
    return ZooModel(
        name=name,
        category="late_ranking",
        batch=batch,
        build_at=lambda b: build_dhen(dataclasses.replace(config, batch=b)),
        gpu_batch=gpu_batch,
        accelerators=accelerators,
        host_overhead_s_per_batch=host_overhead_s_per_batch,
        description=description,
    )


# ---------------------------------------------------------------------------
# Figure 6: five Low Complexity (15-105 MFLOPS/sample) and four High
# Complexity (480-1000 MFLOPS/sample) production models.
# ---------------------------------------------------------------------------


def lc1() -> ZooModel:
    """LC1: lowest complexity, optimized to a 4K batch — top efficiency."""
    return _dlrm_zoo_model(
        "LC1", "early_ranking", batch=4096, hidden=1024, num_layers=7,
        embedding_gib=8.0, pooling_factor=6.0, gpu_batch=16384,
        description="~15 MF/sample, 4K batch, small footprint",
    )


def lc2() -> ZooModel:
    """LC2: similar complexity to LC1 but serving limits it to 512 batch."""
    return _dlrm_zoo_model(
        "LC2", "early_ranking", batch=512, hidden=1024, num_layers=9,
        embedding_gib=24.0, pooling_factor=10.0, gpu_batch=2048,
        host_overhead_s_per_batch=120e-6,
        description="~20 MF/sample but only 512 batch",
    )


def lc3() -> ZooModel:
    """LC3: mid-band low-complexity ranking model."""
    return _dlrm_zoo_model(
        "LC3", "early_ranking", batch=2048, hidden=1536, num_layers=9,
        embedding_gib=32.0, pooling_factor=12.0, gpu_batch=8192,
        host_overhead_s_per_batch=250e-6,
        description="~45 MF/sample",
    )


def lc4() -> ZooModel:
    """LC4: upper-mid low-complexity model with a larger embedding set."""
    return _dlrm_zoo_model(
        "LC4", "early_ranking", batch=1024, hidden=2048, num_layers=9,
        embedding_gib=48.0, pooling_factor=16.0, gpu_batch=4096,
        host_overhead_s_per_batch=150e-6,
        description="~75 MF/sample",
    )


def lc5() -> ZooModel:
    """LC5: largest LC model, SRAM-friendly working set — high efficiency."""
    return _dlrm_zoo_model(
        "LC5", "early_ranking", batch=2048, hidden=2048, num_layers=12,
        embedding_gib=12.0, pooling_factor=8.0, gpu_batch=8192,
        description="~105 MF/sample, small footprint",
    )


def hc1() -> ZooModel:
    """HC1: small memory footprint lets batch reach 2K — best HC efficiency
    (and the most optimization investment, being revenue-critical)."""
    return _dhen_zoo_model(
        "HC1", batch=2048, hidden=2048, num_layers=28, embedding_gib=20.0,
        num_tables=48, gpu_batch=8192, host_overhead_s_per_batch=600e-6,
        description="~480 MF/sample, 2K batch",
    )


def hc2() -> ZooModel:
    """HC2: heavy host-side serving features — lowest HC efficiency."""
    return _dhen_zoo_model(
        "HC2", batch=256, hidden=3072, num_layers=18, embedding_gib=96.0,
        num_tables=96, host_overhead_s_per_batch=1.2e-3, gpu_batch=512,
        description="~700 MF/sample, host-side overhead",
    )


def hc3() -> ZooModel:
    """HC3: the section 6 case-study model — DHEN with MHA blocks, sharded
    across two accelerators, co-designed for SRAM residency."""
    return _dhen_zoo_model(
        "HC3", batch=512, hidden=4096, num_layers=12, embedding_gib=150.0,
        num_tables=128, mha_heads=8, accelerators=2, gpu_batch=1024,
        description="~940 MF/sample, case-study model",
    )


def hc4() -> ZooModel:
    """HC4: the largest model, less optimization investment."""
    return _dhen_zoo_model(
        "HC4", batch=256, hidden=4096, num_layers=13, embedding_gib=180.0,
        num_tables=128, host_overhead_s_per_batch=0.8e-3, accelerators=2, gpu_batch=512,
        description="~1000 MF/sample, large footprint",
    )


def figure6_models() -> List[ZooModel]:
    """The nine production models of Figure 6, in the paper's order."""
    return [lc1(), lc2(), lc3(), lc4(), lc5(), hc1(), hc2(), hc3(), hc4()]


# ---------------------------------------------------------------------------
# Table 1: model classes across the recommendation funnel.
# ---------------------------------------------------------------------------


def retrieval_model() -> ZooModel:
    """Retrieval: rank ~1M candidates; 50-100 GB, 1-10 MFLOPS/sample."""
    return _dlrm_zoo_model(
        "retrieval", "retrieval", batch=8192, hidden=512, num_layers=5,
        embedding_gib=72.0, num_tables=64, pooling_factor=4.0,
        host_overhead_s_per_batch=2e-3,  # feature preprocessing dominates
        description="front of the funnel; user+ad embeddings on one host",
    )


def early_stage_model() -> ZooModel:
    """Early-stage ranking: 100-300 GB, 10-100 MFLOPS/sample."""
    return _dlrm_zoo_model(
        "early_stage", "early_ranking", batch=2048, hidden=1536, num_layers=10,
        embedding_gib=160.0, num_tables=96, pooling_factor=12.0,
        accelerators=2,
        description="memory-bandwidth bound at high batch",
    )


def late_stage_model() -> ZooModel:
    """Late-stage ranking: 100-300 GB, 200-2000 MFLOPS/sample."""
    return _dhen_zoo_model(
        "late_stage", batch=512, hidden=4096, num_layers=9, embedding_gib=200.0,
        num_tables=128, mha_heads=8, accelerators=2,
        description="final top-100 ranking, DHEN architecture",
    )


def hstu_retrieval_model() -> ZooModel:
    """HSTU retrieval: ~1 TB embeddings, ~10 GFLOPS/request."""
    config = HstuConfig(
        name="hstu_retrieval",
        batch=64,
        hidden_dim=512,
        num_layers=4,
        heads=4,
        mean_seq_len=800,
        max_seq_len=4096,
        num_tables=40,
        rows_per_table=55_000_000,
        embed_dim=256,
    )
    return ZooModel(
        name="hstu_retrieval",
        category="hstu",
        batch=config.batch,
        build_at=lambda b: build_hstu(dataclasses.replace(config, batch=b)),
        accelerators=8,
        description="generative retrieval over hundreds of millions of candidates",
    )


def hstu_ranking_model() -> ZooModel:
    """HSTU ranking: ~2 TB embeddings, ~80 GFLOPS/request."""
    config = HstuConfig(
        name="hstu_ranking",
        batch=64,
        hidden_dim=1024,
        num_layers=6,
        heads=8,
        mean_seq_len=1024,
        max_seq_len=8192,
        num_tables=64,
        rows_per_table=70_000_000,
        embed_dim=256,
    )
    return ZooModel(
        name="hstu_ranking",
        category="hstu",
        batch=config.batch,
        build_at=lambda b: build_hstu(dataclasses.replace(config, batch=b)),
        accelerators=16,
        description="generative ranking with long user histories",
    )


def table1_models() -> List[ZooModel]:
    """The five Table 1 model classes."""
    return [
        retrieval_model(),
        early_stage_model(),
        late_stage_model(),
        hstu_retrieval_model(),
        hstu_ranking_model(),
    ]


@dataclasses.dataclass(frozen=True)
class Table1Row:
    """Measured coordinates of one model class (the Table 1 columns)."""

    model_type: str
    model_size_gb: float
    gflops_per_sample: float
    embedding_fraction: float


def table1_row(model: ZooModel) -> Table1Row:
    """Compute a Table 1 row from a zoo model's graph."""
    graph = model.graph()
    size_bytes = graph.weight_bytes()
    return Table1Row(
        model_type=model.name,
        model_size_gb=size_bytes / 1e9,
        gflops_per_sample=graph.flops_per_sample(model.batch) / 1e9,
        embedding_fraction=graph.embedding_bytes() / size_bytes if size_bytes else 0.0,
    )
