"""Total Cost of Ownership accounting (the paper's headline metric)."""

from repro.tco.model import (
    GPU_COST,
    MTIA2I_COST,
    CostInputs,
    PlatformComparison,
    TcoBreakdown,
    compare_platforms,
    derived_cost_inputs,
    measured_server_power_watts,
    perf_per_tco,
    perf_per_watt,
    server_tco,
)

__all__ = [
    "CostInputs",
    "GPU_COST",
    "MTIA2I_COST",
    "PlatformComparison",
    "TcoBreakdown",
    "compare_platforms",
    "derived_cost_inputs",
    "measured_server_power_watts",
    "perf_per_tco",
    "perf_per_watt",
    "server_tco",
]
