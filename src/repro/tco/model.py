"""Total Cost of Ownership model.

The paper's headline result is a 44% average TCO reduction versus GPUs —
equivalently, ~1.8x performance per TCO dollar.  TCO here follows the
standard datacenter accounting: amortized capital expense (server cost
over a depreciation period) plus operating expense (power at datacenter
PUE and electricity price, plus per-kW provisioning overhead).

Cost inputs are estimates from public sources (GPU street prices, typical
hyperscaler PUE/electricity figures) and the structural fact the paper
leans on: an in-house 100 mm^2-class ASIC without HBM costs a small
fraction of a flagship GPU, and 24 of them share one host platform.
"""

from __future__ import annotations

import dataclasses

from repro.arch.server import ServerSpec, gpu_server, mtia2i_server


@dataclasses.dataclass(frozen=True)
class CostInputs:
    """Dollar and facility parameters of the TCO model."""

    accelerator_cost_usd: float
    platform_cost_usd: float  # CPUs, DRAM, NIC, chassis, switches
    depreciation_years: float = 4.0
    electricity_usd_per_kwh: float = 0.08
    pue: float = 1.1
    # Amortized datacenter provisioning cost per watt-year (power
    # delivery + cooling infrastructure).
    provisioning_usd_per_watt_year: float = 2.0

    def __post_init__(self) -> None:
        if self.depreciation_years <= 0:
            raise ValueError("depreciation period must be positive")
        if self.pue < 1.0:
            raise ValueError("PUE cannot be below 1")


# Estimated build costs.  The GPU figure reflects an H100-80GB-class
# accelerator at hyperscaler volume pricing; the MTIA figure reflects an
# in-house 5 nm ~420 mm^2 die with LPDDR (no HBM, no interposer) at
# production volume, including module/packaging.
MTIA2I_COST = CostInputs(accelerator_cost_usd=2200.0, platform_cost_usd=40_000.0)
GPU_COST = CostInputs(accelerator_cost_usd=24_000.0, platform_cost_usd=50_000.0)

# Cost-structure constants for chips *derived* from the MTIA 2i spec
# (``repro.codesign``).  The module cost splits into silicon (scales
# super-linearly with die area: candidate dice per wafer fall linearly
# while defect-limited yield falls on top — area^1.25 captures both to
# first order), memory (LPDDR at commodity $/GiB), and a fixed share
# (substrate, passives, test, assembly) that does not scale with the
# design.  ``derived_cost_inputs`` calibrates the silicon term so the
# reference chip reproduces ``MTIA2I_COST`` exactly.
DERIVED_COST_FIXED_USD = 300.0
DERIVED_COST_LPDDR_USD_PER_GIB = 3.5
DERIVED_COST_AREA_EXPONENT = 1.25


def derived_cost_inputs(
    chip,
    reference=None,
    reference_costs: CostInputs = MTIA2I_COST,
) -> CostInputs:
    """Cost inputs for a chip derived from a reference design.

    The TCO of a codesign candidate must not silently reuse the base
    chip's build cost: a 144-PE, 512 MiB-SRAM candidate is a much
    bigger die and more LPDDR stacks than MTIA 2i.  This scales the
    accelerator cost from ``chip.die_area_mm2`` and
    ``chip.dram.capacity_bytes``; the platform (host CPUs, NIC,
    chassis) is shared across candidates and carries over unchanged.

    Calling this with the reference chip itself returns
    ``reference_costs`` exactly (the silicon coefficient is calibrated
    against it), so existing MTIA 2i results are unaffected.
    """
    if reference is None:
        from repro.arch.mtia import mtia2i_spec

        reference = mtia2i_spec()
    gib = 1024.0**3
    ref_memory = DERIVED_COST_LPDDR_USD_PER_GIB * (
        reference.dram.capacity_bytes / gib
    )
    ref_silicon = (
        reference_costs.accelerator_cost_usd
        - DERIVED_COST_FIXED_USD
        - ref_memory
    )
    if ref_silicon <= 0:
        raise ValueError("reference cost does not cover fixed + memory terms")
    area_ratio = chip.die_area_mm2 / reference.die_area_mm2
    silicon = ref_silicon * area_ratio**DERIVED_COST_AREA_EXPONENT
    memory = DERIVED_COST_LPDDR_USD_PER_GIB * (chip.dram.capacity_bytes / gib)
    return dataclasses.replace(
        reference_costs,
        accelerator_cost_usd=silicon + memory + DERIVED_COST_FIXED_USD,
    )


@dataclasses.dataclass(frozen=True)
class TcoBreakdown:
    """Annualized TCO of one server."""

    capex_per_year: float
    energy_per_year: float
    provisioning_per_year: float

    @property
    def total_per_year(self) -> float:
        """Total annual cost of owning and running the server."""
        return self.capex_per_year + self.energy_per_year + self.provisioning_per_year


def measured_server_power_watts(server: ServerSpec, report) -> float:
    """Average server draw from a measured execution.

    ``report`` is anything exposing ``avg_power_w`` per accelerator —
    in practice an :class:`~repro.perf.executor.ExecutionReport`.  The
    platform share matches the convention of
    :func:`~repro.arch.server.ServerSpec.typical_power_watts`.
    """
    return (
        server.platform_power_watts * 0.8
        + server.accelerators_per_server * report.avg_power_w
    )


def server_tco(
    server: ServerSpec,
    costs: CostInputs,
    avg_power_watts: float = None,
    report=None,
) -> TcoBreakdown:
    """Annualized TCO for one server at a given average draw.

    The energy term uses, in order of preference: an explicit
    ``avg_power_watts``, the measured draw of an execution ``report``
    (via :func:`measured_server_power_watts`), or the server's nameplate
    typical power.  Passing the report matters: a memory-bound model
    leaves the compute array idle and draws well under typical, which
    the nameplate default silently overstates.  The provisioning term
    always uses nameplate (rack budgets are provisioned for peak — the
    subject of section 5.3).
    """
    if avg_power_watts is None:
        if report is not None:
            avg_power_watts = measured_server_power_watts(server, report)
        else:
            avg_power_watts = server.typical_power_watts
    capex = (
        costs.platform_cost_usd
        + server.accelerators_per_server * costs.accelerator_cost_usd
    ) / costs.depreciation_years
    hours_per_year = 8760.0
    energy = avg_power_watts / 1000.0 * costs.pue * hours_per_year * costs.electricity_usd_per_kwh
    provisioning = server.max_power_watts * costs.provisioning_usd_per_watt_year
    return TcoBreakdown(
        capex_per_year=capex,
        energy_per_year=energy,
        provisioning_per_year=provisioning,
    )


def perf_per_tco(
    server_throughput: float, server: ServerSpec, costs: CostInputs,
    avg_power_watts: float = None, report=None,
) -> float:
    """Samples/s per annual TCO dollar."""
    breakdown = server_tco(server, costs, avg_power_watts, report=report)
    return server_throughput / breakdown.total_per_year


def perf_per_watt(
    server_throughput: float,
    avg_power_watts: float = None,
    server: ServerSpec = None,
    report=None,
) -> float:
    """Samples/s per watt of average server draw.

    Either pass ``avg_power_watts`` directly, or pass ``server`` and a
    measured execution ``report`` to use the measured draw.
    """
    if avg_power_watts is None:
        if server is None or report is None:
            raise ValueError(
                "pass avg_power_watts, or both server and report"
            )
        avg_power_watts = measured_server_power_watts(server, report)
    if avg_power_watts <= 0:
        raise ValueError("power must be positive")
    return server_throughput / avg_power_watts


@dataclasses.dataclass(frozen=True)
class PlatformComparison:
    """MTIA-vs-GPU efficiency ratios for one model."""

    model_name: str
    mtia_server_throughput: float
    gpu_server_throughput: float
    mtia_power_w: float
    gpu_power_w: float
    perf_per_tco_ratio: float
    perf_per_watt_ratio: float

    @property
    def tco_reduction(self) -> float:
        """Fractional TCO reduction at iso-performance (the paper's 44%)."""
        return 1.0 - 1.0 / self.perf_per_tco_ratio if self.perf_per_tco_ratio else 0.0


def compare_platforms(
    model_name: str,
    mtia_chip_throughput: float,
    gpu_chip_throughput: float,
    mtia_chip_power_w: float,
    gpu_chip_power_w: float,
    mtia_srv: ServerSpec = None,
    gpu_srv: ServerSpec = None,
    mtia_costs: CostInputs = MTIA2I_COST,
    gpu_costs: CostInputs = GPU_COST,
    mtia_accelerators_per_model: int = 1,
    gpu_accelerators_per_model: int = 1,
) -> PlatformComparison:
    """Server-level Perf/TCO and Perf/Watt ratios from per-chip numbers.

    ``*_accelerators_per_model`` captures sharding.  Sharding distributes
    *capacity* (embedding tables that exceed one device's DRAM), not
    serving: every accelerator still executes merge/remote jobs, so
    server throughput stays chips x per-chip throughput.  What sharding
    does cost is cross-device transfers of pooled embeddings, modelled as
    a small per-extra-shard throughput tax.
    """
    from repro.autotune.sharding import shard_throughput_tax

    mtia_srv = mtia_srv or mtia2i_server()
    gpu_srv = gpu_srv or gpu_server()
    mtia_server_tp = (
        mtia_chip_throughput * mtia_srv.accelerators_per_server
        * shard_throughput_tax(mtia_accelerators_per_model)
    )
    gpu_server_tp = (
        gpu_chip_throughput * gpu_srv.accelerators_per_server
        * shard_throughput_tax(gpu_accelerators_per_model)
    )
    mtia_power = (
        mtia_srv.platform_power_watts * 0.8
        + mtia_srv.accelerators_per_server * mtia_chip_power_w
    )
    gpu_power = (
        gpu_srv.platform_power_watts * 0.8
        + gpu_srv.accelerators_per_server * gpu_chip_power_w
    )
    mtia_ppt = perf_per_tco(mtia_server_tp, mtia_srv, mtia_costs, mtia_power)
    gpu_ppt = perf_per_tco(gpu_server_tp, gpu_srv, gpu_costs, gpu_power)
    return PlatformComparison(
        model_name=model_name,
        mtia_server_throughput=mtia_server_tp,
        gpu_server_throughput=gpu_server_tp,
        mtia_power_w=mtia_power,
        gpu_power_w=gpu_power,
        perf_per_tco_ratio=mtia_ppt / gpu_ppt if gpu_ppt else 0.0,
        perf_per_watt_ratio=(
            perf_per_watt(mtia_server_tp, mtia_power)
            / perf_per_watt(gpu_server_tp, gpu_power)
        ),
    )
