"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``specs``      — print a chip's architecture summary (Figures 1-2 view)
* ``evaluate``   — run a zoo model through the full MTIA-vs-GPU pipeline
* ``llm``        — LLM prefill/decode feasibility (sections 3.6/8)
* ``casestudy``  — replay the Figure 4 optimization journey
* ``trace``      — execute a zoo model and write a Chrome trace JSON
* ``resilience`` — run the section 5.5 fleet-resilience drill
* ``cluster``    — run the multi-host serving-tier simulator: routing
  policy comparison, shard-locality probe, capacity sweep, and the
  autoscaled diurnal day
* ``sdc``        — run the silent-data-corruption injection campaign
* ``chaos``      — run the correlated-fault chaos campaign: the section 5
  incident catalog (host/rack/power/partition/thermal/firmware plus the
  metastable retry storm), defenses off versus on, scored on goodput,
  time-to-recovery, SLO breach, and unavailability
* ``power``      — run the time-domain power studies: governed DVFS with
  thermal feedback, per-chip vs server-level capping, the section 5.3
  budget re-derivation, and the power-limited capacity sweep
* ``fleet``      — run the global multi-region fleet: the region-outage
  capacity study (hosts per region to serve N million users at the P99
  SLO through a full region outage), probe-driven failover with
  capacity spill versus the undefended baseline
* ``surrogate``  — train the learned performance surrogates and run the
  exact-verified searches they guide: verified kernel tuning, guided
  capacity planning, and the guided power-limited sweep
* ``codesign``   — run the automated model-chip co-design search: seeded
  annealing over the chip design space, surrogate-guided halving rungs,
  and the exact-evaluated Perf / Perf-per-TCO / Perf-per-Watt Pareto
  front with the "MTIA 3" proposal and the MTIA 1 → 2 sanity anchor
* ``bench``      — run the benchmarks, aggregate ``BENCH_results.json``,
  and fail on regressions against the previous snapshot or the pinned
  golden values
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.arch import describe_chip, describe_pe, gpu_spec, mtia1_spec, mtia2i_spec
from repro.models import figure6_models

_CHIPS = {
    "mtia2i": mtia2i_spec,
    "mtia1": mtia1_spec,
    "gpu": gpu_spec,
}

_LLMS = {
    "llama2-7b": "llama2_7b",
    "llama3-8b": "llama3_8b",
    "llama3-70b": "llama3_70b",
}

# The CI subset: fast enough for every push, still covering the headline
# claims (kernel efficiency, serving consolidation, SDC ladder, cluster
# capacity, time-domain power).
_SMOKE_BENCHMARKS = (
    "test_sec33_gemm_efficiency.py",
    "test_fig5_tbe_consolidation.py",
    "test_sec5_sdc_campaign.py",
    "test_cluster_capacity.py",
    "test_sec52_sec53_power.py",
    "test_sec5_chaos.py",
    "test_sec5_fleet.py",
    "test_sec41_surrogate.py",
    "test_sec6_codesign.py",
)


def _zoo_model(name: str):
    for model in figure6_models():
        if model.name.lower() == name.lower():
            return model
    valid = ", ".join(m.name for m in figure6_models())
    raise SystemExit(f"unknown model {name!r}; choose one of: {valid}")


def cmd_specs(args: argparse.Namespace) -> int:
    chip = _CHIPS[args.chip]()
    print(describe_chip(chip))
    print()
    print(describe_pe(chip))
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.core import evaluate_model

    model = _zoo_model(args.model)
    evaluation = evaluate_model(model)
    report = evaluation.mtia_report
    print(f"{model.name}: {model.description}")
    print(f"  batch {model.batch} (GPU batch {model.gpu_batch or model.batch}), "
          f"accelerators {model.accelerators}")
    print(f"  MTIA 2i: {evaluation.mtia_chip_throughput:,.0f} samples/s/chip, "
          f"latency {report.latency_s * 1e3:.2f} ms, "
          f"sparse hit {report.sparse_hit_rate:.0%}")
    print(f"  GPU:     {evaluation.gpu_chip_throughput:,.0f} samples/s/chip")
    print(f"  replay:     Perf/TCO {evaluation.replay.perf_per_tco_ratio:.2f}x, "
          f"Perf/Watt {evaluation.replay.perf_per_watt_ratio:.2f}x")
    print(f"  production: Perf/TCO {evaluation.production_perf_per_tco:.2f}x, "
          f"Perf/Watt {evaluation.production_perf_per_watt:.2f}x "
          f"(TCO reduction {evaluation.production_tco_reduction:.0%})")
    return 0


def cmd_llm(args: argparse.Namespace) -> int:
    import repro.perf as perf

    config = getattr(perf, _LLMS[args.model])()
    chip = _CHIPS[args.chip]()
    verdict = perf.evaluate_llm(config, chip)
    print(f"{config.name} on {chip.name}:")
    print(f"  prefill TTFT: {verdict.prefill_latency_s * 1e3:.0f} ms "
          f"(requirement {perf.TTFT_REQUIREMENT_S * 1e3:.0f} ms) "
          f"-> {'pass' if verdict.prefill_meets_ttft else 'FAIL'}")
    print(f"  decode/token: {verdict.decode_latency_s * 1e3:.1f} ms "
          f"(requirement {perf.DECODE_REQUIREMENT_S * 1e3:.0f} ms) "
          f"-> {'pass' if verdict.decode_meets_latency else 'FAIL'}")
    print(f"  serving viable: {verdict.viable}")
    return 0 if verdict.viable else 1


def cmd_casestudy(args: argparse.Namespace) -> int:
    from repro.core import run_case_study

    for stage in run_case_study(include_rejected_change=not args.skip_rejected):
        print(f"m{stage.month} [{stage.variant}] {stage.label:36} "
              f"Perf/TCO {stage.perf_per_tco:5.2f}  Perf/Watt {stage.perf_per_watt:5.2f}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.perf import Executor
    from repro.perf.trace import summarize_trace, write_chrome_trace

    model = _zoo_model(args.model)
    chip = _CHIPS[args.chip]()
    report = Executor(chip).run(model.graph(), model.batch, warmup_runs=1)
    write_chrome_trace(report, args.out)
    print(summarize_trace(report))
    print(f"\nwrote {args.out} (open in Perfetto or chrome://tracing)")
    return 0


def cmd_resilience(args: argparse.Namespace) -> int:
    from repro.resilience import run_section_55_drill, write_resilience_trace
    from repro.resilience.events import EventKind

    drill = run_section_55_drill(
        devices=args.devices,
        duration_days=args.days,
        utilization=args.utilization,
        seed=args.seed,
    )
    print(drill.summary())
    if args.timeline:
        marks = drill.mitigated.events.of_kind(
            EventKind.SLO_AT_RISK,
            EventKind.ROLLOUT_TRIGGERED,
            EventKind.ROLLOUT_WAVE,
            EventKind.ROLLOUT_DONE,
            EventKind.LOAD_SHED,
        )
        print("\nmitigated-run timeline (pool events):")
        for event in marks:
            detail = " ".join(f"{k}={v:g}" for k, v in sorted(event.detail.items()))
            print(f"  day {event.time_s / 86_400.0:6.2f}  {event.kind.value:18} {detail}")
    if args.trace:
        write_resilience_trace(drill.mitigated, args.trace)
        print(f"\nwrote {args.trace} (open in Perfetto or chrome://tracing)")
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import (
        POLICY_NAMES,
        autoscaled_day,
        capacity_sweep,
        default_service_model,
        locality_comparison,
        policy_comparison,
    )
    from repro.obs.tracing import TraceWriter

    service = default_service_model()
    policies = POLICY_NAMES if args.policy == "all" else (args.policy,)
    if args.smoke:
        qps_points, sweep_duration, probe_duration = [100.0], 10.0, 15.0
    else:
        qps_points = [float(q) for q in args.qps]
        sweep_duration, probe_duration = args.duration, 60.0
    print(f"service model: mean {service.mean_service_s * 1e3:.1f} ms/request, "
          f"{service.capacity_per_replica():.0f} req/s/replica, "
          f"cross-host penalty {service.cross_host_penalty:.2f}x")

    print("\n1) routing policies on identical traffic "
          f"({args.replicas} replicas at {args.utilization:.0%} utilization)")
    reports = policy_comparison(
        service, replicas=args.replicas,
        target_utilization=args.utilization,
        policies=policies, duration_s=probe_duration, seed=args.seed,
    )
    for name, report in reports.items():
        print(f"   {name:12} p50 {report.p50_latency_s * 1e3:6.1f} ms  "
              f"p99 {report.p99_latency_s * 1e3:6.1f} ms  "
              f"util {report.utilization:.0%}  "
              f"shed {report.shed_fraction:.2%}")

    print("\n2) shard locality: queue-blind JSQ vs locality-aware routing")
    locality_reports = locality_comparison(
        service, replicas=args.replicas, duration_s=probe_duration,
        seed=args.seed,
    )
    for name, report in locality_reports.items():
        print(f"   {name:12} cross-host {report.cross_host_fraction:6.1%}  "
              f"p99 {report.p99_latency_s * 1e3:6.1f} ms")

    print(f"\n3) capacity sweep (seed {args.seed})")
    sweep = capacity_sweep(
        service, qps_points, policies=policies,
        p99_slo_s=args.slo_ms / 1e3, duration_s=sweep_duration,
        seed=args.seed,
    )
    for line in sweep.table().splitlines():
        print(f"   {line}")

    print("\n4) autoscaled diurnal day (compressed)")
    tracer = TraceWriter("repro.cluster") if args.trace else None
    day_length = 900.0 if args.smoke else 3600.0
    report, model = autoscaled_day(
        service,
        day_length_s=day_length,
        policy=args.policy if args.policy != "all" else "po2",
        fault_rate_per_replica_hour=args.fault_rate,
        seed=args.seed,
        tracer=tracer,
    )
    print(f"   traffic: mean {model.mean_rate_per_s:.0f} req/s, "
          f"peak {model.peak_rate_per_s:.0f} req/s over {day_length:.0f} s")
    for line in report.summary().splitlines():
        print(f"   {line}")
    if args.trace:
        tracer.write(args.trace)
        print(f"\nwrote {args.trace} (open in Perfetto or chrome://tracing)")
    return 0


def cmd_sdc(args: argparse.Namespace) -> int:
    from repro.sdc import (
        CampaignConfig,
        run_campaign,
        sdc_fault_rates,
        triple_flip_escape_rate,
    )

    trials, requests = (args.trials, args.requests)
    if args.smoke:
        trials, requests = 60, 2000
    config = CampaignConfig(trials=trials, requests=requests, seed=args.seed)
    result = run_campaign(config)
    print(f"SDC injection campaign: {trials} trials x {requests} requests "
          f"(seed {args.seed})")
    print(f"  clean quantized-path NE: {result.clean_ne:.4f} "
          f"(impact threshold |dNE| > {config.ne_threshold:g})")
    sites = ", ".join(f"{site.value}={count}"
                      for site, count in result.site_counts.items() if count)
    print(f"  corruption sites: {sites}")
    print(f"  SEC-DED 3-bit silent-escape rate: "
          f"{triple_flip_escape_rate(samples=200, seed=args.seed):.0%}")
    print()
    print(result.table())
    print()
    for summary in result.profiles:
        if summary.detector_counts:
            caught = ", ".join(f"{name}={count}" for name, count in
                               sorted(summary.detector_counts.items()))
            print(f"  {summary.profile.name:<10} caught by: {caught}")
    ratio = result.undetected_impacting_ratio()
    print(f"\n  undetected NE-impacting corruptions, none vs ecc+abft: "
          f"{ratio if ratio != float('inf') else 'inf'}x fewer")
    rates = sdc_fault_rates(result.summary_for("full"),
                            screening=config.screening)
    print(f"  resilience-simulator linkage (full profile): "
          f"sdc rate {rates.sdc_per_device_hour:.2e}/device-hour, "
          f"blast window {rates.sdc_blast_window_s:.1f} s")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import (
        CampaignConfig,
        run_campaign,
        scenario_by_name,
        smoke_config,
        standard_catalog,
    )
    from repro.obs.tracing import TraceWriter

    import dataclasses

    if args.smoke:
        config = dataclasses.replace(smoke_config(), seed=args.seed)
    else:
        config = CampaignConfig(seed=args.seed)
    if args.scenario == "all":
        scenarios = standard_catalog()
    else:
        scenarios = (scenario_by_name(args.scenario),)
    tracer = TraceWriter("repro.chaos") if args.trace else None
    result = run_campaign(
        config, scenarios=scenarios, tracer=tracer,
        price_quality=args.price_quality,
    )
    print(result.summary())
    if args.trace:
        tracer.write(args.trace)
        print(f"\nwrote {args.trace} (open in Perfetto or chrome://tracing)")
    if args.scenario in ("all", "retry_storm"):
        storm_off, storm_on = result.headline
        return 0 if (not storm_off.recovered and storm_on.recovered) else 1
    return 0


def cmd_power(args: argparse.Namespace) -> int:
    from repro.cluster import default_service_model
    from repro.power import (
        calibrate_throughput,
        capping_study,
        mtia2i_thermal,
        overclock_with_thermal_feedback,
        power_limited_capacity_sweep,
        time_domain_provisioning,
    )
    from repro.reliability import DESIGN_FREQUENCY_HZ

    if args.smoke:
        num_chips, dvfs_duration = 12, 300.0
        cap_duration, prov_servers, prov_duration = 200.0, 12, 200.0
        budgets, sweep_replicas, sweep_duration = (1200.0, 2000.0, 2600.0), 8, 6.0
    else:
        num_chips, dvfs_duration = 24, args.duration
        cap_duration, prov_servers, prov_duration = args.duration, 40, args.duration
        budgets = (1200.0, 1400.0, 1700.0, 2000.0, 2300.0, 2600.0)
        sweep_replicas, sweep_duration = 24, 20.0

    network = mtia2i_thermal()
    print(f"thermal stack: {network.total_resistance_c_per_w:.2f} C/W "
          f"junction-to-ambient, ambient {network.ambient_c:.0f} C")

    print(f"\n1) governed DVFS ({num_chips} chips, {dvfs_duration:.0f} s, "
          f"seed {args.seed})")
    model = _zoo_model(args.model)
    curve = calibrate_throughput(model)
    top = curve.frequencies_hz[-1]
    print(f"   {model.name} throughput curve: {top / 1e9:.2f} GHz -> "
          f"{curve.relative(top):.3f}x of design "
          f"(clock ratio {top / DESIGN_FREQUENCY_HZ:.3f}x)")
    dvfs = overclock_with_thermal_feedback(
        curve, num_chips=num_chips, duration_s=dvfs_duration, seed=args.seed
    )
    print(f"   fleet gain over the 1.10 GHz design point: "
          f"mean {dvfs.mean_gain:+.1%} (min {dvfs.min_gain:+.1%}, "
          f"max {dvfs.max_gain:+.1%}); paper band 5-20%")
    print(f"   mean frequency {dvfs.mean_frequency_hz / 1e9:.3f} GHz, "
          f"peak junction {dvfs.peak_junction_c:.1f} C, "
          f"{dvfs.thermal_throttles} thermal / {dvfs.cap_throttles} cap "
          f"throttle events")

    print(f"\n2) power capping at equal budget ({cap_duration:.0f} s)")
    capping = capping_study(duration_s=cap_duration, seed=args.seed)
    print(f"   accelerator budget {capping.budget_w:.0f} W")
    for outcome in (capping.per_chip, capping.server_level):
        print(f"   {outcome.policy:12} p99 deficit {outcome.p99_deficit:6.2%}  "
              f"delivered {outcome.delivered_fraction:.2%}  "
              f"cap violations {outcome.cap_violation_fraction:.1%}")

    print(f"\n3) budget re-derivation ({prov_servers} servers, "
          f"{prov_duration:.0f} s of telemetry)")
    provisioning = time_domain_provisioning(
        num_servers=prov_servers, duration_s=prov_duration, seed=args.seed
    )
    print(f"   stress-test budget {provisioning.initial_budget_w:7.0f} W/server")
    print(f"   experiment P90     {provisioning.experiment_budget_w:7.0f} W")
    print(f"   fleet P90-of-P90   {provisioning.fleet_budget_w:7.0f} W")
    print(f"   revised budget     {provisioning.revised_budget_w:7.0f} W "
          f"({provisioning.reduction_fraction:.0%} reduction; paper ~40%)")

    print(f"\n4) power-limited capacity ({sweep_replicas} replicas, "
          f"P99 SLO, {sweep_duration:.0f} s per point)")
    sweep = power_limited_capacity_sweep(
        default_service_model(),
        server_budgets_w=budgets,
        replicas=sweep_replicas,
        duration_s=sweep_duration,
        seed=args.seed,
    )
    for line in sweep.table().splitlines():
        print(f"   {line}")
    print(f"   knee at {sweep.knee_budget_w:.0f} W: watts past the full "
          "ladder buy no QPS")
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet_global import (
        region_outage_drill,
        run_capacity_study,
        run_fleet,
        standard_fleet,
    )
    from repro.fleet_global.capacity import smoke_study

    if args.smoke:
        study = smoke_study()
    else:
        study = run_capacity_study(
            users_millions=args.users,
            sizes=tuple(args.sizes),
            seed=args.seed,
        )
    print(study.summary())

    if args.detail and study.defended_replicas is not None:
        print(f"\nregion detail at {study.defended_replicas} replicas/region:")
        fleet = standard_fleet(
            replicas_per_region=study.defended_replicas,
            users_millions=study.users_millions,
            seed=args.seed,
        )
        drill = region_outage_drill(fleet)
        for defended in (False, True):
            print()
            print(run_fleet(fleet, drill, defended=defended).summary())

    # The headline contract: failover is what survives the outage —
    # the defended arm holds at some size, the undefended arm at none.
    healthy = (
        study.defended_replicas is not None
        and study.undefended_replicas is None
    )
    return 0 if healthy else 1


_SURROGATE_QUERY_SHAPES = (
    (700, 1700, 800),
    (3000, 600, 2000),
    (512, 26592, 2048),
    (150, 300, 150),
    (4096, 2048, 1024),
)


def cmd_surrogate(args: argparse.Namespace) -> int:
    import time

    from repro.autotune import exhaustive_tune, measure_variant, surrogate_tune
    from repro.kernels.gemm import default_variants
    from repro.obs.metrics import MetricsRegistry
    from repro.surrogate import train_gemm_surrogate
    from repro.tensors.tensor import GemmShape

    chip = mtia2i_spec()
    samples = 1500 if args.smoke else args.samples
    print(f"training GEMM surrogate: {samples} sampled (shape, variant) "
          f"points, seed {args.seed}")
    started = time.perf_counter()
    surrogate, reports = train_gemm_surrogate(
        chip, n_samples=samples, seed=args.seed,
        include_energy=not args.smoke,
    )
    train_s = time.perf_counter() - started
    print(f"{'target':>8}  {'rows':>6}  {'MAPE':>7}  {'P95 rel':>8}  "
          f"{'max rel':>8}")
    for target, report in sorted(reports.items()):
        print(f"{target:>8}  {report.n_train + report.n_holdout:6d}  "
              f"{report.mape_holdout:7.2%}  "
              f"{report.p95_rel_error_holdout:8.2%}  "
              f"{report.max_rel_error_holdout:8.2%}")
    print(f"trained in {train_s:.2f} s")

    variants = default_variants()
    registry = MetricsRegistry()
    print(f"\nverified tuning, {len(variants)} variants, "
          f"top-{args.top_k} exact re-measure:")
    matches = 0
    for mkn in _SURROGATE_QUERY_SHAPES:
        shape = GemmShape(*mkn)
        gold = exhaustive_tune(shape, chip, variants=variants)
        result = surrogate_tune(
            shape, chip, surrogate, variants=variants,
            top_k=args.top_k, registry=registry,
        )
        match = abs(result.kernel_time_s - gold.kernel_time_s) <= (
            1e-12 * gold.kernel_time_s
        )
        matches += match
        print(f"  {str(mkn):>20}  exact {gold.kernel_time_s * 1e6:8.2f} us  "
              f"verified {result.kernel_time_s * 1e6:8.2f} us  "
              f"{'match' if match else 'MISS'}  "
              f"({result.evaluations} vs {gold.evaluations} exact evals)")
    print(f"argmin recovered on {matches}/{len(_SURROGATE_QUERY_SHAPES)} "
          f"query shapes; {len(variants) / args.top_k:.0f}x fewer exact "
          f"evaluations per shape")

    if not args.smoke:
        shapes = [GemmShape(*mkn) for mkn in _SURROGATE_QUERY_SHAPES]
        started = time.perf_counter()
        for shape in shapes:
            for variant in variants:
                measure_variant(shape, variant, chip)
        exact_s = time.perf_counter() - started
        mkns = [(s.m, s.k, s.n) for s in shapes]
        surrogate.predict_time_grid(mkns, variants)  # warm variant cache
        fast_s = float("inf")
        for _ in range(5):
            started = time.perf_counter()
            surrogate.predict_time_grid(mkns, variants)
            fast_s = min(fast_s, time.perf_counter() - started)
        points = len(shapes) * len(variants)
        print(f"\nper-point cost over the {points}-point sweep: exact "
              f"{exact_s / points * 1e6:.2f} us, surrogate "
              f"{fast_s / points * 1e9:.1f} ns "
              f"({exact_s / fast_s:.0f}x)")

    if args.sweep:
        from repro.cluster import default_service_model
        from repro.cluster.capacity import replicas_needed
        from repro.power.cluster_link import power_limited_capacity_sweep
        from repro.surrogate import (
            train_capacity_surrogate,
            train_power_surrogate,
        )

        service = default_service_model()
        print("\nguided capacity planning (po2, exact answers, fewer "
              "simulations):")
        cap_surrogate, cap_report = train_capacity_surrogate(
            service, qps_points=(300.0, 700.0, 1400.0),
            policies=("round_robin", "po2"), duration_s=8.0,
            max_replicas=48, seed=args.seed,
        )
        print(f"  trained on seeded exact probes, "
              f"MAPE {cap_report.mape_train:.2%}")
        for qps in (500.0, 1100.0):
            registry = MetricsRegistry()
            guided = replicas_needed(
                "po2", qps, service, duration_s=8.0, max_replicas=48,
                seed=args.seed, use_surrogate=True,
                surrogate=cap_surrogate, registry=registry,
            )
            exact = replicas_needed(
                "po2", qps, service, duration_s=8.0, max_replicas=48,
                seed=args.seed,
            )
            counters = registry.snapshot()["counters"]
            print(f"  {qps:7.0f} qps -> {guided.replicas} replicas "
                  f"({'identical' if guided == exact else 'DIFFERENT'}); "
                  f"{counters['surrogate.capacity.exact_runs']} vs "
                  f"{counters['surrogate.capacity.linear_scan_runs']} "
                  f"cluster simulations")

        print("\nguided power-limited capacity sweep:")
        power_surrogate, power_report = train_power_surrogate(
            service, probe_budgets_w=(1100.0, 1800.0, 2600.0),
            replicas=8, duration_s=10.0, seed=args.seed,
        )
        budgets = (1200.0, 1400.0, 1600.0, 2000.0, 2400.0)
        registry = MetricsRegistry()
        guided_sweep = power_limited_capacity_sweep(
            service, budgets, replicas=8, duration_s=10.0, seed=args.seed,
            use_surrogate=True, surrogate=power_surrogate,
            registry=registry,
        )
        exact_sweep = power_limited_capacity_sweep(
            service, budgets, replicas=8, duration_s=10.0, seed=args.seed,
        )
        counters = registry.snapshot()["counters"]
        print(f"  {'identical points' if guided_sweep == exact_sweep else 'DIFFERENT POINTS'}; "
              f"{counters['surrogate.power.exact_runs']} vs "
              f"{counters['surrogate.power.linear_scan_runs']} cluster "
              f"simulations across {len(budgets)} budgets")
        for line in guided_sweep.table().splitlines():
            print(f"  {line}")
    return 0


def cmd_codesign(args: argparse.Namespace) -> int:
    from repro.codesign import (
        SearchConfig,
        default_space,
        front_table,
        proposal_summary,
        run_codesign_search,
        smoke_space,
    )
    from repro.obs.metrics import MetricsRegistry

    if args.smoke:
        space = smoke_space()
        models = [m for m in figure6_models()
                  if m.name in ("LC1", "LC3", "HC1")]
        config = SearchConfig(
            seed=args.seed, iterations=40, device_rung_keep=10,
            serving_rung_keep=5, train_chips=10,
        )
        duration = 4.0
    else:
        space = default_space()
        models = None  # the full Table 1 / Figure 6 zoo
        config = SearchConfig(seed=args.seed)
        duration = 6.0

    registry = MetricsRegistry()
    print(f"co-design search: {space.size()} grid points, "
          f"{len(config.chain_weights)} annealing chains x "
          f"{config.iterations} iterations, seed {config.seed}")
    result = run_codesign_search(
        space, models, config, duration_s=duration, registry=registry,
    )
    report = result.train_report
    counters = registry.snapshot()["counters"]
    print(f"executor surrogate: holdout MAPE {report.mape_holdout:.1%} "
          f"({report.n_train} train / {report.n_holdout} holdout rows)")
    print(f"evaluations: "
          f"{counters.get('codesign.evals.surrogate', 0)} surrogate, "
          f"{counters.get('codesign.evals.device', 0)} device, "
          f"{counters.get('codesign.evals.serving', 0)} serving")
    print()
    print(front_table(result))
    print()
    print(proposal_summary(result))
    if args.smoke:
        rerun = run_codesign_search(
            space, models, config, duration_s=duration,
        )
        identical = rerun == result
        print(f"\nseeded rerun bit-for-bit identical: {identical}")
        if not (identical and result.all_front_exact
                and result.mtia2_dominates_mtia1):
            return 1
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    import os
    import pathlib
    import subprocess
    import time

    from repro.obs.bench import (
        aggregate,
        diff_results,
        dump_json,
        golden_violations,
        load_results,
        runtime_comparison,
        runtime_regressions,
        write_results,
    )

    bench_dir = pathlib.Path(args.dir)
    if not bench_dir.is_dir():
        raise SystemExit(f"benchmark directory {bench_dir} not found "
                         "(run from the repository root or pass --dir)")
    if args.smoke:
        files = [bench_dir / name for name in _SMOKE_BENCHMARKS]
    else:
        files = sorted(bench_dir.glob("test_*.py"))
    missing = [f.name for f in files if not f.is_file()]
    if missing:
        raise SystemExit("missing benchmark files: " + ", ".join(missing))
    names = [f.stem[len("test_"):] for f in files]

    runtimes = {}
    if not args.no_run:
        env = dict(os.environ)
        src_dir = str(pathlib.Path(__file__).resolve().parents[1])
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_dir, env.get("PYTHONPATH")) if p
        )
        # Benchmarks need exactly one pytest plugin (pytest-benchmark,
        # for the ``benchmark`` fixture).  Autoloading the rest of the
        # installed plugin set (hypothesis et al.) costs ~2 s of fixed
        # startup per file — pure noise in ``runtime_s``, which times
        # the whole subprocess.
        env["PYTEST_DISABLE_PLUGIN_AUTOLOAD"] = "1"
        for file, name in zip(files, names):
            started = time.perf_counter()
            proc = subprocess.run(
                [sys.executable, "-m", "pytest", str(file), "-q",
                 "-p", "pytest_benchmark.plugin", "-p", "no:cacheprovider"],
                env=env,
            )
            runtimes[name] = time.perf_counter() - started
            if proc.returncode != 0:
                raise SystemExit(
                    f"benchmark {file.name} failed (exit {proc.returncode})"
                )
            print(f"[bench] {name}: {runtimes[name]:.1f} s")

    results = aggregate(bench_dir / "out", runtimes)
    selected = set(names)
    results["benchmarks"] = {
        name: entry for name, entry in results["benchmarks"].items()
        if name in selected
    }
    recorded = sorted(results["benchmarks"])
    if not recorded:
        raise SystemExit(f"no scalar artifacts under {bench_dir / 'out'} "
                         "(did the benchmarks run?)")
    print(f"[bench] aggregated {len(recorded)} benchmarks: "
          + ", ".join(recorded))

    failed = False
    baseline = load_results(args.baseline)
    if baseline is None:
        print(f"[bench] no baseline at {args.baseline}; skipping diff")
    else:
        diff = diff_results(baseline, results, rel_tol=args.rel_tol)
        print(f"[bench] diff vs {args.baseline}:")
        for line in diff.report().splitlines():
            print(f"  {line}")
        failed = failed or not diff.clean
        if runtimes:
            comparison = runtime_comparison(baseline, results)
            artifact = bench_dir / "out" / "runtime_comparison.json"
            artifact.write_text(dump_json(comparison))
            print(f"[bench] runtime comparison -> {artifact}")
            for name, row in comparison.items():
                print(
                    f"[bench]   {name}: {row['baseline_s']:.2f} s -> "
                    f"{row['current_s']:.2f} s "
                    f"({row['speedup']:.2f}x speedup)"
                )
            for slow in runtime_regressions(baseline, results):
                print(f"[bench] RUNTIME REGRESSION {slow}")
                failed = True

    violations = golden_violations(results)
    for violation in violations:
        print(f"[bench] GOLDEN VIOLATION {violation}")
    failed = failed or bool(violations)

    write_results(results, args.out)
    print(f"[bench] wrote {args.out}")
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MTIA 2i performance-model reproduction (ISCA 2025)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    specs = sub.add_parser("specs", help="print a chip's architecture summary")
    specs.add_argument("--chip", choices=sorted(_CHIPS), default="mtia2i")
    specs.set_defaults(func=cmd_specs)

    evaluate = sub.add_parser("evaluate", help="evaluate a Figure 6 model")
    evaluate.add_argument("--model", default="LC1")
    evaluate.set_defaults(func=cmd_evaluate)

    llm = sub.add_parser("llm", help="LLM serving feasibility")
    llm.add_argument("--model", choices=sorted(_LLMS), default="llama2-7b")
    llm.add_argument("--chip", choices=sorted(_CHIPS), default="mtia2i")
    llm.set_defaults(func=cmd_llm)

    casestudy = sub.add_parser("casestudy", help="replay the Figure 4 journey")
    casestudy.add_argument("--skip-rejected", action="store_true")
    casestudy.set_defaults(func=cmd_casestudy)

    trace = sub.add_parser("trace", help="write a Chrome trace for a model")
    trace.add_argument("--model", default="LC1")
    trace.add_argument("--chip", choices=sorted(_CHIPS), default="mtia2i")
    trace.add_argument("--out", default="trace.json")
    trace.set_defaults(func=cmd_trace)

    resilience = sub.add_parser(
        "resilience", help="run the section 5.5 fleet-resilience drill"
    )
    resilience.add_argument("--devices", type=int, default=300)
    resilience.add_argument("--days", type=float, default=90.0)
    resilience.add_argument("--utilization", type=float, default=0.85)
    resilience.add_argument("--seed", type=int, default=0)
    resilience.add_argument("--timeline", action="store_true",
                            help="print the mitigated run's pool events")
    resilience.add_argument("--trace", default=None, metavar="PATH",
                            help="write the mitigated run as a Chrome trace")
    resilience.set_defaults(func=cmd_resilience)

    cluster = sub.add_parser(
        "cluster", help="run the multi-host serving-tier simulator"
    )
    cluster.add_argument("--policy",
                         choices=["all", "round_robin", "jsq", "po2", "locality"],
                         default="all")
    cluster.add_argument("--qps", type=float, nargs="+",
                         default=[100.0, 200.0, 300.0],
                         help="offered-QPS points for the capacity sweep")
    cluster.add_argument("--replicas", type=int, default=12,
                         help="replica count for the policy comparison")
    cluster.add_argument("--utilization", type=float, default=0.85,
                         help="target utilization for the policy comparison")
    cluster.add_argument("--duration", type=float, default=40.0,
                         help="simulated seconds per capacity-sweep cell")
    cluster.add_argument("--slo-ms", type=float, default=100.0,
                         help="P99 latency SLO for the capacity sweep")
    cluster.add_argument("--fault-rate", type=float, default=0.0,
                         help="replica faults per replica-hour in the day run")
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument("--smoke", action="store_true",
                         help="small fixed-size run for CI")
    cluster.add_argument("--trace", default=None, metavar="PATH",
                         help="write the autoscaled day as a Chrome trace")
    cluster.set_defaults(func=cmd_cluster)

    sdc = sub.add_parser(
        "sdc", help="run the silent-data-corruption injection campaign"
    )
    sdc.add_argument("--trials", type=int, default=400)
    sdc.add_argument("--requests", type=int, default=8000)
    sdc.add_argument("--seed", type=int, default=0)
    sdc.add_argument("--smoke", action="store_true",
                     help="small fixed-size campaign (60 trials) for CI")
    sdc.set_defaults(func=cmd_sdc)

    chaos = sub.add_parser(
        "chaos", help="run the correlated-fault chaos campaign"
    )
    chaos.add_argument("--scenario", default="all",
                       help="one scenario name, or 'all' for the catalog")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--smoke", action="store_true",
                       help="small fixed-size campaign for CI")
    chaos.add_argument("--price-quality", action="store_true",
                       help="measure brownout NE damage through the A/B harness")
    chaos.add_argument("--trace", default=None, metavar="PATH",
                       help="write defended runs as a Chrome trace")
    chaos.set_defaults(func=cmd_chaos)

    power = sub.add_parser(
        "power", help="run the time-domain power / thermal / DVFS studies"
    )
    power.add_argument("--model", default="LC1",
                       help="zoo model for the throughput-vs-frequency curve")
    power.add_argument("--duration", type=float, default=600.0,
                       help="simulated seconds per study")
    power.add_argument("--seed", type=int, default=0)
    power.add_argument("--smoke", action="store_true",
                       help="small fixed-size studies for CI")
    power.set_defaults(func=cmd_power)

    fleet = sub.add_parser(
        "fleet", help="run the global multi-region capacity study"
    )
    fleet.add_argument("--users", type=float, default=4.0,
                       help="global user base in millions, quoted at peak")
    fleet.add_argument("--sizes", type=int, nargs="+",
                       default=[3, 4, 5, 6, 8],
                       help="replicas-per-region candidates to sweep")
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--smoke", action="store_true",
                       help="small fixed-size study for CI")
    fleet.add_argument("--detail", action="store_true",
                       help="print per-region detail at the verdict size")
    fleet.set_defaults(func=cmd_fleet)

    surrogate = sub.add_parser(
        "surrogate",
        help="train the learned performance surrogates and run "
             "exact-verified tuning/capacity/power searches",
    )
    surrogate.add_argument("--smoke", action="store_true",
                           help="small fixed-size training run for CI")
    surrogate.add_argument("--train", action="store_true",
                           help="full training run with error bands and "
                                "the exact-vs-surrogate speedup probe")
    surrogate.add_argument("--sweep", action="store_true",
                           help="also run the guided capacity and power "
                                "sweeps against their exact baselines")
    surrogate.add_argument("--samples", type=int, default=6000,
                           help="training rows for the GEMM surrogate")
    surrogate.add_argument("--top-k", type=int, default=16,
                           help="exact re-measurements per verified tune")
    surrogate.add_argument("--seed", type=int, default=0)
    surrogate.set_defaults(func=cmd_surrogate)

    codesign = sub.add_parser(
        "codesign",
        help="run the model-chip co-design search and emit the "
             "Perf/TCO/Perf-per-Watt Pareto front",
    )
    codesign.add_argument("--smoke", action="store_true",
                          help="small fixed-size search for CI (includes "
                               "a seeded-rerun determinism probe)")
    codesign.add_argument("--seed", type=int, default=0)
    codesign.set_defaults(func=cmd_codesign)

    bench = sub.add_parser(
        "bench",
        help="run benchmarks, aggregate BENCH_results.json, flag regressions",
    )
    bench.add_argument("--smoke", action="store_true",
                       help="run only the fast CI subset")
    bench.add_argument("--dir", default="benchmarks",
                       help="benchmark directory (default: benchmarks)")
    bench.add_argument("--out", default="BENCH_results.json",
                       help="aggregated results path")
    bench.add_argument("--baseline", default="BENCH_results.json",
                       help="previous snapshot to diff against")
    bench.add_argument("--rel-tol", type=float, default=0.05,
                       help="relative tolerance for the snapshot diff")
    bench.add_argument("--no-run", action="store_true",
                       help="aggregate existing out/*.json without running")
    bench.set_defaults(func=cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
