"""Chrome-trace export of a resilience run.

Renders a :class:`~repro.resilience.metrics.ResilienceReport` as a
Perfetto / ``chrome://tracing`` timeline through the unified writer in
:mod:`repro.obs.tracing` (the same one the executor traces use):

* one lane per device that experienced an incident, with duration spans
  for its wedged/degraded/draining/rebooting episodes;
* a pool lane carrying instant markers (SLO trip, rollout trigger,
  waves, completion) and SDC flashes;
* counter tracks for goodput fraction, wedged-device count, and
  P99-with-retries, so the section 5.5 arc is visible at a glance.

Times are exported in trace microseconds with 1 simulated second =
1 trace microsecond (a 90-day run renders as a ~7.8 s timeline).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.tracing import TraceWriter, write_trace_json

from repro.resilience.events import EventKind
from repro.resilience.metrics import ResilienceReport

_POOL_LANE = 1

# Per-device span starts keyed by the event that opens them.
_SPAN_OPENERS = {
    EventKind.FAULT_DEADLOCK: "wedged",
    EventKind.FAULT_ECC_UE: "degraded (ecc)",
    EventKind.FAULT_THROTTLE: "degraded (throttle)",
    EventKind.DRAIN_START: "draining",
    EventKind.REBOOT_START: "rebooting",
}
_SPAN_CLOSERS = {
    EventKind.FAULT_DEADLOCK,  # a degraded device can still wedge
    EventKind.DEGRADE_END,
    EventKind.DRAIN_START,
    EventKind.REBOOT_START,
    EventKind.REBOOT_DONE,
}
_POOL_MARKERS = {
    EventKind.SLO_AT_RISK,
    EventKind.LOAD_SHED,
    EventKind.ROLLOUT_TRIGGERED,
    EventKind.ROLLOUT_WAVE,
    EventKind.ROLLOUT_DONE,
}


def to_resilience_trace(report: ResilienceReport) -> Dict:
    """Build the Chrome trace-event document for one run."""
    writer = TraceWriter(
        f"resilience: {report.num_devices} devices, seed {report.seed}"
    )
    writer.lane("pool", tid=_POOL_LANE)
    open_span: Dict[int, Optional[Dict]] = {}

    def lane_for(device_id: int) -> int:
        return writer.lane(f"device {device_id}", tid=_POOL_LANE + 1 + device_id)

    def close_span(device_id: int, now_s: float) -> None:
        span = open_span.get(device_id)
        if span is None:
            return
        writer.complete(
            name=span["name"],
            cat="device_state",
            ts=round(span["start_s"], 6),
            dur=round(max(0.0, now_s - span["start_s"]), 6),
            tid=lane_for(device_id),
            args=span["args"],
        )
        open_span[device_id] = None

    for event in report.events:
        if event.device_id is None:
            if event.kind in _POOL_MARKERS:
                writer.instant(
                    name=event.kind.value,
                    cat="pool",
                    scope="g",
                    ts=round(event.time_s, 6),
                    tid=_POOL_LANE,
                    args=dict(event.detail),
                )
            continue
        device_id = event.device_id
        if event.kind == EventKind.FAULT_SDC:
            writer.instant(
                name="sdc",
                cat="fault",
                scope="t",
                ts=round(event.time_s, 6),
                tid=lane_for(device_id),
                args=dict(event.detail),
            )
            continue
        if event.kind in _SPAN_CLOSERS:
            close_span(device_id, event.time_s)
        if event.kind in _SPAN_OPENERS:
            # Re-opening over an existing span (e.g. a second throttle
            # while degraded) just extends it.
            if open_span.get(device_id) is None:
                open_span[device_id] = {
                    "name": _SPAN_OPENERS[event.kind],
                    "start_s": event.time_s,
                    "args": dict(event.detail),
                }
    for device_id in list(open_span):
        close_span(device_id, report.duration_s)

    for metrics in report.intervals:
        ts = round(metrics.time_s, 6)
        writer.counter(
            "goodput_fraction", ts,
            {"goodput": round(metrics.goodput_fraction, 4)},
        )
        writer.counter("wedged_devices", ts, {"wedged": metrics.wedged})
        writer.counter(
            "p99_latency_ms", ts,
            {"p99": round(metrics.p99_latency_s * 1e3, 3)},
        )

    return writer.document(
        other_data={
            "devices": report.num_devices,
            "duration_s": report.duration_s,
            "seed": report.seed,
            "offered_samples_per_s": report.offered_samples_per_s,
            "min_goodput_fraction": round(report.min_goodput_fraction, 4),
            "final_goodput_fraction": round(report.final_goodput_fraction, 4),
            "unavailability_device_minutes": round(
                report.unavailability_device_minutes, 1
            ),
        },
    )


def write_resilience_trace(report: ResilienceReport, path: str) -> None:
    """Write the resilience timeline to ``path`` (1 sim second = 1 us)."""
    write_trace_json(to_resilience_trace(report), path)
