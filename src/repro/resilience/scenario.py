"""The section 5.5 arc, end to end: deadlocks accumulate, the SLO trips,
an emergency firmware rollout patches the fleet, goodput recovers.

The drill runs the *same seeded fault schedule* twice:

* **baseline** — no mitigation at all: wedged devices silently eat
  their share of traffic, goodput degrades monotonically, and the
  ``slo_at_risk`` signal from :mod:`repro.serving.faults` eventually
  trips with nobody listening;
* **mitigated** — the serving tier retries/hedges/sheds (goodput holds
  while latency and retry amplification absorb the damage), and when
  the SLO trips, :func:`repro.reliability.firmware.emergency_rollout`
  patches the fleet wave-by-wave under its restart-concurrency limit,
  power-cycling wedged devices along the way.

Deliberately absent from the mitigated run is an automated drain: the
paper's deadlock takes the device off PCIe silently, and clearing it
needs a coordinated power-cycle — exactly what the firmware rollout
provides.  (The drain policy exists and is exercised elsewhere; here it
would mask the arc the paper describes.)

Because both runs share a seed, their pre-sampled fault schedules are
identical, so the comparison isolates policy effects — and two drills
with the same seed produce identical event logs, which is the
determinism contract the acceptance tests check.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.resilience.faults import FaultRates, fault_rates_from_reliability
from repro.resilience.metrics import ResilienceReport
from repro.resilience.policies import (
    HedgePolicy,
    LoadShedPolicy,
    ResiliencePolicies,
    RetryPolicy,
    RolloutPolicy,
)
from repro.resilience.simulator import (
    ResilienceConfig,
    calibrate_base_latency,
    run_resilience,
)
from repro.serving.batcher import CoalescingConfig
from repro.serving.scheduler import ModelJobProfile


def section_55_policies() -> ResiliencePolicies:
    """The mitigated arm: retry + hedge + shed + emergency rollout."""
    return ResiliencePolicies(
        retry=RetryPolicy(),
        hedge=HedgePolicy(enabled=True),
        drain=None,  # the wedge needs the rollout's power-cycle
        shed=LoadShedPolicy(enabled=True),
        rollout=RolloutPolicy(enabled=True),
    )


@dataclasses.dataclass(frozen=True)
class DrillResult:
    """Both arms of the drill plus the shared inputs."""

    config: ResilienceConfig
    rates: FaultRates
    baseline: ResilienceReport
    mitigated: ResilienceReport

    @property
    def baseline_slo_trip_s(self) -> Optional[float]:
        """When the unmitigated pool crossed into SLO risk."""
        return self.baseline.first_slo_trip_s

    @property
    def recovered(self) -> bool:
        """Whether the mitigated arm ended >= 99% of baseline goodput."""
        return self.mitigated.recovered(0.99)

    def summary(self) -> str:
        """A printable digest of the arc (used by the drill example)."""
        config, base, mit = self.config, self.baseline, self.mitigated
        days = config.duration_s / 86_400.0
        lines = [
            f"section 5.5 drill: {config.devices} devices at "
            f"{config.baseline_utilization:.0%} utilization, "
            f"{days:.0f} simulated days, seed {config.seed}",
            f"  deadlock rate: "
            f"{self.rates.deadlock_per_device_hour * 24:.2%}/device-day "
            f"(paper: ~0.1%/day on susceptible models)",
            "",
            "  baseline (no mitigation):",
            f"    goodput: 100% -> {base.final_goodput_fraction:.1%} "
            f"(min {base.min_goodput_fraction:.1%}), monotonically degrading",
            _trip_line(base, days),
            f"    unavailability: {base.unavailability_device_minutes:,.0f} "
            f"device-minutes",
            "",
            "  mitigated (retry + hedge + shed + emergency rollout):",
            f"    goodput: min {mit.min_goodput_fraction:.1%}, "
            f"final {mit.final_goodput_fraction:.1%} "
            f"({'recovered' if self.recovered else 'NOT recovered'} "
            f">= 99% of baseline)",
            f"    peak retry amplification: "
            f"{mit.peak_retry_amplification:.2f} attempts/request",
            f"    peak P99 with retries: {max(mit.p99_series) * 1e3:.0f} ms "
            f"(baseline {config.base_p99_s * 1e3:.0f} ms)",
            _rollout_lines(mit),
            f"    unavailability: {mit.unavailability_device_minutes:,.0f} "
            f"device-minutes",
        ]
        return "\n".join(line for line in lines if line is not None)


def _trip_line(report: ResilienceReport, days: float) -> str:
    trip = report.first_slo_trip_s
    if trip is None:
        return f"    slo_at_risk: never tripped in {days:.0f} days"
    return f"    slo_at_risk: tripped at day {trip / 86_400.0:.1f}"


def _rollout_lines(report: ResilienceReport) -> Optional[str]:
    from repro.resilience.events import EventKind

    trigger = report.events.first_of_kind(EventKind.ROLLOUT_TRIGGERED)
    done = report.events.first_of_kind(EventKind.ROLLOUT_DONE)
    if trigger is None:
        return "    rollout: never triggered"
    waves = len(report.events.of_kind(EventKind.ROLLOUT_WAVE))
    if done is None:
        return (
            f"    rollout: triggered at day {trigger.time_s / 86_400.0:.1f}, "
            f"{waves} waves, unfinished at window end"
        )
    duration_h = (done.time_s - trigger.time_s) / 3600.0
    return (
        f"    rollout: triggered day {trigger.time_s / 86_400.0:.1f}, "
        f"{waves} waves, fleet patched in {duration_h:.1f} h "
        f"(paper: ~3 h emergency rollout)"
    )


def run_section_55_drill(
    devices: int = 300,
    duration_days: float = 90.0,
    utilization: float = 0.85,
    device_throughput: float = 1000.0,
    seed: int = 0,
    metrics_interval_s: float = 3600.0,
    rates: Optional[FaultRates] = None,
    job_profile: Optional[ModelJobProfile] = None,
    coalescing: Optional[CoalescingConfig] = None,
) -> DrillResult:
    """Run both arms of the drill on one shared fault schedule.

    Pass a :class:`ModelJobProfile` (and optionally a
    :class:`CoalescingConfig`) to calibrate the baseline latency through
    the real serving pipeline; otherwise the stock case-study-shaped
    defaults are used.
    """
    if not (0 < utilization < 1):
        raise ValueError("baseline utilization must be in (0, 1)")
    base_p50_s, base_p99_s = 0.020, 0.080
    if job_profile is not None:
        coalescing = coalescing or CoalescingConfig(
            window_s=0.010, max_parallel_windows=4, max_batch_samples=512
        )
        base_p50_s, base_p99_s = calibrate_base_latency(
            job_profile, coalescing, request_rate_per_s=60.0
        )
    config = ResilienceConfig(
        devices=devices,
        device_throughput=device_throughput,
        offered_load=utilization * devices * device_throughput,
        duration_s=duration_days * 86_400.0,
        metrics_interval_s=metrics_interval_s,
        base_p50_s=base_p50_s,
        base_p99_s=base_p99_s,
        seed=seed,
    )
    rates = rates if rates is not None else fault_rates_from_reliability()
    baseline = run_resilience(config, rates, ResiliencePolicies.none())
    mitigated = run_resilience(config, rates, section_55_policies())
    return DrillResult(
        config=config, rates=rates, baseline=baseline, mitigated=mitigated
    )
