"""Fault processes for the resilience simulator, derived from the
reliability models of paper section 5.

Each fault family's per-device-hour rate comes from the module that
reproduces the corresponding study rather than from free parameters:

* **PCIe deadlocks** — :func:`repro.reliability.firmware.deadlock_incidence`
  gives the fraction of servers wedging per observation day (the paper's
  0.1%/day production figure at default knobs).
* **Uncorrectable memory errors** — the per-card error probability that
  reproduces section 5.1's 24%-of-servers telemetry
  (:func:`repro.reliability.fleet.card_error_probability_for_server_fraction`),
  thinned by the double-bit share that SEC-DED detects but cannot
  correct.
* **Silent data corruption** — the overclock margin model of section
  5.2: chips whose true f_max sits below the shipped frequency times the
  harshest test sensitivity occasionally compute wrong results.
* **Power throttling** — the section 5.3 telemetry model: the fraction
  of production power samples above a cap is the chance any given hour
  contains a throttling episode.

Fault *arrival times* are pre-sampled per device per family as Poisson
processes at construction, in a fixed order, from one seeded generator —
so a run's entire fault schedule is a pure function of the seed, and two
runs with the same seed produce identical event logs (the determinism
the acceptance tests check).  Arrivals landing on a device that is no
longer susceptible (already wedged, rebooting, or patched) are simply
dropped, which is standard Poisson thinning.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.reliability.firmware import deadlock_incidence
from repro.reliability.fleet import (
    PAPER_AFFECTED_FRACTION,
    card_error_probability_for_server_fraction,
)
from repro.reliability.overclock import DESIGN_FREQUENCY_HZ, MarginModel
from repro.units import GHZ

HOURS_PER_DAY = 24.0
# Share of memory errors that are double-bit (detected-uncorrectable)
# rather than single-bit (corrected); DRAM field studies put the
# multi-bit share around a few percent of events.
DOUBLE_BIT_SHARE = 0.03
# Section 5.1's telemetry window: the 24%-of-servers figure accumulated
# over roughly a month of observation.
FLEET_OBSERVATION_DAYS = 30.0
# How often a marginal (thin-margin) chip actually corrupts a result.
SDC_EVENTS_PER_MARGINAL_CHIP_HOUR = 0.05
# Seconds of served traffic one SDC event poisons before detection.
SDC_BLAST_WINDOW_S = 60.0


@dataclasses.dataclass(frozen=True)
class FaultRates:
    """Per-device-hour Poisson rates for each fault family, plus the
    transient-fault durations."""

    deadlock_per_device_hour: float
    ecc_ue_per_device_hour: float
    sdc_per_device_hour: float
    throttle_per_device_hour: float
    throttle_duration_s: float = 1800.0
    ecc_degrade_duration_s: float = 600.0
    sdc_blast_window_s: float = SDC_BLAST_WINDOW_S

    def __post_init__(self) -> None:
        for name in (
            "deadlock_per_device_hour",
            "ecc_ue_per_device_hour",
            "sdc_per_device_hour",
            "throttle_per_device_hour",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.throttle_duration_s < 0 or self.ecc_degrade_duration_s < 0:
            raise ValueError("durations must be non-negative")


def _margin_shortfall_fraction(
    margin: MarginModel, operating_hz: float, harshest_sensitivity: float = 1.0
) -> float:
    """P(chip f_max < effective stress frequency) under the margin model —
    the tail of chips the overclock shipped with thin margin."""
    effective = operating_hz * harshest_sensitivity
    z = (effective - margin.mean_fmax_hz) / margin.sigma_hz
    return 0.5 * math.erfc(-z / math.sqrt(2.0))


def fault_rates_from_reliability(
    deadlock_fraction_per_day: Optional[float] = None,
    operating_frequency_hz: float = 1.35 * GHZ,
    margin: Optional[MarginModel] = None,
    power_throttle_tail: float = 0.02,
    mitigated: bool = False,
) -> FaultRates:
    """Derive the simulator's fault rates from the section 5 models.

    ``deadlock_fraction_per_day`` defaults to the incidence the firmware
    model produces at its paper-calibrated knobs (~0.1%/day).
    ``power_throttle_tail`` is the fraction of production power samples
    above the rack cap (section 5.3's P90 methodology leaves a small
    tail by construction).
    """
    if deadlock_fraction_per_day is None:
        deadlock_fraction_per_day = deadlock_incidence(mitigated=mitigated)
    if not (0 <= deadlock_fraction_per_day <= 1):
        raise ValueError("deadlock fraction must be in [0, 1]")
    if not (0 <= power_throttle_tail <= 1):
        raise ValueError("throttle tail must be in [0, 1]")
    margin = margin or MarginModel()

    card_error_per_window = card_error_probability_for_server_fraction(
        PAPER_AFFECTED_FRACTION
    )
    ecc_ue_per_hour = (
        card_error_per_window
        * DOUBLE_BIT_SHARE
        / (FLEET_OBSERVATION_DAYS * HOURS_PER_DAY)
    )

    marginal = _margin_shortfall_fraction(margin, operating_frequency_hz)
    sdc_per_hour = marginal * SDC_EVENTS_PER_MARGINAL_CHIP_HOUR
    if operating_frequency_hz <= DESIGN_FREQUENCY_HZ:
        # At the design point the study saw no measurable margin tail.
        sdc_per_hour = 0.0

    return FaultRates(
        deadlock_per_device_hour=deadlock_fraction_per_day / HOURS_PER_DAY,
        ecc_ue_per_device_hour=ecc_ue_per_hour,
        sdc_per_device_hour=sdc_per_hour,
        throttle_per_device_hour=power_throttle_tail,
    )


# Families in a fixed order so pre-sampling is reproducible.
FAULT_FAMILIES: Tuple[str, ...] = ("deadlock", "ecc_ue", "sdc", "throttle")


def _rate_for(rates: FaultRates, family: str) -> float:
    return {
        "deadlock": rates.deadlock_per_device_hour,
        "ecc_ue": rates.ecc_ue_per_device_hour,
        "sdc": rates.sdc_per_device_hour,
        "throttle": rates.throttle_per_device_hour,
    }[family]


def presample_fault_arrivals(
    rates: FaultRates,
    num_devices: int,
    duration_s: float,
    rng: np.random.Generator,
) -> Dict[str, List[Tuple[float, int]]]:
    """Draw every fault arrival for the whole window up front.

    Returns, per family, a time-sorted list of ``(time_s, device_id)``.
    Sampling order is fixed (family-major, device-minor) so the schedule
    is a deterministic function of the generator state.
    """
    if num_devices <= 0 or duration_s <= 0:
        raise ValueError("need a non-empty pool and positive window")
    schedule: Dict[str, List[Tuple[float, int]]] = {}
    for family in FAULT_FAMILIES:
        rate_per_s = _rate_for(rates, family) / 3600.0
        arrivals: List[Tuple[float, int]] = []
        for device_id in range(num_devices):
            if rate_per_s <= 0:
                continue
            t = 0.0
            while True:
                t += rng.exponential(1.0 / rate_per_s)
                if t >= duration_s:
                    break
                arrivals.append((t, device_id))
        arrivals.sort()
        schedule[family] = arrivals
    return schedule
