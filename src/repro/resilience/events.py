"""Event records for the resilience simulator.

Every state change in the fleet — faults landing, health checks failing,
devices draining, rollout waves restarting servers — is appended to an
:class:`EventLog` in simulation order.  The log is the simulator's
ground truth: tests compare two seeded runs event-for-event, the drill
example prints it as a timeline, and :mod:`repro.resilience.trace`
exports it through the Chrome-trace writer.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Iterator, List, Optional


class EventKind(enum.Enum):
    """Everything that can happen to a device (or the pool) over time."""

    # Faults, drawn from the reliability models.
    FAULT_DEADLOCK = "fault_deadlock"  # PCIe/NoC/Control-Core wedge (section 5.5)
    FAULT_ECC_UE = "fault_ecc_ue"  # detected-uncorrectable memory error (5.1)
    FAULT_SDC = "fault_sdc"  # silent corruption from thin overclock margin (5.2)
    FAULT_THROTTLE = "fault_throttle"  # power-cap throttling (5.3)
    THROTTLE_END = "throttle_end"
    DEGRADE_END = "degrade_end"
    # Health-check / drain / reboot lifecycle.
    HEALTH_CHECK_FAIL = "health_check_fail"
    DRAIN_START = "drain_start"
    REBOOT_START = "reboot_start"
    REBOOT_DONE = "reboot_done"
    # Serving-tier reactions.
    SLO_AT_RISK = "slo_at_risk"
    LOAD_SHED = "load_shed"
    # Firmware rollout.
    ROLLOUT_TRIGGERED = "rollout_triggered"
    ROLLOUT_WAVE = "rollout_wave"
    ROLLOUT_DONE = "rollout_done"
    DEVICE_PATCHED = "device_patched"


@dataclasses.dataclass(frozen=True)
class Event:
    """One timestamped occurrence.

    ``device_id`` is ``None`` for pool-level events (SLO trips, rollout
    waves); ``detail`` carries small scalar context (counts, durations).
    """

    time_s: float
    kind: EventKind
    device_id: Optional[int] = None
    detail: Dict[str, float] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError("event time must be non-negative")


class EventLog:
    """Append-only, simulation-ordered record of everything that happened."""

    def __init__(self) -> None:
        self._events: List[Event] = []

    def append(self, event: Event) -> None:
        """Record an event; times must be non-decreasing."""
        if self._events and event.time_s < self._events[-1].time_s - 1e-9:
            raise ValueError("events must be appended in time order")
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    def of_kind(self, *kinds: EventKind) -> List[Event]:
        """Events matching any of the given kinds, in order."""
        wanted = set(kinds)
        return [e for e in self._events if e.kind in wanted]

    def for_device(self, device_id: int) -> List[Event]:
        """Events attributed to one device, in order."""
        return [e for e in self._events if e.device_id == device_id]

    def first_of_kind(self, kind: EventKind) -> Optional[Event]:
        """Earliest event of a kind, or ``None``."""
        for event in self._events:
            if event.kind == kind:
                return event
        return None

    def to_jsonable(self) -> List[Dict]:
        """A plain-data view, suitable for equality checks and JSON dumps."""
        return [
            {
                "time_s": round(event.time_s, 6),
                "kind": event.kind.value,
                "device_id": event.device_id,
                "detail": {k: round(v, 6) for k, v in sorted(event.detail.items())},
            }
            for event in self._events
        ]

    def timeline(self, max_events: int = 40) -> str:
        """A human-readable digest of the log (for the drill example)."""
        lines = []
        shown = self._events if len(self._events) <= max_events else (
            self._events[: max_events // 2] + self._events[-max_events // 2:]
        )
        elided = len(self._events) - len(shown)
        for event in shown:
            hours = event.time_s / 3600.0
            who = f"device {event.device_id}" if event.device_id is not None else "pool"
            extra = " ".join(f"{k}={v:g}" for k, v in sorted(event.detail.items()))
            lines.append(f"  t={hours:8.2f}h  {event.kind.value:20} {who:12} {extra}")
            if elided and event is shown[max_events // 2 - 1]:
                lines.append(f"  ... {elided} events elided ...")
        return "\n".join(lines)
