"""Fleet resilience: time-domain fault injection, recovery policies, and
graceful degradation across the serving tier.

Where :mod:`repro.reliability` computes the section 5 studies as point
estimates and :mod:`repro.serving.faults` removes a fixed fraction of
devices once, this package closes the loop over *time*: a seeded
discrete-event simulator in which faults drawn from the reliability
models land on a serving pool, devices walk an explicit lifecycle
(HEALTHY -> DEGRADED -> WEDGED -> DRAINING -> REBOOTING -> HEALTHY),
recovery policies fight back, and an emergency firmware rollout can
patch the fleet mid-window — reproducing the paper's section 5.5 arc as
one closed system.
"""

from repro.resilience.device import (
    Device,
    DeviceState,
    TransitionError,
    downed_device_minutes,
    pool_summary,
)
from repro.resilience.events import Event, EventKind, EventLog
from repro.resilience.faults import (
    FAULT_FAMILIES,
    FaultRates,
    fault_rates_from_reliability,
    presample_fault_arrivals,
)
from repro.resilience.metrics import (
    IntervalMetrics,
    ResilienceReport,
    evaluate_interval,
)
from repro.resilience.policies import (
    DrainPolicy,
    HedgePolicy,
    LoadShedPolicy,
    ResiliencePolicies,
    RetryPolicy,
    RolloutPolicy,
)
from repro.resilience.scenario import (
    DrillResult,
    run_section_55_drill,
    section_55_policies,
)
from repro.resilience.simulator import (
    ResilienceConfig,
    ResilienceSimulator,
    calibrate_base_latency,
    run_resilience,
)
from repro.resilience.trace import to_resilience_trace, write_resilience_trace

__all__ = [
    "Device",
    "DeviceState",
    "DrainPolicy",
    "DrillResult",
    "Event",
    "EventKind",
    "EventLog",
    "FAULT_FAMILIES",
    "FaultRates",
    "HedgePolicy",
    "IntervalMetrics",
    "LoadShedPolicy",
    "ResilienceConfig",
    "ResiliencePolicies",
    "ResilienceReport",
    "ResilienceSimulator",
    "RetryPolicy",
    "RolloutPolicy",
    "TransitionError",
    "calibrate_base_latency",
    "downed_device_minutes",
    "evaluate_interval",
    "fault_rates_from_reliability",
    "pool_summary",
    "presample_fault_arrivals",
    "run_resilience",
    "run_section_55_drill",
    "section_55_policies",
    "to_resilience_trace",
    "write_resilience_trace",
]
