"""The seeded discrete-event fleet resilience simulator.

Composes the pieces the rest of the repo computes statically into one
closed loop over simulated time:

* fault arrivals drawn from the section 5 reliability models
  (:mod:`repro.resilience.faults`);
* a per-device lifecycle state machine
  (:mod:`repro.resilience.device`);
* serving-tier recovery policies — retry, hedging, drain/reboot, load
  shedding (:mod:`repro.resilience.policies`);
* the emergency firmware rollout of
  :func:`repro.reliability.firmware.emergency_rollout`, executed wave by
  wave under its restart-concurrency limit when the pool's
  ``slo_at_risk`` signal (from :mod:`repro.serving.faults`) trips.

The engine is a classic event heap keyed on ``(time, sequence)``; all
randomness flows from one seeded generator consumed in a fixed order, so
two runs with the same seed produce identical event logs — byte for
byte — which the acceptance tests assert.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.resilience.device import (
    Device,
    DeviceState,
    downed_device_minutes,
)
from repro.resilience.events import Event, EventKind, EventLog
from repro.resilience.faults import (
    FaultRates,
    fault_rates_from_reliability,
    presample_fault_arrivals,
)
from repro.obs.metrics import MetricsRegistry, active
from repro.resilience.metrics import (
    IntervalMetrics,
    ResilienceReport,
    evaluate_interval,
)
from repro.resilience.policies import ResiliencePolicies
from repro.serving.batcher import CoalescingConfig
from repro.serving.scheduler import ModelJobProfile
from repro.serving.simulator import simulate_serving

# Rollout-wave restart priority: cure the worst devices first.
_WAVE_PRIORITY = {
    DeviceState.WEDGED: 0,
    DeviceState.DRAINING: 1,
    DeviceState.DEGRADED: 2,
    DeviceState.HEALTHY: 3,
}


@dataclasses.dataclass(frozen=True)
class ResilienceConfig:
    """One resilience run's pool, load, and clock parameters."""

    devices: int = 300
    device_throughput: float = 1000.0  # samples/s per healthy device
    offered_load: float = 255_000.0  # samples/s (85% of 300 devices)
    duration_s: float = 90 * 86_400.0
    metrics_interval_s: float = 3600.0
    degraded_scale: float = 0.6
    # Baseline request latency (fault-free, at baseline utilization);
    # calibrate from the serving machinery via calibrate_base_latency().
    base_p50_s: float = 0.020
    base_p99_s: float = 0.080
    seed: int = 0

    def __post_init__(self) -> None:
        if self.devices <= 0 or self.device_throughput <= 0:
            raise ValueError("pool must have capacity")
        if self.offered_load < 0:
            raise ValueError("load must be non-negative")
        if self.duration_s <= 0 or self.metrics_interval_s <= 0:
            raise ValueError("window and metrics interval must be positive")
        if not (0 < self.degraded_scale <= 1):
            raise ValueError("degraded scale must be in (0, 1]")
        if self.base_p50_s <= 0 or self.base_p99_s < self.base_p50_s:
            raise ValueError("need 0 < p50 <= p99 baseline latency")

    @property
    def baseline_utilization(self) -> float:
        """Offered load over the fault-free pool capacity."""
        return self.offered_load / (self.devices * self.device_throughput)


def calibrate_base_latency(
    profile: ModelJobProfile,
    coalescing: CoalescingConfig,
    request_rate_per_s: float,
    samples_per_request: int = 256,
    duration_s: float = 30.0,
    seed: int = 3,
) -> Tuple[float, float]:
    """Baseline (p50, p99) request latency from the serving simulator.

    Runs the real coalescing + job-scheduling pipeline once so the
    resilience time series starts from the same latency machinery the
    rest of the serving stack uses.
    """
    outcome = simulate_serving(
        profile,
        coalescing,
        request_rate_per_s=request_rate_per_s,
        samples_per_request=samples_per_request,
        duration_s=duration_s,
        seed=seed,
    )
    return outcome.p50_latency_s, outcome.p99_latency_s


class ResilienceSimulator:
    """Seeded DES over one serving pool."""

    def __init__(
        self,
        config: ResilienceConfig,
        rates: Optional[FaultRates] = None,
        policies: Optional[ResiliencePolicies] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config
        self.rates = rates if rates is not None else fault_rates_from_reliability()
        self.policies = policies if policies is not None else ResiliencePolicies.production()
        # Observability only: the registry never touches the RNG or the
        # event heap, so seeded runs are byte-identical with or without
        # it (pinned by the trace-hash regression test).
        self._obs = active(registry)
        self._rng = np.random.default_rng(config.seed)
        self._devices: Dict[int, Device] = {
            i: Device(device_id=i, degraded_scale=config.degraded_scale)
            for i in range(config.devices)
        }
        self._log = EventLog()
        self._heap: List[Tuple[float, int, str, Optional[int], dict]] = []
        self._seq = itertools.count()
        self._intervals: List[IntervalMetrics] = []
        # Transient bookkeeping.
        self._degrade_until: Dict[int, float] = {}
        self._corrupted_samples = 0.0
        self._slo_tripped = False
        self._rollout_started = False
        self._rollout_done = False
        self._patch_scheduled: set = set()
        self._last_shedding = False

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------

    def _push(self, time_s: float, kind: str, device_id: Optional[int] = None,
              **payload: float) -> None:
        heapq.heappush(
            self._heap, (time_s, next(self._seq), kind, device_id, payload)
        )

    def _emit(self, time_s: float, kind: EventKind,
              device_id: Optional[int] = None, **detail: float) -> None:
        self._obs.counter("resilience.events." + kind.value).inc()
        self._log.append(
            Event(time_s=time_s, kind=kind, device_id=device_id, detail=detail)
        )

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------

    def run(self) -> ResilienceReport:
        """Execute the window and return the report."""
        config = self.config
        schedule = presample_fault_arrivals(
            self.rates, config.devices, config.duration_s, self._rng
        )
        for family, arrivals in schedule.items():
            for time_s, device_id in arrivals:
                self._push(time_s, f"fault_{family}", device_id)
        # Metrics ticks: t=0 baseline, then every interval, then t=end.
        t = 0.0
        while t < config.duration_s:
            self._push(t, "metrics")
            t += config.metrics_interval_s
        self._push(config.duration_s, "metrics")

        while self._heap:
            time_s, _, kind, device_id, payload = heapq.heappop(self._heap)
            if time_s > config.duration_s + 1e-9:
                break
            self._dispatch(time_s, kind, device_id, payload)

        unavailability = downed_device_minutes(self._devices, end_s=config.duration_s)
        baseline = min(
            config.offered_load, config.devices * config.device_throughput
        )
        return ResilienceReport(
            num_devices=config.devices,
            duration_s=config.duration_s,
            seed=config.seed,
            offered_samples_per_s=config.offered_load,
            baseline_goodput_samples_per_s=baseline,
            intervals=self._intervals,
            events=self._log,
            unavailability_device_minutes=unavailability,
        )

    def _dispatch(self, time_s: float, kind: str, device_id: Optional[int],
                  payload: dict) -> None:
        handler = {
            "fault_deadlock": self._on_deadlock,
            "fault_ecc_ue": self._on_ecc_ue,
            "fault_sdc": self._on_sdc,
            "fault_throttle": self._on_throttle,
            "degrade_end": self._on_degrade_end,
            "drain_decision": self._on_drain_decision,
            "reboot_start": self._on_reboot_start,
            "reboot_done": self._on_reboot_done,
            "metrics": self._on_metrics,
            "rollout_start": self._on_rollout_start,
            "rollout_wave": self._on_rollout_wave,
        }[kind]
        if device_id is None:
            handler(time_s, **payload)
        else:
            handler(time_s, self._devices[device_id], **payload)

    # ------------------------------------------------------------------
    # Fault handlers (arrivals on no-longer-susceptible devices are
    # dropped — Poisson thinning)
    # ------------------------------------------------------------------

    def _on_deadlock(self, time_s: float, device: Device) -> None:
        if not device.susceptible_to_deadlock:
            return
        device.transition(DeviceState.WEDGED, time_s)
        self._emit(time_s, EventKind.FAULT_DEADLOCK, device.device_id)
        drain = self.policies.drain
        if drain is not None:
            # The device fails every probe from now on; schedule the
            # consecutive failures leading to the drain decision.
            for failure in range(1, drain.failures_to_drain + 1):
                when = time_s + failure * drain.health_check_interval_s
                self._push(when, "drain_decision", device.device_id,
                           failure=float(failure))

    def _on_ecc_ue(self, time_s: float, device: Device) -> None:
        if not device.serving:
            return
        self._emit(time_s, EventKind.FAULT_ECC_UE, device.device_id)
        self._degrade(device, time_s, self.rates.ecc_degrade_duration_s)

    def _on_sdc(self, time_s: float, device: Device) -> None:
        if not device.serving:
            return
        poisoned = self.config.device_throughput * self.rates.sdc_blast_window_s
        self._corrupted_samples += poisoned
        self._emit(time_s, EventKind.FAULT_SDC, device.device_id,
                   poisoned_samples=poisoned)

    def _on_throttle(self, time_s: float, device: Device) -> None:
        if not device.serving:
            return
        self._emit(time_s, EventKind.FAULT_THROTTLE, device.device_id,
                   duration_s=self.rates.throttle_duration_s)
        self._degrade(device, time_s, self.rates.throttle_duration_s)

    def _degrade(self, device: Device, time_s: float, duration_s: float) -> None:
        until = time_s + duration_s
        self._degrade_until[device.device_id] = max(
            self._degrade_until.get(device.device_id, 0.0), until
        )
        if device.state == DeviceState.HEALTHY:
            device.transition(DeviceState.DEGRADED, time_s)
        self._push(until, "degrade_end", device.device_id)

    def _on_degrade_end(self, time_s: float, device: Device) -> None:
        if device.state != DeviceState.DEGRADED:
            return  # wedged, drained, or rebooted in the meantime
        if time_s + 1e-9 < self._degrade_until.get(device.device_id, 0.0):
            return  # a later episode extended the degradation
        device.transition(DeviceState.HEALTHY, time_s)
        self._emit(time_s, EventKind.DEGRADE_END, device.device_id)

    # ------------------------------------------------------------------
    # Drain / reboot lifecycle
    # ------------------------------------------------------------------

    def _on_drain_decision(self, time_s: float, device: Device,
                           failure: float) -> None:
        drain = self.policies.drain
        if drain is None or device.state != DeviceState.WEDGED:
            return  # recovered another way (e.g. a rollout power-cycle)
        if not device.health_check():
            self._emit(time_s, EventKind.HEALTH_CHECK_FAIL, device.device_id,
                       consecutive=float(device.consecutive_health_failures))
        if device.consecutive_health_failures >= drain.failures_to_drain:
            device.transition(DeviceState.DRAINING, time_s)
            self._emit(time_s, EventKind.DRAIN_START, device.device_id)
            self._push(time_s + drain.drain_grace_s, "reboot_start",
                       device.device_id)

    def _on_reboot_start(self, time_s: float, device: Device) -> None:
        drain = self.policies.drain
        if drain is None or device.state != DeviceState.DRAINING:
            return
        device.transition(DeviceState.REBOOTING, time_s)
        reboot_s = drain.sample_reboot_s(self._rng)
        self._obs.histogram("resilience.reboot_duration_s").observe(reboot_s)
        self._emit(time_s, EventKind.REBOOT_START, device.device_id,
                   reboot_s=reboot_s)
        self._push(time_s + reboot_s, "reboot_done", device.device_id,
                   patch=0.0)

    def _on_reboot_done(self, time_s: float, device: Device,
                        patch: float) -> None:
        if device.state != DeviceState.REBOOTING:
            return  # pragma: no cover - defensive; single reboot in flight
        device.transition(DeviceState.HEALTHY, time_s)
        self._degrade_until.pop(device.device_id, None)
        if patch:
            device.patched = True
            self._emit(time_s, EventKind.DEVICE_PATCHED, device.device_id)
        self._emit(time_s, EventKind.REBOOT_DONE, device.device_id)
        if (
            self._rollout_started
            and not self._rollout_done
            and all(d.patched for d in self._devices.values())
        ):
            self._rollout_done = True
            self._emit(time_s, EventKind.ROLLOUT_DONE)

    # ------------------------------------------------------------------
    # Metrics and the rollout trigger
    # ------------------------------------------------------------------

    def _on_metrics(self, time_s: float) -> None:
        interval_s = self.config.metrics_interval_s
        corrupted_per_s = self._corrupted_samples / interval_s
        self._corrupted_samples = 0.0
        metrics = evaluate_interval(
            now_s=time_s,
            devices=self._devices,
            offered_samples_per_s=self.config.offered_load,
            device_throughput=self.config.device_throughput,
            policies=self.policies,
            base_p50_s=self.config.base_p50_s,
            base_p99_s=self.config.base_p99_s,
            baseline_utilization=self.config.baseline_utilization,
            corrupted_samples_per_s=corrupted_per_s,
        )
        self._intervals.append(metrics)
        if self._obs.enabled:
            self._obs.gauge("resilience.goodput_fraction").set(
                metrics.goodput_fraction
            )
            self._obs.gauge("resilience.wedged_devices").set(metrics.wedged)
            self._obs.histogram("resilience.retry_amplification").observe(
                metrics.retry_amplification
            )
            self._obs.histogram("resilience.interval_p99_s").observe(
                metrics.p99_latency_s
            )
            self._obs.series("resilience.goodput_curve").append(
                time_s, metrics.goodput_fraction
            )
        if metrics.shed_fraction > 0 and not self._last_shedding:
            self._emit(time_s, EventKind.LOAD_SHED,
                       shed_fraction=metrics.shed_fraction)
        self._last_shedding = metrics.shed_fraction > 0
        if metrics.slo_at_risk and not self._slo_tripped:
            self._slo_tripped = True
            self._emit(time_s, EventKind.SLO_AT_RISK,
                       wedged=float(metrics.wedged),
                       utilization=min(metrics.utilization, 1e6))
            if self.policies.rollout.enabled and not self._rollout_started:
                delay = self.policies.rollout.detection_delay_s
                self._emit(time_s, EventKind.ROLLOUT_TRIGGERED,
                           starts_in_s=delay)
                self._push(time_s + delay, "rollout_start")

    def _on_rollout_start(self, time_s: float) -> None:
        if self._rollout_started:
            return
        self._rollout_started = True
        self._push(time_s, "rollout_wave", wave_index=0.0)

    def _on_rollout_wave(self, time_s: float, wave_index: float) -> None:
        """One restart wave under the plan's concurrency cap.

        Waves self-schedule until every device is covered: a device
        mid-reboot (from a drain) when its wave fires is skipped and
        picked up by a later wave, so the rollout always completes.
        """
        plan = self.policies.rollout.resolved_plan()
        wave_size = plan.restart_wave_size(self.config.devices)
        remaining = [
            d for d in self._devices.values()
            if not d.patched and d.device_id not in self._patch_scheduled
        ]
        if not remaining:
            return
        candidates = [d for d in remaining if d.state != DeviceState.REBOOTING]
        candidates.sort(key=lambda d: (_WAVE_PRIORITY[d.state], d.device_id))
        wave = candidates[:wave_size]
        restart_s = plan.restart_minutes * 60.0
        for device in wave:
            device.transition(DeviceState.REBOOTING, time_s)
            self._patch_scheduled.add(device.device_id)
            self._emit(time_s, EventKind.REBOOT_START, device.device_id,
                       reboot_s=restart_s, rollout=1.0)
            self._push(time_s + restart_s, "reboot_done", device.device_id,
                       patch=1.0)
        if wave:
            self._emit(time_s, EventKind.ROLLOUT_WAVE,
                       wave_index=wave_index, devices=float(len(wave)))
        if len(wave) < len(remaining):
            self._push(time_s + restart_s, "rollout_wave",
                       wave_index=wave_index + 1.0)


def run_resilience(
    config: Optional[ResilienceConfig] = None,
    rates: Optional[FaultRates] = None,
    policies: Optional[ResiliencePolicies] = None,
    registry: Optional[MetricsRegistry] = None,
) -> ResilienceReport:
    """One-call entry point: simulate a pool and return the report."""
    return ResilienceSimulator(
        config or ResilienceConfig(), rates=rates, policies=policies,
        registry=registry,
    ).run()
