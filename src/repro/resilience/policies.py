"""Recovery policies: how the serving tier fights back.

Four independently-toggleable mechanisms, mirroring what a production
serving stack layers over a fleet with the paper's fault profile:

* :class:`RetryPolicy` — per-request timeout with capped exponential
  backoff and deterministic jitter; bounds the damage of requests routed
  to a silently-wedged replica.
* :class:`HedgePolicy` — after a latency budget expires, re-dispatch the
  request to a second replica and take the first response; converts a
  full timeout into a small latency bump at the cost of extra attempts.
* :class:`DrainPolicy` — periodic health checks; after N consecutive
  failures the device is drained from rotation and rebooted with an
  MTTR drawn from a log-normal (reboots are mostly ~10 minutes with a
  long tail of stuck hosts).
* :class:`LoadShedPolicy` — past a utilization ceiling the tier sheds
  excess load rather than queue into SLO collapse (the headroom
  arithmetic of :mod:`repro.serving.faults` made operational).

:class:`RolloutPolicy` ties the loop closed: when the pool's
``slo_at_risk`` signal trips, an emergency firmware rollout
(:func:`repro.reliability.firmware.emergency_rollout`) patches the
fleet wave-by-wave under its restart-concurrency limit.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.reliability.firmware import RolloutPlan, emergency_rollout


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Timeout + exponential backoff with jitter."""

    timeout_s: float = 1.0
    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_cap_s: float = 1.0
    jitter_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.timeout_s <= 0 or self.max_attempts < 1:
            raise ValueError("need a positive timeout and at least one attempt")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff must be non-negative")
        if self.backoff_multiplier < 1:
            raise ValueError("backoff multiplier must be >= 1")
        if not (0 <= self.jitter_fraction <= 1):
            raise ValueError("jitter fraction must be in [0, 1]")

    def backoff_s(self, attempt: int, rng: Optional[np.random.Generator] = None) -> float:
        """Sleep before retry number ``attempt`` (1 = first retry)."""
        if attempt < 1:
            raise ValueError("attempt numbering starts at 1")
        base = min(
            self.backoff_cap_s,
            self.backoff_base_s * self.backoff_multiplier ** (attempt - 1),
        )
        if rng is None or self.jitter_fraction == 0:
            return base
        # Full-jitter variant: uniform in [base*(1-j), base].
        return base * (1.0 - self.jitter_fraction * float(rng.uniform()))

    def worst_case_added_latency_s(self, attempts: int) -> float:
        """Latency a request pays if its first ``attempts - 1`` tries all
        time out (no jitter; the pessimistic bound used for P99)."""
        total = 0.0
        for retry in range(1, attempts):
            total += self.timeout_s + self.backoff_s(retry)
        return total


@dataclasses.dataclass(frozen=True)
class HedgePolicy:
    """Speculative re-dispatch after a latency budget."""

    enabled: bool = False
    hedge_after_s: float = 0.05
    # Fraction of *healthy* requests that still trip the hedge budget
    # (tail latency), adding background attempt amplification.
    false_hedge_fraction: float = 0.01

    def __post_init__(self) -> None:
        if self.hedge_after_s <= 0:
            raise ValueError("hedge budget must be positive")
        if not (0 <= self.false_hedge_fraction <= 1):
            raise ValueError("false-hedge fraction must be in [0, 1]")


@dataclasses.dataclass(frozen=True)
class DrainPolicy:
    """Health-check-driven drain/quarantine with MTTR-distributed reboot."""

    health_check_interval_s: float = 60.0
    failures_to_drain: int = 3
    drain_grace_s: float = 30.0
    reboot_mttr_s: float = 600.0
    reboot_sigma: float = 0.35  # log-normal shape: mostly ~MTTR, long tail

    def __post_init__(self) -> None:
        if self.health_check_interval_s <= 0:
            raise ValueError("health-check interval must be positive")
        if self.failures_to_drain < 1:
            raise ValueError("need at least one failure to drain")
        if self.drain_grace_s < 0 or self.reboot_mttr_s <= 0:
            raise ValueError("drain grace must be >= 0 and MTTR > 0")
        if self.reboot_sigma < 0:
            raise ValueError("reboot sigma must be non-negative")

    def sample_reboot_s(self, rng: np.random.Generator) -> float:
        """One reboot duration: log-normal with mean ~``reboot_mttr_s``."""
        if self.reboot_sigma == 0:
            return self.reboot_mttr_s
        mu = np.log(self.reboot_mttr_s) - 0.5 * self.reboot_sigma**2
        return float(rng.lognormal(mu, self.reboot_sigma))

    def detection_latency_s(self) -> float:
        """Expected wall time from wedge to drain decision."""
        return self.health_check_interval_s * self.failures_to_drain


@dataclasses.dataclass(frozen=True)
class LoadShedPolicy:
    """Shed offered load past a utilization ceiling."""

    enabled: bool = True
    max_utilization: float = 0.95

    def __post_init__(self) -> None:
        if not (0 < self.max_utilization <= 1):
            raise ValueError("utilization ceiling must be in (0, 1]")


@dataclasses.dataclass(frozen=True)
class RolloutPolicy:
    """Fire an emergency firmware rollout when the SLO is at risk."""

    enabled: bool = False
    # Wall time between the slo_at_risk trip and the rollout's first
    # wave (paging, triage, build pinning).
    detection_delay_s: float = 1800.0
    plan: Optional[RolloutPlan] = None

    def __post_init__(self) -> None:
        if self.detection_delay_s < 0:
            raise ValueError("detection delay must be non-negative")

    def resolved_plan(self) -> RolloutPlan:
        """The plan to execute (defaults to the paper's ~3 h emergency)."""
        return self.plan if self.plan is not None else emergency_rollout()


@dataclasses.dataclass(frozen=True)
class ResiliencePolicies:
    """The serving tier's full policy bundle."""

    retry: Optional[RetryPolicy] = None
    hedge: HedgePolicy = HedgePolicy()
    drain: Optional[DrainPolicy] = None
    shed: LoadShedPolicy = LoadShedPolicy()
    rollout: RolloutPolicy = RolloutPolicy()

    @staticmethod
    def none() -> "ResiliencePolicies":
        """No mitigation at all — the paper's counterfactual baseline."""
        return ResiliencePolicies(
            retry=None,
            hedge=HedgePolicy(enabled=False),
            drain=None,
            shed=LoadShedPolicy(enabled=False),
            rollout=RolloutPolicy(enabled=False),
        )

    @staticmethod
    def production() -> "ResiliencePolicies":
        """The full stack: retries, hedging, drain, shed, and the
        emergency-rollout trigger."""
        return ResiliencePolicies(
            retry=RetryPolicy(),
            hedge=HedgePolicy(enabled=True),
            drain=DrainPolicy(),
            shed=LoadShedPolicy(enabled=True),
            rollout=RolloutPolicy(enabled=True),
        )
