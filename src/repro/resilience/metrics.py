"""Time-series availability metrics for the resilience simulator.

Once per metrics interval the simulator snapshots the pool and converts
device states into serving-tier outcomes: goodput fraction, retry
amplification, shed and failed load, and tail latency with retries.
The arithmetic deliberately reuses the :mod:`repro.serving.faults`
machinery — :func:`~repro.serving.faults.queueing_delay_factor` for the
latency blow-up and :class:`~repro.serving.faults.FaultImpact` for the
``slo_at_risk`` verdict — so the simulator and the static headroom
analysis cannot drift apart.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional

from repro.serving.faults import FaultImpact, PoolState, queueing_delay_factor

from repro.resilience.device import Device, DeviceState
from repro.resilience.events import EventLog
from repro.resilience.policies import ResiliencePolicies

# Utilization at which the reported delay factor saturates (keeps the
# time series finite through an overload episode).
_DELAY_CAP_UTILIZATION = 0.995


@dataclasses.dataclass(frozen=True)
class IntervalMetrics:
    """One metrics-interval snapshot of pool health and serving outcomes."""

    time_s: float
    # Lifecycle census.
    healthy: int
    degraded: int
    wedged: int
    draining: int
    rebooting: int
    # Serving outcomes (samples/s unless noted).
    capacity_samples_per_s: float  # live capacity of devices in rotation
    offered_samples_per_s: float
    admitted_samples_per_s: float  # after load shedding
    goodput_samples_per_s: float  # admitted, successful, uncorrupted
    corrupted_samples_per_s: float  # SDC-poisoned results
    shed_fraction: float
    failed_fraction: float  # of admitted requests, exhausted all attempts
    retry_amplification: float  # attempts per request (>= 1)
    utilization: float  # live-device utilization after shedding
    p50_latency_s: float
    p99_latency_s: float  # includes timeout/backoff of the retried tail
    slo_at_risk: bool

    @property
    def goodput_fraction(self) -> float:
        """Goodput over offered load — the availability headline."""
        if self.offered_samples_per_s <= 0:
            return 1.0
        return self.goodput_samples_per_s / self.offered_samples_per_s

    @property
    def in_rotation(self) -> int:
        """Devices the router still targets (wedged-but-undetected count)."""
        return self.healthy + self.degraded + self.wedged


def evaluate_interval(
    now_s: float,
    devices: Dict[int, Device],
    offered_samples_per_s: float,
    device_throughput: float,
    policies: ResiliencePolicies,
    base_p50_s: float,
    base_p99_s: float,
    baseline_utilization: float,
    corrupted_samples_per_s: float = 0.0,
) -> IntervalMetrics:
    """Convert the pool's device states into one metrics sample."""
    census = {state: 0 for state in DeviceState}
    live_scale = 0.0
    for device in devices.values():
        census[device.state] += 1
        if device.in_rotation:
            live_scale += device.throughput_scale
    rotation = (
        census[DeviceState.HEALTHY]
        + census[DeviceState.DEGRADED]
        + census[DeviceState.WEDGED]
    )
    live_capacity = live_scale * device_throughput
    p_bad = census[DeviceState.WEDGED] / rotation if rotation else 1.0

    # --- Retry chain: attempts and terminal failures -------------------
    if policies.retry is None:
        max_attempts = 1
    else:
        max_attempts = policies.retry.max_attempts
    # Each attempt independently lands on a wedged replica w.p. p_bad
    # (routers that exclude the failed instance do slightly better; this
    # is the conservative bound).
    retry_amplification = sum(p_bad**k for k in range(max_attempts))
    failed_fraction = p_bad**max_attempts
    if policies.hedge.enabled:
        # A hedge fires for every wedged-routed first attempt plus the
        # healthy tail that trips the budget anyway.
        hedge_extra = p_bad + policies.hedge.false_hedge_fraction * (1.0 - p_bad)
        retry_amplification += hedge_extra
        # The hedge gives the request a second, independent replica.
        failed_fraction *= p_bad
    else:
        hedge_extra = 0.0

    # --- Load and shedding on the live devices -------------------------
    # Attempts that hit wedged replicas consume no live capacity; the
    # live demand is the admitted load plus hedge duplicates.
    live_demand = offered_samples_per_s * (1.0 + hedge_extra)
    shed_fraction = 0.0
    if live_capacity <= 0:
        utilization = math.inf
        admitted = 0.0
        served_fraction = 0.0
    else:
        utilization = live_demand / live_capacity
        if policies.shed.enabled and utilization > policies.shed.max_utilization:
            shed_fraction = 1.0 - (
                policies.shed.max_utilization * live_capacity / live_demand
            )
            utilization = policies.shed.max_utilization
        admitted = offered_samples_per_s * (1.0 - shed_fraction)
        # Without shedding an overloaded pool drops what it cannot queue.
        served_fraction = min(1.0, 1.0 / utilization) if utilization > 1 else 1.0
    goodput = admitted * (1.0 - failed_fraction) * served_fraction
    goodput = max(0.0, goodput - corrupted_samples_per_s)

    # --- Latency with retries ------------------------------------------
    capped = min(utilization, _DELAY_CAP_UTILIZATION)
    base_factor = queueing_delay_factor(min(baseline_utilization, _DELAY_CAP_UTILIZATION))
    delay_ratio = queueing_delay_factor(capped) / base_factor
    p50 = base_p50_s * delay_ratio
    p99 = base_p99_s * delay_ratio
    # When >=1% of requests need a second attempt, the 99th percentile
    # includes the first attempt's timeout (or the hedge budget).
    if p_bad >= 0.01 and (policies.retry is not None or policies.hedge.enabled):
        if policies.hedge.enabled:
            p99 = policies.hedge.hedge_after_s + p99
        elif policies.retry is not None:
            p99 = policies.retry.timeout_s + policies.retry.backoff_s(1) + p99

    # --- SLO verdict via the serving-tier machinery --------------------
    total = len(devices)
    effective_devices = max(1, int(round(live_capacity / device_throughput)))
    impact = FaultImpact(
        before=PoolState(
            devices=total,
            device_throughput=device_throughput,
            offered_load=offered_samples_per_s,
        ),
        after=PoolState(
            devices=effective_devices,
            device_throughput=device_throughput,
            offered_load=offered_samples_per_s,
        ),
        fault_rate=(total - effective_devices) / total if total else 0.0,
    )

    return IntervalMetrics(
        time_s=now_s,
        healthy=census[DeviceState.HEALTHY],
        degraded=census[DeviceState.DEGRADED],
        wedged=census[DeviceState.WEDGED],
        draining=census[DeviceState.DRAINING],
        rebooting=census[DeviceState.REBOOTING],
        capacity_samples_per_s=live_capacity,
        offered_samples_per_s=offered_samples_per_s,
        admitted_samples_per_s=admitted,
        goodput_samples_per_s=goodput,
        corrupted_samples_per_s=corrupted_samples_per_s,
        shed_fraction=shed_fraction,
        failed_fraction=failed_fraction,
        retry_amplification=retry_amplification,
        utilization=utilization,
        p50_latency_s=p50,
        p99_latency_s=p99,
        slo_at_risk=impact.slo_at_risk,
    )


@dataclasses.dataclass(frozen=True)
class ResilienceReport:
    """Everything one seeded resilience run produced."""

    num_devices: int
    duration_s: float
    seed: int
    offered_samples_per_s: float
    baseline_goodput_samples_per_s: float
    intervals: List[IntervalMetrics]
    events: EventLog
    unavailability_device_minutes: float

    @property
    def goodput_series(self) -> List[float]:
        """Goodput fraction over time."""
        return [m.goodput_fraction for m in self.intervals]

    @property
    def min_goodput_fraction(self) -> float:
        """The worst interval of the window."""
        return min(self.goodput_series) if self.intervals else 1.0

    @property
    def final_goodput_fraction(self) -> float:
        """Where the pool ended up."""
        return self.goodput_series[-1] if self.intervals else 1.0

    @property
    def first_slo_trip_s(self) -> Optional[float]:
        """When ``slo_at_risk`` first went true, if ever."""
        for metrics in self.intervals:
            if metrics.slo_at_risk:
                return metrics.time_s
        return None

    @property
    def peak_retry_amplification(self) -> float:
        """Worst attempts-per-request over the window."""
        return max((m.retry_amplification for m in self.intervals), default=1.0)

    @property
    def p99_series(self) -> List[float]:
        """P99-with-retries over time."""
        return [m.p99_latency_s for m in self.intervals]

    def recovered(self, fraction_of_baseline: float = 0.99) -> bool:
        """Whether end-of-window goodput is back within a factor of the
        fault-free baseline."""
        if self.baseline_goodput_samples_per_s <= 0:
            return True
        final = self.intervals[-1].goodput_samples_per_s if self.intervals else 0.0
        return final >= fraction_of_baseline * self.baseline_goodput_samples_per_s
