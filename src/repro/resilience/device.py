"""Device lifecycle state machine for the resilience simulator.

Each accelerator in the pool walks an explicit lifecycle::

    HEALTHY -> DEGRADED  (power throttle, correctable-error storm)
    HEALTHY -> WEDGED    (PCIe deadlock: the device vanishes silently)
    DEGRADED -> HEALTHY | WEDGED | DRAINING
    WEDGED -> DRAINING   (health checks finally notice)
    DRAINING -> REBOOTING
    REBOOTING -> HEALTHY

The key production subtlety the paper's section 5.5 deadlock exposes is
the gap between *being* dead and being *known* dead: a WEDGED device
stays in the router's rotation — eating requests that will time out —
until enough health checks fail to drain it.  The state machine tracks
that distinction (:attr:`Device.in_rotation` vs :attr:`Device.serving`)
plus per-state residency time for the unavailability accounting.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, FrozenSet, Optional, Tuple


class DeviceState(enum.Enum):
    """Lifecycle states of one accelerator."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    WEDGED = "wedged"
    DRAINING = "draining"
    REBOOTING = "rebooting"


# Legal transitions; anything else is a simulator bug, not a fault.
_ALLOWED: FrozenSet[Tuple[DeviceState, DeviceState]] = frozenset(
    {
        (DeviceState.HEALTHY, DeviceState.DEGRADED),
        (DeviceState.HEALTHY, DeviceState.WEDGED),
        (DeviceState.HEALTHY, DeviceState.REBOOTING),  # rollout restart
        (DeviceState.DEGRADED, DeviceState.HEALTHY),
        (DeviceState.DEGRADED, DeviceState.WEDGED),
        (DeviceState.DEGRADED, DeviceState.DRAINING),
        (DeviceState.DEGRADED, DeviceState.REBOOTING),  # rollout restart
        (DeviceState.WEDGED, DeviceState.DRAINING),
        (DeviceState.WEDGED, DeviceState.REBOOTING),  # rollout power-cycle
        (DeviceState.DRAINING, DeviceState.REBOOTING),
        (DeviceState.REBOOTING, DeviceState.HEALTHY),
    }
)

# States in which the device produces zero goodput.
_DOWN_STATES = frozenset(
    {DeviceState.WEDGED, DeviceState.DRAINING, DeviceState.REBOOTING}
)


class TransitionError(RuntimeError):
    """An illegal lifecycle transition was attempted."""


@dataclasses.dataclass
class Device:
    """One accelerator's health bookkeeping inside the simulator."""

    device_id: int
    state: DeviceState = DeviceState.HEALTHY
    # Relative throughput while DEGRADED (power-cap / correctable-storm).
    degraded_scale: float = 0.6
    # Whether the firmware mitigation (Control-Core data in SRAM) is on.
    patched: bool = False
    consecutive_health_failures: int = 0
    state_entered_s: float = 0.0
    state_seconds: Dict[DeviceState, float] = dataclasses.field(
        default_factory=lambda: {state: 0.0 for state in DeviceState}
    )

    @property
    def in_rotation(self) -> bool:
        """Whether the router still targets this device.

        WEDGED counts: the serving tier has not yet noticed the silent
        failure, so requests keep landing on it.
        """
        return self.state in (
            DeviceState.HEALTHY,
            DeviceState.DEGRADED,
            DeviceState.WEDGED,
        )

    @property
    def serving(self) -> bool:
        """Whether the device actually completes work."""
        return self.state in (DeviceState.HEALTHY, DeviceState.DEGRADED)

    @property
    def throughput_scale(self) -> float:
        """Fraction of nominal throughput delivered in the current state."""
        if self.state == DeviceState.HEALTHY:
            return 1.0
        if self.state == DeviceState.DEGRADED:
            return self.degraded_scale
        return 0.0

    @property
    def susceptible_to_deadlock(self) -> bool:
        """Unpatched and live enough for the wedge to land."""
        return not self.patched and self.serving

    def transition(self, new_state: DeviceState, now_s: float) -> None:
        """Move to ``new_state``, validating legality and accruing the
        residency time of the state being left."""
        if (self.state, new_state) not in _ALLOWED:
            raise TransitionError(
                f"device {self.device_id}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        self._accrue(now_s)
        self.state = new_state
        self.state_entered_s = now_s
        if new_state == DeviceState.HEALTHY:
            self.consecutive_health_failures = 0

    def _accrue(self, now_s: float) -> None:
        elapsed = max(0.0, now_s - self.state_entered_s)
        self.state_seconds[self.state] += elapsed

    def finalize(self, end_s: float) -> None:
        """Close out residency accounting at the end of the window."""
        self._accrue(end_s)
        self.state_entered_s = end_s

    def downtime_seconds(self) -> float:
        """Accrued seconds in states that serve nothing."""
        return sum(self.state_seconds[state] for state in _DOWN_STATES)

    def health_check(self) -> bool:
        """Run one health probe; returns ``True`` when it passes.

        WEDGED devices always fail (the PCIe link is gone); everything
        else responds.  A pass resets the consecutive-failure counter.
        """
        if self.state == DeviceState.WEDGED:
            self.consecutive_health_failures += 1
            return False
        self.consecutive_health_failures = 0
        return True


def pool_summary(devices: Dict[int, "Device"]) -> Dict[str, int]:
    """Device counts per lifecycle state (for metrics sampling)."""
    counts = {state.value: 0 for state in DeviceState}
    for device in devices.values():
        counts[device.state.value] += 1
    return counts


def downed_device_minutes(devices: Dict[int, "Device"], end_s: Optional[float] = None) -> float:
    """Total device-minutes spent serving nothing across the pool.

    Call after :meth:`Device.finalize` (or pass ``end_s`` to finalize
    here) — this is the paper's unavailability currency: how much
    provisioned capacity the incident burned.
    """
    total = 0.0
    for device in devices.values():
        if end_s is not None:
            device.finalize(end_s)
        total += device.downtime_seconds()
    return total / 60.0
