"""Dynamic INT8 quantization: numerics and performance analysis."""

from repro.quant.analysis import (
    FcQuantizationReport,
    ModelQuantizationPlan,
    fc_quantization_report,
    plan_model_quantization,
)
from repro.quant.sparsity import (
    SparsityImpact,
    natural_sparsity,
    prune_2_4,
    satisfies_2_4,
    sparse_trained_weights,
    sparsity_impact,
)
from repro.quant.int8 import (
    ACCUMULATOR_DTYPE,
    INT32_ACC_MAX,
    INT8_MAX,
    QuantizedTensor,
    accumulate_int8,
    dequantize_accumulator,
    fp16_matmul_error,
    quantization_error,
    quantize_activations,
    quantize_per_group,
    quantize_per_tensor,
    quantize_rowwise,
    quantize_weights_static,
    quantized_matmul,
)

__all__ = [
    "ACCUMULATOR_DTYPE",
    "FcQuantizationReport",
    "INT32_ACC_MAX",
    "INT8_MAX",
    "ModelQuantizationPlan",
    "QuantizedTensor",
    "accumulate_int8",
    "dequantize_accumulator",
    "fc_quantization_report",
    "fp16_matmul_error",
    "plan_model_quantization",
    "quantization_error",
    "quantize_activations",
    "quantize_per_group",
    "quantize_per_tensor",
    "quantize_rowwise",
    "quantize_weights_static",
    "quantized_matmul",
    "SparsityImpact",
    "natural_sparsity",
    "prune_2_4",
    "satisfies_2_4",
    "sparse_trained_weights",
    "sparsity_impact",
]
