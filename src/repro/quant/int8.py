"""Dynamic INT8 quantization numerics (paper sections 3.3 and 4.4).

MTIA 2i computes quantization parameters on the fly: the Reduction
Engine emits per-row min/max during the matmul, and the SIMD Engine
derives row-wise scales — channel-wise symmetric dynamic quantization.
This module implements the *actual arithmetic* with numpy so quality
comparisons against FP16 (the paper's criterion for adopting INT8) are
measured, not asserted.

Quantization granularities evaluated by the paper:
  * per-tensor — one scale for the whole activation tensor;
  * per-batch-item (row-wise, M as the batch dimension);
  * per-N-batch-item — one scale per group of N rows.
The paper's finding: row-wise activations + static weights match FP16.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.pe.reduction import rowwise_minmax

INT8_MAX = 127


@dataclasses.dataclass(frozen=True)
class QuantizedTensor:
    """INT8 values plus their (per-row or scalar) scales."""

    values: np.ndarray  # int8
    scales: np.ndarray  # float32; shape broadcastable against values

    def dequantize(self) -> np.ndarray:
        """Back to floating point."""
        return self.values.astype(np.float32) * self.scales


def _symmetric_scale(abs_max: np.ndarray) -> np.ndarray:
    abs_max = np.maximum(np.asarray(abs_max, dtype=np.float64), 1e-12)
    return (abs_max / INT8_MAX).astype(np.float32)


def quantize_per_tensor(x: np.ndarray) -> QuantizedTensor:
    """Symmetric per-tensor quantization."""
    x = np.asarray(x, dtype=np.float32)
    scale = _symmetric_scale(np.max(np.abs(x)) if x.size else 1.0)
    q = np.clip(np.round(x / scale), -INT8_MAX, INT8_MAX).astype(np.int8)
    return QuantizedTensor(values=q, scales=np.asarray(scale, dtype=np.float32))


def quantize_rowwise(x: np.ndarray) -> QuantizedTensor:
    """Symmetric row-wise dynamic quantization — the RE/SIMD hardware path.

    The per-row min/max comes from :func:`rowwise_minmax`, exactly the
    statistic the Reduction Engine produces during accumulation.
    """
    x = np.asarray(x, dtype=np.float32)
    if x.ndim != 2:
        raise ValueError(f"row-wise quantization expects a matrix, got {x.shape}")
    row_min, row_max = rowwise_minmax(x)
    abs_max = np.maximum(np.abs(row_min), np.abs(row_max))
    scales = _symmetric_scale(abs_max)[:, None]
    q = np.clip(np.round(x / scales), -INT8_MAX, INT8_MAX).astype(np.int8)
    return QuantizedTensor(values=q, scales=scales.astype(np.float32))


def quantize_per_group(x: np.ndarray, group_rows: int) -> QuantizedTensor:
    """Per-N-batch-item quantization: one scale per ``group_rows`` rows."""
    x = np.asarray(x, dtype=np.float32)
    if x.ndim != 2:
        raise ValueError("per-group quantization expects a matrix")
    if group_rows <= 0:
        raise ValueError("group size must be positive")
    scales = np.empty((x.shape[0], 1), dtype=np.float32)
    for start in range(0, x.shape[0], group_rows):
        block = x[start : start + group_rows]
        scale = _symmetric_scale(np.max(np.abs(block)) if block.size else 1.0)
        scales[start : start + group_rows] = scale
    q = np.clip(np.round(x / scales), -INT8_MAX, INT8_MAX).astype(np.int8)
    return QuantizedTensor(values=q, scales=scales)


def quantize_weights_static(w: np.ndarray) -> QuantizedTensor:
    """Static per-output-channel weight quantization (offline calibration).

    Weights are constant, so per-column scales are computed once at model
    publish time — the paper's companion to dynamic activations.
    """
    w = np.asarray(w, dtype=np.float32)
    if w.ndim != 2:
        raise ValueError("weight quantization expects a matrix")
    abs_max = np.max(np.abs(w), axis=0)
    scales = _symmetric_scale(abs_max)[None, :]
    q = np.clip(np.round(w / scales), -INT8_MAX, INT8_MAX).astype(np.int8)
    return QuantizedTensor(values=q, scales=scales)


# The DPE's accumulator is 32 bits wide; we accumulate in an explicitly
# wider dtype and assert the hardware range so an overflow (or an injected
# large-magnitude corruption) fails loudly instead of silently wrapping.
ACCUMULATOR_DTYPE = np.int64
INT32_ACC_MAX = 2**31 - 1


def quantize_activations(x: np.ndarray, activation_mode: str = "rowwise") -> QuantizedTensor:
    """Quantize activations at the requested granularity.

    ``activation_mode`` is ``"rowwise"``, ``"tensor"``, or ``"group:N"`` —
    the three granularities the paper evaluates (section 4.4).
    """
    if activation_mode == "rowwise":
        return quantize_rowwise(x)
    if activation_mode == "tensor":
        return quantize_per_tensor(np.asarray(x, dtype=np.float32))
    if activation_mode.startswith("group:"):
        return quantize_per_group(x, int(activation_mode.split(":", 1)[1]))
    raise ValueError(f"unknown activation mode {activation_mode!r}")


def accumulate_int8(x_values: np.ndarray, w_values: np.ndarray) -> np.ndarray:
    """INT8 x INT8 accumulation in an explicit wide dtype, range-checked.

    Returns the raw integer accumulator (``ACCUMULATOR_DTYPE``), exactly
    as the DPE produces it before dequantization.  Raises
    :class:`OverflowError` when any partial sum leaves the 32-bit
    hardware accumulator range — the loud-failure contract the SDC
    injection campaign relies on.
    """
    acc = x_values.astype(ACCUMULATOR_DTYPE) @ w_values.astype(ACCUMULATOR_DTYPE)
    if np.any(np.abs(acc) > INT32_ACC_MAX):
        raise OverflowError(
            "INT32 accumulator overflow (|acc| > 2^31-1); the hardware "
            "would wrap silently — reduce K or scales"
        )
    return acc


def dequantize_accumulator(
    acc: np.ndarray, x_scales: np.ndarray, w_scales: np.ndarray
) -> np.ndarray:
    """Scale a raw integer accumulator back to floating point."""
    row_scales = np.asarray(x_scales)
    if not row_scales.ndim:
        row_scales = row_scales.reshape(1)
    return acc.astype(np.float64) * np.asarray(row_scales, dtype=np.float64) * np.asarray(
        w_scales, dtype=np.float64
    )


def quantized_matmul(
    x: np.ndarray, weights: QuantizedTensor, activation_mode: str = "rowwise"
) -> np.ndarray:
    """INT8 x INT8 matmul with INT32 accumulation and FP dequantization.

    ``activation_mode`` selects the activation quantization granularity:
    ``"rowwise"``, ``"tensor"``, or ``"group:N"``.
    """
    qx = quantize_activations(x, activation_mode)
    acc = accumulate_int8(qx.values, weights.values)
    return dequantize_accumulator(acc, qx.scales, weights.scales)


def quantization_error(
    x: np.ndarray, w: np.ndarray, activation_mode: str = "rowwise"
) -> float:
    """Relative Frobenius error of the quantized matmul versus FP32."""
    reference = np.asarray(x, dtype=np.float64) @ np.asarray(w, dtype=np.float64)
    quantized = quantized_matmul(x, quantize_weights_static(w), activation_mode)
    denom = np.linalg.norm(reference)
    if denom == 0:
        return 0.0
    return float(np.linalg.norm(quantized - reference) / denom)


def fp16_matmul_error(x: np.ndarray, w: np.ndarray) -> float:
    """Relative error of the FP16 path (the baseline the paper compares
    INT8 quality against)."""
    reference = np.asarray(x, dtype=np.float64) @ np.asarray(w, dtype=np.float64)
    fp16 = (
        np.asarray(x, dtype=np.float16).astype(np.float32)
        @ np.asarray(w, dtype=np.float16).astype(np.float32)
    )
    denom = np.linalg.norm(reference)
    if denom == 0:
        return 0.0
    return float(np.linalg.norm(fp16.astype(np.float64) - reference) / denom)
