"""Dynamic INT8 quantization numerics (paper sections 3.3 and 4.4).

MTIA 2i computes quantization parameters on the fly: the Reduction
Engine emits per-row min/max during the matmul, and the SIMD Engine
derives row-wise scales — channel-wise symmetric dynamic quantization.
This module implements the *actual arithmetic* with numpy so quality
comparisons against FP16 (the paper's criterion for adopting INT8) are
measured, not asserted.

Quantization granularities evaluated by the paper:
  * per-tensor — one scale for the whole activation tensor;
  * per-batch-item (row-wise, M as the batch dimension);
  * per-N-batch-item — one scale per group of N rows.
The paper's finding: row-wise activations + static weights match FP16.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.pe.reduction import rowwise_minmax

INT8_MAX = 127


@dataclasses.dataclass(frozen=True)
class QuantizedTensor:
    """INT8 values plus their (per-row or scalar) scales."""

    values: np.ndarray  # int8
    scales: np.ndarray  # float32; shape broadcastable against values

    def dequantize(self) -> np.ndarray:
        """Back to floating point."""
        return self.values.astype(np.float32) * self.scales


def _symmetric_scale(abs_max: np.ndarray) -> np.ndarray:
    abs_max = np.maximum(np.asarray(abs_max, dtype=np.float64), 1e-12)
    return (abs_max / INT8_MAX).astype(np.float32)


def quantize_per_tensor(x: np.ndarray) -> QuantizedTensor:
    """Symmetric per-tensor quantization."""
    x = np.asarray(x, dtype=np.float32)
    scale = _symmetric_scale(np.max(np.abs(x)) if x.size else 1.0)
    q = np.clip(np.round(x / scale), -INT8_MAX, INT8_MAX).astype(np.int8)
    return QuantizedTensor(values=q, scales=np.asarray(scale, dtype=np.float32))


def quantize_rowwise(x: np.ndarray) -> QuantizedTensor:
    """Symmetric row-wise dynamic quantization — the RE/SIMD hardware path.

    The per-row min/max comes from :func:`rowwise_minmax`, exactly the
    statistic the Reduction Engine produces during accumulation.
    """
    x = np.asarray(x, dtype=np.float32)
    if x.ndim != 2:
        raise ValueError(f"row-wise quantization expects a matrix, got {x.shape}")
    row_min, row_max = rowwise_minmax(x)
    abs_max = np.maximum(np.abs(row_min), np.abs(row_max))
    scales = _symmetric_scale(abs_max)[:, None]
    q = np.clip(np.round(x / scales), -INT8_MAX, INT8_MAX).astype(np.int8)
    return QuantizedTensor(values=q, scales=scales.astype(np.float32))


def quantize_per_group(x: np.ndarray, group_rows: int) -> QuantizedTensor:
    """Per-N-batch-item quantization: one scale per ``group_rows`` rows."""
    x = np.asarray(x, dtype=np.float32)
    if x.ndim != 2:
        raise ValueError("per-group quantization expects a matrix")
    if group_rows <= 0:
        raise ValueError("group size must be positive")
    scales = np.empty((x.shape[0], 1), dtype=np.float32)
    for start in range(0, x.shape[0], group_rows):
        block = x[start : start + group_rows]
        scale = _symmetric_scale(np.max(np.abs(block)) if block.size else 1.0)
        scales[start : start + group_rows] = scale
    q = np.clip(np.round(x / scales), -INT8_MAX, INT8_MAX).astype(np.int8)
    return QuantizedTensor(values=q, scales=scales)


def quantize_weights_static(w: np.ndarray) -> QuantizedTensor:
    """Static per-output-channel weight quantization (offline calibration).

    Weights are constant, so per-column scales are computed once at model
    publish time — the paper's companion to dynamic activations.
    """
    w = np.asarray(w, dtype=np.float32)
    if w.ndim != 2:
        raise ValueError("weight quantization expects a matrix")
    abs_max = np.max(np.abs(w), axis=0)
    scales = _symmetric_scale(abs_max)[None, :]
    q = np.clip(np.round(w / scales), -INT8_MAX, INT8_MAX).astype(np.int8)
    return QuantizedTensor(values=q, scales=scales)


def quantized_matmul(
    x: np.ndarray, weights: QuantizedTensor, activation_mode: str = "rowwise"
) -> np.ndarray:
    """INT8 x INT8 matmul with INT32 accumulation and FP dequantization.

    ``activation_mode`` selects the activation quantization granularity:
    ``"rowwise"``, ``"tensor"``, or ``"group:N"``.
    """
    if activation_mode == "rowwise":
        qx = quantize_rowwise(x)
    elif activation_mode == "tensor":
        qx = quantize_per_tensor(np.asarray(x, dtype=np.float32))
    elif activation_mode.startswith("group:"):
        qx = quantize_per_group(x, int(activation_mode.split(":", 1)[1]))
    else:
        raise ValueError(f"unknown activation mode {activation_mode!r}")
    # INT32 accumulation, exactly as the DPE does.
    acc = qx.values.astype(np.int64) @ weights.values.astype(np.int64)
    if np.any(np.abs(acc) > 2**31 - 1):
        raise OverflowError("INT32 accumulator overflow; reduce K or scales")
    row_scales = qx.scales if qx.scales.ndim else qx.scales.reshape(1)
    return acc.astype(np.float64) * np.asarray(row_scales, dtype=np.float64) * np.asarray(
        weights.scales, dtype=np.float64
    )


def quantization_error(
    x: np.ndarray, w: np.ndarray, activation_mode: str = "rowwise"
) -> float:
    """Relative Frobenius error of the quantized matmul versus FP32."""
    reference = np.asarray(x, dtype=np.float64) @ np.asarray(w, dtype=np.float64)
    quantized = quantized_matmul(x, quantize_weights_static(w), activation_mode)
    denom = np.linalg.norm(reference)
    if denom == 0:
        return 0.0
    return float(np.linalg.norm(quantized - reference) / denom)


def fp16_matmul_error(x: np.ndarray, w: np.ndarray) -> float:
    """Relative error of the FP16 path (the baseline the paper compares
    INT8 quality against)."""
    reference = np.asarray(x, dtype=np.float64) @ np.asarray(w, dtype=np.float64)
    fp16 = (
        np.asarray(x, dtype=np.float16).astype(np.float32)
        @ np.asarray(w, dtype=np.float16).astype(np.float32)
    )
    denom = np.linalg.norm(reference)
    if denom == 0:
        return 0.0
    return float(np.linalg.norm(fp16.astype(np.float64) - reference) / denom)
