"""Quantization performance/quality trade-off analysis (paper section 4.4).

The paper's findings this module reproduces:

* the DPE runs 2x faster in INT8 than FP16, but quantize/dequantize
  overhead on the FC path cuts the net speedup to ~1.6x for large
  compute-bound shapes (2048 x 2048 x 2048);
* only a few large layers gain from quantization, so end-to-end model
  improvements are often marginal (a few percent) unless
  quality-sensitive layers are quantized too (>5%);
* quantizing only the largest FC layers amortizes the overhead best.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.arch.specs import ChipSpec
from repro.graph.graph import OpGraph
from repro.graph.ops import Op, OpType
from repro.kernels.gemm import GemmVariant, estimate_gemm
from repro.kernels.layout import estimate_quantize
from repro.tensors.dtypes import DType
from repro.tensors.tensor import GemmShape


@dataclasses.dataclass(frozen=True)
class FcQuantizationReport:
    """INT8-vs-FP16 outcome for one FC shape."""

    shape: GemmShape
    fp16_time_s: float
    int8_matmul_time_s: float
    quant_overhead_s: float
    dequant_overhead_s: float

    @property
    def int8_total_time_s(self) -> float:
        """INT8 path including dynamic (de)quantization."""
        return self.int8_matmul_time_s + self.quant_overhead_s + self.dequant_overhead_s

    @property
    def raw_speedup(self) -> float:
        """DPE-only speedup (the hardware 2x)."""
        return self.fp16_time_s / self.int8_matmul_time_s

    @property
    def net_speedup(self) -> float:
        """End-to-end FC speedup after overheads (the paper's ~1.6x)."""
        return self.fp16_time_s / self.int8_total_time_s

    @property
    def worthwhile(self) -> bool:
        """Whether quantizing this layer gains at all."""
        return self.net_speedup > 1.05


def fc_quantization_report(
    shape: GemmShape, chip: ChipSpec, variant: Optional[GemmVariant] = None
) -> FcQuantizationReport:
    """Cost out the dynamic-INT8 path for one FC."""
    variant = variant or GemmVariant()
    fp16 = estimate_gemm(shape, chip, DType.FP16, variant)
    int8 = estimate_gemm(shape, chip, DType.INT8, variant)
    # Dynamic activation quantization: rescale M x K elements row-wise
    # (min/max comes free from the RE); dequantize the M x N output.
    quant = estimate_quantize(shape.m * shape.k, shape.m, chip)
    dequant = estimate_quantize(shape.m * shape.n, shape.m, chip)
    return FcQuantizationReport(
        shape=shape,
        fp16_time_s=fp16.engine_time_s,
        int8_matmul_time_s=int8.engine_time_s,
        quant_overhead_s=quant.engine_time_s,
        dequant_overhead_s=dequant.engine_time_s,
    )


@dataclasses.dataclass(frozen=True)
class ModelQuantizationPlan:
    """Which FCs to quantize in a model and the expected e2e gain."""

    quantized_layers: List[str]
    total_fc_time_s: float
    saved_time_s: float
    model_time_s: float

    @property
    def end_to_end_speedup(self) -> float:
        """Whole-model speedup from the selected layers."""
        remaining = self.model_time_s - self.saved_time_s
        return self.model_time_s / remaining if remaining > 0 else float("inf")


def plan_model_quantization(
    graph: OpGraph,
    chip: ChipSpec,
    min_layer_speedup: float = 1.2,
    quality_sensitive: Optional[List[str]] = None,
) -> ModelQuantizationPlan:
    """Select the FC layers worth quantizing (largest-first policy).

    ``quality_sensitive`` layers (typically those closest to the model's
    input and output, per the paper) are excluded regardless of their
    speedup.
    """
    quality_sensitive = set(quality_sensitive or [])
    model_time = 0.0
    fc_time = 0.0
    saved = 0.0
    chosen: List[str] = []

    def fc_candidates(op: Op):
        """FC ops reachable from a schedule entry, incl. fused sub-ops."""
        if op.op_type is OpType.FC:
            yield op
        elif op.op_type is OpType.FUSED:
            for sub in op.attrs.get("sub_ops", []):
                if sub.op_type is OpType.FC:
                    yield sub

    for op in graph.ops:
        from repro.kernels.registry import estimate_op

        model_time += estimate_op(op, chip).engine_time_s
        for fc_op in fc_candidates(op):
            est = estimate_op(fc_op, chip)
            fc_time += est.engine_time_s
            if fc_op.name in quality_sensitive:
                continue
            report = fc_quantization_report(fc_op.attrs["gemm"], chip)
            if report.net_speedup >= min_layer_speedup:
                chosen.append(fc_op.name)
                saved += est.engine_time_s - est.engine_time_s / report.net_speedup
    return ModelQuantizationPlan(
        quantized_layers=chosen,
        total_fc_time_s=fc_time,
        saved_time_s=saved,
        model_time_s=model_time,
    )
