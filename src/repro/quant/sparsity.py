"""2:4 structured weight sparsity (paper section 3.3).

MTIA 2i's Dot Product Engine supports 2:4 sparsity — two of every four
consecutive weights are zero — potentially doubling effective FLOPS.
The paper reports that exploiting it proved hard: "To be effective,
sparsity must apply to the largest weight matrices, which are often used
in the most critical layers that impact model quality.  Many of our
models lack sufficient sparsity in these matrices, leading to accuracy
degradation.  Therefore, this feature is not yet widely used in
production."

This module implements the actual pruning arithmetic so that trade-off
is measurable: magnitude-based 2:4 pruning, the natural-sparsity check
that explains why dense-trained DLRM weights prune badly, and the
model-quality impact through the A/B-test harness.
"""

from __future__ import annotations

import dataclasses

import numpy as np

GROUP = 4
KEPT_PER_GROUP = 2


def prune_2_4(weights: np.ndarray) -> np.ndarray:
    """Magnitude-based 2:4 pruning along the input (first) dimension.

    In every group of four consecutive input weights feeding the same
    output, the two smallest-magnitude entries are zeroed — the hardware
    pattern the DPE's sparse mode consumes.  The input dimension must be
    a multiple of 4.
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 2:
        raise ValueError(f"expected a 2-D weight matrix, got shape {w.shape}")
    k, n = w.shape
    if k % GROUP:
        raise ValueError(f"input dim {k} must be a multiple of {GROUP}")
    grouped = w.reshape(k // GROUP, GROUP, n)
    order = np.argsort(np.abs(grouped), axis=1)
    mask = np.ones_like(grouped, dtype=bool)
    # Zero the two smallest-magnitude entries of each group.
    drop = order[:, : GROUP - KEPT_PER_GROUP, :]
    rows = np.arange(grouped.shape[0])[:, None, None]
    cols = np.arange(n)[None, None, :]
    mask[rows, drop, cols] = False
    return (grouped * mask).reshape(k, n)


def satisfies_2_4(weights: np.ndarray) -> bool:
    """Whether a matrix already obeys the 2:4 pattern (>= 2 zeros per
    group of 4 along the input dim)."""
    w = np.asarray(weights)
    if w.ndim != 2 or w.shape[0] % GROUP:
        return False
    grouped = w.reshape(w.shape[0] // GROUP, GROUP, w.shape[1])
    zeros_per_group = np.sum(grouped == 0, axis=1)
    return bool(np.all(zeros_per_group >= GROUP - KEPT_PER_GROUP))


def natural_sparsity(weights: np.ndarray, threshold_fraction: float = 0.05) -> float:
    """Fraction of weights negligibly small relative to the matrix scale.

    Dense-trained recommendation weights have almost no natural sparsity,
    which is why magnitude pruning must discard *significant* weights —
    the root of the paper's quality-loss finding.
    """
    w = np.abs(np.asarray(weights, dtype=np.float64))
    if w.size == 0:
        return 0.0
    scale = np.median(w[w > 0]) if np.any(w > 0) else 1.0
    return float(np.mean(w <= threshold_fraction * scale))


@dataclasses.dataclass(frozen=True)
class SparsityImpact:
    """Quality cost of pruning one weight matrix."""

    relative_output_error: float
    pruned_mass_fraction: float  # |dropped| / |total| weight magnitude
    natural_sparsity: float

    def acceptable(self, error_tolerance: float = 0.01) -> bool:
        """Whether the pruning error is within a launch-quality budget."""
        return self.relative_output_error <= error_tolerance


def sparsity_impact(
    weights: np.ndarray, num_probe_rows: int = 256, seed: int = 0
) -> SparsityImpact:
    """Measure the output error of a 2:4-pruned matrix on probe inputs."""
    w = np.asarray(weights, dtype=np.float64)
    pruned = prune_2_4(w)
    rng = np.random.default_rng(seed)
    x = rng.normal(0, 1, size=(num_probe_rows, w.shape[0]))
    dense_out = x @ w
    sparse_out = x @ pruned
    denom = np.linalg.norm(dense_out)
    error = float(np.linalg.norm(sparse_out - dense_out) / denom) if denom else 0.0
    total_mass = np.sum(np.abs(w))
    dropped = float(np.sum(np.abs(w - pruned)) / total_mass) if total_mass else 0.0
    return SparsityImpact(
        relative_output_error=error,
        pruned_mass_fraction=dropped,
        natural_sparsity=natural_sparsity(w),
    )


def sparse_trained_weights(k: int, n: int, zero_fraction: float = 0.9, seed: int = 0) -> np.ndarray:
    """Weights from a sparsity-aware training run: most entries already
    near zero, so 2:4 pruning is nearly free — the regime where the DPE
    feature would pay off."""
    rng = np.random.default_rng(seed)
    w = rng.normal(0, 0.05, size=(k, n))
    mask = rng.uniform(size=(k, n)) < zero_fraction
    w[mask] = 0.0
    return w
