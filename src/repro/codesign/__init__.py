"""Automated model-chip co-design search (ROADMAP item 4; AutoDNNchip /
Design Conductor 2.0, PAPERS.md) — the "MTIA 3" proposal generator.

The paper's core theme is model-chip co-design; everything below this
package evaluates a *fixed* ``ChipSpec``.  This subsystem closes the
loop: a typed design space over the chip axes the paper's co-design
narrative turned (PE grid, SRAM/LPDDR capacity and bandwidth, GEMM:SIMD
ratio, frequency, NoC), candidates scored jointly against the Table 1 /
Figure 6 zoo under serving SLOs on the three production objectives
(QPS at the P99 SLO, QPS per TCO dollar, QPS per watt), a seeded
simulated-annealing + successive-halving search whose cheap rung is the
PR-9 executor surrogate, and deterministic Pareto fronts where every
reported point was exact-evaluated and MTIA 1 -> MTIA 2i is recovered
as a sanity anchor.

(Unrelated to :class:`repro.core.codesign.Mtia2iSystem`, the
narrative walkthrough facade of the *existing* chip; this package
searches for the next one.)

CLI: ``python -m repro codesign [--smoke]``.
"""

from repro.codesign.objectives import (
    CODESIGN_P99_SLO_S,
    CandidateEval,
    CodesignObjective,
    ModelScore,
)
from repro.codesign.pareto import (
    dominates,
    front_ranks,
    pareto_front,
    select_by_rank,
)
from repro.codesign.proposal import (
    front_table,
    proposal_summary,
    result_scalars,
)
from repro.codesign.search import (
    SearchConfig,
    SearchResult,
    run_codesign_search,
)
from repro.codesign.space import (
    DesignPoint,
    DesignSpace,
    default_space,
    derive_chip,
    smoke_space,
)

__all__ = [
    "CODESIGN_P99_SLO_S",
    "CandidateEval",
    "CodesignObjective",
    "DesignPoint",
    "DesignSpace",
    "ModelScore",
    "SearchConfig",
    "SearchResult",
    "default_space",
    "derive_chip",
    "dominates",
    "front_ranks",
    "front_table",
    "pareto_front",
    "proposal_summary",
    "result_scalars",
    "run_codesign_search",
    "select_by_rank",
    "smoke_space",
]
