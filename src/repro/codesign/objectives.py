"""Joint Perf / TCO / Perf-per-Watt scoring of candidate chips.

A candidate is scored against the Table 1 / Figure 6 model zoo under
the serving SLO, at one of three fidelities — the successive-halving
rungs of the search:

``surrogate``
    The executor-latency surrogate predicts each model's whole-graph
    latency from the cached graph summary; sharding comes from the byte
    formula, serving throughput from the fluid capacity bound.  No
    graph build, no executor run, no DES — microseconds per candidate.

``device``
    Exact device evaluation: ``autotune.placement.tune_placement``
    (which runs the real :class:`~repro.perf.executor.Executor`,
    choosing SRAM partition and fallback batch) and
    ``autotune.sharding.required_shards`` on the real graph.  Serving
    throughput still uses the fluid bound, so candidates are comparable
    at a fraction of the serving-rung cost.

``serving``
    Everything exact: the device rung plus the seeded
    :func:`repro.cluster.capacity.max_qps_at_slo` discrete-event scan
    for QPS at the P99 SLO.  Only evaluations at this fidelity carry
    ``exact=True`` — the Pareto front reports nothing else.

The three objectives (all maximized):

* **perf** — QPS one 24-accelerator server sustains at the P99 SLO,
  geometric-mean across the zoo;
* **perf_per_tco** — that QPS per annual TCO dollar, with the server
  TCO rebuilt from the candidate's *derived* cost
  (:func:`repro.tco.model.derived_cost_inputs`) and measured draw;
* **perf_per_watt** — that QPS per watt of measured server draw.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional, Sequence, Tuple

from repro.arch.mtia import mtia2i_spec
from repro.arch.server import mtia2i_server
from repro.arch.specs import ChipSpec
from repro.autotune.placement import tune_placement
from repro.autotune.sharding import (
    RUNTIME_RESERVE_FRACTION,
    required_shards,
    shard_throughput_tax,
)
from repro.cluster.capacity import max_qps_at_slo
from repro.cluster.service import default_service_model
from repro.codesign.space import DesignPoint
from repro.models.zoo import ZooModel, figure6_models
from repro.obs.metrics import active
from repro.power.activity import chip_power_w
from repro.surrogate.features import (
    GraphSummary,
    executor_feature_row,
    summarize_graph,
)
from repro.tco.model import derived_cost_inputs, server_tco
from repro.tensors.tensor import stable_uid_scope

# The DSE serves every model at this P99 SLO.  It is looser than the
# production DEFAULT_P99_SLO_S (100 ms) on purpose: the recovered front
# spans chip generations ~4x apart in latency (MTIA 1 vs 2), and with
# lognormal jitter sigma=0.45 the P99 sits ~2.6x above the mean — a
# 100 ms SLO would zero out the older anchor entirely instead of
# ranking it, degenerating the front the sanity check reads.
CODESIGN_P99_SLO_S = 0.25

# Feasible fraction of the fluid capacity bound used at the cheap
# fidelities (the DES scan typically lands near this at the codesign
# SLO); the serving rung replaces it with the measured value.
FLUID_FEASIBLE_FRACTION = 0.85

# Compute-array utilization assumed for the surrogate rung's power
# estimate; exact rungs use the executor's measured draw instead.
SURROGATE_UTILIZATION = 0.6

FIDELITIES = ("surrogate", "device", "serving")


@dataclasses.dataclass(frozen=True)
class ModelScore:
    """One zoo model's serving economics on one candidate chip."""

    model: str
    shards: int
    sample_latency_s: float  # per-sample device latency (incl. host)
    mean_service_s: float  # scaled request service time
    qps_server: float  # at the P99 SLO, per 24-accelerator server
    server_power_w: float
    tco_per_year: float
    perf_per_tco: float
    perf_per_watt: float


@dataclasses.dataclass(frozen=True)
class CandidateEval:
    """A fully scored candidate: one row of the Pareto table."""

    label: str
    point: Optional[DesignPoint]  # None for anchor chips
    chip_name: str
    fidelity: str
    exact: bool  # True only for serving-fidelity evaluations
    feasible: bool
    area_mm2: float
    typical_watts: float
    accelerator_cost_usd: float
    models: Tuple[ModelScore, ...]
    perf: float
    perf_per_tco: float
    perf_per_watt: float

    def objectives(self) -> Tuple[float, float, float]:
        """The maximized objective vector."""
        return (self.perf, self.perf_per_tco, self.perf_per_watt)


def _geomean(values: Sequence[float]) -> float:
    if not values or any(v <= 0 for v in values):
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _shards_from_bytes(
    dense_bytes: float, table_bytes: float, chip: ChipSpec
) -> int:
    """The ``required_shards`` byte formula on a cached graph summary
    (same arithmetic, no graph build).  Raises like the original."""
    usable = chip.dram.capacity_bytes * (1.0 - RUNTIME_RESERVE_FRACTION)
    if dense_bytes >= usable:
        raise ValueError("dense weights alone exceed device DRAM")
    shards = 1
    while table_bytes / shards + dense_bytes > usable:
        shards += 1
        if shards > 64:
            raise ValueError("model too large to shard")
    return shards


class CodesignObjective:
    """Scores candidate chips against the zoo at the three fidelities.

    Reference per-sample latencies are exact-measured once on the base
    chip (the MTIA 2i production point, where the default service model
    was calibrated) and cached; every candidate's request service time
    is the calibrated mean stretched by its latency ratio.  Graph
    summaries are likewise cached so surrogate-fidelity scoring never
    touches a graph.
    """

    def __init__(
        self,
        models: Optional[Sequence[ZooModel]] = None,
        base_chip: Optional[ChipSpec] = None,
        p99_slo_s: float = CODESIGN_P99_SLO_S,
        duration_s: float = 6.0,
        seed: int = 0,
        surrogate=None,
        max_cell_replicas: int = 8,
        registry=None,
    ) -> None:
        self.models = tuple(models if models is not None else figure6_models())
        if not self.models:
            raise ValueError("need at least one zoo model")
        self.base_chip = base_chip or mtia2i_spec()
        self.p99_slo_s = p99_slo_s
        self.duration_s = duration_s
        self.seed = seed
        self.surrogate = surrogate
        self.max_cell_replicas = max_cell_replicas
        self.registry = registry
        self.reference_service = default_service_model()
        self.summaries: Dict[str, GraphSummary] = {
            m.name: summarize_graph(self.stable_builder(m)(m.batch), m.batch)
            for m in self.models
        }
        self._reference_latency: Dict[str, float] = {}
        self._server = mtia2i_server()

    @staticmethod
    def stable_builder(model: ZooModel):
        """The model's graph builder under a
        :func:`~repro.tensors.tensor.stable_uid_scope`, so rebuilding
        the same (model, batch) yields byte-identical graphs — the LLC
        set mapping hashes tensor uids, and without the scope a rerun
        of the search would drift at the 4th decimal."""

        def build(batch: int):
            with stable_uid_scope():
                return model.build_at(batch)

        return build

    # -- cached reference ---------------------------------------------

    def reference_sample_latency(self, model: ZooModel) -> float:
        """Exact per-sample latency of a model on the base chip."""
        if model.name not in self._reference_latency:
            self._reference_latency[model.name] = self._device_latency(
                self.base_chip, model
            )[1]
        return self._reference_latency[model.name]

    # -- per-model pieces ---------------------------------------------

    def _device_latency(
        self, chip: ChipSpec, model: ZooModel
    ) -> Tuple[float, float, float]:
        """Exact ``(batch_latency_s, per_sample_s, avg_power_w)`` via
        the placement autotuner (which may pick a fallback batch)."""
        decision = tune_placement(self.stable_builder(model), model.batch, chip)
        report = decision.report
        batch_latency = report.latency_s + model.host_overhead_s_per_batch
        return (
            batch_latency,
            batch_latency / report.batch,
            report.avg_power_w,
        )

    def _surrogate_latency(
        self, chip: ChipSpec, model: ZooModel
    ) -> Tuple[float, float, float]:
        """Predicted ``(batch_latency_s, per_sample_s, avg_power_w)``
        from the executor surrogate on the cached summary."""
        summary = self.summaries[model.name]
        row = executor_feature_row(chip, summary)
        predicted = float(self.surrogate.predict(row[None, :])[0])
        batch_latency = predicted + model.host_overhead_s_per_batch
        power = chip_power_w(
            chip, chip.frequency_hz, SURROGATE_UTILIZATION
        )
        return batch_latency, batch_latency / summary.batch, power

    def _score_model(
        self, chip: ChipSpec, model: ZooModel, fidelity: str
    ) -> ModelScore:
        summary = self.summaries[model.name]
        if fidelity == "surrogate":
            shards = _shards_from_bytes(
                summary.dense_bytes, summary.embedding_bytes, chip
            )
            _, per_sample, chip_power = self._surrogate_latency(chip, model)
        else:
            shards = required_shards(
                self.stable_builder(model)(model.batch), chip
            )
            _, per_sample, chip_power = self._device_latency(chip, model)

        reference = self.reference_sample_latency(model)
        service = dataclasses.replace(
            self.reference_service,
            mean_service_s=self.reference_service.mean_service_s
            * (per_sample / reference),
        )
        replicas_per_server = self._server.accelerators_per_server / shards
        if fidelity == "serving":
            cell = max(1, min(int(replicas_per_server), self.max_cell_replicas))
            qps_cell, _ = max_qps_at_slo(
                service, cell, self.p99_slo_s, self.duration_s, self.seed
            )
            qps_server = qps_cell * replicas_per_server / cell
        else:
            qps_server = (
                replicas_per_server
                * service.capacity_per_replica()
                * FLUID_FEASIBLE_FRACTION
            )
        qps_server *= shard_throughput_tax(shards)

        server_power = (
            self._server.platform_power_watts * 0.8
            + self._server.accelerators_per_server * chip_power
        )
        server = dataclasses.replace(self._server, chip=chip)
        tco = server_tco(
            server, derived_cost_inputs(chip), avg_power_watts=server_power
        ).total_per_year
        return ModelScore(
            model=model.name,
            shards=shards,
            sample_latency_s=per_sample,
            mean_service_s=service.mean_service_s,
            qps_server=qps_server,
            server_power_w=server_power,
            tco_per_year=tco,
            perf_per_tco=qps_server / tco if tco > 0 else 0.0,
            perf_per_watt=(
                qps_server / server_power if server_power > 0 else 0.0
            ),
        )

    # -- candidate evaluation -----------------------------------------

    def evaluate(
        self,
        chip: ChipSpec,
        label: str,
        fidelity: str,
        point: Optional[DesignPoint] = None,
    ) -> CandidateEval:
        """Score one candidate at one fidelity (never raises on an
        infeasible chip — it returns an all-zero objective vector, which
        every feasible candidate dominates, so the front drops it
        naturally)."""
        if fidelity not in FIDELITIES:
            raise ValueError(f"unknown fidelity {fidelity!r}")
        if fidelity == "surrogate" and self.surrogate is None:
            raise ValueError("surrogate fidelity needs a fitted surrogate")
        obs = active(self.registry)
        if obs.enabled:
            obs.counter(f"codesign.evals.{fidelity}").inc()
        scores = []
        feasible = True
        try:
            for model in self.models:
                scores.append(self._score_model(chip, model, fidelity))
        except ValueError:
            feasible = False
            scores = []
        return CandidateEval(
            label=label,
            point=point,
            chip_name=chip.name,
            fidelity=fidelity,
            exact=fidelity == "serving",
            feasible=feasible,
            area_mm2=chip.die_area_mm2,
            typical_watts=chip.typical_watts,
            accelerator_cost_usd=derived_cost_inputs(
                chip
            ).accelerator_cost_usd,
            models=tuple(scores),
            perf=_geomean([s.qps_server for s in scores]),
            perf_per_tco=_geomean([s.perf_per_tco for s in scores]),
            perf_per_watt=_geomean([s.perf_per_watt for s in scores]),
        )


__all__ = [
    "CODESIGN_P99_SLO_S",
    "FIDELITIES",
    "FLUID_FEASIBLE_FRACTION",
    "CandidateEval",
    "CodesignObjective",
    "ModelScore",
]
