"""Rendering the search result: the Pareto table and the "MTIA 3"
proposal — the NRSim-scheduler-table style of reporting (SNIPPETS.md),
one aligned row per design with its axes, physicals, and objectives.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.codesign.objectives import CandidateEval
from repro.codesign.search import SearchResult
from repro.units import GB, GHZ, GiB, MiB

_HEADER = (
    f"{'design':<34} {'PEs':>4} {'GHz':>5} {'SRAM':>5} {'LPDDR':>10} "
    f"{'G:S':>4} {'mm^2':>6} {'W':>6} {'$':>6} "
    f"{'QPS/srv':>9} {'QPS/$TCOyr':>11} {'QPS/W':>7}"
)


def _axis_cells(evaluation: CandidateEval) -> str:
    point = evaluation.point
    if point is None:
        return f"{'--':>4} {'--':>5} {'--':>5} {'--':>10} {'--':>4}"
    return (
        f"{point.num_pes:>4d} "
        f"{point.frequency_hz / GHZ:>5.2f} "
        f"{point.sram_capacity_bytes // MiB:>5d} "
        f"{point.dram_capacity_bytes // GiB:>3d}G@"
        f"{point.dram_bandwidth_bytes_per_s / GB:>5.1f} "
        f"{point.gemm_to_simd:>4.0f}"
    )


def _row(evaluation: CandidateEval, marker: str = " ") -> str:
    return (
        f"{marker}{evaluation.label:<33} {_axis_cells(evaluation)} "
        f"{evaluation.area_mm2:>6.0f} {evaluation.typical_watts:>6.1f} "
        f"{evaluation.accelerator_cost_usd:>6.0f} "
        f"{evaluation.perf:>9.1f} {evaluation.perf_per_tco:>11.4f} "
        f"{evaluation.perf_per_watt:>7.3f}"
    )


def front_table(result: SearchResult) -> str:
    """The recovered Pareto front as an aligned text table.  Anchor
    rows are marked ``*``, the proposal row ``>``."""
    proposal = result.proposal
    anchor_labels = {a.label for a in result.anchors}
    lines = [
        "Pareto front (all points exact-evaluated; "
        f"{result.candidates_scored} candidates scored, "
        f"{result.exact_evals} exact evals, "
        f"{result.eval_reduction:.1f}x reduction):",
        _HEADER,
    ]
    for evaluation in result.front:
        marker = " "
        if evaluation.label in anchor_labels:
            marker = "*"
        elif proposal is not None and evaluation.label == proposal.label:
            marker = ">"
        lines.append(_row(evaluation, marker))
    # Anchors always print, even when dominated off the front.
    front_labels = {e.label for e in result.front}
    for anchor in result.anchors:
        if anchor.label not in front_labels:
            lines.append(_row(anchor, "*") + "  (dominated)")
    return "\n".join(lines)


def proposal_summary(result: SearchResult) -> str:
    """The "MTIA 3" proposal paragraph: the pick and its gains over the
    MTIA 2i anchor, per objective and per model."""
    anchor = result.anchors[1]
    lines = [
        "sanity anchor: MTIA 2i dominates MTIA 1: "
        f"{result.mtia2_dominates_mtia1}"
    ]
    pick = result.proposal
    if pick is None:
        lines.append("no searched point improves on MTIA 2i across the board")
        return "\n".join(lines)
    gains = [
        c / r for c, r in zip(pick.objectives(), anchor.objectives())
    ]
    lines.append(
        f"MTIA 3 proposal: {pick.label}\n"
        f"  vs MTIA 2i: perf x{gains[0]:.2f}, perf/TCO x{gains[1]:.2f}, "
        f"perf/W x{gains[2]:.2f}\n"
        f"  die {pick.area_mm2:.0f} mm^2, typical {pick.typical_watts:.0f} W, "
        f"accelerator ${pick.accelerator_cost_usd:.0f}"
    )
    anchor_by_model = {s.model: s for s in anchor.models}
    for score in pick.models:
        ref = anchor_by_model.get(score.model)
        ratio = score.qps_server / ref.qps_server if ref else float("nan")
        lines.append(
            f"  {score.model:<5} {score.shards}x shard  "
            f"{score.qps_server:>8.1f} QPS/srv (x{ratio:.2f})  "
            f"mean svc {score.mean_service_s * 1e3:.1f} ms"
        )
    return "\n".join(lines)


def result_scalars(result: SearchResult) -> Dict[str, float]:
    """Flat scalars for the benchmark harness and the pinned goldens."""
    out: Dict[str, float] = {
        "front_size": float(len(result.front)),
        "all_front_exact": float(result.all_front_exact),
        "mtia2_dominates_mtia1": float(result.mtia2_dominates_mtia1),
        "candidates_scored": float(result.candidates_scored),
        "exact_evals": float(result.exact_evals),
        "eval_reduction": result.eval_reduction,
        "anchor_mtia2_perf": result.anchors[1].perf,
        "anchor_mtia2_perf_per_watt": result.anchors[1].perf_per_watt,
        "surrogate_mape_holdout": result.train_report.mape_holdout,
    }
    if result.proposal is not None:
        out["proposal_perf"] = result.proposal.perf
        out["proposal_perf_per_tco"] = result.proposal.perf_per_tco
        out["proposal_perf_per_watt"] = result.proposal.perf_per_watt
        out["proposal_gain_vs_mtia2"] = result.proposal.perf / max(
            result.anchors[1].perf, 1e-30
        )
    return out


def dominated_anchors(result: SearchResult) -> Sequence[CandidateEval]:
    """Anchors that did not survive onto the front (for reporting)."""
    front_labels = {e.label for e in result.front}
    return [a for a in result.anchors if a.label not in front_labels]


__all__ = [
    "dominated_anchors",
    "front_table",
    "proposal_summary",
    "result_scalars",
]
