"""Multi-objective Pareto machinery over candidate evaluations.

All three objectives are maximized.  The front is a *set* property of
the input — insertion order never changes membership (the property test
pins this) — and the returned tuple is canonically sorted so seeded
reruns emit byte-identical tables.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.codesign.objectives import CandidateEval


def dominates(a: CandidateEval, b: CandidateEval) -> bool:
    """True when ``a`` is at least as good on every objective and
    strictly better on at least one."""
    ao, bo = a.objectives(), b.objectives()
    return all(x >= y for x, y in zip(ao, bo)) and any(
        x > y for x, y in zip(ao, bo)
    )


def _canonical_key(candidate: CandidateEval):
    perf, ppt, ppw = candidate.objectives()
    return (-perf, -ppt, -ppw, candidate.label)


def pareto_front(
    candidates: Sequence[CandidateEval],
) -> Tuple[CandidateEval, ...]:
    """The non-dominated subset, canonically sorted.

    Membership is decided against the whole input, so the result is
    independent of insertion order.  Candidates with *identical*
    objective vectors do not dominate each other — all of them stay
    (ties are resolved by label in the sort, not discarded).
    """
    front = [
        c
        for c in candidates
        if not any(dominates(other, c) for other in candidates)
    ]
    return tuple(sorted(front, key=_canonical_key))


def front_ranks(
    candidates: Sequence[CandidateEval],
) -> List[Tuple[CandidateEval, ...]]:
    """Successive non-dominated fronts (NSGA-style peeling): rank 0 is
    the Pareto front, rank 1 the front of what remains, and so on.  The
    halving rungs promote whole ranks until their budget fills."""
    remaining = list(candidates)
    ranks: List[Tuple[CandidateEval, ...]] = []
    while remaining:
        front = pareto_front(remaining)
        ranks.append(front)
        members = {id(c) for c in front}
        remaining = [c for c in remaining if id(c) not in members]
    return ranks


def select_by_rank(
    candidates: Sequence[CandidateEval], keep: int
) -> Tuple[CandidateEval, ...]:
    """The top ``keep`` candidates by Pareto rank, ties within the
    cut-off rank broken by the canonical (balanced-objective) sort."""
    if keep <= 0:
        return ()
    selected: List[CandidateEval] = []
    for rank in front_ranks(candidates):
        room = keep - len(selected)
        if room <= 0:
            break
        selected.extend(sorted(rank, key=_canonical_key)[:room])
    return tuple(selected)


__all__ = ["dominates", "front_ranks", "pareto_front", "select_by_rank"]
